"""Generalization beyond the paper: a three-kind cluster, end to end.

The paper's machinery is written for its two-kind testbed; the library
generalizes it.  This runs the full pipeline (measure, fit, compose,
adjust, optimize, verify) on a synthetic three-generation cluster where
the fastest kind has a single PE (so its P-T models must be composed) and
checks the decisions against ground truth.
"""

import pytest

from repro.cluster.network import fast_ethernet
from repro.cluster.node import Node
from repro.cluster.presets import pentium2_400
from repro.cluster.spec import ClusterSpec
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.measure.grids import custom_plan
from repro.simnet.mpich import mpich_1_2_2
from repro.units import MB


@pytest.fixture(scope="module")
def three_kind_spec():
    base = pentium2_400()
    slow = base.scaled("gen1", 1.0)       # 0.24 Gflops
    medium = base.scaled("gen2", 2.5)     # 0.60 Gflops
    fast = base.scaled("gen3", 6.0)       # 1.44 Gflops
    nodes = (
        Node("s1", slow, cpus=2, memory_bytes=768 * MB),
        Node("s2", slow, cpus=2, memory_bytes=768 * MB),
        Node("m1", medium, cpus=1, memory_bytes=768 * MB),
        Node("m2", medium, cpus=1, memory_bytes=768 * MB),
        Node("m3", medium, cpus=1, memory_bytes=768 * MB),
        Node("f1", fast, cpus=1, memory_bytes=1024 * MB),
    )
    return ClusterSpec("three-gen", nodes, fast_ethernet(), mpich_1_2_2())


@pytest.fixture(scope="module")
def three_kind_pipeline(three_kind_spec):
    plan = custom_plan(
        three_kind_spec,
        construction_sizes=(800, 1600, 2400, 3200, 4800),
        evaluation_sizes=(1600, 3200, 4800),
        max_procs=4,
        name="three-gen",
    )
    return EstimationPipeline(
        three_kind_spec,
        PipelineConfig(protocol="basic", seed=21, calibration_n=4800),
        plan=plan,
    )


class TestCustomPlan:
    def test_plan_structure(self, three_kind_spec):
        plan = custom_plan(
            three_kind_spec, (800, 1600, 2400, 3200), (1600,), max_procs=3
        )
        # gen1 has 4 PEs -> subset {1,2,4}; gen2 3 -> {1,2,3}; gen3 1 -> {1}
        per_kind = {}
        for config in plan.construction_configs:
            assert config.is_single_kind
            kind = config.active[0].kind_name
            per_kind.setdefault(kind, set()).add(config.active[0].pe_count)
        assert per_kind == {"gen1": {1, 2, 4}, "gen2": {1, 2, 3}, "gen3": {1}}
        # only the fastest kind multiprocesses in evaluation
        for config in plan.evaluation_configs:
            for alloc in config.active:
                if alloc.kind_name != "gen3":
                    assert alloc.procs_per_pe == 1

    def test_evaluation_covers_all_kind_combinations(self, three_kind_spec):
        plan = custom_plan(three_kind_spec, (800, 1600, 2400, 3200), (1600,))
        used_sets = {
            frozenset(a.kind_name for a in c.active)
            for c in plan.evaluation_configs
        }
        assert frozenset({"gen1", "gen2", "gen3"}) in used_sets
        assert frozenset({"gen3"}) in used_sets


class TestThreeKindPipeline:
    def test_models_fit_and_compose(self, three_kind_pipeline):
        store = three_kind_pipeline.store
        # gen1 and gen2 have enough PEs for measured P-T models
        assert not store.pt_model("gen1", 1).is_composed
        assert not store.pt_model("gen2", 1).is_composed
        # gen3 (single PE) must be composed
        assert store.pt_model("gen3", 1).is_composed

    def test_decisions_close_to_ground_truth(self, three_kind_pipeline):
        # The fastest kind's multiprocess models are *composed* (it has a
        # single PE), so its near-ties carry more error than the paper's
        # two-kind case; 15% bounds the observed worst miss.
        for n in three_kind_pipeline.plan.evaluation_sizes:
            outcome = three_kind_pipeline.optimize(n)
            chosen = three_kind_pipeline.measured_time(outcome.best.config, n)
            _, t_hat = three_kind_pipeline.actual_best(n)
            regret = (chosen - t_hat) / t_hat
            assert regret <= 0.15, f"N={n}: regret {regret:+.3f}"

    def test_small_n_prefers_fast_subset(self, three_kind_pipeline):
        config, _ = three_kind_pipeline.actual_best(1600)
        # at small N the slow generation only adds communication
        assert config.pe_count("gen1") == 0

    def test_large_n_uses_more_of_the_cluster(self, three_kind_pipeline):
        small_config, _ = three_kind_pipeline.actual_best(1600)
        large_config, _ = three_kind_pipeline.actual_best(4800)
        assert large_config.total_pes >= small_config.total_pes
