"""CLI integration tests (in-process via cli.main)."""

import re
from pathlib import Path

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCLI:
    def test_describe(self, capsys):
        code, out, _ = run_cli(capsys, "describe")
        assert code == 0
        assert "athlon" in out and "pentium2" in out

    def test_fig2(self, capsys):
        code, out, _ = run_cli(capsys, "fig2")
        assert code == 0
        assert "mpich-1.2.1" in out and "mpich-1.2.2" in out

    def test_fig1_single_version(self, capsys):
        code, out, _ = run_cli(capsys, "fig1", "--mpich-version", "1.2.2")
        assert code == 0
        assert "4P/CPU" in out
        assert "1.2.1" not in out.split("Figure 1")[1]

    def test_fig3(self, capsys):
        code, out, _ = run_cli(capsys, "fig3")
        assert code == 0
        assert "Figure 3(a)" in out and "Figure 3(b)" in out

    def test_cost_ns(self, capsys):
        code, out, _ = run_cli(capsys, "cost", "--protocol", "ns")
        assert code == 0
        assert "Measurement cost" in out and "Total" in out

    def test_campaign_ns(self, capsys):
        code, out, _ = run_cli(capsys, "campaign", "--protocol", "ns")
        assert code == 0
        assert "ns campaign: 120 measurements" in out
        assert "walker" not in out  # profile output only with --profile

    def test_campaign_profile(self, capsys):
        code, out, _ = run_cli(
            capsys, "campaign", "--protocol", "ns", "--profile"
        )
        assert code == 0
        assert "stage        calls   seconds" in out
        assert re.search(r"campaign\s+1\s+\d+\.\d+", out)
        assert re.search(r"walker: batch \d+ calls/\d+ sizes", out)
        assert "panel-table" in out

    def test_verify_ns(self, capsys):
        code, out, _ = run_cli(capsys, "verify", "--protocol", "ns")
        assert code == 0
        assert "Errors in estimated best configurations" in out
        assert "Adjustment" in out

    def test_correlate_raw_and_adjusted(self, capsys):
        code, out, _ = run_cli(
            capsys, "correlate", "--protocol", "ns", "--n", "1600", "--raw"
        )
        assert code == 0
        assert "raw" in out
        code, out, _ = run_cli(capsys, "correlate", "--protocol", "ns", "--n", "1600")
        assert "adjusted" in out

    def test_optimize(self, capsys):
        code, out, _ = run_cli(
            capsys, "optimize", "--protocol", "ns", "--n", "3200", "--top", "3"
        )
        assert code == 0
        assert "  1. " in out and "  3. " in out

    def test_seed_changes_nothing_structural(self, capsys):
        _, out_a, _ = run_cli(capsys, "--seed", "1", "fig2")
        _, out_b, _ = run_cli(capsys, "--seed", "2", "fig2")
        assert out_a == out_b  # fig2 is noise-free

    def test_export_writes_csvs(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "export", "--out", str(tmp_path), "--protocol", "ns"
        )
        assert code == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert "fig2_netpipe.csv" in names
        assert "ns_verification.csv" in names
        assert "ns_cost.csv" in names

    def test_advise_flags_ns(self, capsys):
        code, out, _ = run_cli(capsys, "advise", "--protocol", "ns")
        assert code == 0
        assert "FATAL" in out and "extrapolation" in out

    def test_advise_footprint(self, capsys):
        code, out, _ = run_cli(
            capsys, "advise", "--protocol", "nl", "--footprint", "3"
        )
        assert code == 0
        assert "paging-runs" in out

    def test_cluster_file_overrides_testbed(self, capsys, tmp_path):
        from repro.cluster.presets import synthetic_cluster
        from repro.cluster.serialize import save_cluster

        path = tmp_path / "mycluster.json"
        save_cluster(synthetic_cluster([0.5, 1.0], nodes_per_kind=2), path)
        code, out, _ = run_cli(capsys, "--cluster", str(path), "describe")
        assert code == 0
        assert "synthetic-2kinds" in out
        assert "athlon" not in out

    def test_models_inventory_of_saved_pipeline(self, capsys):
        fixture = Path(__file__).parent.parent / "golden" / "format1_pipeline"
        code, out, _ = run_cli(capsys, "models", "--dir", str(fixture))
        assert code == 0
        assert "backend: binned" in out
        # every model row carries type, identity, provenance, coefficients
        assert "nt " in out and "pt " in out
        assert "fitted" in out and "composed<-" in out
        assert "ka=[" in out and "ta_ref=[" in out
        # fingerprints are the 16-hex model_fingerprint form
        assert re.search(r"\b[0-9a-f]{16}\b", out)
        lines = [line for line in out.splitlines() if line.startswith("  ")]
        assert len(lines) == 42  # 36 N-T + 6 P-T models of the NS fixture

    def test_models_rejects_non_pipeline_dir(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "models", "--dir", str(tmp_path))
        assert code == 1
        assert "not a saved pipeline" in err

    def test_unknown_command_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


GOLDEN = Path(__file__).parent.parent / "golden" / "format1_pipeline"


@pytest.fixture
def corrupt_dir(tmp_path):
    """A saved pipeline whose model store was truncated mid-write."""
    import shutil

    target = tmp_path / "pipeline"
    shutil.copytree(GOLDEN, target)
    (target / "models.json").write_text('{"backend": "binned", "mod')
    return target


class TestEstimateCommand:
    def test_save_then_load_roundtrip(self, capsys, tmp_path):
        out = tmp_path / "saved"
        code, msg, _ = run_cli(capsys, "save", "--protocol", "ns", "--out", str(out))
        assert code == 0
        assert str(out) in msg
        code, inventory, _ = run_cli(capsys, "models", "--dir", str(out))
        assert code == 0
        assert "backend: binned" in inventory
        code, estimate, _ = run_cli(
            capsys, "estimate", "--dir", str(out),
            "--config", "1,2,8,1", "--n", "3200",
        )
        assert code == 0
        assert "N=3200" in estimate

    def test_estimate_saved_pipeline(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--dir", str(GOLDEN),
            "--config", "1,2,8,1", "--n", "1600", "--n", "3200",
        )
        assert code == 0
        assert "N=1600" in out and "N=3200" in out
        assert re.search(r"N=3200\s+[0-9.]+ s", out)

    def test_estimate_missing_dir_one_line_error(self, capsys, tmp_path):
        code, out, err = run_cli(
            capsys, "estimate", "--dir", str(tmp_path / "nope"),
            "--config", "1,2,8,1", "--n", "1600",
        )
        assert code == 1
        assert out == ""
        assert err.startswith("error:") and err.count("\n") == 1
        assert "Traceback" not in err

    def test_estimate_corrupt_dir_one_line_error(self, capsys, corrupt_dir):
        code, _, err = run_cli(
            capsys, "estimate", "--dir", str(corrupt_dir),
            "--config", "1,2,8,1", "--n", "1600",
        )
        assert code == 1
        assert err.startswith("error:") and err.count("\n") == 1
        assert "models.json" in err
        assert "Traceback" not in err

    def test_models_missing_dir_one_line_error(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "models", "--dir", str(tmp_path / "gone"))
        assert code == 1
        assert err.startswith("error:") and err.count("\n") == 1
        assert "Traceback" not in err

    def test_models_corrupt_dir_one_line_error(self, capsys, corrupt_dir):
        code, _, err = run_cli(capsys, "models", "--dir", str(corrupt_dir))
        assert code == 1
        assert err.startswith("error:") and err.count("\n") == 1
        assert "models.json" in err
        assert "Traceback" not in err
