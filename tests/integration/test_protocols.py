"""Integration tests: the three protocols end-to-end, asserting the
paper's headline results (the shape criteria of DESIGN.md section 4)."""

import pytest

from repro.analysis.correlation import correlation_data
from repro.analysis.errors import evaluation_rows


@pytest.fixture(scope="module")
def basic_rows(basic_pipeline):
    return evaluation_rows(basic_pipeline)


@pytest.fixture(scope="module")
def nl_rows(nl_pipeline):
    return evaluation_rows(nl_pipeline)


@pytest.fixture(scope="module")
def ns_rows(ns_pipeline):
    return evaluation_rows(ns_pipeline)


class TestBasicProtocol:
    """Paper Table 4: Basic-model errors are 0%-3.6%."""

    def test_estimate_errors_small(self, basic_rows):
        for row in basic_rows:
            assert abs(row.estimate_error) < 0.10, (
                f"N={row.n}: estimate error {row.estimate_error:+.3f}"
            )

    def test_regret_small(self, basic_rows):
        for row in basic_rows:
            assert row.regret <= 0.05, f"N={row.n}: regret {row.regret:+.3f}"

    def test_small_n_picks_athlon_alone(self, basic_rows, kinds):
        by_n = {row.n: row for row in basic_rows}
        assert by_n[3200].estimated_config.label(kinds) == "1,1,0,0"
        assert by_n[3200].actual_config.label(kinds) == "1,1,0,0"

    def test_large_n_uses_full_cluster_with_multiprocessing(self, basic_rows, kinds):
        by_n = {row.n: row for row in basic_rows}
        for n in (8000, 9600):
            config = by_n[n].estimated_config
            assert config.pe_count("pentium2") >= 7
            assert config.procs_per_pe("athlon") >= 2

    def test_extrapolation_to_9600_works(self, basic_rows):
        """The Basic model is fitted on N <= 6400 but evaluated at 9600;
        the paper reports the extrapolation holds (<1% error there)."""
        by_n = {row.n: row for row in basic_rows}
        assert abs(by_n[9600].estimate_error) < 0.10
        assert by_n[9600].regret < 0.05


class TestNLProtocol:
    """Paper Table 7: NL errors 0%-4.3% despite 4x fewer measurements."""

    def test_errors_modest(self, nl_rows):
        for row in nl_rows:
            assert abs(row.estimate_error) < 0.16  # paper's worst was -0.150
            assert row.regret <= 0.06

    def test_nl_cheaper_than_basic(self, basic_pipeline, nl_pipeline):
        assert (
            nl_pipeline.campaign.total_cost_s
            < 0.75 * basic_pipeline.campaign.total_cost_s
        )

    def test_small_n_correlation_worse_than_large(self, nl_pipeline):
        """Paper: 'NL models can show relatively large errors for small N
        (N < 1600) since they are constructed from 1600 <= N <= 6400'."""
        small = correlation_data(nl_pipeline, 1600).mean_abs_deviation(adjusted=False)
        large = correlation_data(nl_pipeline, 4800).mean_abs_deviation(adjusted=False)
        assert small > large


class TestNSProtocol:
    """Paper Table 9: NS models fail badly at large N (28%-82% regret,
    massive underestimation)."""

    def test_ns_underestimates_large_n(self, ns_rows):
        by_n = {row.n: row for row in ns_rows}
        for n in (6400, 8000, 9600):
            assert by_n[n].estimate_error < -0.30, (
                f"N={n}: expected strong underestimation, got "
                f"{by_n[n].estimate_error:+.3f}"
            )

    def test_ns_makes_materially_wrong_decisions(self, ns_rows, basic_rows):
        """Which wrong configuration NS flukes into depends on the noise
        seed (the paper's NS locked onto the Athlon alone; other seeds
        pick other near-random configs), but some N >= 3200 always pays a
        double-digit regret, far above anything the Basic model does."""
        ns_worst = max(row.regret for row in ns_rows if row.n >= 3200)
        basic_worst = max(row.regret for row in basic_rows)
        assert ns_worst > 0.10
        assert ns_worst > 2 * basic_worst

    def test_ns_fine_at_construction_sizes(self, ns_rows):
        """N=1600 was used for construction, so NS is accurate there."""
        by_n = {row.n: row for row in ns_rows}
        assert abs(by_n[1600].estimate_error) < 0.05
        assert by_n[1600].regret < 0.02

    def test_ns_picks_undersized_configs(self, ns_rows):
        """The paper's NS model kept choosing the Athlon-only configuration
        because it thought big problems were cheap."""
        by_n = {row.n: row for row in ns_rows}
        chosen = by_n[9600].estimated_config
        actual = by_n[9600].actual_config
        assert chosen.total_processes < actual.total_processes

    def test_adjustment_cannot_fix_ns_extrapolation(self, ns_pipeline):
        """Figure 15: systematic residue remains after adjustment."""
        data = correlation_data(ns_pipeline, 6400)
        assert data.mean_abs_deviation(adjusted=True) > 0.15


class TestCrossProtocol:
    def test_cost_ordering_basic_nl_ns(self, basic_pipeline, nl_pipeline, ns_pipeline):
        """Paper Tables 3/6: ~6 h vs ~3 h vs ~10 min."""
        basic = basic_pipeline.campaign.total_cost_s
        nl = nl_pipeline.campaign.total_cost_s
        ns = ns_pipeline.campaign.total_cost_s
        assert basic > nl > ns
        assert ns < basic / 20

    def test_accuracy_cost_tradeoff(self, basic_rows, nl_rows, ns_rows):
        """Basic >= NL >> NS in decision quality."""
        def worst_regret(rows):
            return max(row.regret for row in rows if row.n >= 3200)

        assert worst_regret(basic_rows) <= worst_regret(ns_rows)
        assert worst_regret(nl_rows) <= worst_regret(ns_rows)

    def test_model_construction_is_milliseconds(self, basic_pipeline):
        """The paper: 0.69 ms for 54 configurations (we fit 60 models —
        anything under a second preserves the 'construction is free
        relative to measurement' claim)."""
        assert basic_pipeline.store.build_seconds < 1.0

    def test_optimization_is_fast(self, basic_pipeline):
        outcome = basic_pipeline.optimize(6400)
        assert outcome.search_seconds < 1.0
