"""The paper's generality claim, executed: the whole estimation pipeline
(measure -> fit -> compose -> adjust -> optimize) run on a *different*
application (SUMMA matrix multiplication) without changing any model code."""

from dataclasses import replace

import pytest

from repro.analysis.errors import evaluation_rows
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.exts.apps import run_summa
from repro.measure.grids import nl_plan


@pytest.fixture(scope="module")
def summa_plan():
    """An NL-style plan whose construction sizes keep SUMMA's 3-matrix
    footprint below every node's RAM: a single Pentium-II at N = 6400
    needs ~1 GB for SUMMA and pages, which poisons the P-T reference
    shape (see TestMemoryContamination below — the paper's Section 3.4
    motivation for memory binning, demonstrated on a second app)."""
    plan = nl_plan()
    return replace(
        plan,
        construction_sizes=(1200, 1600, 3200, 4800),
        evaluation_sizes=(1600, 3200, 4800),
    )


@pytest.fixture(scope="module")
def summa_pipeline(spec, summa_plan):
    return EstimationPipeline(
        spec,
        PipelineConfig(protocol="nl", seed=11, runner=run_summa, calibration_n=4800),
        plan=summa_plan,
    )


class TestSummaPipeline:
    def test_models_fit(self, summa_pipeline):
        store = summa_pipeline.store
        assert store.has_nt("athlon", 1, 1)
        assert store.has_pt("pentium2", 1)
        assert store.pt_model("athlon", 1).is_composed

    def test_estimates_track_measurements(self, summa_pipeline):
        from repro.cluster.config import ClusterConfig

        config = ClusterConfig.from_tuple(summa_pipeline.plan.kinds, (1, 1, 8, 1))
        est = summa_pipeline.estimate(config, 3200).total
        meas = summa_pipeline.measured_time(config, 3200)
        assert est == pytest.approx(meas, rel=0.25)

    def test_optimization_quality(self, summa_pipeline):
        rows = evaluation_rows(summa_pipeline, sizes=[3200, 4800])
        for row in rows:
            assert row.regret <= 0.10, f"N={row.n}: regret {row.regret:+.3f}"

    def test_summa_prefers_more_parallelism_than_hpl(self, summa_pipeline, kinds):
        """SUMMA's compute/comm ratio is 3x HPL's, so the cluster pays off
        at smaller N: by N=3200 the optimum is no longer the Athlon alone."""
        config, _ = summa_pipeline.actual_best(3200)
        assert config.pe_count("pentium2") > 0


class TestMemoryContamination:
    """What happens *without* the careful grid: a construction size that
    pages on the smallest configuration corrupts the P-T reference shape
    (the single-PE run is 4-5x slower than its compute time), driving the
    fitted offset wildly negative.  This is the failure mode the paper's
    Section 3.4 memory binning exists to prevent."""

    def test_paging_inflates_reference_and_breaks_pt_fit(self, spec):
        contaminated_plan = replace(
            nl_plan(), evaluation_sizes=(3200,)
        )  # construction keeps N=6400, which pages for SUMMA on one P-II
        pipeline = EstimationPipeline(
            spec,
            PipelineConfig(
                protocol="nl", seed=11, runner=run_summa, adjust=False
            ),
            plan=contaminated_plan,
        )
        single = pipeline.store.nt_model("pentium2", 1, 1)
        # the single-P-II N=6400 run took far longer than its compute time
        compute_only = 2.0 * 6400**3 / 0.24e9
        assert single.predict_ta(6400) > 2.0 * compute_only
        # and the integrated P-T model inherits a pathological offset
        pt = pipeline.store.pt_model("pentium2", 1)
        assert pt.k8 < -10.0
