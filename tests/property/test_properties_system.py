"""Property-based tests for system-level invariants: numeric LU, the
schedule simulator, configurations, the event engine and the models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.core.adjustment import LinearAdjustment
from repro.core.nt_model import NTModel
from repro.hpl.driver import run_hpl
from repro.hpl.lu import blocked_lu, lu_solve, permutation_vector, reconstruct
from repro.hpl.timing import PhaseTimes
from repro.simnet.collectives import ring_delivery_times
from repro.simnet.event_sim import Put, Receive, Simulator

KINDS = ("athlon", "pentium2")
SPEC = kishimoto_cluster()


class TestLUProperties:
    @given(
        n=st.integers(min_value=1, max_value=40),
        nb=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_pa_equals_lu_for_random_matrices(self, n, nb, seed):
        a = np.random.default_rng(seed).standard_normal((n, n))
        lu, piv = blocked_lu(a.copy(), nb=nb)
        perm = permutation_vector(piv)
        assert np.allclose(reconstruct(lu, piv), a[perm], atol=1e-8 * max(n, 4))

    @given(
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_solve_satisfies_system(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)) + np.eye(n) * 0.5
        b = rng.standard_normal(n)
        lu, piv = blocked_lu(a.copy(), nb=8)
        x = lu_solve(lu, piv, b)
        assert np.allclose(a @ x, b, atol=1e-7 * max(n, 4))

    @given(n=st.integers(min_value=1, max_value=25))
    @settings(max_examples=15, deadline=None)
    def test_pivots_produce_valid_permutation(self, n):
        a = np.random.default_rng(n).standard_normal((n, n))
        _, piv = blocked_lu(a.copy(), nb=5)
        perm = permutation_vector(piv)
        assert sorted(perm.tolist()) == list(range(n))


config_strategy = st.tuples(
    st.integers(min_value=0, max_value=1),  # P1
    st.integers(min_value=1, max_value=6),  # M1
    st.integers(min_value=0, max_value=8),  # P2
    st.integers(min_value=1, max_value=3),  # M2
).filter(lambda t: t[0] + t[2] > 0)


class TestScheduleProperties:
    @given(config=config_strategy, n=st.sampled_from([400, 800, 1600]))
    @settings(max_examples=25, deadline=None)
    def test_phase_times_nonnegative_and_wall_covers_busy(self, config, n):
        p1, m1, p2, m2 = config
        cc = ClusterConfig.from_tuple(
            KINDS, (p1, m1 if p1 else 0, p2, m2 if p2 else 0)
        )
        result = run_hpl(SPEC, cc, n)
        busy = result.schedule.busy_times()
        assert np.all(busy > 0)
        assert result.wall_time_s >= busy.max() * (1 - 1e-9)
        for timing in result.process_timings():
            assert timing.phases.total == pytest.approx(timing.ta + timing.tc)

    @given(config=config_strategy)
    @settings(max_examples=15, deadline=None)
    def test_gflops_bounded_by_cluster_peak(self, config):
        p1, m1, p2, m2 = config
        cc = ClusterConfig.from_tuple(
            KINDS, (p1, m1 if p1 else 0, p2, m2 if p2 else 0)
        )
        result = run_hpl(SPEC, cc, 1600)
        peak = p1 * 1.10 + p2 * 0.24
        assert 0 < result.gflops < peak * 1.01


class TestRingProperties:
    @given(
        hops=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        pipeline=st.floats(min_value=0.0, max_value=1.0),
        data=st.data(),
    )
    @settings(max_examples=60)
    def test_delivery_monotone_in_distance_and_bounded(self, hops, pipeline, data):
        root = data.draw(st.integers(min_value=0, max_value=len(hops) - 1))
        delivery = ring_delivery_times(hops, root=root, pipeline_factor=pipeline)
        p = len(hops)
        by_distance = [delivery[(root + d) % p] for d in range(p)]
        assert by_distance[0] == 0.0
        assert all(b >= a - 1e-12 for a, b in zip(by_distance, by_distance[1:]))
        full_chain = ring_delivery_times(hops, root=root, pipeline_factor=1.0)
        assert np.all(delivery <= full_chain + 1e-12)


class TestAdjustmentProperties:
    pairs = st.lists(
        st.tuples(
            st.integers(min_value=3, max_value=6),
            st.floats(min_value=0.1, max_value=1e4),
            st.floats(min_value=0.1, max_value=1e4),
        ),
        min_size=0,
        max_size=8,
    )

    @given(pairs=pairs)
    @settings(max_examples=60)
    def test_fit_apply_invariants(self, pairs):
        adj = LinearAdjustment.fit(pairs)
        # scales are positive; below-threshold untouched; output positive
        for mi, _, _ in pairs:
            assert adj.scale_for(mi) > 0
        assert adj.apply(10.0, max_mi=1) == 10.0
        assert adj.apply(10.0, max_mi=6) > 0

    @given(
        estimate=st.floats(min_value=0.1, max_value=1e3),
        measurement=st.floats(min_value=0.1, max_value=1e3),
    )
    def test_single_point_calibration_is_exact_at_that_point(
        self, estimate, measurement
    ):
        adj = LinearAdjustment.fit([(3, estimate, measurement)])
        assert adj.apply(estimate, max_mi=3) == pytest.approx(measurement)


class TestPhaseTimesProperties:
    times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)

    @given(a=times, b=times, c=times, d=times, e=times, f=times)
    def test_ta_tc_partition_total(self, a, b, c, d, e, f):
        t = PhaseTimes(pfact=a, mxswp=b, bcast=c, update=d, laswp=e, uptrsv=f)
        assert t.ta + t.tc == pytest.approx(t.total)
        assert t.rfact == pytest.approx(a + b)

    @given(a=times, b=times, scale=st.floats(min_value=0.0, max_value=100.0))
    def test_scaling_commutes_with_grouping(self, a, b, scale):
        t = PhaseTimes(pfact=a, bcast=b)
        assert t.scaled(scale).ta == pytest.approx(t.ta * scale)
        assert t.scaled(scale).tc == pytest.approx(t.tc * scale)


class TestNTModelProperties:
    @given(
        ka=st.tuples(
            st.floats(min_value=1e-12, max_value=1e-8),
            st.floats(min_value=0, max_value=1e-5),
            st.floats(min_value=0, max_value=1e-2),
            st.floats(min_value=0, max_value=1.0),
        )
    )
    @settings(max_examples=40)
    def test_fit_reproduces_generating_polynomial(self, ka):
        sizes = np.array([400.0, 800.0, 1600.0, 3200.0, 6400.0])
        ta = np.polyval(np.asarray(ka), sizes)
        tc = 1e-8 * sizes**2
        model = NTModel.fit("k", 1, 1, sizes, ta, tc)
        predicted = np.asarray(model.predict_ta(sizes))
        assert np.allclose(predicted, ta, rtol=1e-5, atol=1e-9)


class TestEventEngineProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40)
    def test_clock_is_monotone(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert sim.now == max(delays)

    @given(items=st.lists(st.integers(), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_mailboxes_preserve_order(self, items):
        sim = Simulator()
        got = []

        def producer():
            for item in items:
                yield Put("box", item)

        def consumer():
            for _ in items:
                got.append((yield Receive("box")))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == items
