"""Property-based tests for the model layer's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adjustment import LinearAdjustment
from repro.core.nt_model import NTModel
from repro.core.pt_model import PTModel
from repro.core.unified_model import UnifiedModel

sizes_strategy = st.lists(
    st.sampled_from([400.0, 800.0, 1200.0, 1600.0, 2400.0, 3200.0, 4800.0, 6400.0]),
    min_size=5,
    max_size=8,
    unique=True,
)

pos = st.floats(min_value=1e-12, max_value=1e-6)
scale = st.floats(min_value=0.05, max_value=5.0)


class TestPTModelProperties:
    @given(
        work=st.floats(min_value=1e-10, max_value=1e-8),
        comm=st.floats(min_value=1e-9, max_value=1e-7),
        ta_factor=scale,
        tc_factor=scale,
    )
    @settings(max_examples=40, deadline=None)
    def test_composition_scales_predictions_exactly(
        self, work, comm, ta_factor, tc_factor
    ):
        sizes = np.array([400.0, 800.0, 1600.0, 3200.0])
        family = []
        for p in (1, 2, 4, 8):
            s_c = comm * sizes**2 + 0.01
            family.append(
                NTModel.fit(
                    "src", p, 1, sizes,
                    work * sizes**3 / p,
                    0.2 * p * s_c + 0.4 * s_c / p,
                )
            )
        source = PTModel.fit_from_nt_family(family, sizes)
        composed = source.scaled("dst", ta_factor, tc_factor)
        for n in (800, 2400):
            for p in (3, 6):
                assert composed.predict_ta(n, p) == pytest.approx(
                    ta_factor * source.predict_ta(n, p), rel=1e-9, abs=1e-12
                )
                assert composed.predict_tc(n, p) == pytest.approx(
                    tc_factor * source.predict_tc(n, p), rel=1e-9, abs=1e-12
                )

    @given(work=st.floats(min_value=1e-10, max_value=1e-8))
    @settings(max_examples=25, deadline=None)
    def test_ta_monotone_decreasing_in_p(self, work):
        sizes = np.array([400.0, 800.0, 1600.0, 3200.0])
        family = [
            NTModel.fit(
                "k", p, 1, sizes, work * sizes**3 / p, 1e-9 * p * sizes**2 + 0.01
            )
            for p in (1, 2, 4, 8)
        ]
        model = PTModel.fit_from_nt_family(family, sizes)
        values = [model.predict_ta(2400, p) for p in range(1, 12)]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))


class TestUnifiedModelProperties:
    @given(
        u0=st.floats(min_value=1e-10, max_value=1e-8),
        u5=st.floats(min_value=1e-10, max_value=1e-8),
    )
    @settings(max_examples=30, deadline=None)
    def test_fit_recovers_two_variable_truth(self, u0, u5):
        rows = []
        for n in (400.0, 800.0, 1600.0, 3200.0):
            for p in (1.0, 2.0, 4.0, 8.0):
                rows.append((n, p, u0 * n**3 / p, u5 * p * n**2))
        model = UnifiedModel.fit(
            "k", 1,
            [r[0] for r in rows], [r[1] for r in rows],
            [r[2] for r in rows], [r[3] for r in rows],
        )
        for n, p, ta, tc in rows:
            assert model.predict_ta(n, p) == pytest.approx(ta, rel=1e-5, abs=1e-10)
            assert model.predict_tc(n, p) == pytest.approx(tc, rel=1e-5, abs=1e-10)


class TestAdjustmentProperties:
    triples = st.lists(
        st.tuples(
            st.integers(min_value=3, max_value=8),
            st.floats(min_value=0.5, max_value=500.0),
            st.floats(min_value=0.5, max_value=500.0),
        ),
        min_size=1,
        max_size=6,
    )

    @given(triples=triples, estimate=st.floats(min_value=0.1, max_value=1e3))
    @settings(max_examples=50)
    def test_apply_is_positive_homogeneous(self, triples, estimate):
        adj = LinearAdjustment.fit(triples)
        for mi in range(1, 10):
            assert adj.apply(2 * estimate, mi) == pytest.approx(
                2 * adj.apply(estimate, mi)
            )

    @given(triples=triples)
    @settings(max_examples=50)
    def test_roundtrip_serialization(self, triples):
        adj = LinearAdjustment.fit(triples)
        assert LinearAdjustment.from_dict(adj.to_dict()) == adj
