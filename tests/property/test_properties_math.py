"""Property-based tests (hypothesis) for the mathematical substrates:
block-cyclic arithmetic, least squares, workload counts and unit helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import lsq
from repro.hpl import workload
from repro.hpl.blockcyclic import (
    column_owner,
    columns_after,
    global_to_local,
    local_to_global,
    numroc,
)
from repro.units import gflops, pretty_bytes, pretty_seconds


dims = st.integers(min_value=0, max_value=500)
blocks = st.integers(min_value=1, max_value=64)
procs = st.integers(min_value=1, max_value=16)


class TestBlockCyclicProperties:
    @given(n=dims, nb=blocks, p=procs)
    def test_numroc_partitions_exactly(self, n, nb, p):
        assert sum(numroc(n, nb, i, p) for i in range(p)) == n

    @given(n=dims, nb=blocks, p=procs)
    def test_numroc_balanced_within_one_block(self, n, nb, p):
        counts = [numroc(n, nb, i, p) for i in range(p)]
        assert max(counts) - min(counts) <= nb

    @given(n=st.integers(min_value=1, max_value=400), nb=blocks, p=procs)
    def test_global_local_bijection(self, n, nb, p):
        seen = set()
        for j in range(n):
            owner, local = global_to_local(j, nb, p)
            assert owner == column_owner(j, nb, p)
            assert local_to_global(local, owner, nb, p) == j
            seen.add((owner, local))
        assert len(seen) == n

    @given(n=dims, nb=blocks, p=procs, data=st.data())
    def test_columns_after_consistent(self, n, nb, p, data):
        j0 = data.draw(st.integers(min_value=0, max_value=n))
        counts = columns_after(j0, n, nb, p)
        assert counts.sum() == n - j0
        assert np.all(counts >= 0)


coeff = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestLSQProperties:
    @given(coeffs=st.tuples(coeff, coeff, coeff, coeff))
    @settings(max_examples=50)
    def test_exact_cubic_always_recovered(self, coeffs):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 7.0])
        y = np.polyval(np.asarray(coeffs), x)
        fit = lsq.multifit_linear(lsq.design_cubic(x), y)
        predicted = fit.predict(lsq.design_cubic(x))
        assert np.allclose(predicted, y, atol=1e-6 + 1e-9 * np.abs(y).max())

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=5,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_residual_never_exceeds_constant_fit(self, ys):
        """LSQ with an intercept column is at least as good as the mean."""
        y = np.asarray(ys)
        x = np.arange(len(y), dtype=float)
        fit = lsq.multifit_linear(lsq.design_poly(x, 1), y)
        mean_residual = float(np.sum((y - y.mean()) ** 2))
        assert fit.chisq <= mean_residual + 1e-6 + 1e-9 * mean_residual


class TestWorkloadProperties:
    @given(n=st.integers(min_value=1, max_value=2000))
    def test_total_flops_positive_and_increasing(self, n):
        assert workload.total_lu_flops(n + 1) > workload.total_lu_flops(n) >= 0

    @given(
        n=st.integers(min_value=2, max_value=600),
        nb=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60)
    def test_blocked_phases_always_telescope(self, n, nb):
        total = 0.0
        for j0 in range(0, n, nb):
            jend = min(j0 + nb, n)
            total += workload.pfact_flops(n - j0, jend - j0)
            total += workload.update_flops(n - j0, jend - j0, n - jend)
        assert total == pytest.approx(workload.total_lu_flops(n), rel=1e-9)

    @given(m=st.integers(min_value=0, max_value=5000), nb=st.integers(min_value=0, max_value=128))
    def test_panel_bytes_nonnegative_monotone(self, m, nb):
        assert workload.panel_bytes(m, nb) >= 0
        assert workload.panel_bytes(m + 1, nb) >= workload.panel_bytes(m, nb)


class TestUnitsProperties:
    @given(st.floats(min_value=1e-9, max_value=1e12, allow_nan=False))
    def test_pretty_seconds_always_renders(self, value):
        assert isinstance(pretty_seconds(value), str)

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_pretty_bytes_always_renders(self, value):
        text = pretty_bytes(value)
        assert any(unit in text for unit in ("B", "KB", "MB", "GB", "TB"))

    @given(
        flops=st.floats(min_value=1.0, max_value=1e15),
        seconds=st.floats(min_value=1e-6, max_value=1e6),
    )
    def test_gflops_positive(self, flops, seconds):
        assert gflops(flops, seconds) > 0

    def test_gflops_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            gflops(1.0, 0.0)
