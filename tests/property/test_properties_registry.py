"""Property-based round-trips of the model registry (repro.core.model_api).

Serialization through the type-tagged registry must be lossless for every
registered model class — including composed (``scaled``) variants, whose
``composed_from`` provenance has to survive the wire format.  The
strategies build models directly from finite coefficients (fitting is
covered elsewhere); round-trip equality is dataclass equality, i.e.
bitwise on every compared field.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model_api import (
    TimeModel,
    model_from_dict,
    model_to_dict,
    registered_model_types,
)
from repro.core.nt_model import NTModel
from repro.core.pt_model import PTModel
from repro.core.unified_model import UnifiedModel
from repro.errors import ModelError

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)
factor = st.floats(min_value=1e-3, max_value=1e3)
kind_names = st.sampled_from(["athlon", "pentium2", "opteron", "k6"])


@st.composite
def n_ranges(draw):
    low = draw(st.integers(min_value=100, max_value=4000))
    high = draw(st.integers(min_value=low, max_value=20000))
    return (low, high)


@st.composite
def nt_models(draw):
    mi = draw(st.integers(min_value=1, max_value=6))
    p = draw(st.integers(min_value=mi, max_value=32))
    return NTModel(
        kind_name=draw(kind_names),
        p=p,
        mi=mi,
        ka=tuple(draw(st.lists(finite, min_size=4, max_size=4))),
        kc=tuple(draw(st.lists(finite, min_size=3, max_size=3))),
        n_range=draw(n_ranges()),
        chisq_ta=draw(finite),
        chisq_tc=draw(finite),
    )


@st.composite
def pt_models(draw):
    k = draw(st.lists(finite, min_size=5, max_size=5))
    return PTModel(
        kind_name=draw(kind_names),
        mi=draw(st.integers(min_value=1, max_value=6)),
        ta_ref=tuple(draw(st.lists(finite, min_size=4, max_size=4))),
        tc_ref=tuple(draw(st.lists(finite, min_size=3, max_size=3))),
        k7=k[0],
        k8=k[1],
        k9=k[2],
        k10=k[3],
        k11=k[4],
        n_range=draw(n_ranges()),
        p_range=(1, draw(st.integers(min_value=1, max_value=64))),
    )


@st.composite
def unified_models(draw):
    return UnifiedModel(
        kind_name=draw(kind_names),
        mi=draw(st.integers(min_value=1, max_value=6)),
        ua=tuple(draw(st.lists(finite, min_size=5, max_size=5))),
        uc=tuple(draw(st.lists(finite, min_size=5, max_size=5))),
        n_range=draw(n_ranges()),
        p_range=(1, draw(st.integers(min_value=1, max_value=64))),
    )


any_model = st.one_of(nt_models(), pt_models(), unified_models())


class TestRegistryRoundTrip:
    @given(model=any_model)
    @settings(max_examples=120, deadline=None)
    def test_round_trip_is_identity(self, model):
        data = model_to_dict(model)
        assert data["type"] == model.model_type
        assert model_from_dict(data) == model

    @given(model=any_model, ta_factor=factor, tc_factor=factor)
    @settings(max_examples=60, deadline=None)
    def test_scaled_variants_round_trip_with_provenance(
        self, model, ta_factor, tc_factor
    ):
        composed = model.scaled("composed-target", ta_factor, tc_factor)
        assert composed.is_composed
        restored = model_from_dict(model_to_dict(composed))
        assert restored == composed
        assert restored.is_composed
        assert restored.composed_from == model.kind_name

    @given(model=any_model)
    @settings(max_examples=30, deadline=None)
    def test_every_model_satisfies_the_protocol(self, model):
        assert isinstance(model, TimeModel)
        assert model.model_type in registered_model_types()
        # fingerprint is stable and serialization-determined
        assert model.fingerprint() == model_from_dict(
            model_to_dict(model)
        ).fingerprint()


class TestRegistryErrors:
    def test_unknown_tag_is_rejected(self):
        with pytest.raises(ModelError, match="unknown model type 'xgboost'"):
            model_from_dict({"type": "xgboost"})

    def test_missing_tag_is_rejected(self):
        with pytest.raises(ModelError, match="unknown model type"):
            model_from_dict({"kind": "athlon"})

    def test_known_tags(self):
        assert registered_model_types() == ("nt", "pt", "unified")
