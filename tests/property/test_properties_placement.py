"""Property-based tests for placement and transport consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes, ring_neighbors
from repro.cluster.presets import kishimoto_cluster
from repro.simnet.transport import LinkKind, Transport

KINDS = ("athlon", "pentium2")
SPEC = kishimoto_cluster()

config_strategy = st.tuples(
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=1, max_value=4),
).filter(lambda t: t[0] + t[2] > 0)


def build(t):
    p1, m1, p2, m2 = t
    return ClusterConfig.from_tuple(
        KINDS, (p1, m1 if p1 else 0, p2, m2 if p2 else 0)
    )


class TestPlacementProperties:
    @given(config=config_strategy)
    @settings(max_examples=50)
    def test_ranks_dense_and_counts_match(self, config):
        cc = build(config)
        slots = place_processes(SPEC, cc)
        assert [s.rank for s in slots] == list(range(cc.total_processes))
        for alloc in cc.active:
            kind_slots = [s for s in slots if s.kind.name == alloc.kind_name]
            assert len(kind_slots) == alloc.processes
            assert all(s.co_resident == alloc.procs_per_pe for s in kind_slots)

    @given(config=config_strategy)
    @settings(max_examples=50)
    def test_cpu_occupancy_never_exceeds_allocation(self, config):
        cc = build(config)
        slots = place_processes(SPEC, cc)
        per_cpu = {}
        for s in slots:
            per_cpu.setdefault((s.node_index, s.cpu_index), []).append(s)
        for members in per_cpu.values():
            m = members[0].co_resident
            assert len(members) == m
            assert all(s.kind.name == members[0].kind.name for s in members)

    @given(config=config_strategy)
    @settings(max_examples=50)
    def test_same_cpu_implies_same_node(self, config):
        cc = build(config)
        slots = place_processes(SPEC, cc)
        for a, b in ring_neighbors(slots):
            if a.same_cpu(b):
                assert a.same_node(b)

    @given(config=config_strategy)
    @settings(max_examples=30)
    def test_link_classification_symmetric(self, config):
        cc = build(config)
        slots = place_processes(SPEC, cc)
        transport = Transport(SPEC, slots)
        p = len(slots)
        rng = np.random.default_rng(0)
        for _ in range(min(10, p * p)):
            i, j = int(rng.integers(p)), int(rng.integers(p))
            if i == j:
                continue
            assert transport.link_kind(i, j) is transport.link_kind(j, i)
            assert transport.message_time(i, j, 4096) == pytest.approx(
                transport.message_time(j, i, 4096)
            )

    @given(
        config=config_strategy,
        nbytes=st.floats(min_value=1.0, max_value=1e7),
    )
    @settings(max_examples=30)
    def test_ring_hops_positive_and_network_slowest(self, config, nbytes):
        cc = build(config)
        slots = place_processes(SPEC, cc)
        if len(slots) < 2:
            return
        transport = Transport(SPEC, slots)
        hops = transport.ring_hop_times(nbytes)
        kinds = transport.ring_link_kinds()
        assert np.all(hops > 0)
        network = [h for h, k in zip(hops, kinds) if k is LinkKind.NETWORK]
        local = [h for h, k in zip(hops, kinds) if k is not LinkKind.NETWORK]
        if network and local and nbytes > 65536:
            assert min(network) > max(local)
