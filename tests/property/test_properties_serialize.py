"""Property-based round-trip tests for serialization layers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import NetworkSpec
from repro.cluster.node import Node
from repro.cluster.pe import PEKind
from repro.cluster.serialize import cluster_from_dict, cluster_to_dict
from repro.cluster.spec import ClusterSpec
from repro.hpl.timing import PhaseTimes
from repro.simnet.mpich import mpich_1_2_2

rate = st.floats(min_value=0.05, max_value=50.0)
small_pos = st.floats(min_value=1e-6, max_value=1.0)

kind_strategy = st.builds(
    PEKind,
    name=st.sampled_from(["alpha", "beta", "gamma"]),
    peak_gflops=rate,
    ramp_n=st.floats(min_value=100.0, max_value=10000.0),
    efficiency_floor=st.floats(min_value=0.01, max_value=0.5),
    oversub_penalty=st.floats(min_value=0.0, max_value=0.5),
    ctx_switch_s=small_pos,
    mem_copy_gbs=st.floats(min_value=0.05, max_value=20.0),
    panel_overhead_s=small_pos,
)


@st.composite
def cluster_strategy(draw):
    kinds = {}
    for name in draw(
        st.lists(st.sampled_from(["alpha", "beta", "gamma"]), min_size=1, max_size=3, unique=True)
    ):
        kind = draw(kind_strategy)
        kinds[name] = PEKind(
            name=name,
            peak_gflops=kind.peak_gflops,
            ramp_n=kind.ramp_n,
            efficiency_floor=kind.efficiency_floor,
            oversub_penalty=kind.oversub_penalty,
            ctx_switch_s=kind.ctx_switch_s,
            mem_copy_gbs=kind.mem_copy_gbs,
            panel_overhead_s=kind.panel_overhead_s,
        )
    nodes = []
    node_count = draw(st.integers(min_value=1, max_value=5))
    names = list(kinds)
    for index in range(node_count):
        nodes.append(
            Node(
                name=f"node{index}",
                kind=kinds[names[index % len(names)]],
                cpus=draw(st.integers(min_value=1, max_value=4)),
                memory_bytes=draw(st.integers(min_value=64, max_value=4096)) * 1024**2,
                os_reserved_bytes=draw(st.integers(min_value=0, max_value=32)) * 1024**2,
            )
        )
    network = NetworkSpec(
        name="net",
        latency_s=draw(st.floats(min_value=0.0, max_value=1e-3)),
        bandwidth_bps=draw(st.floats(min_value=1e6, max_value=1e10)),
        half_saturation_bytes=draw(st.floats(min_value=0.0, max_value=1e5)),
    )
    return ClusterSpec("generated", tuple(nodes), network, mpich_1_2_2())


class TestSerializationProperties:
    @given(spec=cluster_strategy())
    @settings(max_examples=40, deadline=None)
    def test_cluster_roundtrip(self, spec):
        assert cluster_from_dict(cluster_to_dict(spec)) == spec

    @given(
        phases=st.lists(
            st.floats(min_value=0.0, max_value=1e4), min_size=6, max_size=6
        )
    )
    @settings(max_examples=40)
    def test_phase_times_roundtrip(self, phases):
        t = PhaseTimes(
            pfact=phases[0], mxswp=phases[1], bcast=phases[2],
            update=phases[3], laswp=phases[4], uptrsv=phases[5],
        )
        assert PhaseTimes.from_dict(t.as_dict()) == t
