"""Unit tests for the N-T model."""

import numpy as np
import pytest

from repro.core.nt_model import NTModel
from repro.errors import FitError, ModelError


class TestFit:
    def test_exact_cubic_recovered(self):
        sizes = [400, 800, 1200, 1600, 2400]
        ka = (1e-9, 2e-6, 3e-4, 0.01)
        kc = (5e-7, 1e-4, 0.02)
        ta = [np.polyval(ka, n) for n in sizes]
        tc = [np.polyval(kc, n) for n in sizes]
        model = NTModel.fit("athlon", 1, 1, sizes, ta, tc)
        assert np.allclose(model.ka, ka, rtol=1e-6)
        assert np.allclose(model.kc, kc, rtol=1e-6)
        assert model.n_range == (400, 2400)

    def test_prediction_interpolates(self):
        sizes = [400, 800, 1200, 1600]
        ta = [1.0, 8.0, 27.0, 64.0]  # exactly cubic in n/400
        model = NTModel.fit("k", 1, 1, sizes, ta, [0.1] * 4)
        assert model.predict_ta(800) == pytest.approx(8.0, rel=1e-9)
        assert model.predict_ta(1000) == pytest.approx((1000 / 400) ** 3, rel=1e-6)

    def test_needs_four_distinct_sizes(self):
        with pytest.raises(FitError, match=">= 4"):
            NTModel.fit("k", 1, 1, [400, 800, 1200], [1, 2, 3], [1, 2, 3])
        with pytest.raises(FitError):
            NTModel.fit("k", 1, 1, [400, 400, 800, 1200], [1, 1, 2, 3], [1, 1, 2, 3])

    def test_extrapolation_flag(self):
        model = NTModel.fit("k", 1, 1, [400, 800, 1200, 1600], [1, 2, 3, 4], [0, 0, 0, 0.1])
        assert not model.extrapolating(1000)
        assert model.extrapolating(3200)
        assert model.extrapolating(100)

    def test_vectorized_prediction(self):
        model = NTModel.fit("k", 1, 1, [1, 2, 3, 4], [1, 8, 27, 64], [1, 4, 9, 16.5])
        out = model.predict_total(np.array([1.0, 2.0]))
        assert out.shape == (2,)


class TestValidation:
    def test_p_less_than_mi_rejected(self):
        with pytest.raises(ModelError):
            NTModel("k", p=2, mi=4, ka=(0, 0, 0, 0), kc=(0, 0, 0), n_range=(1, 2))

    def test_wrong_coefficient_counts(self):
        with pytest.raises(ModelError):
            NTModel("k", 1, 1, ka=(1, 2, 3), kc=(1, 2, 3), n_range=(1, 2))
        with pytest.raises(ModelError):
            NTModel("k", 1, 1, ka=(1, 2, 3, 4), kc=(1, 2), n_range=(1, 2))

    def test_single_pe_flag(self):
        single = NTModel("k", 3, 3, (0, 0, 0, 1), (0, 0, 1), (1, 2))
        multi = NTModel("k", 6, 3, (0, 0, 0, 1), (0, 0, 1), (1, 2))
        assert single.is_single_pe and not multi.is_single_pe


class TestFromDataset:
    def test_fit_dataset_end_to_end(self, basic_campaign):
        dataset = basic_campaign.dataset
        model = NTModel.fit_dataset(dataset, "athlon", (1, 1, 0, 0))
        assert model.p == 1 and model.mi == 1
        # Positive dominant coefficient: time grows cubically.
        assert model.ka[0] > 0
        # The fitted model reproduces the measurements it was built from
        # (unweighted LSQ prioritizes the large sizes, so check those).
        for record in dataset.for_config((1, 1, 0, 0)):
            if record.n < 1600:
                continue
            measured = record.kind("athlon").ta
            assert model.predict_ta(record.n) == pytest.approx(measured, rel=0.05)

    def test_fit_dataset_multi_pe(self, basic_campaign):
        model = NTModel.fit_dataset(basic_campaign.dataset, "pentium2", (0, 0, 4, 2))
        assert model.p == 8 and model.mi == 2
        assert not model.is_single_pe

    def test_missing_config_rejected(self, basic_campaign):
        with pytest.raises(FitError):
            NTModel.fit_dataset(basic_campaign.dataset, "athlon", (1, 9, 0, 0))


class TestSerialization:
    def test_roundtrip(self):
        model = NTModel("k", 4, 2, (1e-9, 0, 0, 0.1), (1e-7, 0, 0.2), (400, 1600), 0.5, 0.1)
        assert NTModel.from_dict(model.to_dict()) == model
