"""Unit tests for the model store."""

import pytest

from repro.core.model_store import ModelStore
from repro.errors import ModelError


class TestFitDataset:
    def test_basic_campaign_model_counts(self, basic_campaign):
        """The paper fits 54 models from the Basic grid (6 Athlon + 48
        Pentium-II configurations)."""
        store = ModelStore.fit_dataset(basic_campaign.dataset)
        assert len(store.nt) == 54
        # P-T models: pentium2 has >= 3 PE counts for every M2 -> 6 models;
        # athlon has a single PE -> none (composed later by the pipeline).
        assert sorted(mi for (kind, mi) in store.pt if kind == "pentium2") == [1, 2, 3, 4, 5, 6]
        assert not any(kind == "athlon" for (kind, mi) in store.pt)

    def test_build_time_recorded(self, basic_campaign):
        store = ModelStore.fit_dataset(basic_campaign.dataset)
        assert 0 < store.build_seconds < 10.0

    def test_queries(self, basic_campaign):
        store = ModelStore.fit_dataset(basic_campaign.dataset)
        assert store.has_nt("athlon", 3, 3)
        assert not store.has_nt("athlon", 4, 2)
        assert store.nt_model("pentium2", 8, 1).p == 8
        with pytest.raises(ModelError):
            store.nt_model("athlon", 9, 9)
        with pytest.raises(ModelError):
            store.pt_model("athlon", 1)

    def test_nt_family_sorted_by_p(self, basic_campaign):
        store = ModelStore.fit_dataset(basic_campaign.dataset)
        family = store.nt_family("pentium2", 2)
        assert [m.p for m in family] == [2, 4, 6, 8, 10, 12, 14, 16]

    def test_kinds_and_mi_values(self, basic_campaign):
        store = ModelStore.fit_dataset(basic_campaign.dataset)
        assert set(store.kinds()) == {"athlon", "pentium2"}
        assert store.mi_values("athlon") == [1, 2, 3, 4, 5, 6]

    def test_model_count(self, basic_campaign):
        store = ModelStore.fit_dataset(basic_campaign.dataset)
        assert store.model_count == len(store.nt) + len(store.pt) == 60

    def test_serialization_roundtrip(self, basic_campaign, tmp_path):
        store = ModelStore.fit_dataset(basic_campaign.dataset)
        path = tmp_path / "models.json"
        store.save(path)
        loaded = ModelStore.load(path)
        assert loaded.nt == store.nt
        assert loaded.pt == store.pt

    def test_summary_mentions_composition(self, basic_pipeline):
        text = basic_pipeline.store.summary()
        assert "athlon" in text and "composed" in text
