"""Unit tests for the pluggable search layer (registry + backends)."""

import math

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.search import (
    DEFAULT_BACKEND,
    BranchBoundSearch,
    ExhaustiveOptimizer,
    SearchBackend,
    SearchOutcome,
    SearchProblem,
    SearchSpace,
    SearchStats,
    create_search,
    register_search,
    registered_search_backends,
    search_backend_class,
    synthetic_problem,
)
from repro.core.search.base import RankedEstimate, rank_evaluations
from repro.errors import SearchError
from repro.perf.report import PerfReport

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


@pytest.fixture(scope="module")
def small_problem():
    """3 kinds x 3 PEs x 2 procs: 342 candidates, exhaustive-friendly."""
    return synthetic_problem(n_kinds=3, pes_per_kind=3, max_procs=2)


class TestRegistry:
    def test_shipped_backends_registered(self):
        tags = registered_search_backends()
        for tag in ("exhaustive", "branch-bound", "beam", "greedy",
                    "hill-climb", "anneal"):
            assert tag in tags
        assert DEFAULT_BACKEND in tags

    def test_unknown_tag_raises(self, small_problem):
        with pytest.raises(SearchError, match="unknown search backend"):
            create_search("no-such-backend", small_problem)

    def test_unknown_option_is_search_error(self, small_problem):
        with pytest.raises(SearchError, match="rejected its options"):
            create_search("branch-bound", small_problem, frobnicate=3)

    def test_duplicate_tag_rejected(self):
        with pytest.raises(SearchError, match="already registered"):
            @register_search("exhaustive")
            class Impostor(SearchBackend):
                pass

    def test_decorator_assigns_backend_type(self):
        assert search_backend_class("branch-bound").backend_type == "branch-bound"
        assert BranchBoundSearch.backend_type == "branch-bound"


class TestSearchSpace:
    def test_size_excludes_all_idle(self, small_problem):
        space = small_problem.space
        assert space.size == 7**3 - 1

    def test_configs_enumeration_matches_size(self, small_problem):
        space = small_problem.space
        configs = list(space.configs())
        assert len(configs) == space.size
        assert len({c.key() for c in configs}) == space.size

    def test_from_candidates_exact_cover_roundtrip(self):
        candidates = [cfg(1, 1, 0, 0), cfg(1, 2, 0, 0), cfg(0, 0, 8, 1),
                      cfg(1, 1, 8, 1), cfg(1, 2, 8, 1)]
        space = SearchSpace.from_candidates(candidates, KINDS)
        # 2x3 product minus the all-idle point is 5 == len(candidates).
        assert space.is_exact_cover_of(candidates)

    def test_irregular_candidates_not_exact_cover(self):
        candidates = [cfg(1, 1, 0, 0), cfg(0, 0, 8, 1), cfg(1, 2, 8, 1)]
        space = SearchSpace.from_candidates(candidates, KINDS)
        assert not space.is_exact_cover_of(candidates)


class TestBranchBound:
    def test_bitwise_identical_to_exhaustive(self, small_problem):
        exhaustive = create_search("exhaustive", small_problem)
        bb = create_search("branch-bound", small_problem)
        for n in (1000, 3000):
            a = exhaustive.optimize(n).best
            b = bb.optimize(n).best
            assert a.config.key() == b.config.key()
            assert a.estimate_s == b.estimate_s  # bitwise, not approx

    def test_prunes_most_of_the_space(self, small_problem):
        bb = create_search("branch-bound", small_problem)
        outcome = bb.optimize(3000)
        stats = outcome.stats
        assert stats.backend == "branch-bound"
        assert stats.pruned_subtrees > 0
        # Evaluations + pruned candidates account for the whole space.
        assert stats.evaluations + stats.pruned_candidates == small_problem.space.size
        assert stats.evaluations < small_problem.space.size / 5
        assert not outcome.complete  # pruned candidates are absent from ranking

    def test_budget_gives_anytime_answer(self, small_problem):
        bb = create_search("branch-bound", small_problem, budget=5)
        outcome = bb.optimize(3000)
        assert outcome.stats.evaluations <= 5
        assert outcome.stats.budget == 5
        assert math.isfinite(outcome.best.estimate_s)

    def test_work_cap_terminates_interior_walk(self):
        # 11^6-1 candidates; the unbudgeted walk needs ~400 bound
        # evaluations, so a 200-evaluation work cap stops it mid-walk
        # after the first descent has produced an incumbent.
        problem = synthetic_problem(n_kinds=6, pes_per_kind=5, max_procs=2)
        bb = create_search("branch-bound", problem, budget=200, work_factor=1)
        outcome = bb.optimize(5000)
        assert outcome.stats.exhausted
        assert outcome.stats.evaluations >= 1
        # The cap is checked at node entry, so a final expansion may
        # overshoot by at most one branching factor (11 here).
        assert outcome.stats.bound_evaluations <= 200 + 11
        assert not outcome.complete

    def test_work_cap_before_first_leaf_raises(self, small_problem):
        # A cap too small to even reach one leaf leaves nothing to rank.
        bb = create_search("branch-bound", small_problem, budget=2, work_factor=1)
        with pytest.raises(SearchError, match="no candidate"):
            bb.optimize(3000)

    def test_requires_bounds(self, small_problem):
        stripped = SearchProblem(
            estimator=small_problem.estimator,
            space=small_problem.space,
            kinds=small_problem.kinds,
            allow_unestimable=False,
        )
        with pytest.raises(SearchError, match="bound"):
            create_search("branch-bound", stripped)

    def test_optimize_many_matches_single(self, small_problem):
        bb = create_search("branch-bound", small_problem)
        many = bb.optimize_many([1000, 2000])
        assert [o.n for o in many] == [1000, 2000]
        single = create_search("branch-bound", small_problem).optimize(2000)
        assert many[1].best.config.key() == single.best.config.key()
        assert many[1].best.estimate_s == single.best.estimate_s

    def test_exhaustive_rejects_budget(self, small_problem):
        with pytest.raises(SearchError, match="budget"):
            create_search("exhaustive", small_problem, budget=10)


class TestLocalBackends:
    def test_beam_is_deterministic(self, small_problem):
        a = create_search("beam", small_problem).optimize(3000)
        b = create_search("beam", small_problem).optimize(3000)
        assert a.best.config.key() == b.best.config.key()
        assert a.best.estimate_s == b.best.estimate_s

    def test_beam_near_optimal_on_small_instance(self, small_problem):
        exact = create_search("branch-bound", small_problem).optimize(3000)
        beam = create_search("beam", small_problem).optimize(3000)
        assert beam.best.estimate_s <= 1.05 * exact.best.estimate_s
        assert not beam.complete

    def test_jump_moves_cross_activation_valleys(self, small_problem):
        # The exact optimum of this instance uses more than one kind;
        # single-coordinate moves alone cannot activate an idle kind
        # without transiting a bottleneck state, so reaching it proves
        # the jump moves work.
        exact = create_search("branch-bound", small_problem).optimize(3000)
        assert len(exact.best.config.active) > 1
        beam = create_search("beam", small_problem).optimize(3000)
        assert len(beam.best.config.active) > 1

    def test_budget_enforced(self, small_problem):
        for tag in ("beam", "greedy", "hill-climb", "anneal"):
            outcome = create_search(tag, small_problem, budget=25).optimize(3000)
            assert outcome.stats.evaluations <= 25, tag
            assert outcome.stats.budget == 25, tag

    def test_stochastic_backends_seeded(self, small_problem):
        for tag in ("hill-climb", "anneal"):
            a = create_search(tag, small_problem).optimize(3000)
            b = create_search(tag, small_problem).optimize(3000)
            assert a.best.config.key() == b.best.config.key(), tag
            assert a.best.estimate_s == b.best.estimate_s, tag

    def test_greedy_flags_structural_stuck(self, small_problem):
        """Greedy growth stopping at a local optimum without covering
        the space must say so — ``stats.stuck`` is the typed form of
        the 'structurally stuck' failure the PR-7 benches documented."""
        outcome = create_search("greedy", small_problem).optimize(3000)
        stats = outcome.stats
        assert stats.evaluations < small_problem.space.size
        assert stats.stuck
        assert stats.to_dict()["stuck"] is True

    def test_exact_backends_never_stuck(self, small_problem):
        for tag in ("exhaustive", "branch-bound"):
            stats = create_search(tag, small_problem).optimize(3000).stats
            assert not stats.stuck, tag
            assert "stuck" not in stats.to_dict(), tag


class TestRankingSemantics:
    def test_inf_ties_rank_deterministically(self):
        """+inf ties must order by configuration key, not insertion order."""
        entries = [(cfg(1, 2, 0, 0), 1.0), (cfg(1, 1, 8, 1), math.inf),
                   (cfg(0, 0, 8, 1), math.inf), (cfg(1, 1, 0, 0), math.inf)]
        a = rank_evaluations(100, entries, started=0.0)
        b = rank_evaluations(100, list(reversed(entries)), started=0.0)
        assert [e.config.key() for e in a.ranking] == [
            e.config.key() for e in b.ranking
        ]
        assert a.best.estimate_s == 1.0

    def test_duplicate_candidate_key_raises_on_lookup(self):
        ranking = [
            RankedEstimate(config=cfg(1, 1, 0, 0), n=1, estimate_s=1.0),
            RankedEstimate(config=cfg(1, 1, 0, 0), n=1, estimate_s=2.0),
        ]
        outcome = SearchOutcome(n=1, ranking=ranking, search_seconds=0.0)
        with pytest.raises(SearchError, match="duplicate candidate"):
            outcome.estimate_for(cfg(1, 1, 0, 0))

    def test_strict_mode_on_batched_many_with_partial_inf(self):
        """allow_unestimable=False must also catch +inf on the batched
        optimize_many path when only some sizes are unestimable."""

        def batch(config, ns):
            return [math.inf if n > 1 else 5.0 for n in ns]

        optimizer = ExhaustiveOptimizer(
            lambda c, n: 5.0 if n <= 1 else math.inf,
            [cfg(1, 1, 0, 0), cfg(1, 2, 0, 0)],
            batch_estimator=batch,
            allow_unestimable=False,
        )
        assert optimizer.optimize_many([1])[0].best.estimate_s == 5.0
        with pytest.raises(SearchError, match="invalid time"):
            optimizer.optimize_many([1, 2])


class TestPerfReportWiring:
    def test_record_search_accumulates_per_backend(self):
        report = PerfReport()
        stats = SearchStats(backend="branch-bound", budget=10)
        stats.record(cfg(1, 1, 0, 0), 2.0)
        stats.prune(7)
        stats.exhausted = True
        report.record_search(stats)
        report.record_search(stats)
        report.record_search(None)  # tolerated no-op
        entry = report.to_dict()["search_backends"]["branch-bound"]
        assert entry["runs"] == 2
        assert entry["evaluations"] == 2
        assert entry["pruned_candidates"] == 14
        assert entry["exhausted"] == 2
        assert entry["stuck"] == 0
        assert "search[branch-bound]" in report.render()

    def test_stuck_runs_counted_and_rendered(self):
        report = PerfReport()
        stats = SearchStats(backend="greedy", stuck=True)
        stats.record(cfg(1, 1, 0, 0), 2.0)
        report.record_search(stats)
        assert report.to_dict()["search_backends"]["greedy"]["stuck"] == 1
        assert "1 stuck" in report.render()

    def test_mixed_backend_run_aggregates_per_backend(self, ns_pipeline):
        """One pipeline run mixing backends (branch-bound then anneal)
        keeps separate per-backend entries — counters never blend."""
        before = {
            name: dict(entry)
            for name, entry in ns_pipeline.perf.search_backends.items()
        }
        ns_pipeline.optimize(8000, backend="branch-bound")
        ns_pipeline.optimize(8000, backend="anneal")
        backends = ns_pipeline.perf.search_backends
        for tag in ("branch-bound", "anneal"):
            assert backends[tag]["runs"] == (
                before.get(tag, {}).get("runs", 0) + 1
            ), tag
        assert backends["branch-bound"]["pruned_candidates"] > before.get(
            "branch-bound", {}
        ).get("pruned_candidates", 0)
        rendered = ns_pipeline.perf.render()
        assert "search[branch-bound]" in rendered
        assert "search[anneal]" in rendered


class TestPipelineDispatch:
    def test_default_backend_unchanged(self, ns_pipeline):
        legacy = ns_pipeline.optimize(8000)
        explicit = ns_pipeline.optimize(8000, backend="exhaustive")
        assert legacy.best.config.key() == explicit.best.config.key()
        assert legacy.best.estimate_s == explicit.best.estimate_s
        assert legacy.complete and explicit.complete

    def test_branch_bound_matches_exhaustive_on_pipeline(self, ns_pipeline):
        exhaustive = ns_pipeline.optimize(8000)
        bb = ns_pipeline.optimize(8000, backend="branch-bound")
        assert bb.best.config.key() == exhaustive.best.config.key()
        assert bb.best.estimate_s == exhaustive.best.estimate_s
        assert bb.stats.backend == "branch-bound"
        assert bb.stats.evaluations < exhaustive.stats.evaluations

    def test_unknown_backend_raises(self, ns_pipeline):
        with pytest.raises(SearchError, match="unknown search backend"):
            ns_pipeline.optimize(8000, backend="no-such")

    def test_budgeted_beam_on_pipeline(self, ns_pipeline):
        outcome = ns_pipeline.optimize_many(
            [6400, 8000], backend="beam", budget=40
        )
        assert [o.n for o in outcome] == [6400, 8000]
        for o in outcome:
            assert o.stats.evaluations <= 40
            assert math.isfinite(o.best.estimate_s)

    def test_perf_report_sees_backend_runs(self, ns_pipeline):
        ns_pipeline.optimize(8000, backend="branch-bound")
        assert "branch-bound" in ns_pipeline.perf.search_backends


class TestSynthetic:
    def test_instance_is_deterministic(self):
        a = synthetic_problem(n_kinds=3, pes_per_kind=3, max_procs=2)
        b = synthetic_problem(n_kinds=3, pes_per_kind=3, max_procs=2)
        sample = next(a.space.configs())
        assert a.estimator(sample, 2000) == b.estimator(sample, 2000)
        assert a.space.kinds == b.space.kinds

    def test_datacenter_scale_space_is_huge(self):
        problem = synthetic_problem()  # 10 kinds, 500 PEs
        assert problem.space.size > 1e22
        assert problem.space.max_total_processes == 10 * 50 * 4

    def test_branch_bound_runs_at_scale_under_budget(self):
        problem = synthetic_problem()
        bb = create_search("branch-bound", problem, budget=50, work_factor=64)
        outcome = bb.optimize(20000)
        assert math.isfinite(outcome.best.estimate_s)
        assert outcome.stats.evaluations <= 50
