"""Unit tests for the weighted N-T fitting option."""

import numpy as np
import pytest

from repro.core.model_store import ModelStore
from repro.core.nt_model import NTModel
from repro.errors import FitError


def ramped_times(sizes):
    """Times with a non-polynomial small-N component (the substrate's
    efficiency ramp shape): big relative structure at small N."""
    sizes = np.asarray(sizes, dtype=float)
    eff = np.clip(sizes / 1800.0, 0.1, 1.0)
    return 1e-9 * sizes**3 / eff + 1e-3


SIZES = [400, 600, 800, 1200, 1600, 2400, 3200, 4800, 6400]


class TestWeightedFit:
    def test_relative_weighting_improves_small_n(self):
        ta = ramped_times(SIZES)
        tc = 1e-8 * np.asarray(SIZES, dtype=float) ** 2 + 1e-4
        uniform = NTModel.fit("k", 1, 1, SIZES, ta, tc, weighting="uniform")
        weighted = NTModel.fit("k", 1, 1, SIZES, ta, tc, weighting="relative")

        def rel_err(model, i):
            return abs(model.predict_ta(SIZES[i]) - ta[i]) / ta[i]

        assert rel_err(weighted, 0) < rel_err(uniform, 0)
        # and remains sane at the top of the range
        assert rel_err(weighted, -1) < 0.05

    def test_exact_polynomial_unchanged_by_weighting(self):
        """When the data IS the model family, both objectives agree."""
        sizes = np.asarray(SIZES, dtype=float)
        ta = 2e-9 * sizes**3 + 1e-5 * sizes + 0.01
        tc = 1e-8 * sizes**2 + 0.001
        uniform = NTModel.fit("k", 1, 1, SIZES, ta, tc, weighting="uniform")
        weighted = NTModel.fit("k", 1, 1, SIZES, ta, tc, weighting="relative")
        assert np.allclose(uniform.ka, weighted.ka, rtol=1e-5)
        assert np.allclose(uniform.kc, weighted.kc, rtol=1e-5)

    def test_unknown_weighting_rejected(self):
        with pytest.raises(FitError, match="unknown weighting"):
            NTModel.fit(
                "k", 1, 1, SIZES, ramped_times(SIZES), ramped_times(SIZES),
                weighting="huber",
            )

    def test_store_threads_weighting(self, basic_campaign):
        uniform = ModelStore.fit_dataset(basic_campaign.dataset)
        weighted = ModelStore.fit_dataset(basic_campaign.dataset, weighting="relative")
        assert uniform.model_count == weighted.model_count
        # the fits genuinely differ
        assert uniform.nt[("pentium2", 8, 1)].ka != weighted.nt[("pentium2", 8, 1)].ka
