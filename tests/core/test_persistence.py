"""Tests for cluster serialization and pipeline persistence."""

import json
import shutil
from pathlib import Path

import pytest

from repro.cluster.presets import kishimoto_cluster, synthetic_cluster
from repro.cluster.serialize import (
    cluster_from_dict,
    cluster_to_dict,
    load_cluster,
    save_cluster,
)
from repro.core.persistence import load_pipeline, save_pipeline
from repro.errors import ClusterError, MeasurementError, ModelError


class TestClusterSerialization:
    def test_roundtrip_paper_cluster(self, spec, tmp_path):
        path = tmp_path / "cluster.json"
        save_cluster(spec, path)
        loaded = load_cluster(path)
        assert loaded == spec

    def test_roundtrip_synthetic_cluster(self, tmp_path):
        spec = synthetic_cluster([0.3, 0.9], nodes_per_kind=2, cpus_per_node=2)
        assert cluster_from_dict(cluster_to_dict(spec)) == spec

    def test_unknown_format_rejected(self):
        data = cluster_to_dict(kishimoto_cluster())
        data["format"] = 99
        with pytest.raises(ClusterError, match="format"):
            cluster_from_dict(data)

    def test_unknown_kind_reference_rejected(self):
        data = cluster_to_dict(kishimoto_cluster())
        data["nodes"][0]["kind"] = "mystery"
        with pytest.raises(ClusterError, match="unknown kind"):
            cluster_from_dict(data)

    def test_json_is_human_editable(self, spec, tmp_path):
        path = tmp_path / "cluster.json"
        save_cluster(spec, path)
        data = json.loads(path.read_text())
        # double the Athlon's rate by hand, reload, and see it take effect
        data["kinds"][0]["peak_gflops"] = 2.2
        path.write_text(json.dumps(data))
        loaded = load_cluster(path)
        assert loaded.kind("athlon").peak_gflops == 2.2


class TestPipelinePersistence:
    def test_save_load_roundtrip(self, ns_pipeline, tmp_path):
        directory = save_pipeline(ns_pipeline, tmp_path / "saved")
        loaded = load_pipeline(directory)
        # models and adjustment identical
        assert loaded.store.nt == ns_pipeline.store.nt
        assert loaded.store.pt == ns_pipeline.store.pt
        assert loaded.adjustment == ns_pipeline.adjustment
        # decisions identical, without re-measuring anything
        for n in (1600, 4800):
            a = ns_pipeline.optimize(n).best
            b = loaded.optimize(n).best
            assert a.config.key() == b.config.key()
            assert a.estimate_s == pytest.approx(b.estimate_s)

    def test_loaded_campaign_costs_preserved(self, ns_pipeline, tmp_path):
        directory = save_pipeline(ns_pipeline, tmp_path / "saved")
        loaded = load_pipeline(directory)
        assert loaded.campaign.total_cost_s == pytest.approx(
            ns_pipeline.campaign.total_cost_s
        )
        assert loaded.campaign.cost_for_kind("pentium2") == pytest.approx(
            ns_pipeline.campaign.cost_for_kind("pentium2")
        )

    def test_evaluation_ground_truth_saved(self, ns_pipeline, tmp_path):
        directory = save_pipeline(ns_pipeline, tmp_path / "saved")
        loaded = load_pipeline(directory)
        config = ns_pipeline.plan.evaluation_configs[5]
        assert loaded.measured_time(config, 1600) == pytest.approx(
            ns_pipeline.measured_time(config, 1600)
        )

    def test_evaluation_optional(self, ns_pipeline, tmp_path):
        directory = save_pipeline(
            ns_pipeline, tmp_path / "saved", include_evaluation=False
        )
        assert not (directory / "evaluation.json").exists()
        loaded = load_pipeline(directory)
        # estimation works with no ground truth on disk
        best = loaded.optimize(3200).best
        assert best.estimate_s > 0

    def test_not_a_pipeline_directory(self, tmp_path):
        with pytest.raises(MeasurementError, match="not a saved pipeline"):
            load_pipeline(tmp_path)


class TestPersistenceFailurePaths:
    """Every broken-directory shape surfaces as a ModelError naming the
    offending path — never a traceback from json/KeyError internals."""

    FIXTURE = Path(__file__).parent.parent / "golden" / "format1_pipeline"

    @pytest.fixture
    def saved_dir(self, tmp_path):
        target = tmp_path / "pipeline"
        shutil.copytree(self.FIXTURE, target)
        return target

    def test_absent_models_json(self, saved_dir):
        (saved_dir / "models.json").unlink()
        with pytest.raises(ModelError) as excinfo:
            load_pipeline(saved_dir)
        assert str(saved_dir / "models.json") in str(excinfo.value)

    def test_truncated_models_json(self, saved_dir):
        full = (saved_dir / "models.json").read_text()
        (saved_dir / "models.json").write_text(full[: len(full) // 2])
        with pytest.raises(ModelError) as excinfo:
            load_pipeline(saved_dir)
        assert str(saved_dir / "models.json") in str(excinfo.value)

    def test_future_format_rejected(self, saved_dir):
        manifest_path = saved_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ModelError) as excinfo:
            load_pipeline(saved_dir)
        message = str(excinfo.value)
        assert str(manifest_path) in message and "99" in message

    def test_truncated_manifest(self, saved_dir):
        (saved_dir / "manifest.json").write_text('{"format": 2, "proto')
        with pytest.raises(ModelError) as excinfo:
            load_pipeline(saved_dir)
        assert str(saved_dir / "manifest.json") in str(excinfo.value)

    def test_manifest_missing_fields(self, saved_dir):
        manifest_path = saved_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["adjustment"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ModelError) as excinfo:
            load_pipeline(saved_dir)
        assert str(manifest_path) in str(excinfo.value)

    def test_absent_construction_dataset(self, saved_dir):
        (saved_dir / "construction.json").unlink()
        with pytest.raises(ModelError) as excinfo:
            load_pipeline(saved_dir)
        assert str(saved_dir / "construction.json") in str(excinfo.value)

    def test_truncated_cluster_json(self, saved_dir):
        (saved_dir / "cluster.json").write_text('{"kinds": [')
        with pytest.raises(ModelError) as excinfo:
            load_pipeline(saved_dir)
        assert str(saved_dir / "cluster.json") in str(excinfo.value)
