"""Unit tests for the GSL-equivalent least-squares module."""

import numpy as np
import pytest

from repro.core import lsq
from repro.errors import FitError


class TestMultifitLinear:
    def test_exact_polynomial_recovered(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        coeffs = np.array([2.0, -3.0, 1.0, 0.5])
        y = np.polyval(coeffs, x)
        fit = lsq.multifit_linear(lsq.design_cubic(x), y)
        assert np.allclose(fit.coefficients, coeffs, rtol=1e-8)
        assert fit.chisq == pytest.approx(0.0, abs=1e-12)
        assert fit.rank == 4

    def test_matches_numpy_lstsq(self):
        rng = np.random.default_rng(0)
        design = rng.standard_normal((30, 5))
        y = rng.standard_normal(30)
        fit = lsq.multifit_linear(design, y)
        expected, *_ = np.linalg.lstsq(design, y, rcond=None)
        assert np.allclose(fit.coefficients, expected)

    def test_chisq_is_residual_sum(self):
        rng = np.random.default_rng(1)
        design = rng.standard_normal((20, 3))
        y = rng.standard_normal(20)
        fit = lsq.multifit_linear(design, y)
        residual = y - design @ fit.coefficients
        assert fit.chisq == pytest.approx(float(residual @ residual))

    def test_underdetermined_rejected(self):
        with pytest.raises(FitError):
            lsq.multifit_linear(np.ones((3, 4)), np.ones(3))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FitError):
            lsq.multifit_linear(np.ones((4, 2)), np.ones(5))

    def test_nan_rejected(self):
        design = np.ones((4, 2))
        design[0, 0] = np.nan
        with pytest.raises(FitError):
            lsq.multifit_linear(design, np.ones(4))

    def test_zero_design_rejected(self):
        with pytest.raises(FitError):
            lsq.multifit_linear(np.zeros((4, 2)), np.ones(4))

    def test_rank_deficiency_handled_like_pinv(self):
        # Duplicate column: infinitely many solutions; SVD picks min-norm.
        x = np.array([1.0, 2.0, 3.0, 4.0])
        design = np.column_stack([x, x, np.ones_like(x)])
        y = 2 * x + 1
        fit = lsq.multifit_linear(design, y)
        assert fit.rank == 2
        predicted = design @ fit.coefficients
        assert np.allclose(predicted, y)
        # minimum-norm: the duplicated coefficients split evenly
        assert fit.coefficients[0] == pytest.approx(fit.coefficients[1])

    def test_covariance_diagonal_positive(self):
        rng = np.random.default_rng(2)
        design = rng.standard_normal((25, 3))
        y = design @ np.array([1.0, 2.0, 3.0]) + 0.01 * rng.standard_normal(25)
        fit = lsq.multifit_linear(design, y)
        assert np.all(np.diag(fit.covariance) >= 0)
        assert np.all(fit.standard_errors() < 0.1)

    def test_predict(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = 3 * x + 2
        fit = lsq.multifit_linear(lsq.design_poly(x, 1), y)
        out = fit.predict(lsq.design_poly([10.0], 1))
        assert out[0] == pytest.approx(32.0)
        with pytest.raises(FitError):
            fit.predict(np.ones((1, 5)))


class TestWeighted:
    def test_weights_pull_fit(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([0.0, 1.0, 2.0, 100.0])  # outlier at the end
        design = lsq.design_poly(x, 1)
        unweighted = lsq.multifit_linear(design, y)
        w = np.array([1.0, 1.0, 1.0, 1e-9])
        weighted = lsq.multifit_wlinear(design, w, y)
        assert abs(weighted.coefficients[0] - 1.0) < 1e-3
        assert unweighted.coefficients[0] > 10

    def test_uniform_weights_match_unweighted(self):
        rng = np.random.default_rng(3)
        design = rng.standard_normal((10, 2))
        y = rng.standard_normal(10)
        a = lsq.multifit_linear(design, y)
        b = lsq.multifit_wlinear(design, np.full(10, 2.0), y)
        assert np.allclose(a.coefficients, b.coefficients)

    def test_negative_weights_rejected(self):
        with pytest.raises(FitError):
            lsq.multifit_wlinear(np.ones((2, 1)), np.array([1.0, -1.0]), np.ones(2))

    def test_weight_count_mismatch(self):
        with pytest.raises(FitError):
            lsq.multifit_wlinear(np.ones((2, 1)), np.ones(3), np.ones(2))


class TestDesigns:
    def test_design_cubic_columns(self):
        d = lsq.design_cubic([2.0])
        assert d.tolist() == [[8.0, 4.0, 2.0, 1.0]]

    def test_design_quadratic_columns(self):
        d = lsq.design_quadratic([3.0])
        assert d.tolist() == [[9.0, 3.0, 1.0]]

    def test_design_degree_zero(self):
        assert lsq.design_poly([5.0, 6.0], 0).tolist() == [[1.0], [1.0]]

    def test_negative_degree_rejected(self):
        with pytest.raises(FitError):
            lsq.design_poly([1.0], -1)

    def test_polyval_scalar_and_array(self):
        assert lsq.polyval([1.0, 0.0, -1.0], 2.0) == pytest.approx(3.0)
        out = lsq.polyval([1.0, 0.0], np.array([1.0, 2.0]))
        assert out.tolist() == [1.0, 2.0]
