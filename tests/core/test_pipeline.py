"""Tests for the end-to-end estimation pipeline."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.core.binning import MemoryBin
from repro.errors import ModelError

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


class TestStages:
    def test_campaign_cached(self, basic_pipeline):
        assert basic_pipeline.campaign is basic_pipeline.campaign

    def test_store_has_composed_athlon_pt(self, basic_pipeline):
        store = basic_pipeline.store
        for mi in range(1, 7):
            assert store.pt_model("athlon", mi).is_composed
        assert basic_pipeline.composed_models == {"athlon": [1, 2, 3, 4, 5, 6]}

    def test_composition_factors_reflect_speed_ratio(self, basic_pipeline):
        """Auto composition should land near the paper's 0.27 Ta factor
        (their Athlon/P-II ratio; ours is calibrated to the same ratio)."""
        athlon_pt = basic_pipeline.store.pt_model("athlon", 1)
        p2_pt = basic_pipeline.store.pt_model("pentium2", 1)
        ratio = athlon_pt.predict_ta(6400, 9) / p2_pt.predict_ta(6400, 9)
        assert 0.15 <= ratio <= 0.35

    def test_adjustment_calibrated_on_four_configs(self, basic_pipeline):
        assert basic_pipeline.calibration_size() == 6400
        configs = basic_pipeline.calibration_configs()
        assert sorted(c.label(KINDS) for c in configs) == [
            "1,3,8,1",
            "1,4,8,1",
            "1,5,8,1",
            "1,6,8,1",
        ]
        assert basic_pipeline.adjustment.calibration_points == 4

    def test_adjustment_disabled(self, spec):
        pipeline = EstimationPipeline(
            spec, PipelineConfig(protocol="ns", seed=11, adjust=False)
        )
        assert pipeline.adjustment.is_identity


class TestEstimation:
    def test_estimate_structure(self, basic_pipeline):
        estimate = basic_pipeline.estimate(cfg(1, 2, 8, 1), 4800)
        assert estimate.max_mi == 2
        assert not estimate.adjusted  # M1=2 < threshold
        assert estimate.raw_total == estimate.adjusted_total
        kinds = {k.kind_name for k in estimate.per_kind}
        assert kinds == {"athlon", "pentium2"}
        assert estimate.kind("athlon").composed
        assert not estimate.kind("pentium2").composed
        with pytest.raises(ModelError):
            estimate.kind("xeon")

    def test_estimate_uses_max_over_kinds(self, basic_pipeline):
        estimate = basic_pipeline.estimate(cfg(1, 1, 8, 1), 4800)
        assert estimate.raw_total == pytest.approx(
            max(k.total for k in estimate.per_kind)
        )

    def test_adjusted_above_threshold(self, basic_pipeline):
        estimate = basic_pipeline.estimate(cfg(1, 4, 8, 1), 4800)
        assert estimate.adjusted
        scale = basic_pipeline.adjustment.scale_for(4)
        assert estimate.adjusted_total == pytest.approx(scale * estimate.raw_total)

    def test_single_pe_config_uses_nt(self, basic_pipeline):
        estimate = basic_pipeline.estimate(cfg(1, 2, 0, 0), 3200)
        assert estimate.kind("athlon").model_kind == "nt"

    def test_heterogeneous_config_uses_pt(self, basic_pipeline):
        estimate = basic_pipeline.estimate(cfg(1, 2, 8, 1), 3200)
        assert estimate.kind("athlon").model_kind == "pt"
        assert estimate.kind("pentium2").model_kind == "pt"

    def test_estimates_track_measurements(self, basic_pipeline):
        """Model quality: adjusted estimates within ~20% on the eval grid
        for interpolation sizes (the paper's Fig. 7 tightness)."""
        for config in (cfg(1, 1, 8, 1), cfg(1, 2, 8, 1), cfg(0, 0, 8, 1)):
            est = basic_pipeline.estimate(config, 4800).total
            meas = basic_pipeline.measured_time(config, 4800)
            assert est == pytest.approx(meas, rel=0.20)


class TestOptimization:
    def test_optimize_searches_62_candidates(self, basic_pipeline):
        outcome = basic_pipeline.optimize(4800)
        assert len(outcome.ranking) == 62

    def test_estimated_best_close_to_actual_best(self, basic_pipeline):
        """The paper's Table 4 bound: execution-time regret <= ~4%."""
        for n in (3200, 4800, 6400):
            outcome = basic_pipeline.optimize(n)
            tau_hat = basic_pipeline.measured_time(outcome.best.config, n)
            _, t_hat = basic_pipeline.actual_best(n)
            assert (tau_hat - t_hat) / t_hat <= 0.05

    def test_actual_best_at_3200_is_athlon_alone(self, basic_pipeline):
        config, _ = basic_pipeline.actual_best(3200)
        assert config.label(KINDS) == "1,1,0,0"

    def test_memory_bins_plumbing(self, spec):
        pipeline = EstimationPipeline(
            spec,
            PipelineConfig(
                protocol="ns",
                seed=11,
                memory_bins=(MemoryBin(1.0), MemoryBin(10.0, ta_scale=2.0)),
            ),
        )
        ratio = pipeline._memory_ratio_for(cfg(1, 1, 0, 0), 9600, "athlon")
        assert ratio > 0.9
        assert pipeline._memory_ratio_for(cfg(1, 1, 0, 0), 9600, "pentium2") == 0.0

    def test_memory_bins_scale_estimates(self, spec):
        """A paging-regime bin inflates the estimate of a configuration the
        ratio classifies as paging (Section 3.4's piecewise selection)."""
        plain = EstimationPipeline(
            spec, PipelineConfig(protocol="ns", seed=11, adjust=False)
        )
        binned = EstimationPipeline(
            spec,
            PipelineConfig(
                protocol="ns",
                seed=11,
                adjust=False,
                memory_bins=(MemoryBin(1.0), MemoryBin(10.0, ta_scale=3.0)),
            ),
        )
        config = cfg(1, 1, 0, 0)  # Athlon alone: pages near N=10000
        n = 10000
        assert binned.estimate(config, n).total > 1.5 * plain.estimate(config, n).total
        # a comfortably in-memory configuration is untouched
        wide = cfg(1, 1, 8, 1)
        assert binned.estimate(wide, 4800).total == pytest.approx(
            plain.estimate(wide, 4800).total
        )
