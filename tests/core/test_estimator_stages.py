"""Unit tests for the Estimator facade and the pipeline stage graph."""

import numpy as np
import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.core.estimator import Estimator, MemoryBin, UnifiedBackend
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.core.stages import PipelineContext, Stage, StageGraph
from repro.errors import ModelError
from repro.perf.report import PerfReport


@pytest.fixture(scope="module")
def pipeline():
    return EstimationPipeline(
        kishimoto_cluster(), PipelineConfig(protocol="ns", seed=3)
    )


class TestEstimatorFacade:
    def test_selector_is_the_facade(self, pipeline):
        assert isinstance(pipeline.selector, Estimator)
        assert pipeline.models is pipeline.selector

    def test_models_iterates_every_fitted_model(self, pipeline):
        assert len(list(pipeline.models.models())) == pipeline.store.model_count

    def test_select_routes_by_figure_5(self, pipeline):
        label_single, _ = pipeline.models.select("pentium2", 2, 2)
        label_multi, _ = pipeline.models.select("pentium2", 8, 1)
        assert label_single == "nt"
        assert label_multi == "pt"
        with pytest.raises(ModelError, match="impossible query"):
            pipeline.models.select("pentium2", 1, 2)

    def test_batch_matches_scalar_bitwise(self, pipeline):
        ns = [400, 1600, 3200, 6400]
        ta, tc, valid = pipeline.models.estimate_kind_batch("pentium2", ns, 8, 1)
        for i, n in enumerate(ns):
            scalar = pipeline.models.estimate_kind("pentium2", n, 8, 1)
            assert ta[i] == scalar.ta
            assert tc[i] == scalar.tc
            assert bool(valid[i]) == scalar.valid

    def test_estimate_total_inf_when_any_kind_invalid(self, pipeline):
        facade = pipeline.models
        for config in pipeline.plan.evaluation_configs:
            per_kind = facade.estimate_kinds(config, 9600)
            total = facade.estimate_total(config, 9600)
            if all(k.valid for k in per_kind):
                assert total == max(k.total for k in per_kind)
            else:
                assert total == float("inf")

    def test_fingerprint_tracks_models_and_bins(self, pipeline):
        base = pipeline.models.fingerprint()
        assert base == pipeline.models.fingerprint()  # stable
        with_bins = Estimator.for_store(
            pipeline.store, memory_bins=[MemoryBin(max_ratio=1.0)]
        )
        assert with_bins.fingerprint() != base

    def test_memory_bins_must_ascend(self, pipeline):
        with pytest.raises(ModelError, match="ascending"):
            Estimator.for_store(
                pipeline.store,
                memory_bins=[MemoryBin(max_ratio=2.0), MemoryBin(max_ratio=1.0)],
            )

    def test_unified_backend_requires_models(self):
        with pytest.raises(ModelError, match="no unified models"):
            UnifiedBackend({})


class TestStageGraph:
    def _graph(self, stages):
        ctx = PipelineContext(
            spec=None,
            config=None,
            plan=None,
            perf=PerfReport(),
            memory_ratio_fn=lambda c, n, k: 0.0,
            scalar_estimate=lambda c, n: 0.0,
            batch_estimate=lambda c, ns: np.zeros(len(ns)),
            candidates=list,
        )
        return StageGraph(stages, ctx)

    def _stage(self, name, deps=(), builds=None, invalidates=False, timed=True):
        calls = []

        class _S(Stage):
            invalidates_estimates = invalidates

            def requires(self, ctx):
                return tuple(deps)

            def timed(self, ctx):
                return timed

            def build(self, ctx):
                calls.append(name)
                return builds if builds is not None else name

        _S.name = name
        stage = _S()
        stage.calls = calls
        return stage

    def test_builds_once_dependencies_first(self):
        a = self._stage("a")
        b = self._stage("b", deps=("a",))
        graph = self._graph([a, b])
        assert graph.get("b") == "b"
        assert graph.get("b") == "b"
        assert a.calls == ["a"] and b.calls == ["b"]

    def test_dependency_time_not_billed_to_dependent(self):
        import time

        class Slow(Stage):
            name = "slow"

            def build(self, ctx):
                time.sleep(0.05)
                return "slow"

        class Fast(Stage):
            name = "fast"

            def requires(self, ctx):
                return ("slow",)

            def build(self, ctx):
                return "fast"

        graph = self._graph([Slow(), Fast()])
        graph.get("fast")
        perf = graph.ctx.perf
        assert perf.stage_seconds("slow") >= 0.05
        assert perf.stage_seconds("fast") < 0.05

    def test_untimed_stage_records_nothing(self):
        graph = self._graph([self._stage("quiet", timed=False)])
        graph.get("quiet")
        assert graph.ctx.perf.stage_calls("quiet") == 0

    def test_set_drops_downstream_and_fires_hooks(self):
        a = self._stage("a", invalidates=True)
        b = self._stage("b", deps=("a",))
        graph = self._graph([a, b])
        graph.get("b")
        fired = []
        graph.on_invalidate(fired.append)
        graph.set("a", "replacement")
        assert fired == ["a"]
        assert not graph.has("b")
        assert graph.get("a") == "replacement"
        assert graph.get("b") == "b"
        assert b.calls == ["b", "b"]  # rebuilt against the injected artifact

    def test_invalidate_cascades_transitively(self):
        a = self._stage("a", invalidates=True)
        b = self._stage("b", deps=("a",))
        c = self._stage("c", deps=("b",))
        graph = self._graph([a, b, c])
        graph.get("c")
        graph.invalidate("a")
        assert not graph.has("a") and not graph.has("b") and not graph.has("c")

    def test_cycles_are_reported(self):
        a = self._stage("a", deps=("b",))
        b = self._stage("b", deps=("a",))
        graph = self._graph([a, b])
        with pytest.raises(RuntimeError, match="dependency cycle"):
            graph.get("a")

    def test_unknown_stage_is_reported(self):
        graph = self._graph([self._stage("a")])
        with pytest.raises(KeyError, match="unknown stage 'z'"):
            graph.get("z")


class TestPipelineGraphIntegration:
    def test_adjust_off_skips_evaluation_and_timing(self):
        pipeline = EstimationPipeline(
            kishimoto_cluster(),
            PipelineConfig(protocol="ns", seed=3, adjust=False),
        )
        assert pipeline.adjustment.is_identity
        assert not pipeline.graph.has("evaluation")
        assert pipeline.perf.stage_calls("adjust") == 0

    def test_injecting_models_invalidates_search_engine(self, pipeline):
        pipeline.optimize(3200)
        old_cache = pipeline.estimate_cache
        fired = []
        pipeline.graph.on_invalidate(fired.append)
        pipeline.graph.set("compose", pipeline.graph.get("compose"))
        assert fired == ["compose"]
        assert pipeline.estimate_cache is not old_cache
