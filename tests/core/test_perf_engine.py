"""Batched/cached estimation engine: ``optimize_many``, the estimate
cache, the ``estimate_for`` index and the pipeline perf report."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.core.binning import MemoryBin
from repro.core.optimizer import ExhaustiveOptimizer
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.errors import SearchError
from repro.measure.grids import PAPER_KINDS


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(PAPER_KINDS, (p1, m1, p2, m2))


SIZES = (1600, 3200, 4800, 6400, 8000, 9600)


class TestOptimizeMany:
    def test_matches_looped_optimize_bitwise(self, ns_pipeline):
        looped = [ns_pipeline.optimizer().optimize(n) for n in SIZES]
        batched = ns_pipeline.optimize_many(SIZES)
        assert len(batched) == len(SIZES)
        for a, b in zip(looped, batched):
            assert b.n == a.n
            assert [e.config.key() for e in b.ranking] == [
                e.config.key() for e in a.ranking
            ]
            # bitwise, not approximately: the batched path must evaluate
            # the very same arithmetic per element
            assert [e.estimate_s for e in b.ranking] == [
                e.estimate_s for e in a.ranking
            ]

    def test_single_size_matches(self, nl_pipeline):
        (batched,) = nl_pipeline.optimize_many([6400])
        scalar = nl_pipeline.optimizer().optimize(6400)
        assert batched.best.config.key() == scalar.best.config.key()
        assert batched.best.estimate_s == scalar.best.estimate_s

    def test_without_batch_estimator_falls_back(self):
        opt = ExhaustiveOptimizer(
            lambda config, n: float(n) / config.total_processes,
            [cfg(1, 1, 0, 0), cfg(1, 2, 0, 0)],
        )
        outcomes = opt.optimize_many([100, 200])
        assert [o.n for o in outcomes] == [100, 200]
        assert outcomes[0].best.config.key() == cfg(1, 2, 0, 0).key()

    def test_empty_sizes_rejected(self, ns_pipeline):
        with pytest.raises(SearchError):
            ns_pipeline.optimize_many([])

    def test_bad_batch_shape_rejected(self):
        opt = ExhaustiveOptimizer(
            lambda config, n: 1.0,
            [cfg(1, 1, 0, 0)],
            batch_estimator=lambda config, ns: np.ones(len(ns) + 1),
        )
        with pytest.raises(SearchError, match="shape"):
            opt.optimize_many([100, 200])

    def test_invalid_value_message_matches_scalar_path(self):
        candidates = [cfg(1, 1, 0, 0), cfg(1, 2, 0, 0)]
        scalar = ExhaustiveOptimizer(lambda config, n: -1.0, candidates)
        batched = ExhaustiveOptimizer(
            lambda config, n: -1.0,
            candidates,
            batch_estimator=lambda config, ns: np.full(len(ns), -1.0),
        )
        with pytest.raises(SearchError) as scalar_err:
            scalar.optimize(400)
        with pytest.raises(SearchError) as batched_err:
            batched.optimize_many([400])
        assert str(scalar_err.value) == str(batched_err.value)


class TestEstimateTotals:
    def test_matches_scalar_estimates(self, nl_pipeline):
        for config in (cfg(1, 3, 8, 1), cfg(0, 0, 4, 1), cfg(1, 1, 0, 0)):
            totals = nl_pipeline.estimate_totals(config, SIZES)
            expected = [nl_pipeline.estimate(config, n).total for n in SIZES]
            assert totals.tolist() == expected

    def test_memory_bins_batched_matches_scalar(self, spec):
        pipeline = EstimationPipeline(
            spec,
            PipelineConfig(
                protocol="nl",
                seed=11,
                memory_bins=(
                    MemoryBin(max_ratio=0.5, label="fits"),
                    MemoryBin(max_ratio=2.0, ta_scale=1.4, tc_scale=1.1, label="pages"),
                ),
            ),
        )
        config = cfg(1, 2, 8, 1)
        totals = pipeline.estimate_totals(config, SIZES)
        expected = [pipeline.estimate(config, n).total for n in SIZES]
        assert totals.tolist() == expected


class TestEstimateCache:
    def test_cold_then_warm_sweep(self, spec):
        pipeline = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=11))
        sizes = list(SIZES)
        first = pipeline.optimize_many(sizes)
        stats = pipeline.estimate_cache.stats
        assert stats.hits == 0
        assert stats.misses == len(pipeline.plan.evaluation_configs) * len(sizes)
        second = pipeline.optimize_many(sizes)
        assert stats.hits == len(pipeline.plan.evaluation_configs) * len(sizes)
        for a, b in zip(first, second):
            assert [e.estimate_s for e in a.ranking] == [
                e.estimate_s for e in b.ranking
            ]

    def test_cached_scalar_estimator_matches_uncached(self, ns_pipeline):
        plain = ns_pipeline.estimator()
        cached = ns_pipeline.estimator(cached=True)
        config = cfg(1, 2, 8, 1)
        assert cached(config, 4800) == plain(config, 4800)
        assert cached(config, 4800) == plain(config, 4800)  # warm hit

    def test_fingerprint_tracks_models(self, spec):
        same_a = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=11))
        same_b = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=11))
        other = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=12))
        assert same_a.estimate_cache.fingerprint == same_b.estimate_cache.fingerprint
        assert same_a.estimate_cache.fingerprint != other.estimate_cache.fingerprint


class TestEstimateForIndex:
    def test_lookup_and_missing(self, ns_pipeline):
        outcome = ns_pipeline.optimize(4800)
        for entry in outcome.ranking[:5]:
            assert outcome.estimate_for(entry.config) == entry.estimate_s
        # M2=2 is outside the evaluation grid (it sweeps M2=1 only)
        with pytest.raises(SearchError, match="not a candidate"):
            outcome.estimate_for(cfg(1, 1, 8, 2))

    def test_equivalent_config_forms_resolve(self, ns_pipeline):
        outcome = ns_pipeline.optimize(4800)
        entry = outcome.ranking[0]
        flat = ClusterConfig.from_tuple(
            PAPER_KINDS, entry.config.as_flat_tuple(PAPER_KINDS)
        )
        assert outcome.estimate_for(flat) == entry.estimate_s


class TestPerfReport:
    def test_pipeline_records_stages(self, spec):
        pipeline = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=11))
        pipeline.optimize_many(SIZES)
        report = pipeline.perf
        for stage in ("campaign", "evaluation", "fit", "compose", "adjust", "search"):
            assert report.stage_calls(stage) >= 1, stage
            assert report.stage_seconds(stage) >= 0.0
        assert report.cache is pipeline.estimate_cache
        text = report.render()
        assert "campaign" in text and "cache:" in text
