"""Candidate-axis grid kernel: bitwise equivalence on every search path.

The contract under test (DESIGN.md §15): ``estimate_grid`` cell
``[i, j]`` is **bitwise** ``estimate(configs[i], ns[j]).total``, and
every backend run with a grid estimator produces the identical outcome
— ranking, winner, stats, budget exhaustion point — as the same backend
run scalar.  Equality below is ``==`` on floats, never ``approx``.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.core.binning import MemoryBin
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.core.search import (
    create_search,
    registered_search_backends,
    synthetic_problem,
)
from repro.errors import ConfigurationError, SearchError
from repro.measure.grids import PAPER_KINDS
from repro.perf.report import GridKernelStats

SIZES = (1600, 3200, 4800, 6400, 8000, 9600)


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(PAPER_KINDS, (p1, m1, p2, m2))


def strip_grid(backend):
    """The scalar reference: the same backend with its kernel unplugged."""
    if hasattr(backend, "_grid"):
        backend._grid = None
    if hasattr(backend, "grid_estimator"):
        backend.grid_estimator = None
    return backend


def outcome_sig(outcome):
    """Everything observable about an outcome, floats bit-for-bit."""
    return (
        outcome.n,
        [(e.config.key(), e.estimate_s) for e in outcome.ranking],
        outcome.stats.evaluations,
        outcome.stats.dedup_hits,
        outcome.stats.exhausted,
        outcome.complete,
        outcome.best.config.key(),
        outcome.best.estimate_s,
    )


class TestEstimateGrid:
    def test_bitwise_equal_to_scalar_estimates(self, ns_pipeline):
        configs = ns_pipeline.plan.evaluation_configs
        grid = ns_pipeline.estimate_grid(configs, SIZES)
        assert grid.shape == (len(configs), len(SIZES))
        for i, config in enumerate(configs):
            for j, n in enumerate(SIZES):
                assert grid[i, j] == ns_pipeline.estimate(config, n).total

    def test_cold_then_warm_grid_sweep(self, spec):
        pipeline = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=11))
        configs = pipeline.plan.evaluation_configs
        cells = len(configs) * len(SIZES)
        first = pipeline.estimate_grid(configs, SIZES)
        stats = pipeline.estimate_cache.stats
        assert stats.misses == cells
        assert stats.hits == 0
        second = pipeline.estimate_grid(configs, SIZES)
        assert stats.hits == cells
        assert first.tolist() == second.tolist()
        # Warm sweep never re-enters the kernel.
        assert pipeline.perf.grid.blocks == 1

    def test_partial_cache_hits_fill_only_missing_cells(self, spec):
        pipeline = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=12))
        configs = pipeline.plan.evaluation_configs[:4]
        warm = pipeline.estimate_grid(configs[:2], SIZES[:2])
        full = pipeline.estimate_grid(configs, SIZES)
        assert full[:2, :2].tolist() == warm.tolist()
        for i, config in enumerate(configs):
            for j, n in enumerate(SIZES):
                assert full[i, j] == pipeline.estimate(config, n).total

    def test_memory_bins_take_fallback_and_stay_bitwise(self, spec):
        pipeline = EstimationPipeline(
            spec,
            PipelineConfig(
                protocol="nl",
                seed=11,
                memory_bins=(
                    MemoryBin(max_ratio=0.5, label="fits"),
                    MemoryBin(
                        max_ratio=2.0, ta_scale=1.4, tc_scale=1.1, label="pages"
                    ),
                ),
            ),
        )
        configs = [cfg(1, 2, 8, 1), cfg(0, 0, 4, 1), cfg(1, 1, 0, 0)]
        grid = pipeline.estimate_grid(configs, SIZES)
        for i, config in enumerate(configs):
            for j, n in enumerate(SIZES):
                assert grid[i, j] == pipeline.estimate(config, n).total
        stats = pipeline.perf.grid
        assert stats.scalar_fallback == len(configs)
        assert stats.blocks == 0

    def test_kernel_stats_recorded(self, spec):
        pipeline = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=13))
        configs = pipeline.plan.evaluation_configs
        pipeline.estimate_grid(configs, SIZES)
        stats = pipeline.perf.grid
        assert isinstance(stats, GridKernelStats)
        assert stats.blocks == 1
        assert stats.block_candidates == len(configs)
        assert stats.cells == len(configs) * len(SIZES)
        assert "grid" in pipeline.perf.to_dict()
        assert pipeline.perf.to_dict()["grid"]["blocks"] == 1

    def test_invalid_configuration_raises_like_scalar(self, ns_pipeline):
        bad = cfg(9, 1, 0, 0)  # more athlon PEs than the cluster has
        with pytest.raises(ConfigurationError) as scalar_err:
            ns_pipeline.estimate(bad, 4800)
        with pytest.raises(ConfigurationError) as grid_err:
            ns_pipeline.estimate_grid([cfg(1, 1, 8, 1), bad], [4800])
        assert str(grid_err.value) == str(scalar_err.value)


class TestBackendGoldenSweep:
    """Every registered backend, scalar vs grid, bitwise-equal outcomes."""

    @pytest.mark.parametrize("tag", registered_search_backends())
    def test_paper_grid(self, ns_pipeline, tag):
        for n in SIZES:
            grid = ns_pipeline.optimizer(backend=tag).optimize(n)
            scalar = strip_grid(ns_pipeline.optimizer(backend=tag)).optimize(n)
            assert outcome_sig(grid) == outcome_sig(scalar)

    @pytest.mark.parametrize(
        "tag", ["greedy", "hill-climb", "anneal", "beam", "branch-bound"]
    )
    def test_synthetic_4kind(self, tag):
        problem = synthetic_problem(n_kinds=4, pes_per_kind=4, max_procs=3)
        scalar_problem = dataclasses.replace(problem, grid_estimator=None)
        grid = create_search(tag, problem).optimize(4000)
        scalar = create_search(tag, scalar_problem).optimize(4000)
        assert outcome_sig(grid) == outcome_sig(scalar)

    def test_optimize_many_bitwise(self, ns_pipeline):
        grid = ns_pipeline.optimizer().optimize_many(SIZES)
        scalar = strip_grid(ns_pipeline.optimizer()).optimize_many(SIZES)
        for a, b in zip(grid, scalar):
            assert [(e.config.key(), e.estimate_s) for e in a.ranking] == [
                (e.config.key(), e.estimate_s) for e in b.ranking
            ]

    def test_frontier_bitwise(self, ns_pipeline):
        for budget in (None, 20):
            grid = ns_pipeline.optimizer(
                backend="budget-frontier", budget=budget
            ).frontier(6400)
            scalar = strip_grid(
                ns_pipeline.optimizer(backend="budget-frontier", budget=budget)
            ).frontier(6400)
            assert [
                (p.config.key(), p.time_s, p.dollars) for p in grid.points
            ] == [(p.config.key(), p.time_s, p.dollars) for p in scalar.points]
            assert grid.complete == scalar.complete

    def test_bad_grid_shape_rejected(self, ns_pipeline):
        backend = ns_pipeline.optimizer()
        backend.grid_estimator = lambda configs, ns: np.ones(
            (len(configs), len(ns) + 1)
        )
        with pytest.raises(SearchError, match="shape"):
            backend.optimize(4800)


class TestBudgetExhaustion:
    """A budget that runs out mid-frontier must cut the block short at
    the identical evaluation and report the identical best-seen state."""

    @pytest.mark.parametrize("tag", ["beam", "anneal"])
    @pytest.mark.parametrize("budget", [1, 2, 3, 5, 8, 13, 21, 34])
    def test_mid_frontier_budget_matches_scalar(self, ns_pipeline, tag, budget):
        grid = ns_pipeline.optimizer(backend=tag, budget=budget).optimize(4800)
        scalar = strip_grid(
            ns_pipeline.optimizer(backend=tag, budget=budget)
        ).optimize(4800)
        assert outcome_sig(grid) == outcome_sig(scalar)
        # The budget caps evaluations actually performed, not prefetches.
        assert grid.stats.evaluations <= budget

    @pytest.mark.parametrize("tag", ["branch-bound", "budget-frontier"])
    @pytest.mark.parametrize("budget", [3, 10, 40])
    def test_leaf_block_budget_matches_scalar(self, ns_pipeline, tag, budget):
        grid = ns_pipeline.optimizer(backend=tag, budget=budget).optimize(4800)
        scalar = strip_grid(
            ns_pipeline.optimizer(backend=tag, budget=budget)
        ).optimize(4800)
        assert outcome_sig(grid) == outcome_sig(scalar)
        assert grid.stats.evaluations <= budget


class TestFrontierDedup:
    """Satellite: local searchers deduplicate frontiers before evaluation
    and count the skips — identically with and without the kernel."""

    @pytest.mark.parametrize("tag", ["greedy", "hill-climb", "anneal", "beam"])
    def test_dedup_hits_counted_and_mode_independent(self, ns_pipeline, tag):
        grid = ns_pipeline.optimizer(backend=tag).optimize(6400)
        scalar = strip_grid(ns_pipeline.optimizer(backend=tag)).optimize(6400)
        assert grid.stats.dedup_hits == scalar.stats.dedup_hits
        # Revisited states exist in any real run of these searchers.
        assert grid.stats.dedup_hits > 0
        assert grid.stats.to_dict()["dedup_hits"] == grid.stats.dedup_hits

    def test_dedup_hits_reported_by_perf(self, spec):
        pipeline = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=14))
        pipeline.optimize(4800, backend="beam")
        entry = pipeline.perf.to_dict()["search_backends"]["beam"]
        assert entry["dedup_hits"] > 0
