"""Unit tests for the exhaustive optimizer."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.optimizer import ExhaustiveOptimizer, actual_best
from repro.errors import SearchError

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


CANDIDATES = [cfg(1, 1, 0, 0), cfg(1, 2, 0, 0), cfg(1, 1, 8, 1), cfg(0, 0, 8, 1)]


def table_estimator(table):
    def estimator(config, n):
        return table[(config.label(KINDS), n)]

    return estimator


class TestOptimize:
    def test_returns_argmin(self):
        table = {
            ("1,1,0,0", 100): 5.0,
            ("1,2,0,0", 100): 4.0,
            ("1,1,8,1", 100): 6.0,
            ("0,0,8,1", 100): 7.0,
        }
        outcome = ExhaustiveOptimizer(table_estimator(table), CANDIDATES).optimize(100)
        assert outcome.best.config.label(KINDS) == "1,2,0,0"
        assert outcome.best.estimate_s == 4.0

    def test_ranking_is_sorted(self):
        table = {
            ("1,1,0,0", 1): 3.0,
            ("1,2,0,0", 1): 1.0,
            ("1,1,8,1", 1): 2.0,
            ("0,0,8,1", 1): 4.0,
        }
        outcome = ExhaustiveOptimizer(table_estimator(table), CANDIDATES).optimize(1)
        values = [e.estimate_s for e in outcome.ranking]
        assert values == sorted(values)
        assert len(outcome.top(2)) == 2
        assert outcome.top(0) == []

    def test_ties_broken_deterministically(self):
        table = {(c.label(KINDS), 1): 1.0 for c in CANDIDATES}
        a = ExhaustiveOptimizer(table_estimator(table), CANDIDATES).optimize(1)
        b = ExhaustiveOptimizer(table_estimator(table), list(reversed(CANDIDATES))).optimize(1)
        assert a.best.config.key() == b.best.config.key()

    def test_estimate_for_lookup(self):
        table = {(c.label(KINDS), 1): float(i) for i, c in enumerate(CANDIDATES, 1)}
        outcome = ExhaustiveOptimizer(table_estimator(table), CANDIDATES).optimize(1)
        assert outcome.estimate_for(cfg(1, 1, 8, 1)) == 3.0
        with pytest.raises(SearchError):
            outcome.estimate_for(cfg(1, 6, 8, 1))

    def test_search_time_recorded(self):
        table = {(c.label(KINDS), 1): 1.0 for c in CANDIDATES}
        outcome = ExhaustiveOptimizer(table_estimator(table), CANDIDATES).optimize(1)
        assert outcome.search_seconds >= 0

    def test_empty_candidates_rejected(self):
        with pytest.raises(SearchError):
            ExhaustiveOptimizer(lambda c, n: 1.0, [])

    def test_invalid_estimate_rejected(self):
        for bad in (float("nan"), -1.0):
            optimizer = ExhaustiveOptimizer(lambda c, n: bad, CANDIDATES)
            with pytest.raises(SearchError):
                optimizer.optimize(1)

    def test_inf_means_unestimable_and_ranks_last(self):
        """An estimator returns +inf for configurations its models cannot
        cover; those candidates must never win."""

        def estimator(config, n):
            return float("inf") if config.label(KINDS) == "1,1,0,0" else 5.0

        outcome = ExhaustiveOptimizer(estimator, CANDIDATES).optimize(1)
        assert outcome.best.estimate_s == 5.0
        assert outcome.ranking[-1].config.label(KINDS) == "1,1,0,0"

    def test_all_unestimable_raises(self):
        optimizer = ExhaustiveOptimizer(lambda c, n: float("inf"), CANDIDATES)
        with pytest.raises(SearchError, match="no candidate"):
            optimizer.optimize(1)

    def test_strict_mode_rejects_inf(self):
        """With ``allow_unestimable=False`` a +inf estimate is an error,
        not a silently last-ranked candidate."""

        def estimator(config, n):
            return float("inf") if config.label(KINDS) == "1,1,0,0" else 5.0

        optimizer = ExhaustiveOptimizer(
            estimator, CANDIDATES, allow_unestimable=False
        )
        with pytest.raises(SearchError, match="invalid time"):
            optimizer.optimize(1)

    def test_strict_mode_rejects_inf_in_batch_path(self):
        def batch(config, ns):
            value = float("inf") if config.label(KINDS) == "1,1,0,0" else 5.0
            return [value] * len(ns)

        optimizer = ExhaustiveOptimizer(
            lambda c, n: 5.0,
            CANDIDATES,
            batch_estimator=batch,
            allow_unestimable=False,
        )
        with pytest.raises(SearchError, match="invalid time"):
            optimizer.optimize_many([1, 2])

    def test_strict_mode_still_accepts_finite(self):
        table = {(c.label(KINDS), 1): float(i) for i, c in enumerate(CANDIDATES, 1)}
        optimizer = ExhaustiveOptimizer(
            table_estimator(table), CANDIDATES, allow_unestimable=False
        )
        assert optimizer.optimize(1).best.estimate_s == 1.0

    def test_negative_inf_always_rejected(self):
        optimizer = ExhaustiveOptimizer(lambda c, n: float("-inf"), CANDIDATES)
        with pytest.raises(SearchError, match="invalid time"):
            optimizer.optimize(1)


class TestActualBest:
    def test_picks_minimum(self):
        measured = [(cfg(1, 1, 0, 0), 5.0), (cfg(1, 1, 8, 1), 3.0)]
        config, t = actual_best(measured)
        assert config.label(KINDS) == "1,1,8,1" and t == 3.0

    def test_empty_rejected(self):
        with pytest.raises(SearchError):
            actual_best([])
