"""Tests for memory-aware model construction (Section 3.4 operationalized)."""

from dataclasses import replace

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.memory_guard import MemoryGuard, require_clean, split_dataset
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.errors import MeasurementError, ModelError
from repro.exts.apps import run_summa
from repro.hpl.memory import config_memory_ratio
from repro.measure.grids import nl_plan

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


class TestConfigMemoryRatio:
    def test_single_athlon_large_n_exceeds_memory(self, spec):
        ratio = config_memory_ratio(spec, cfg(1, 1, 0, 0), 10000, "athlon")
        assert ratio > 1.0

    def test_spread_problem_fits(self, spec):
        ratio = config_memory_ratio(spec, cfg(1, 1, 8, 1), 10000, "pentium2")
        assert ratio < 0.5

    def test_unused_kind_is_zero(self, spec):
        assert config_memory_ratio(spec, cfg(1, 1, 0, 0), 8000, "pentium2") == 0.0

    def test_footprint_scales_pressure(self, spec):
        base = config_memory_ratio(spec, cfg(1, 1, 0, 0), 6400, "athlon")
        summa = config_memory_ratio(
            spec, cfg(1, 1, 0, 0), 6400, "athlon", footprint=3.0
        )
        assert summa == pytest.approx(3 * base, rel=0.10)

    def test_dual_cpu_nodes_share_memory(self, spec):
        # two processes on one dual node double the node's pressure
        # relative to one process on it at the same P
        one = config_memory_ratio(spec, cfg(0, 0, 1, 2), 4800, "pentium2")
        two = config_memory_ratio(spec, cfg(0, 0, 2, 1), 4800, "pentium2")
        assert one == pytest.approx(two, rel=1e-9)  # both: 2 procs on node2


class TestGuard:
    def test_validation(self, spec):
        with pytest.raises(ModelError):
            MemoryGuard(spec, threshold=0.0)
        with pytest.raises(ModelError):
            MemoryGuard(spec, footprint=-1.0)

    def test_fits_and_ratio(self, spec):
        guard = MemoryGuard(spec, footprint=3.0)
        assert guard.fits(cfg(1, 1, 8, 1), 3200)
        assert not guard.fits(cfg(0, 0, 1, 1), 6400)  # SUMMA pages there

    def test_split_dataset_summa_nl_grid(self, spec):
        """The NL grid's single-P-II runs at N = 6400 page under SUMMA."""
        pipeline = EstimationPipeline(
            spec,
            PipelineConfig(protocol="nl", seed=11, runner=run_summa),
        )
        guard = MemoryGuard(spec, footprint=3.0)
        clean, paging = split_dataset(pipeline.campaign.dataset, guard)
        assert len(paging) > 0
        assert len(clean) + len(paging) == len(pipeline.campaign.dataset)
        assert all(not guard.record_fits(r) for r in paging)
        # the notorious offender is among them
        assert any(r.label == "0,0,1,1" and r.n == 6400 for r in paging)

    def test_require_clean_raises_on_paging(self, spec):
        pipeline = EstimationPipeline(
            spec, PipelineConfig(protocol="nl", seed=11, runner=run_summa)
        )
        with pytest.raises(MeasurementError, match="exceed memory"):
            require_clean(pipeline.campaign.dataset, MemoryGuard(spec, footprint=3.0))

    def test_require_clean_passes_hpl_grid(self, basic_campaign, spec):
        clean = require_clean(basic_campaign.dataset, MemoryGuard(spec))
        assert len(clean) == len(basic_campaign.dataset)


class TestGuardedPipeline:
    def test_guard_repairs_summa_pt_models(self, spec):
        """End-to-end: the guard removes the paging-contaminated runs and
        the P-T fit becomes sane again (compare the contaminated fit in
        tests/integration/test_other_application.py: k8 < -10)."""
        # One extra small size so the families that lose their paging
        # N=6400 runs still have the 4 distinct N an N-T fit needs.
        plan = replace(
            nl_plan(),
            construction_sizes=(1200, 1600, 3200, 4800, 6400),
            evaluation_sizes=(3200,),
        )
        guarded = EstimationPipeline(
            spec,
            PipelineConfig(
                protocol="nl",
                seed=11,
                runner=run_summa,
                adjust=False,
                memory_guard=True,
                guard_footprint=3.0,
            ),
            plan=plan,
        )
        assert len(guarded.excluded_paging_runs) > 0
        pt = guarded.store.pt_model("pentium2", 1)
        assert abs(pt.k8) < 10.0
        # and the estimate is usable again
        config = cfg(1, 1, 8, 1)
        est = guarded.estimate(config, 3200).total
        meas = guarded.measured_time(config, 3200)
        assert est == pytest.approx(meas, rel=0.35)

    def test_guard_is_noop_for_hpl(self, spec):
        guarded = EstimationPipeline(
            spec,
            PipelineConfig(protocol="ns", seed=11, memory_guard=True),
        )
        assert len(guarded.excluded_paging_runs) == 0
