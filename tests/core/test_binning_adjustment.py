"""Unit tests for model selection (binning) and the linear adjustment."""

import numpy as np
import pytest

from repro.core.adjustment import LinearAdjustment
from repro.core.binning import MemoryBin, ModelSelector
from repro.core.model_store import ModelStore
from repro.core.nt_model import NTModel
from repro.core.pt_model import PTModel
from repro.errors import FitError, ModelError


def small_store() -> ModelStore:
    """A store with one kind, Mi in {1, 2}: N-T at P in {1,2,4,8} (Mi=1)
    and P in {2,4,8} (Mi=2), plus the integrated P-T models."""
    sizes = np.array([400.0, 800.0, 1600.0, 3200.0])
    store = ModelStore()
    for mi in (1, 2):
        family = []
        for pes in (1, 2, 4, 8):
            p = pes * mi
            ta = 1e-9 * sizes**3 / p
            s_c = 2e-8 * sizes**2 + 0.1
            tc = 0.1 * p * s_c + 0.5 * s_c / p
            model = NTModel.fit("k", p, mi, sizes, ta, tc)
            store.nt[("k", p, mi)] = model
            family.append(model)
        store.pt[("k", mi)] = PTModel.fit_from_nt_family(family, sizes)
    return store


class TestSelection:
    def test_single_pe_uses_nt(self):
        selector = ModelSelector(small_store())
        which, model = selector.select("k", p=2, mi=2)
        assert which == "nt"
        assert isinstance(model, NTModel)
        assert model.is_single_pe

    def test_multi_pe_uses_pt(self):
        selector = ModelSelector(small_store())
        which, model = selector.select("k", p=6, mi=2)
        assert which == "pt"
        assert isinstance(model, PTModel)

    def test_p_below_mi_is_impossible(self):
        selector = ModelSelector(small_store())
        with pytest.raises(ModelError, match="Fig. 5"):
            selector.select("k", p=1, mi=2)

    def test_missing_models_raise(self):
        selector = ModelSelector(small_store())
        with pytest.raises(ModelError):
            selector.select("other", p=4, mi=1)
        with pytest.raises(ModelError):
            selector.select("k", p=3, mi=3)  # no Mi=3 anywhere

    def test_can_estimate(self):
        selector = ModelSelector(small_store())
        assert selector.can_estimate("k", 8, 1)
        assert not selector.can_estimate("k", 8, 5)

    def test_invalid_mi(self):
        with pytest.raises(ModelError):
            ModelSelector(small_store()).select("k", 4, 0)


class TestEstimation:
    def test_estimate_kind_routes_and_sums(self):
        selector = ModelSelector(small_store())
        single = selector.estimate_kind("k", 1600, p=1, mi=1)
        assert single.model_kind == "nt"
        multi = selector.estimate_kind("k", 1600, p=8, mi=1)
        assert multi.model_kind == "pt"
        assert multi.ta < single.ta  # work spread over 8 processes
        assert multi.total == multi.ta + multi.tc

    def test_negative_polynomial_clamped(self):
        store = ModelStore()
        store.nt[("k", 1, 1)] = NTModel(
            "k", 1, 1, ka=(0, 0, 0, -5.0), kc=(0, 0, 1.0), n_range=(1, 100)
        )
        estimate = ModelSelector(store).estimate_kind("k", 50, 1, 1)
        assert estimate.ta == 0.0
        assert estimate.tc == 1.0
        assert not estimate.valid  # raw total -4 < 0: out of domain

    def test_positive_total_is_valid(self):
        store = ModelStore()
        store.nt[("k", 1, 1)] = NTModel(
            "k", 1, 1, ka=(0, 0, 0, 2.0), kc=(0, 0, 1.0), n_range=(1, 100)
        )
        estimate = ModelSelector(store).estimate_kind("k", 50, 1, 1)
        assert estimate.valid


class TestMemoryBins:
    def test_bins_must_ascend(self):
        with pytest.raises(ModelError):
            ModelSelector(
                small_store(),
                memory_bins=[MemoryBin(2.0), MemoryBin(1.0)],
            )

    def test_bin_scales_apply(self):
        selector = ModelSelector(
            small_store(),
            memory_bins=[
                MemoryBin(1.0, label="fits"),
                MemoryBin(10.0, ta_scale=3.0, tc_scale=1.5, label="paging"),
            ],
        )
        fits = selector.estimate_kind("k", 1600, 8, 1, memory_ratio=0.5)
        paging = selector.estimate_kind("k", 1600, 8, 1, memory_ratio=1.5)
        assert fits.bin_label == "fits"
        assert paging.bin_label == "paging"
        assert paging.ta == pytest.approx(3.0 * fits.ta)
        assert paging.tc == pytest.approx(1.5 * fits.tc)

    def test_ratio_beyond_last_bin_uses_last(self):
        selector = ModelSelector(
            small_store(), memory_bins=[MemoryBin(1.0, ta_scale=2.0)]
        )
        estimate = selector.estimate_kind("k", 1600, 8, 1, memory_ratio=99.0)
        assert estimate.ta > 0

    def test_no_ratio_means_no_binning(self):
        selector = ModelSelector(
            small_store(), memory_bins=[MemoryBin(1.0, ta_scale=2.0)]
        )
        a = selector.estimate_kind("k", 1600, 8, 1, memory_ratio=None)
        plain = ModelSelector(small_store()).estimate_kind("k", 1600, 8, 1)
        assert a.ta == pytest.approx(plain.ta)

    def test_bin_validation(self):
        with pytest.raises(ModelError):
            MemoryBin(0.0)
        with pytest.raises(ModelError):
            MemoryBin(1.0, ta_scale=0.0)


class TestLinearAdjustment:
    def test_identity_by_default(self):
        adj = LinearAdjustment()
        assert adj.is_identity
        assert adj.apply(100.0, max_mi=6) == 100.0
        assert not adj.applies_to(6)

    def test_fit_single_pair_per_mi(self):
        adj = LinearAdjustment.fit([(3, 100.0, 110.0), (4, 200.0, 150.0)])
        assert adj.scale_for(3) == pytest.approx(1.1)
        assert adj.scale_for(4) == pytest.approx(0.75)
        assert adj.apply(50.0, max_mi=4) == pytest.approx(37.5)

    def test_below_threshold_untouched(self):
        adj = LinearAdjustment.fit([(3, 100.0, 120.0)])
        assert adj.apply(10.0, max_mi=2) == 10.0
        assert adj.scale_for(1) == 1.0

    def test_nearest_mi_used_for_uncalibrated(self):
        adj = LinearAdjustment.fit([(3, 100.0, 110.0), (5, 100.0, 90.0)])
        assert adj.scale_for(4) == pytest.approx(1.1)  # ties resolve low
        assert adj.scale_for(6) == pytest.approx(0.9)
        assert adj.scale_for(9) == pytest.approx(0.9)

    def test_multiple_pairs_same_mi_least_squares(self):
        adj = LinearAdjustment.fit([(3, 100.0, 110.0), (3, 200.0, 220.0)])
        assert adj.scale_for(3) == pytest.approx(1.1)

    def test_below_threshold_calibration_ignored(self):
        adj = LinearAdjustment.fit([(1, 100.0, 500.0), (3, 100.0, 110.0)])
        assert adj.calibration_points == 1
        assert adj.scale_for(3) == pytest.approx(1.1)

    def test_empty_calibration_is_identity(self):
        assert LinearAdjustment.fit([]).is_identity

    def test_invalid_pairs_rejected(self):
        with pytest.raises(FitError):
            LinearAdjustment.fit([(3, -1.0, 10.0)])
        with pytest.raises(FitError):
            LinearAdjustment.fit([(3, 1.0, 0.0)])

    def test_validation(self):
        with pytest.raises(ModelError):
            LinearAdjustment(scales=((3, -1.0),))
        with pytest.raises(ModelError):
            LinearAdjustment(scales=((2, 1.0),), mi_threshold=3)
        with pytest.raises(ModelError):
            LinearAdjustment(scales=((3, 1.0), (3, 2.0)))
        with pytest.raises(ModelError):
            LinearAdjustment(mi_threshold=0)

    def test_serialization_roundtrip(self):
        adj = LinearAdjustment.fit([(3, 100.0, 110.0), (4, 100.0, 95.0)])
        assert LinearAdjustment.from_dict(adj.to_dict()) == adj

    def test_describe(self):
        assert "identity" in LinearAdjustment().describe()
        adj = LinearAdjustment.fit([(3, 100.0, 110.0)])
        assert "Mi=3" in adj.describe()
