"""Tests for the unified two-variable model (future-work extension)."""

import pytest

from repro.core.unified_model import UnifiedEstimator, UnifiedModel
from repro.errors import FitError, ModelError


def synthetic_samples():
    """Ground truth inside the model family."""
    rng_sizes = [400.0, 800.0, 1600.0, 3200.0]
    rows = []
    for n in rng_sizes:
        for p in (1.0, 2.0, 4.0, 8.0):
            ta = 2e-9 * n**3 / p + 1e-6 * n**2 / p + 0.01
            tc = 3e-8 * p * n**2 + 5e-8 * n**2 / p + 1e-5 * n
            rows.append((n, p, ta, tc))
    return rows


class TestFit:
    def test_recovers_ground_truth(self):
        rows = synthetic_samples()
        model = UnifiedModel.fit(
            "k",
            1,
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
            [r[3] for r in rows],
        )
        for n, p, ta, tc in rows:
            assert model.predict_ta(n, p) == pytest.approx(ta, rel=1e-5, abs=1e-8)
            assert model.predict_tc(n, p) == pytest.approx(tc, rel=1e-5, abs=1e-8)
        # held-out interpolation
        assert model.predict_ta(2400, 6) == pytest.approx(
            2e-9 * 2400**3 / 6 + 1e-6 * 2400**2 / 6 + 0.01, rel=1e-4
        )

    def test_needs_variation_in_both_variables(self):
        with pytest.raises(FitError, match=">= 2"):
            UnifiedModel.fit("k", 1, [400, 800, 1200, 1600, 2000], [2] * 5, [1] * 5, [1] * 5)
        with pytest.raises(FitError, match=">= 4"):
            UnifiedModel.fit("k", 1, [400, 400, 800, 800], [1, 2, 1, 2], [1] * 4, [1] * 4)

    def test_p_below_mi_rejected(self):
        rows = synthetic_samples()
        model = UnifiedModel.fit(
            "k", 2,
            [r[0] for r in rows], [r[1] * 2 for r in rows],
            [r[2] for r in rows], [r[3] for r in rows],
        )
        with pytest.raises(ModelError):
            model.predict_ta(800, 1)

    def test_extrapolation_flag(self):
        rows = synthetic_samples()
        model = UnifiedModel.fit(
            "k", 1,
            [r[0] for r in rows], [r[1] for r in rows],
            [r[2] for r in rows], [r[3] for r in rows],
        )
        assert not model.extrapolating(800, 4)
        assert model.extrapolating(6400, 4)
        assert model.extrapolating(800, 16)

    def test_serialization_roundtrip(self):
        rows = synthetic_samples()
        model = UnifiedModel.fit(
            "k", 1,
            [r[0] for r in rows], [r[1] for r in rows],
            [r[2] for r in rows], [r[3] for r in rows],
        )
        assert UnifiedModel.from_dict(model.to_dict()) == model

    def test_scaled_composition(self):
        rows = synthetic_samples()
        model = UnifiedModel.fit(
            "k", 1,
            [r[0] for r in rows], [r[1] for r in rows],
            [r[2] for r in rows], [r[3] for r in rows],
        )
        fast = model.scaled("fast", 0.25, 0.9)
        assert fast.predict_ta(1600, 4) == pytest.approx(
            0.25 * model.predict_ta(1600, 4)
        )
        assert fast.predict_tc(1600, 4) == pytest.approx(
            0.9 * model.predict_tc(1600, 4)
        )


class TestEstimatorOnCampaign:
    def test_fits_from_basic_dataset(self, basic_campaign):
        estimator = UnifiedEstimator.fit_dataset(basic_campaign.dataset)
        # pentium2 fitted for every Mi; athlon composed (single PE)
        assert ("pentium2", 1) in estimator.models
        assert ("athlon", 1) in estimator.models
        assert estimator.models[("athlon", 1)].n_range == estimator.models[
            ("pentium2", 1)
        ].n_range

    def test_estimates_track_measurements(self, basic_campaign, basic_pipeline, make_config):
        estimator = UnifiedEstimator.fit_dataset(basic_campaign.dataset)
        for cfg_tuple in [(1, 1, 8, 1), (0, 0, 8, 1), (1, 2, 8, 1)]:
            config = make_config(*cfg_tuple)
            est = estimator.estimate(config, 4800)
            meas = basic_pipeline.measured_time(config, 4800)
            assert est == pytest.approx(meas, rel=0.30)

    def test_decision_quality_comparable_to_binned_stack(
        self, basic_campaign, basic_pipeline
    ):
        """The unified model should make decisions in the same regret band
        as the two-stage N-T/P-T stack on the Basic data."""
        estimator = UnifiedEstimator.fit_dataset(basic_campaign.dataset)
        from repro.core.optimizer import ExhaustiveOptimizer

        optimizer = ExhaustiveOptimizer(
            estimator.estimator(), list(basic_pipeline.plan.evaluation_configs)
        )
        for n in (4800, 6400, 8000):
            best = optimizer.optimize(n).best
            chosen = basic_pipeline.measured_time(best.config, n)
            _, t_hat = basic_pipeline.actual_best(n)
            assert (chosen - t_hat) / t_hat <= 0.08

    def test_unknown_kind_rejected(self, basic_campaign):
        estimator = UnifiedEstimator.fit_dataset(basic_campaign.dataset)
        from repro.cluster.config import ClusterConfig

        with pytest.raises(ModelError):
            estimator.estimate(ClusterConfig.of(xeon=(1, 1)), 1600)

    def test_empty_models_rejected(self):
        with pytest.raises(ModelError):
            UnifiedEstimator({})
