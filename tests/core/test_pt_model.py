"""Unit tests for the P-T model and model composition."""

import numpy as np
import pytest

from repro.core.composition import CompositionPolicy, PAPER_TA_FACTOR, PAPER_TC_FACTOR
from repro.core.model_store import ModelStore
from repro.core.nt_model import NTModel
from repro.core.pt_model import PTModel
from repro.errors import FitError, ModelError


def _ta_truth(n, p):
    """Representable computation truth: each of the P processes does 1/P of
    the total work (k7=1, k8=0).  A per-process offset that does *not*
    scale with 1/P would sit outside the family — one of the structural
    approximations the paper accepts."""
    return 1e-9 * np.asarray(n, dtype=float) ** 3 / p


def _tc_truth(n, p):
    """Representable P-T ground truth: k9=0.5, k10=0.8, k11=0 over the
    shape S_c(N) = 2e-8 N^2 + 1e-5 N + 0.1.  (A non-zero k11 would make
    the reference extraction inexact by construction — the systematic
    communication-model deviation the paper's Section 4.1 patches.)"""
    s_c = 2e-8 * np.asarray(n, dtype=float) ** 2 + 1e-5 * np.asarray(n, dtype=float) + 0.1
    return 0.5 * p * s_c + 0.8 * s_c / p


def synthetic_nt_family(kind="pentium2", mi=1, p_values=(1, 2, 4, 8)):
    """N-T models generated from a known P-T ground truth."""
    sizes = np.array([400.0, 800.0, 1600.0, 3200.0])
    family = []
    for p_pes in p_values:
        p = p_pes * mi
        ta = _ta_truth(sizes, p)
        tc = _tc_truth(sizes, p)
        family.append(NTModel.fit(kind, p, mi, sizes, ta, tc))
    return family, sizes


class TestFit:
    def test_recovers_ground_truth_scaling(self):
        family, sizes = synthetic_nt_family()
        model = PTModel.fit_from_nt_family(family, sizes)
        # Predictions must match the generating law at held-out P.
        for n in (800, 3200):
            for p in (3, 5, 7):
                assert model.predict_ta(n, p) == pytest.approx(
                    _ta_truth(n, p), rel=0.02
                )
                assert model.predict_tc(n, p) == pytest.approx(
                    _tc_truth(n, p), rel=0.02
                )

    def test_needs_three_distinct_p(self):
        family, sizes = synthetic_nt_family(p_values=(1, 2))
        with pytest.raises(FitError, match=">= 3 distinct P"):
            PTModel.fit_from_nt_family(family, sizes)

    def test_mixed_family_rejected(self):
        fam_a, sizes = synthetic_nt_family(mi=1)
        fam_b, _ = synthetic_nt_family(mi=2)
        with pytest.raises(FitError, match="share kind and Mi"):
            PTModel.fit_from_nt_family(fam_a[:2] + fam_b[:1], sizes)

    def test_empty_family_rejected(self):
        with pytest.raises(FitError):
            PTModel.fit_from_nt_family([], [400, 800])

    def test_p_below_mi_rejected_at_predict(self):
        family, sizes = synthetic_nt_family(mi=2, p_values=(1, 2, 4, 8))
        model = PTModel.fit_from_nt_family(family, sizes)
        assert model.mi == 2
        with pytest.raises(ModelError, match="P < Mi"):
            model.predict_ta(800, 1)

    def test_ta_decreases_with_p(self):
        family, sizes = synthetic_nt_family()
        model = PTModel.fit_from_nt_family(family, sizes)
        assert model.predict_ta(3200, 8) < model.predict_ta(3200, 2)

    def test_tc_grows_with_p_for_large_p(self):
        family, sizes = synthetic_nt_family()
        model = PTModel.fit_from_nt_family(family, sizes)
        assert model.predict_tc(3200, 12) > model.predict_tc(3200, 4)

    def test_vectorized_prediction(self):
        family, sizes = synthetic_nt_family()
        model = PTModel.fit_from_nt_family(family, sizes)
        out = model.predict_total(np.array([800.0, 1600.0]), np.array([4, 4]))
        assert out.shape == (2,)


class TestComposition:
    def test_scaled_model_scales_predictions(self):
        family, sizes = synthetic_nt_family()
        source = PTModel.fit_from_nt_family(family, sizes)
        composed = source.scaled("athlon", 0.27, 0.85)
        assert composed.kind_name == "athlon"
        assert composed.is_composed and composed.composed_from == "pentium2"
        n, p = 1600, 6
        # Ta scales entirely (reference and offset), Tc likewise.
        assert composed.predict_ta(n, p) == pytest.approx(
            0.27 * source.predict_ta(n, p), rel=1e-9
        )
        assert composed.predict_tc(n, p) == pytest.approx(
            0.85 * source.predict_tc(n, p), rel=1e-9
        )

    def test_scaled_rejects_bad_factors(self):
        family, sizes = synthetic_nt_family()
        source = PTModel.fit_from_nt_family(family, sizes)
        with pytest.raises(ModelError):
            source.scaled("x", 0.0, 1.0)

    def test_paper_policy_factors(self):
        policy = CompositionPolicy(mode="paper")
        factors = policy.factors_for(ModelStore(), "athlon", "pentium2", 1)
        assert factors == (PAPER_TA_FACTOR, PAPER_TC_FACTOR)

    def test_fixed_policy_factors(self):
        policy = CompositionPolicy(mode="fixed", ta_factor=0.5, tc_factor=0.9)
        assert policy.factors_for(ModelStore(), "a", "b", 2) == (0.5, 0.9)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ModelError):
            CompositionPolicy(mode="magic")
        with pytest.raises(ModelError):
            CompositionPolicy(ta_factor=-1)

    def test_auto_mode_derives_speed_ratio(self):
        """Auto factors come from the single-PE N-T Ta ratio."""
        store = ModelStore()
        sizes = np.array([400.0, 800.0, 1600.0, 3200.0])
        # athlon is 4x faster than pentium2
        for kind, rate in (("athlon", 4.0), ("pentium2", 1.0)):
            ta = 1e-9 * sizes**3 / rate
            tc = 1e-6 * sizes
            store.nt[(kind, 1, 1)] = NTModel.fit(kind, 1, 1, sizes, ta, tc)
        policy = CompositionPolicy(mode="auto")
        ta_factor, tc_factor = policy.factors_for(store, "athlon", "pentium2", 1)
        assert ta_factor == pytest.approx(0.25, rel=0.01)
        assert tc_factor == 1.0

    def test_auto_mode_requires_single_pe_models(self):
        policy = CompositionPolicy(mode="auto")
        with pytest.raises(ModelError, match="single-PE N-T model"):
            policy.factors_for(ModelStore(), "athlon", "pentium2", 1)

    def test_compose_missing_fills_only_gaps(self):
        family, sizes = synthetic_nt_family()
        store = ModelStore()
        for model in family:
            store.nt[(model.kind_name, model.p, model.mi)] = model
        store.pt[("pentium2", 1)] = PTModel.fit_from_nt_family(family, sizes)
        policy = CompositionPolicy(mode="fixed", ta_factor=0.3, tc_factor=0.9)
        composed = policy.compose_missing(store, "athlon", "pentium2")
        assert composed == [1]
        assert store.has_pt("athlon", 1)
        # idempotent: nothing left to compose
        assert policy.compose_missing(store, "athlon", "pentium2") == []

    def test_composed_models_are_not_composition_sources(self):
        family, sizes = synthetic_nt_family()
        store = ModelStore()
        store.pt[("pentium2", 1)] = PTModel.fit_from_nt_family(family, sizes)
        policy = CompositionPolicy(mode="fixed", ta_factor=0.3, tc_factor=0.9)
        policy.compose_missing(store, "athlon", "pentium2")
        # composing a third kind from athlon (all composed) does nothing
        assert policy.compose_missing(store, "xeon", "athlon") == []


class TestSerialization:
    def test_roundtrip(self):
        family, sizes = synthetic_nt_family()
        model = PTModel.fit_from_nt_family(family, sizes)
        assert PTModel.from_dict(model.to_dict()) == model

    def test_composed_flag_survives(self):
        family, sizes = synthetic_nt_family()
        composed = PTModel.fit_from_nt_family(family, sizes).scaled("a", 0.3, 0.9)
        assert PTModel.from_dict(composed.to_dict()).is_composed
