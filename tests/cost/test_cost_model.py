"""Rate cards: validation, lookup semantics, strict serialization."""

import math

import pytest

from repro.cost.model import (
    CostModel,
    KindRate,
    ZERO_COST,
    cost_model_from_dict,
    cost_model_to_dict,
)
from repro.errors import ModelError


class TestKindRate:
    def test_hourly_to_per_second(self):
        rate = KindRate(kind="athlon", dollars_per_pe_hour=0.144)
        assert rate.dollars_per_pe_second == 0.144 / 3600.0

    def test_rejects_negative_and_non_finite(self):
        with pytest.raises(ModelError, match="dollars_per_pe_hour"):
            KindRate(kind="x", dollars_per_pe_hour=-1.0)
        with pytest.raises(ModelError, match="watts_per_pe"):
            KindRate(kind="x", watts_per_pe=math.inf)
        with pytest.raises(ModelError, match="kind name"):
            KindRate(kind="")


class TestCostModel:
    def test_unpriced_kinds_are_free(self):
        model = CostModel.of(athlon=(0.144, 110.0))
        assert model.dollars_per_pe_second("pentium2") == 0.0
        assert model.watts_per_pe("pentium2") == 0.0

    def test_dollar_rate_is_additive_over_allocations(self):
        model = CostModel.of(a=3.6, b=7.2)
        # 2 PEs of a + 1 PE of b: (2*3.6 + 1*7.2) / 3600 $/s.
        assert model.dollar_rate([("a", 2), ("b", 1)]) == pytest.approx(
            (2 * 3.6 + 7.2) / 3600.0
        )

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ModelError, match="duplicate kind"):
            CostModel(rates=(KindRate(kind="a"), KindRate(kind="a")))

    def test_zero_cost_is_free(self):
        assert ZERO_COST.is_free
        assert not CostModel.of(a=1.0).is_free


class TestSerialization:
    def test_round_trip(self):
        model = CostModel.of(athlon=(0.144, 110.0), pentium2=(0.036, 28.0))
        loaded = cost_model_from_dict(cost_model_to_dict(model))
        assert loaded == model

    def test_unknown_model_field_names_path(self):
        data = cost_model_to_dict(CostModel.of(a=1.0))
        data["surge"] = 2.0
        with pytest.raises(ModelError, match=r"unknown field cost\.surge"):
            cost_model_from_dict(data)

    def test_unknown_rate_field_names_path(self):
        data = cost_model_to_dict(CostModel.of(a=1.0))
        data["rates"][0]["surge_multiplier"] = 2.0
        with pytest.raises(
            ModelError, match=r"unknown field cost\.rates\[0\]\.surge_multiplier"
        ):
            cost_model_from_dict(data)

    def test_origin_prefixes_error_paths(self):
        with pytest.raises(ModelError, match=r"cluster\.cost\.bogus"):
            cost_model_from_dict({"bogus": 1}, origin="cluster.cost")
