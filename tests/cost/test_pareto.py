"""Dominance, frontier filtering, and scalarization — pure-logic layer."""

import math

import pytest

from repro.cluster.config import ClusterConfig
from repro.cost.model import CostModel
from repro.cost.pareto import (
    FrontierPoint,
    build_point,
    dominates,
    enumerate_frontier,
    pareto_front,
    parse_objective,
    select_weighted,
)
from repro.errors import SearchError

KINDS = ("athlon", "pentium2")


def _config(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


def _point(values, time_s, dollars, energy_wh=0.0, n=1000):
    return FrontierPoint(
        config=_config(*values), n=n, time_s=time_s, dollars=dollars,
        energy_wh=energy_wh,
    )


class TestDominance:
    def test_strict_in_one_axis_suffices(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_trade_off_is_incomparable(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))

    def test_length_mismatch_raises(self):
        with pytest.raises(SearchError, match="differ in length"):
            dominates((1.0,), (1.0, 2.0))


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [
            _point((1, 1, 0, 0), 10.0, 1.0),
            _point((2, 1, 0, 0), 5.0, 2.0),
            _point((3, 1, 0, 0), 12.0, 3.0),  # dominated by both
        ]
        front = pareto_front(points)
        assert [p.time_s for p in front] == [5.0, 10.0]

    def test_exact_ties_all_kept_in_key_order(self):
        a = _point((1, 1, 0, 0), 5.0, 2.0)
        b = _point((2, 1, 0, 0), 5.0, 2.0)
        front = pareto_front([b, a])
        assert front == [a, b]  # canonical (time, dollars, key) order

    def test_canonical_order_is_time_then_dollars(self):
        points = [
            _point((2, 1, 0, 0), 8.0, 1.0),
            _point((1, 1, 0, 0), 5.0, 3.0),
        ]
        front = pareto_front(points)
        assert [p.time_s for p in front] == [5.0, 8.0]
        assert all(
            not dominates(p.objectives(), q.objectives())
            for p in front
            for q in front
        )


class TestBuildPoint:
    def test_costs_follow_time_linearly(self):
        model = CostModel.of(athlon=(3600.0, 3600.0))  # $1/PE-s, 1 Wh/PE-s
        point = build_point(model, _config(2, 1, 0, 0), 100, 7.0)
        assert point.dollars == pytest.approx(14.0)
        assert point.energy_wh == pytest.approx(14.0)

    def test_unestimable_time_poisons_every_objective(self):
        point = build_point(CostModel(), _config(1, 1, 0, 0), 100, math.inf)
        assert point.dollars == math.inf
        assert point.energy_wh == math.inf


class TestEnumerateFrontier:
    def _estimator(self, config, n):
        # Sublinear speedup: more processes are faster but cost more
        # dollars overall, so the two objectives genuinely conflict.
        return 100.0 / config.total_processes**0.5

    def test_frontier_points_are_mutually_non_dominated(self):
        model = CostModel.of(athlon=(1.0, 0.0), pentium2=(0.25, 0.0))
        candidates = [
            _config(1, 1, 0, 0), _config(2, 1, 0, 0),
            _config(0, 0, 2, 1), _config(2, 1, 2, 1),
        ]
        outcome = enumerate_frontier(self._estimator, candidates, 1000, model)
        assert outcome.complete
        assert outcome.stats.evaluations == len(candidates)
        for p in outcome.points:
            for q in outcome.points:
                assert not dominates(p.objectives(), q.objectives())

    def test_max_cost_filters_before_frontier(self):
        model = CostModel.of(athlon=(1.0, 0.0))
        candidates = [_config(1, 1, 0, 0), _config(2, 1, 0, 0)]
        outcome = enumerate_frontier(
            self._estimator, candidates, 1000, model,
            max_cost=model.dollars_per_pe_second("athlon") * 100.0 * 1.01,
        )
        assert [p.config.key() for p in outcome.points] == [
            candidates[0].key()
        ]
        assert outcome.max_cost is not None

    def test_unsatisfiable_max_cost_raises(self):
        model = CostModel.of(athlon=(1.0, 0.0))
        with pytest.raises(SearchError, match="max_cost"):
            enumerate_frontier(
                self._estimator, [_config(1, 1, 0, 0)], 1000, model,
                max_cost=0.0,
            )


class TestScalarization:
    def test_parse_objective(self):
        assert parse_objective("time") is None
        assert parse_objective("weighted:0.25") == 0.25
        for bad in ("nope", "weighted:", "weighted:2", "weighted:-0.1"):
            with pytest.raises(SearchError, match="objective"):
                parse_objective(bad)

    def test_alpha_endpoints_select_frontier_endpoints(self):
        front = [
            _point((1, 1, 0, 0), 5.0, 9.0),
            _point((2, 1, 0, 0), 7.0, 4.0),
            _point((3, 1, 0, 0), 11.0, 1.0),
        ]
        assert select_weighted(front, 0.0) is front[0]   # pure time
        assert select_weighted(front, 1.0) is front[-1]  # pure dollars
        mid = select_weighted(front, 0.5)
        assert mid in front
