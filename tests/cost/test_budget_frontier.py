"""The ``budget-frontier`` backend: exact pruned frontiers with budgets.

Exactness is the whole contract: on spaces small enough to brute-force,
the pruned frontier must be *bitwise* the enumerated one — same
configurations, same floats — and the minimum-time endpoint must agree
with the exhaustive optimizer's winner.  Pruning only changes how much
work that answer costs.
"""

import dataclasses

import pytest

from repro.core.search import (
    create_search,
    registered_search_backends,
    synthetic_problem,
)
from repro.cost.pareto import dominates, enumerate_frontier
from repro.cost.presets import synthetic_rate_card
from repro.errors import SearchError

N = 1500


@pytest.fixture(scope="module")
def problem():
    prob = synthetic_problem(n_kinds=3, pes_per_kind=3, max_procs=2)
    prob.cost = synthetic_rate_card(n_kinds=3)
    return prob


@pytest.fixture(scope="module")
def reference(problem):
    return enumerate_frontier(
        problem.estimator, problem.resolved_candidates(), N, problem.cost
    )


class TestRegistry:
    def test_backend_is_registered_lazily(self):
        assert "budget-frontier" in registered_search_backends()

    def test_create_search_resolves_it(self, problem):
        backend = create_search("budget-frontier", problem)
        assert backend.backend_type == "budget-frontier"


class TestExactness:
    def test_frontier_bitwise_equals_enumeration(self, problem, reference):
        outcome = create_search("budget-frontier", problem).frontier(N)
        assert outcome.complete
        got = [(p.config.key(), p.time_s, p.dollars, p.energy_wh)
               for p in outcome.points]
        want = [(p.config.key(), p.time_s, p.dollars, p.energy_wh)
                for p in reference.points]
        assert got == want

    def test_search_actually_prunes(self, problem):
        backend = create_search("budget-frontier", problem)
        outcome = backend.frontier(N)
        stats = outcome.stats
        assert stats.pruned_candidates > 0
        assert (
            stats.evaluations + stats.pruned_candidates
            == problem.space.size
        )

    def test_min_time_endpoint_matches_exhaustive_winner(self, problem):
        exhaustive = create_search("exhaustive", problem).optimize(N)
        frontier = create_search("budget-frontier", problem).frontier(N)
        assert frontier.min_time.config.key() == exhaustive.best.config.key()
        assert frontier.min_time.time_s == exhaustive.best.estimate_s

    def test_frontier_is_mutually_non_dominated(self, problem):
        outcome = create_search("budget-frontier", problem).frontier(N)
        for p in outcome.points:
            for q in outcome.points:
                assert not dominates(p.objectives(), q.objectives())


class TestConstraints:
    def test_max_cost_caps_the_frontier(self, problem, reference):
        cap = reference.points[-1].dollars * 1.5
        outcome = create_search(
            "budget-frontier", problem, max_cost=cap
        ).frontier(N)
        assert outcome.max_cost == cap
        assert all(p.dollars <= cap for p in outcome.points)
        capped_reference = [p for p in reference.points if p.dollars <= cap]
        assert [p.config.key() for p in outcome.points] == [
            p.config.key() for p in capped_reference
        ]

    def test_unsatisfiable_max_cost_raises(self, problem):
        with pytest.raises(SearchError, match="max_cost"):
            create_search("budget-frontier", problem, max_cost=0.0).frontier(N)

    def test_optimize_with_max_cost_picks_fastest_feasible_winner(
        self, problem, reference
    ):
        cap = reference.min_cost.dollars * 1.01
        capped = enumerate_frontier(
            problem.estimator, problem.resolved_candidates(), N, problem.cost,
            max_cost=cap,
        )
        outcome = create_search(
            "budget-frontier", problem, max_cost=cap
        ).optimize(N)
        assert outcome.best.config.key() == capped.min_time.config.key()
        assert outcome.best.estimate_s == capped.min_time.time_s
        assert all(e.estimate_s >= outcome.best.estimate_s
                   for e in outcome.ranking)

    def test_alpha_endpoints_reduce_to_frontier_endpoints(self, problem, reference):
        fastest = create_search(
            "budget-frontier", problem, alpha=0.0
        ).optimize(N)
        cheapest = create_search(
            "budget-frontier", problem, alpha=1.0
        ).optimize(N)
        assert fastest.best.config.key() == reference.min_time.config.key()
        assert cheapest.best.config.key() == reference.min_cost.config.key()

    def test_invalid_options_rejected(self, problem):
        with pytest.raises(SearchError):
            create_search("budget-frontier", problem, max_cost=-1.0)
        with pytest.raises(SearchError):
            create_search("budget-frontier", problem, alpha=1.5)


class TestBudget:
    def test_exhausted_budget_marks_frontier_incomplete(self, problem):
        outcome = create_search(
            "budget-frontier", problem, budget=3
        ).frontier(N)
        assert not outcome.complete
        assert outcome.stats.exhausted
        assert outcome.points  # still a frontier over visited candidates
