"""Unit tests for the parallel fan-out layer: worker resolution, the
oversubscription guard, and ordered pool mapping."""

import warnings

import pytest

import repro.perf.parallel as parallel
from repro.errors import MeasurementError
from repro.perf.parallel import (
    ParallelRunner,
    _cgroup_cpu_limit,
    available_cpu_count,
    default_worker_count,
    reset_oversubscription_warning,
    resolve_workers,
)


class TestResolveWorkers:
    def test_rejects_non_positive(self):
        with pytest.raises(MeasurementError):
            resolve_workers(0)
        with pytest.raises(MeasurementError):
            resolve_workers(-3)

    def test_within_budget_passes_through(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 8)
        for k in (1, 2, 8):
            assert resolve_workers(k) == k

    def test_oversubscription_clamps_and_warns_once(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 2)
        reset_oversubscription_warning()
        with pytest.warns(RuntimeWarning, match="clamping to 2"):
            assert resolve_workers(16) == 2
        # the second oversubscribed request is clamped silently
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_workers(16) == 2
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
        reset_oversubscription_warning()

    def test_exact_fit_does_not_warn(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 4)
        reset_oversubscription_warning()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_workers(4) == 4
        assert not caught

    def test_available_cpu_count_positive(self):
        assert available_cpu_count() >= 1


class TestCgroupLimit:
    """Container CPU quotas (cgroup v2 ``cpu.max``) bound the worker pool
    even when the affinity mask still shows the whole machine."""

    def test_quota_rounds_up_to_whole_cpus(self, tmp_path):
        path = tmp_path / "cpu.max"
        path.write_text("150000 100000\n")
        assert _cgroup_cpu_limit(str(path)) == 2
        path.write_text("200000 100000\n")
        assert _cgroup_cpu_limit(str(path)) == 2
        path.write_text("50000 100000\n")
        assert _cgroup_cpu_limit(str(path)) == 1

    def test_unbounded_and_malformed_mean_no_limit(self, tmp_path):
        path = tmp_path / "cpu.max"
        path.write_text("max 100000\n")
        assert _cgroup_cpu_limit(str(path)) is None
        path.write_text("not a quota\n")
        assert _cgroup_cpu_limit(str(path)) is None
        path.write_text("")
        assert _cgroup_cpu_limit(str(path)) is None
        assert _cgroup_cpu_limit(str(tmp_path / "missing")) is None

    def test_quota_caps_available_cpu_count(self, monkeypatch):
        monkeypatch.setattr(parallel, "_cgroup_cpu_limit", lambda path=None: 1)
        assert available_cpu_count() == 1

    def test_no_quota_leaves_affinity_count(self, monkeypatch):
        monkeypatch.setattr(parallel, "_cgroup_cpu_limit", lambda path=None: None)
        assert available_cpu_count() >= 1


class TestDefaultWorkerCount:
    def test_tracks_available_cpus(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 6)
        assert default_worker_count() == 6

    def test_cap_applies(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 32)
        assert default_worker_count(cap=16) == 16

    def test_never_below_one(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 1)
        assert default_worker_count(cap=16) == 1


class TestParallelRunner:
    def test_serial_path_preserves_order(self):
        runner = ParallelRunner(workers=1)
        assert runner.map(str, list(range(20))) == [str(i) for i in range(20)]

    def test_pool_path_preserves_order(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 4)
        runner = ParallelRunner(workers=3)
        assert runner.workers == 3
        assert runner.map(str, list(range(50))) == [str(i) for i in range(50)]

    def test_single_item_never_forks(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 4)

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("pool created for a single item")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        assert ParallelRunner(workers=4).map(str, [7]) == ["7"]

    def test_empty_items(self):
        assert ParallelRunner(workers=1).map(str, []) == []
