"""Unit tests for the estimate cache (keys, counters, fingerprint
invalidation) and the per-stage performance report."""


import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import ReproError
from repro.measure.grids import PAPER_KINDS
from repro.perf.cache import CacheStats, EstimateCache, model_fingerprint
from repro.perf.report import PerfReport


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(PAPER_KINDS, (p1, m1, p2, m2))


class TestEstimateCache:
    def test_miss_then_hit(self):
        cache = EstimateCache("fp")
        key = cache.key_of(cfg(1, 2, 0, 0))
        assert cache.get(key, 3200) is None
        cache.put(key, 3200, 12.5)
        assert cache.get(key, 3200) == 12.5
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert len(cache) == 1

    def test_key_includes_size_and_config(self):
        cache = EstimateCache("fp")
        cache.put(cache.key_of(cfg(1, 2, 0, 0)), 3200, 1.0)
        assert cache.get(cache.key_of(cfg(1, 2, 0, 0)), 4800) is None
        assert cache.get(cache.key_of(cfg(1, 3, 0, 0)), 3200) is None

    def test_fingerprint_partitions_entries(self):
        """Entries written under one model generation never answer for
        another: the fingerprint is part of every key."""
        key = EstimateCache.key_of(cfg(1, 1, 8, 1))
        old = EstimateCache("model-v1")
        old.put(key, 3200, 99.0)
        fresh = EstimateCache("model-v2")
        fresh._data.update(old._data)  # simulate stale entries surviving
        assert fresh.get(key, 3200) is None

    def test_equivalent_configs_share_entries(self):
        """Zero allocations are dropped from config keys, so the paper's
        ``(0,0,8,1)`` and a bare pentium2 config hit the same entry."""
        cache = EstimateCache("fp")
        cache.put(cache.key_of(cfg(0, 0, 8, 1)), 3200, 5.0)
        bare = ClusterConfig.of(pentium2=(8, 1))
        assert cache.get(cache.key_of(bare), 3200) == 5.0

    def test_clear_keeps_counters(self):
        cache = EstimateCache("fp")
        key = cache.key_of(cfg(1, 1, 0, 0))
        cache.put(key, 400, 1.0)
        cache.get(key, 400)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_describe_mentions_stats(self):
        cache = EstimateCache("abcd")
        assert "abcd" in cache.describe()
        assert "0 hits" in cache.describe()


class TestLRUBound:
    def test_capacity_evicts_oldest_insertion(self):
        cache = EstimateCache("fp", capacity=2)
        key = cache.key_of(cfg(1, 1, 0, 0))
        cache.put(key, 100, 1.0)
        cache.put(key, 200, 2.0)
        cache.put(key, 300, 3.0)  # evicts (key, 100)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(key, 100) is None
        assert cache.get(key, 300) == 3.0

    def test_hit_refreshes_recency(self):
        cache = EstimateCache("fp", capacity=2)
        key = cache.key_of(cfg(1, 1, 0, 0))
        cache.put(key, 100, 1.0)
        cache.put(key, 200, 2.0)
        assert cache.get(key, 100) == 1.0  # 100 is now most-recent
        cache.put(key, 300, 3.0)  # evicts 200, not 100
        assert cache.get(key, 100) == 1.0
        assert cache.get(key, 200) is None

    def test_update_refreshes_recency_without_eviction(self):
        cache = EstimateCache("fp", capacity=2)
        key = cache.key_of(cfg(1, 1, 0, 0))
        cache.put(key, 100, 1.0)
        cache.put(key, 200, 2.0)
        cache.put(key, 100, 1.5)  # update, no growth, 100 refreshed
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        cache.put(key, 300, 3.0)  # evicts 200
        assert cache.get(key, 100) == 1.5
        assert cache.get(key, 200) is None

    def test_describe_surfaces_capacity_and_evictions(self):
        cache = EstimateCache("fp", capacity=1)
        key = cache.key_of(cfg(1, 1, 0, 0))
        cache.put(key, 100, 1.0)
        cache.put(key, 200, 2.0)
        text = cache.describe()
        assert "1/1 entries" in text
        assert "1 evictions" in text

    def test_unbounded_default_never_evicts(self):
        cache = EstimateCache("fp")
        key = cache.key_of(cfg(1, 1, 0, 0))
        for n in range(100, 200):
            cache.put(key, n, float(n))
        assert len(cache) == 100
        assert cache.stats.evictions == 0
        assert "entries" in cache.describe() and "/" not in cache.describe().split(",")[0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError, match="capacity"):
            EstimateCache("fp", capacity=0)

    def test_stats_merge(self):
        a = CacheStats(hits=2, misses=3, evictions=1)
        a.merge(CacheStats(hits=1, misses=1, evictions=0))
        assert (a.hits, a.misses, a.evictions) == (3, 4, 1)


class TestModelFingerprint:
    def test_deterministic(self):
        assert model_fingerprint({"a": 1}, (2, 3)) == model_fingerprint({"a": 1}, (2, 3))

    def test_sensitive_to_content_and_structure(self):
        assert model_fingerprint({"a": 1}) != model_fingerprint({"a": 2})
        assert model_fingerprint("ab", "c") != model_fingerprint("a", "bc")


class TestCacheStats:
    def test_empty_rate(self):
        assert CacheStats().hit_rate == 0.0


class TestPerfReport:
    def test_stage_accumulates(self):
        report = PerfReport()
        with report.stage("fit"):
            pass
        with report.stage("fit"):
            pass
        assert report.stage_calls("fit") == 2
        assert report.stage_seconds("fit") >= 0.0
        assert report.total_seconds >= report.stage_seconds("fit")

    def test_stage_records_on_exception(self):
        report = PerfReport()
        try:
            with report.stage("search"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert report.stage_calls("search") == 1

    def test_canonical_stage_order(self):
        report = PerfReport()
        report.add("search", 0.1)
        report.add("campaign", 0.2)
        report.add("custom", 0.3)
        assert report.stages() == ["campaign", "search", "custom"]

    def test_render_and_dict_include_cache(self):
        report = PerfReport()
        report.add("campaign", 1.25)
        cache = EstimateCache("fp")
        cache.put(cache.key_of(cfg(1, 1, 0, 0)), 400, 1.0)
        report.cache = cache
        text = report.render()
        assert "campaign" in text and "total" in text and "fp" in text
        payload = report.to_dict()
        assert payload["campaign"]["calls"] == 1
        assert payload["cache"]["entries"] == 1

    def test_unknown_stage_is_zero(self):
        report = PerfReport()
        assert report.stage_seconds("nope") == 0.0
        assert report.stage_calls("nope") == 0

    def test_record_walker_merges_and_renders(self):
        from repro.hpl.schedule import WalkerStats

        report = PerfReport()
        assert report.walker is None
        report.record_walker(
            WalkerStats(batch_calls=2, batch_sizes=10, batch_max=5, table_hits=3)
        )
        report.record_walker(
            WalkerStats(batch_calls=1, batch_sizes=4, batch_max=4, scalar_calls=2)
        )
        assert report.walker.batch_calls == 3
        assert report.walker.batch_sizes == 14
        assert report.walker.batch_max == 5  # merge keeps the maximum
        assert report.walker.scalar_calls == 2
        assert report.walker.table_hits == 3
        assert report.to_dict()["walker"]["batch_calls"] == 3
        assert "walker:" in report.render()

    def test_record_walker_does_not_alias_argument(self):
        from repro.hpl.schedule import WalkerStats

        report = PerfReport()
        stats = WalkerStats(batch_calls=1)
        report.record_walker(stats)
        stats.batch_calls = 99
        assert report.walker.batch_calls == 1
