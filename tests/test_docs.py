"""Documentation consistency checks.

Docs are deliverables here; these tests keep them honest:

* the generated API reference matches the code (regenerate with
  ``python tools/gen_api_docs.py`` after API changes);
* the README's example list matches the files on disk;
* every public symbol stays documented.
"""

import importlib.util
from pathlib import Path


ROOT = Path(__file__).resolve().parent.parent


def load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", ROOT / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiDocs:
    def test_api_md_is_fresh(self):
        generator = load_generator()
        committed = (ROOT / "docs" / "api.md").read_text()
        assert generator.generate() == committed, (
            "docs/api.md is stale; run `python tools/gen_api_docs.py`"
        )

    def test_no_undocumented_public_symbols(self):
        text = (ROOT / "docs" / "api.md").read_text()
        assert "(undocumented)" not in text

    def test_every_subpackage_appears(self):
        text = (ROOT / "docs" / "api.md").read_text()
        for package in ("repro.core", "repro.cluster", "repro.simnet", "repro.hpl",
                        "repro.measure", "repro.analysis", "repro.exts"):
            assert f"`{package}." in text


class TestReadme:
    def test_example_commands_match_files(self):
        readme = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            if path.name in ("quickstart.py",):
                assert f"examples/{path.name}" in readme
        # every example referenced in the README exists
        for line in readme.splitlines():
            if "python examples/" in line:
                name = line.split("python examples/")[1].split()[0]
                assert (ROOT / "examples" / name).exists(), name

    def test_docs_referenced_exist(self):
        readme = (ROOT / "README.md").read_text()
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in readme
            assert (ROOT / name).exists()


class TestExperimentsDoc:
    def test_every_headline_table_covered(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for token in (
            "Figure 1", "Figure 2", "Figure 3", "Table 3", "Table 4",
            "Table 6", "Table 7", "Table 9", "Figures 6/7", "Figures 8–11",
            "Figures 12–15",
        ):
            assert token in text, f"EXPERIMENTS.md missing {token}"

    def test_design_lists_per_experiment_index(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Per-experiment index" in text
        for bench in ("bench_table4_basic", "bench_table9_ns", "bench_fig02_netpipe"):
            assert bench in text
