"""Unit tests for the operation-count formulas."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hpl import workload


class TestTotals:
    def test_total_lu_flops_small_cases(self):
        # n=1: no work; n=2: 1 division + 2 flops (multiply-add) = 3
        assert workload.total_lu_flops(1) == pytest.approx(0.0, abs=1e-9)
        assert workload.total_lu_flops(2) == pytest.approx(3.0)

    def test_total_lu_flops_leading_term(self):
        n = 10_000
        assert workload.total_lu_flops(n) == pytest.approx((2 / 3) * n**3, rel=1e-3)

    def test_total_is_sum_of_columns(self):
        # direct summation of the elimination loop
        n = 57
        direct = sum((n - 1 - j) + 2 * (n - 1 - j) ** 2 for j in range(n))
        assert workload.total_lu_flops(n) == pytest.approx(direct)

    def test_hpl_benchmark_flops_convention(self):
        n = 1000
        assert workload.hpl_benchmark_flops(n) == pytest.approx(
            (2 / 3) * n**3 + 1.5 * n**2
        )

    def test_solve_flops(self):
        assert workload.solve_flops(100) == pytest.approx(2e4)

    def test_negative_orders_rejected(self):
        for fn in (workload.total_lu_flops, workload.solve_flops, workload.hpl_benchmark_flops):
            with pytest.raises(SimulationError):
                fn(-1)


class TestPhaseCounts:
    def test_blocked_phases_telescope_to_total(self):
        """pfact + trsm + gemm across all panel steps == unblocked LU."""
        for n, nb in [(64, 16), (100, 25), (30, 7), (8, 3)]:
            total = 0.0
            for j0 in range(0, n, nb):
                jend = min(j0 + nb, n)
                w = jend - j0
                total += workload.pfact_flops(n - j0, w)
                total += workload.update_flops(n - j0, w, n - jend)
            assert total == pytest.approx(workload.total_lu_flops(n), rel=1e-12)

    def test_pfact_degenerate_cases(self):
        assert workload.pfact_flops(0, 10) == 0.0
        assert workload.pfact_flops(10, 0) == 0.0

    def test_pfact_tall_panel_exceeds_square(self):
        assert workload.pfact_flops(1000, 8) > workload.pfact_flops(8, 8)

    def test_update_flops_zero_columns(self):
        assert workload.update_flops(100, 8, 0) == 0.0

    def test_gemm_flops(self):
        assert workload.gemm_flops(10, 4, 7) == pytest.approx(2 * 10 * 4 * 7)

    def test_trsm_flops_exact(self):
        # unit triangular solve: q * sum_{i<nb} 2i
        assert workload.trsm_flops(4, 10) == pytest.approx(10 * (2 * (1 + 2 + 3)))
        assert workload.trsm_flops(0, 10) == 0.0

    def test_negative_dims_rejected(self):
        with pytest.raises(SimulationError):
            workload.pfact_flops(-1, 4)
        with pytest.raises(SimulationError):
            workload.gemm_flops(1, -2, 3)
        with pytest.raises(SimulationError):
            workload.trsm_flops(-1, 3)


class TestBytes:
    def test_panel_bytes_includes_pivots(self):
        assert workload.panel_bytes(100, 8) == pytest.approx(100 * 8 * 8 + 8 * 4)

    def test_laswp_bytes_scalar_and_array(self):
        assert workload.laswp_bytes(8, 10) == pytest.approx(2 * 8 * 10 * 8)
        arr = workload.laswp_bytes(8, np.array([10.0, 0.0, 5.0]))
        assert arr.tolist() == [1280.0, 0.0, 640.0]

    def test_laswp_negative_rejected(self):
        with pytest.raises(SimulationError):
            workload.laswp_bytes(8, -1)
        with pytest.raises(SimulationError):
            workload.panel_bytes(-1, 8)
