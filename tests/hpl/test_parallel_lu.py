"""Tests for the functional distributed LU over the message-passing layer.

These tie the three HPL artifacts together: the serial numeric LU, the
distributed message-passing execution, and the closed-form schedule the
performance walker prices.
"""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.errors import SimulationError
from repro.hpl.lu import blocked_lu, lu_solve
from repro.hpl.parallel_lu import (
    distributed_lu,
    expected_ring_messages,
)

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


@pytest.fixture(scope="module")
def spec():
    return kishimoto_cluster()


def random_matrix(n, seed):
    return np.random.default_rng(seed).standard_normal((n, n))


class TestCorrectness:
    @pytest.mark.parametrize(
        "n,nb,shape",
        [(24, 4, (1, 1, 2, 1)), (30, 8, (1, 1, 4, 1)), (16, 16, (1, 1, 1, 1)),
         (33, 5, (0, 0, 3, 1)), (20, 4, (1, 2, 2, 1))],
    )
    def test_matches_serial_factorization(self, spec, n, nb, shape):
        a = random_matrix(n, seed=n)
        result = distributed_lu(spec, cfg(*shape), a.copy(), nb=nb)
        serial_lu, serial_piv = blocked_lu(a.copy(), nb=nb)
        assert np.array_equal(result.piv, serial_piv)
        assert np.allclose(result.lu, serial_lu, atol=1e-11)

    def test_solution_solves_system(self, spec):
        n = 28
        a = random_matrix(n, seed=3)
        b = np.random.default_rng(4).standard_normal(n)
        result = distributed_lu(spec, cfg(1, 1, 3, 1), a.copy(), nb=6)
        x = lu_solve(result.lu, result.piv, b)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_single_process_degenerates_to_serial(self, spec):
        n = 18
        a = random_matrix(n, seed=5)
        result = distributed_lu(spec, cfg(1, 1, 0, 0), a.copy(), nb=4)
        serial_lu, serial_piv = blocked_lu(a.copy(), nb=4)
        assert np.allclose(result.lu, serial_lu, atol=1e-12)
        assert result.messages_sent == {0: 0}

    def test_singular_matrix_detected(self, spec):
        with pytest.raises(SimulationError, match="singular"):
            distributed_lu(spec, cfg(1, 1, 1, 1), np.zeros((8, 8)), nb=4)

    def test_non_square_rejected(self, spec):
        with pytest.raises(SimulationError):
            distributed_lu(spec, cfg(1, 1, 0, 0), np.ones((4, 5)))


class TestScheduleAgreement:
    def test_message_counts_match_closed_form(self, spec):
        """Every rank's send count equals what the performance walker's
        ring model assumes — the executable proof that the priced schedule
        is the executed schedule."""
        n, nb = 40, 5
        for shape in [(1, 1, 3, 1), (1, 2, 4, 1), (0, 0, 8, 1)]:
            config = cfg(*shape)
            a = random_matrix(n, seed=7)
            result = distributed_lu(spec, config, a, nb=nb)
            assert result.messages_sent == expected_ring_messages(
                n, nb, config.total_processes
            )

    def test_virtual_time_positive_and_finite(self, spec):
        result = distributed_lu(spec, cfg(1, 1, 2, 1), random_matrix(24, 1), nb=6)
        assert 0 < result.virtual_time < 60

    def test_more_processes_more_messages(self, spec):
        n, nb = 40, 5
        few = distributed_lu(spec, cfg(1, 1, 1, 1), random_matrix(n, 2), nb=nb)
        many = distributed_lu(spec, cfg(1, 1, 7, 1), random_matrix(n, 2), nb=nb)
        assert sum(many.messages_sent.values()) > sum(few.messages_sent.values())

    def test_expected_ring_messages_closed_form(self):
        # 2 steps, 3 ranks: step 0 owner 0 (last=2), step 1 owner 1 (last=0)
        counts = expected_ring_messages(n=10, nb=5, size=3)
        assert counts == {0: 1, 1: 2, 2: 1}
        assert expected_ring_messages(10, 5, 1) == {0: 0}
