"""Unit tests for timing records and the memory model."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.presets import kishimoto_cluster
from repro.errors import SimulationError
from repro.hpl.memory import (
    memory_ratio,
    node_required_bytes,
    node_slowdowns,
    paging_slowdown,
    process_bytes,
)
from repro.hpl.timing import (
    PHASE_NAMES,
    PhaseTimes,
    ProcessTiming,
    aggregate_max_total,
    aggregate_mean,
)
from repro.units import DOUBLE, MB

KINDS = ("athlon", "pentium2")


class TestPhaseTimes:
    def test_paper_groupings(self):
        t = PhaseTimes(pfact=1, mxswp=2, bcast=3, update=4, laswp=5, uptrsv=6)
        assert t.rfact == 3  # pfact + mxswp
        assert t.ta == 1 + 4 + 6
        assert t.tc == 2 + 5 + 3
        assert t.total == t.ta + t.tc == 21

    def test_total_identity_is_exact(self):
        t = PhaseTimes(pfact=0.1, mxswp=0.01, bcast=2.5, update=77.7, laswp=0.3, uptrsv=0.02)
        assert t.total == pytest.approx(sum(t.as_dict().values()))

    def test_addition_and_scaling(self):
        a = PhaseTimes(pfact=1, update=2)
        b = PhaseTimes(bcast=3, update=4)
        assert (a + b).update == 6
        assert (a + b).bcast == 3
        assert a.scaled(2.0).pfact == 2

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            PhaseTimes(pfact=-0.1)
        with pytest.raises(SimulationError):
            PhaseTimes(update=float("nan"))
        with pytest.raises(SimulationError):
            PhaseTimes().scaled(-1.0)

    def test_dict_roundtrip(self):
        t = PhaseTimes(pfact=1.5, bcast=2.25)
        assert PhaseTimes.from_dict(t.as_dict()) == t

    def test_from_dict_rejects_unknown_phase(self):
        with pytest.raises(SimulationError):
            PhaseTimes.from_dict({"warmup": 1.0})

    def test_from_arrays(self):
        arrays = {name: np.array([1.0, 2.0]) for name in PHASE_NAMES}
        t = PhaseTimes.from_arrays(arrays, 1)
        assert t.pfact == 2.0


class TestAggregation:
    def test_mean(self):
        mean = aggregate_mean(
            [PhaseTimes(update=2.0), PhaseTimes(update=4.0)]
        )
        assert mean.update == pytest.approx(3.0)

    def test_max_total_selects_bottleneck(self):
        slow = PhaseTimes(update=10.0)
        fast = PhaseTimes(update=1.0, bcast=2.0)
        assert aggregate_max_total([fast, slow]) == slow

    def test_empty_aggregation_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_mean([])
        with pytest.raises(SimulationError):
            aggregate_max_total([])

    def test_process_timing_properties(self):
        pt = ProcessTiming(rank=3, kind_name="athlon", phases=PhaseTimes(update=2, bcast=1))
        assert pt.ta == 2 and pt.tc == 1 and pt.total == 3


class TestMemoryModel:
    def test_process_bytes_scales_inversely_with_p(self):
        assert process_bytes(8000, 8) < process_bytes(8000, 4)

    def test_matrix_share_dominates(self):
        n, p = 9600, 1
        assert process_bytes(n, p) == pytest.approx(n * n * DOUBLE, rel=0.05)

    def test_node_required_scales_with_procs(self):
        assert node_required_bytes(4800, 8, 2) == pytest.approx(
            2 * process_bytes(4800, 8)
        )

    def test_memory_ratio(self):
        usable = 720 * MB
        assert memory_ratio(1000, 1, 1, usable) < 0.1
        assert memory_ratio(10000, 1, 1, usable) > 1.0

    def test_paging_slowdown_piecewise(self):
        assert paging_slowdown(0.5) == 1.0
        assert paging_slowdown(1.0) == 1.0
        assert paging_slowdown(1.1, slope=10.0) == pytest.approx(2.0)

    def test_paging_validation(self):
        with pytest.raises(SimulationError):
            paging_slowdown(-0.1)
        with pytest.raises(SimulationError):
            paging_slowdown(1.0, slope=-1.0)
        with pytest.raises(SimulationError):
            memory_ratio(100, 1, 1, 0)
        with pytest.raises(SimulationError):
            process_bytes(100, 0)

    def test_athlon_pages_at_n10000_but_not_at_6400(self):
        """The cliff of the paper's Figure 3(a)."""
        spec = kishimoto_cluster()
        config = ClusterConfig.from_tuple(KINDS, (1, 1, 0, 0))
        slots = place_processes(spec, config)
        ok = node_slowdowns(spec, slots, 6400)
        paging = node_slowdowns(spec, slots, 10000)
        assert ok[0] == 1.0
        assert paging[0] > 1.3

    def test_five_pentium2_hold_n10000(self):
        """The same matrix spread over five nodes fits (Figure 3(a))."""
        spec = kishimoto_cluster()
        config = ClusterConfig.from_tuple(KINDS, (0, 0, 5, 1))
        slots = place_processes(spec, config)
        assert np.all(node_slowdowns(spec, slots, 10000) == 1.0)
