"""Golden tests: the vectorized multi-size walker against the reference loop.

The batched walker promises *bitwise* equality with the scalar walker
(same IEEE operations in the same order), so every assertion here is exact
— no tolerances.
"""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import SimulationError
from repro.hpl.schedule import (
    HPLParameters,
    WalkerStats,
    clear_panel_tables,
    panel_table,
    reset_walker_stats,
    simulate_schedule,
    simulate_schedule_batch,
    walker_stats,
)
from repro.hpl.timing import PHASE_NAMES
from repro.measure.grids import PAPER_KINDS


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(PAPER_KINDS, (p1, m1, p2, m2))


def assert_bitwise_equal(scalar_result, batch_result):
    assert scalar_result.n == batch_result.n
    assert scalar_result.wall_time_s == batch_result.wall_time_s
    for name in PHASE_NAMES:
        assert np.array_equal(
            scalar_result.phase_arrays[name], batch_result.phase_arrays[name]
        ), f"phase {name!r} differs"


def assert_batch_matches_scalar(
    spec, config, ns, params=None, compute_noise=None, comm_noise=None
):
    batch = simulate_schedule_batch(
        spec, config, ns, params, compute_noise, comm_noise
    )
    assert len(batch) == len(ns)
    for i, n in enumerate(ns):
        scalar = simulate_schedule(
            spec,
            config,
            n,
            params,
            None if compute_noise is None else compute_noise[i],
            None if comm_noise is None else comm_noise[i],
        )
        assert_bitwise_equal(scalar, batch[i])


class TestGoldenEquality:
    def test_multi_size_heterogeneous(self, spec):
        assert_batch_matches_scalar(spec, cfg(1, 2, 4, 1), [1000, 2000, 3200])

    def test_n_not_multiple_of_nb(self, spec):
        # nb=80: 1000 = 12*80 + 40 -> partial final panel
        assert_batch_matches_scalar(
            spec, cfg(1, 1, 8, 1), [1000, 1080, 999], HPLParameters(nb=80)
        )

    def test_single_panel_n_at_most_nb(self, spec):
        assert_batch_matches_scalar(
            spec, cfg(1, 2, 4, 1), [1, 60, 79, 80], HPLParameters(nb=80)
        )

    def test_single_process_no_bcast(self, spec):
        assert_batch_matches_scalar(spec, cfg(1, 1, 0, 0), [500, 1500, 2400])

    def test_per_rank_noise_rows(self, spec):
        config = cfg(1, 2, 8, 2)
        p = config.total_processes
        ns = [800, 1600, 2400]
        rng = np.random.default_rng(42)
        compute = np.exp(rng.normal(0.0, 0.05, size=(len(ns), p)))
        comm = np.exp(rng.normal(0.0, 0.08, size=(len(ns), p)))
        assert_batch_matches_scalar(
            spec, config, ns, compute_noise=compute, comm_noise=comm
        )

    def test_duplicate_sizes_with_distinct_noise(self, spec):
        config = cfg(0, 0, 4, 1)
        p = config.total_processes
        ns = [1200, 1200, 1200]
        rng = np.random.default_rng(7)
        compute = np.exp(rng.normal(0.0, 0.05, size=(len(ns), p)))
        comm = np.ones((len(ns), p))
        batch = simulate_schedule_batch(
            spec, config, ns, compute_noise=compute, comm_noise=comm
        )
        walls = {result.wall_time_s for result in batch}
        assert len(walls) == 3  # each row got its own noise
        assert_batch_matches_scalar(
            spec, config, ns, compute_noise=compute, comm_noise=comm
        )

    def test_nondefault_parameters(self, spec):
        params = HPLParameters(
            nb=64, ring_pipeline_factor=1.0, pfact_wait_factor=0.5
        )
        assert_batch_matches_scalar(spec, cfg(1, 3, 2, 2), [640, 1000], params)


class TestBatchValidation:
    def test_empty_sizes_rejected(self, spec):
        with pytest.raises(SimulationError, match="at least one size"):
            simulate_schedule_batch(spec, cfg(1, 1, 0, 0), [])

    def test_nonpositive_size_rejected(self, spec):
        with pytest.raises(SimulationError, match="matrix order"):
            simulate_schedule_batch(spec, cfg(1, 1, 0, 0), [100, 0])

    def test_bad_noise_shape_rejected(self, spec):
        config = cfg(1, 1, 4, 1)
        with pytest.raises(SimulationError, match="compute_noise"):
            simulate_schedule_batch(
                spec, config, [400, 800], compute_noise=np.ones((2, 3))
            )
        with pytest.raises(SimulationError, match="comm_noise"):
            simulate_schedule_batch(
                spec,
                config,
                [400, 800],
                comm_noise=np.ones((1, config.total_processes)),
            )

    def test_nonpositive_noise_rejected(self, spec):
        config = cfg(1, 1, 0, 0)
        noise = np.zeros((1, 1))
        with pytest.raises(SimulationError, match="positive"):
            simulate_schedule_batch(spec, config, [400], compute_noise=noise)


class TestPanelTable:
    def test_memoized_and_counted(self):
        clear_panel_tables()
        reset_walker_stats()
        first = panel_table(1000, 80, 6)
        again = panel_table(1000, 80, 6)
        assert first is again
        stats = walker_stats()
        assert stats.table_misses == 1
        assert stats.table_hits == 1

    def test_geometry_matches_reference_loop(self):
        n, nb, p = 1000, 80, 6
        table = panel_table(n, nb, p)
        nblocks = (n + nb - 1) // nb
        assert table.nblocks == nblocks
        last_cols = n - (nblocks - 1) * nb
        for k in range(nblocks):
            assert table.owner[k] == k % p
            assert table.width[k] == min(nb, n - k * nb)
            assert table.m_rows[k] == n - k * nb
            if k + 1 < nblocks:
                counts = np.bincount(
                    np.arange(k + 1, nblocks) % p, minlength=p
                ).astype(float)
                q = counts * nb
                q[(nblocks - 1) % p] -= nb - last_cols
            else:
                q = np.zeros(p)
            assert np.array_equal(table.q[k], q), f"q mismatch at step {k}"

    def test_invalid_arguments_rejected(self):
        with pytest.raises(SimulationError):
            panel_table(0, 80, 4)


class TestWalkerStats:
    def test_counters_accumulate(self, spec):
        reset_walker_stats()
        simulate_schedule(spec, cfg(1, 1, 0, 0), 400)
        simulate_schedule_batch(spec, cfg(1, 1, 0, 0), [400, 800])
        stats = walker_stats()
        assert stats.scalar_calls == 1
        assert stats.batch_calls == 1
        assert stats.batch_sizes == 2
        assert stats.batch_max == 2
        assert stats.scalar_seconds > 0 and stats.batch_seconds > 0

    def test_snapshot_delta_merge(self):
        stats = WalkerStats(scalar_calls=3, batch_calls=2, batch_sizes=10, batch_max=6)
        snap = stats.snapshot()
        stats.scalar_calls += 2
        stats.batch_sizes += 5
        delta = stats.delta(snap)
        assert delta.scalar_calls == 2
        assert delta.batch_sizes == 5
        assert delta.batch_max == 6  # max carries the current value
        merged = WalkerStats(batch_max=4)
        merged.merge(delta)
        assert merged.scalar_calls == 2
        assert merged.batch_max == 6
        assert set(delta.to_dict()) == set(merged.to_dict())
        assert "panel-table" in stats.describe()
