"""Numeric validation of the blocked LU implementation against real linear
algebra (NumPy/SciPy) and HPL's own residual criterion."""

import numpy as np
import pytest
import scipy.linalg

from repro.errors import SimulationError
from repro.hpl import workload
from repro.hpl.lu import (
    FlopCounter,
    apply_pivots,
    blocked_lu,
    hpl_reference_run,
    hpl_residual_check,
    lu_solve,
    permutation_vector,
    reconstruct,
)


def random_matrix(n, seed=0):
    return np.random.default_rng(seed).standard_normal((n, n))


class TestFactorization:
    @pytest.mark.parametrize("n,nb", [(1, 1), (5, 2), (32, 8), (64, 64), (100, 7), (128, 32)])
    def test_pa_equals_lu(self, n, nb):
        a = random_matrix(n, seed=n)
        lu, piv = blocked_lu(a.copy(), nb=nb)
        perm = permutation_vector(piv)
        pa = a[perm]
        assert np.allclose(reconstruct(lu, piv), pa, atol=1e-10 * n)

    def test_matches_scipy_getrf(self):
        a = random_matrix(48, seed=3)
        lu_ours, piv_ours = blocked_lu(a.copy(), nb=16)
        lu_scipy, piv_scipy = scipy.linalg.lu_factor(a)
        assert np.allclose(lu_ours, lu_scipy, atol=1e-10)
        assert np.array_equal(piv_ours, piv_scipy)

    def test_block_size_does_not_change_result(self):
        a = random_matrix(60, seed=4)
        lu1, piv1 = blocked_lu(a.copy(), nb=4)
        lu2, piv2 = blocked_lu(a.copy(), nb=60)
        assert np.allclose(lu1, lu2, atol=1e-11)
        assert np.array_equal(piv1, piv2)

    def test_partial_pivoting_selects_largest(self):
        a = np.array([[1e-12, 1.0], [1.0, 1.0]])
        _, piv = blocked_lu(a.copy(), nb=2)
        assert piv[0] == 1  # swapped with the larger row

    def test_singular_matrix_rejected(self):
        a = np.zeros((3, 3))
        with pytest.raises(SimulationError, match="singular"):
            blocked_lu(a, nb=2)

    def test_input_validation(self):
        with pytest.raises(SimulationError):
            blocked_lu(np.ones((2, 3)))
        with pytest.raises(SimulationError):
            blocked_lu(np.ones((2, 2), dtype=np.float32))
        with pytest.raises(SimulationError):
            blocked_lu(np.ones((2, 2)), nb=0)


class TestSolve:
    @pytest.mark.parametrize("n", [1, 7, 50, 120])
    def test_solves_linear_system(self, n):
        a = random_matrix(n, seed=n + 1)
        b = np.random.default_rng(n).standard_normal(n)
        lu, piv = blocked_lu(a.copy(), nb=32)
        x = lu_solve(lu, piv, b)
        assert np.allclose(a @ x, b, atol=1e-8 * n)

    def test_matches_numpy_solve(self):
        a = random_matrix(40, seed=9)
        b = np.arange(40, dtype=float)
        lu, piv = blocked_lu(a.copy(), nb=8)
        assert np.allclose(lu_solve(lu, piv, b), np.linalg.solve(a, b), atol=1e-9)

    def test_rhs_length_mismatch(self):
        lu, piv = blocked_lu(random_matrix(4).copy(), nb=2)
        with pytest.raises(SimulationError):
            lu_solve(lu, piv, np.ones(5))

    def test_apply_pivots_is_permutation(self):
        b = np.arange(6, dtype=float)
        piv = np.array([3, 1, 4, 3, 5, 5])
        out = apply_pivots(b, piv)
        assert sorted(out.tolist()) == b.tolist()


class TestResidualCheck:
    def test_good_solution_passes(self):
        n = 64
        a = random_matrix(n, seed=2)
        b = np.random.default_rng(5).standard_normal(n)
        x = np.linalg.solve(a, b)
        value, passed = hpl_residual_check(a, x, b)
        assert passed and value < 1.0

    def test_corrupted_solution_fails(self):
        n = 64
        a = random_matrix(n, seed=2)
        b = np.random.default_rng(5).standard_normal(n)
        x = np.linalg.solve(a, b) + 0.1
        _, passed = hpl_residual_check(a, x, b)
        assert not passed

    def test_empty_system_rejected(self):
        with pytest.raises(SimulationError):
            hpl_residual_check(np.zeros((0, 0)), np.zeros(0), np.zeros(0))

    def test_reference_run_end_to_end(self):
        residual, passed, counter = hpl_reference_run(96, nb=32, seed=1)
        assert passed
        assert counter.total > 0


class TestFlopCounting:
    @pytest.mark.parametrize("n,nb", [(64, 16), (100, 25), (96, 96)])
    def test_counted_flops_match_closed_form(self, n, nb):
        counter = FlopCounter()
        blocked_lu(random_matrix(n, seed=n).copy(), nb=nb, counter=counter)
        expected = workload.total_lu_flops(n)
        assert counter.total == pytest.approx(expected, rel=1e-12)

    def test_phase_split_present(self):
        counter = FlopCounter()
        blocked_lu(random_matrix(64, seed=0).copy(), nb=16, counter=counter)
        assert set(counter.phases) == {"pfact", "update"}
        # update (O(n^3/..) GEMM) dominates pfact for multi-block runs
        assert counter.phases["update"] > counter.phases["pfact"]

    def test_solve_flops_counted(self):
        n = 32
        counter = FlopCounter()
        lu, piv = blocked_lu(random_matrix(n, seed=0).copy(), nb=8)
        lu_solve(lu, piv, np.ones(n), counter=counter)
        assert counter.phases["uptrsv"] == pytest.approx(workload.solve_flops(n))
