"""Tests for the HPL performance simulator and run driver — including the
calibration shape checks against the paper's published numbers."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster, single_node_cluster
from repro.errors import SimulationError
from repro.hpl.driver import NoiseSpec, run_hpl, run_hpl_batch, sweep_sizes
from repro.hpl.schedule import HPLParameters, simulate_schedule
from repro.hpl.timing import PHASE_NAMES
from repro.hpl.workload import hpl_benchmark_flops

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


@pytest.fixture(scope="module")
def spec():
    return kishimoto_cluster()


class TestScheduleBasics:
    def test_phase_arrays_cover_all_processes(self, spec):
        result = simulate_schedule(spec, cfg(1, 2, 8, 1), 1600)
        assert result.size == 10
        for name in PHASE_NAMES:
            assert result.phase_arrays[name].shape == (10,)
            assert np.all(result.phase_arrays[name] >= 0)

    def test_wall_at_least_max_busy(self, spec):
        result = simulate_schedule(spec, cfg(1, 1, 8, 1), 3200)
        assert result.wall_time_s >= result.busy_times().max() * 0.999

    def test_single_process_has_no_communication(self, spec):
        result = simulate_schedule(spec, cfg(1, 1, 0, 0), 1600)
        timing = result.process_timing(0)
        assert timing.phases.bcast == 0.0
        assert timing.phases.mxswp > 0.0  # pivot bookkeeping is local but counted
        assert timing.phases.update > 0.0

    def test_multi_pe_runs_have_bcast(self, spec):
        result = simulate_schedule(spec, cfg(1, 1, 8, 1), 1600)
        for timing in result.all_timings():
            assert timing.phases.bcast > 0.0

    def test_invalid_order_rejected(self, spec):
        with pytest.raises(SimulationError):
            simulate_schedule(spec, cfg(1, 1, 0, 0), 0)

    def test_noise_arrays_validated(self, spec):
        with pytest.raises(SimulationError):
            simulate_schedule(spec, cfg(1, 1, 0, 0), 400, compute_noise=np.ones(5))
        with pytest.raises(SimulationError):
            simulate_schedule(
                spec, cfg(1, 1, 0, 0), 400, compute_noise=np.array([-1.0])
            )

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            HPLParameters(nb=0)
        with pytest.raises(SimulationError):
            HPLParameters(pfact_efficiency=0.0)
        with pytest.raises(SimulationError):
            HPLParameters(ring_pipeline_factor=1.5)
        with pytest.raises(SimulationError):
            HPLParameters(forward_interference=-0.1)
        with pytest.raises(SimulationError):
            HPLParameters(same_cpu_handoff_s=-1e-3)

    def test_time_monotone_in_n(self, spec):
        config = cfg(1, 1, 8, 1)
        times = [
            simulate_schedule(spec, config, n).wall_time_s
            for n in (800, 1600, 3200, 4800)
        ]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_update_dominates_at_large_n(self, spec):
        """The paper: update >> rfact, uptrsv for large problems."""
        result = simulate_schedule(spec, cfg(1, 1, 8, 1), 9600)
        for timing in result.all_timings():
            assert timing.phases.update > 20 * timing.phases.pfact
            assert timing.phases.update > 20 * timing.phases.uptrsv


class TestDriver:
    def test_gflops_definition(self, spec):
        result = run_hpl(spec, cfg(1, 1, 0, 0), 1600)
        expected = hpl_benchmark_flops(1600) / result.wall_time_s / 1e9
        assert result.gflops == pytest.approx(expected)

    def test_noise_reproducible(self, spec):
        noise = NoiseSpec()
        a = run_hpl(spec, cfg(1, 2, 4, 1), 1600, noise=noise, seed=5)
        b = run_hpl(spec, cfg(1, 2, 4, 1), 1600, noise=noise, seed=5)
        assert a.wall_time_s == b.wall_time_s

    def test_noise_varies_with_seed_and_trial(self, spec):
        noise = NoiseSpec()
        base = run_hpl(spec, cfg(1, 1, 4, 1), 1600, noise=noise, seed=5)
        other_seed = run_hpl(spec, cfg(1, 1, 4, 1), 1600, noise=noise, seed=6)
        other_trial = run_hpl(spec, cfg(1, 1, 4, 1), 1600, noise=noise, seed=5, trial=1)
        assert base.wall_time_s != other_seed.wall_time_s
        assert base.wall_time_s != other_trial.wall_time_s

    def test_noise_magnitude_is_small(self, spec):
        clean = run_hpl(spec, cfg(1, 1, 8, 1), 3200)
        noisy = run_hpl(spec, cfg(1, 1, 8, 1), 3200, noise=NoiseSpec(), seed=1)
        assert abs(noisy.wall_time_s / clean.wall_time_s - 1) < 0.10

    def test_kind_phases_and_bottleneck(self, spec):
        result = run_hpl(spec, cfg(1, 1, 8, 1), 3200)
        assert result.kind_names() == ["athlon", "pentium2"]
        # Pentium-IIs are the bottleneck in a balanced distribution
        assert result.bottleneck_kind() == "pentium2"
        assert result.kind_ta("athlon") < result.kind_ta("pentium2")

    def test_kind_phases_unknown_kind(self, spec):
        result = run_hpl(spec, cfg(1, 1, 0, 0), 400)
        with pytest.raises(SimulationError):
            result.kind_phases("pentium2")

    def test_sweep_sizes(self, spec):
        results = sweep_sizes(spec, cfg(1, 1, 0, 0), [400, 800])
        assert sorted(results) == [400, 800]
        assert results[800].wall_time_s > results[400].wall_time_s


class TestDriverBatch:
    """run_hpl_batch must be bit-identical to per-call run_hpl."""

    def assert_same(self, a, b):
        assert a.n == b.n
        assert a.wall_time_s == b.wall_time_s
        assert a.gflops == b.gflops
        for name in PHASE_NAMES:
            assert np.array_equal(
                a.schedule.phase_arrays[name], b.schedule.phase_arrays[name]
            )

    def test_noise_free_matches_scalar(self, spec):
        config = cfg(1, 2, 4, 1)
        ns = [800, 1600, 2400]
        batch = run_hpl_batch(spec, config, ns)
        assert [r.n for r in batch] == ns
        for result, n in zip(batch, ns):
            self.assert_same(result, run_hpl(spec, config, n))

    def test_noisy_matches_scalar_per_size(self, spec):
        config = cfg(1, 1, 8, 1)
        noise = NoiseSpec()
        ns = [1600, 3200, 1600]  # duplicate sizes draw identical streams
        batch = run_hpl_batch(spec, config, ns, noise=noise, seed=9)
        for result, n in zip(batch, ns):
            self.assert_same(result, run_hpl(spec, config, n, noise=noise, seed=9))
        assert batch[0].wall_time_s == batch[2].wall_time_s

    def test_per_entry_trial_sequence(self, spec):
        config = cfg(1, 1, 4, 1)
        noise = NoiseSpec()
        ns = [1600, 1600, 1600]
        trials = [0, 1, 2]
        batch = run_hpl_batch(spec, config, ns, noise=noise, seed=3, trial=trials)
        for result, n, t in zip(batch, ns, trials):
            self.assert_same(
                result, run_hpl(spec, config, n, noise=noise, seed=3, trial=t)
            )
        walls = {r.wall_time_s for r in batch}
        assert len(walls) == 3  # each trial gets its own stream

    def test_trial_length_mismatch_rejected(self, spec):
        with pytest.raises(SimulationError, match="trial"):
            run_hpl_batch(spec, cfg(1, 1, 0, 0), [400, 800], trial=[0])

    def test_empty_sizes_rejected(self, spec):
        with pytest.raises(SimulationError):
            run_hpl_batch(spec, cfg(1, 1, 0, 0), [])


class TestCalibrationShapes:
    """The paper-anchored behaviours DESIGN.md commits to."""

    def test_athlon_alone_near_paper_times(self, spec):
        # Table 4: (1,1,0,0) at N=3200 ran in 20.4 s; Table 7: 2.82 s at 1600.
        t3200 = run_hpl(spec, cfg(1, 1, 0, 0), 3200).wall_time_s
        t1600 = run_hpl(spec, cfg(1, 1, 0, 0), 1600).wall_time_s
        assert t3200 == pytest.approx(20.4, rel=0.10)
        assert t1600 == pytest.approx(2.82, rel=0.15)

    def test_athlon_only_wins_small_n(self, spec):
        """Figure 3(b) / Table 4: for N <= 3200 the Athlon alone is best."""
        for n in (1600, 3200):
            athlon = run_hpl(spec, cfg(1, 1, 0, 0), n).wall_time_s
            cluster = run_hpl(spec, cfg(1, 1, 8, 1), n).wall_time_s
            assert athlon < cluster

    def test_full_cluster_wins_large_n(self, spec):
        for n in (6400, 9600):
            athlon = run_hpl(spec, cfg(1, 1, 0, 0), n).wall_time_s
            cluster = run_hpl(spec, cfg(1, 2, 8, 1), n).wall_time_s
            assert cluster < athlon * 0.85

    def test_optimal_m1_grows_with_n(self, spec):
        """The paper's Tables 4/7: the best Athlon process count rises
        from 1-2 at N=4800 to 3-4 at N=9600."""

        def best_m1(n):
            times = {
                m: run_hpl(spec, cfg(1, m, 8, 1), n).wall_time_s
                for m in range(1, 7)
            }
            return min(times, key=times.get)

        assert best_m1(4800) <= 2
        assert 3 <= best_m1(9600) <= 4

    def test_m5_m6_never_optimal(self, spec):
        """Over-subscribing beyond the speed ratio always loses (Fig 3(b))."""
        for n in (4800, 9600):
            t4 = run_hpl(spec, cfg(1, 4, 8, 1), n).wall_time_s
            t6 = run_hpl(spec, cfg(1, 6, 8, 1), n).wall_time_s
            assert t6 > t4

    def test_athlon_about_4_5x_pentium2(self, spec):
        athlon = run_hpl(spec, cfg(1, 1, 0, 0), 4800).wall_time_s
        p2 = run_hpl(spec, cfg(0, 0, 1, 1), 4800).wall_time_s
        assert 3.5 <= p2 / athlon <= 5.5

    def test_memory_cliff_at_n10000(self, spec):
        """Figure 3(a): the lone Athlon collapses at N=10000; five
        Pentium-IIs do not."""
        ath_9600 = run_hpl(spec, cfg(1, 1, 0, 0), 9600).gflops
        ath_10000 = run_hpl(spec, cfg(1, 1, 0, 0), 10000).gflops
        p2_10000 = run_hpl(spec, cfg(0, 0, 5, 1), 10000).gflops
        assert ath_10000 < 0.75 * ath_9600
        assert p2_10000 > ath_10000

    def test_mpich_version_effect(self):
        """Figure 1: multiprocessing collapses under 1.2.1, mostly works
        under 1.2.2."""
        old = single_node_cluster(mpich="1.2.1")
        new = single_node_cluster(mpich="1.2.2")
        config = ClusterConfig.of(athlon=(1, 4))
        n = 5000
        g_old = run_hpl(old, config, n).gflops
        g_new = run_hpl(new, config, n).gflops
        g_single = run_hpl(new, ClusterConfig.of(athlon=(1, 1)), n).gflops
        assert g_old < 0.80 * g_new  # drastic vs mild degradation
        assert g_new > 0.70 * g_single  # 1.2.2 keeps multiprocessing viable
