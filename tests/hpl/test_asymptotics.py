"""Asymptotic-order tests: the substrate obeys the paper's Section 3.2
complexity analysis.

The whole N-T model rests on ``Ta = O(N^3)`` and ``Tc = O(N^2)``; these
tests fit log-log slopes to the *simulated* phase times in the saturated
regime and check the exponents — i.e., the substrate really produces data
with the structure the models assume.
"""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.hpl.driver import run_hpl

KINDS = ("athlon", "pentium2")
# saturated regime (above the efficiency knee at 1800)
SIZES = np.array([3200, 4800, 6400, 9600], dtype=float)


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


@pytest.fixture(scope="module")
def spec():
    return kishimoto_cluster()


def loglog_slope(sizes, values):
    values = np.asarray(values, dtype=float)
    assert np.all(values > 0)
    slope, _ = np.polyfit(np.log(sizes), np.log(values), 1)
    return slope


class TestOrders:
    @pytest.fixture(scope="class")
    def phases(self, spec):
        """Per-kind phase groups across the size sweep for (1,2,8,1)."""
        out = {"ta": [], "tc": [], "update": [], "bcast": [], "pfact": []}
        for n in SIZES:
            result = run_hpl(spec, cfg(1, 2, 8, 1), int(n))
            p2 = result.kind_phases("pentium2")
            out["ta"].append(p2.ta)
            out["tc"].append(p2.tc)
            out["update"].append(p2.update)
            out["bcast"].append(p2.bcast)
            out["pfact"].append(p2.pfact)
        return out

    def test_ta_is_cubic(self, phases):
        assert loglog_slope(SIZES, phases["ta"]) == pytest.approx(3.0, abs=0.25)

    def test_update_is_cubic(self, phases):
        assert loglog_slope(SIZES, phases["update"]) == pytest.approx(3.0, abs=0.25)

    def test_tc_is_quadratic(self, phases):
        assert loglog_slope(SIZES, phases["tc"]) == pytest.approx(2.0, abs=0.45)

    def test_bcast_is_quadratic(self, phases):
        assert loglog_slope(SIZES, phases["bcast"]) == pytest.approx(2.0, abs=0.45)

    def test_update_dominates_increasingly(self, phases):
        """Ta/Tc grows with N — why extrapolation to 9600 works (the paper's
        explanation for the Basic model's good N = 9600 row)."""
        ratios = np.asarray(phases["ta"]) / np.asarray(phases["tc"])
        assert np.all(np.diff(ratios) > 0)


class TestScalingInP:
    def test_ta_scales_inversely_with_p(self, spec):
        """The P-T model's k7/P term: per-process compute ~ 1/P."""
        n = 4800
        ta = {}
        for p2 in (2, 4, 8):
            result = run_hpl(spec, cfg(0, 0, p2, 1), n)
            ta[p2] = result.kind_phases("pentium2").ta
        assert ta[4] == pytest.approx(ta[2] / 2, rel=0.15)
        assert ta[8] == pytest.approx(ta[2] / 4, rel=0.20)

    def test_bcast_grows_with_p(self, spec):
        """The P-T model's k9*P term: ring waits grow with the ring."""
        n = 4800
        result_small = run_hpl(spec, cfg(0, 0, 4, 1), n)
        result_large = run_hpl(spec, cfg(0, 0, 8, 1), n)
        assert (
            result_large.kind_phases("pentium2").bcast
            > result_small.kind_phases("pentium2").bcast
        )

    def test_laswp_shrinks_with_p(self, spec):
        """The P-T model's k10/P term: local row swaps shrink with P."""
        n = 4800
        result_small = run_hpl(spec, cfg(0, 0, 2, 1), n)
        result_large = run_hpl(spec, cfg(0, 0, 8, 1), n)
        assert (
            result_large.kind_phases("pentium2").laswp
            < result_small.kind_phases("pentium2").laswp
        )
