"""Tests for HPL.dat parsing, rendering and sweep execution."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.errors import SimulationError
from repro.exts.grid2d import GridShape
from repro.hpl.hpldat import HPLDat, parse_hpl_dat, render_hpl_dat, run_dat

REALISTIC = """\
HPLinpack benchmark input file
Innovative Computing Laboratory, University of Tennessee
HPL.out      output file name (if any)
6            device out (6=stdout,7=stderr,file)
2            # of problems sizes (N)
1600 3200    Ns
2            # of NBs
64 80        NBs
0            PMAP process mapping (0=Row-,1=Column-major)
2            # of process grids (P x Q)
1 3          Ps
9 3          Qs
16.0         threshold
"""


class TestParse:
    def test_parse_realistic_file(self):
        dat = parse_hpl_dat(REALISTIC)
        assert dat.sizes == (1600, 3200)
        assert dat.block_sizes == (64, 80)
        assert dat.grids == (GridShape(1, 9), GridShape(3, 3))
        assert dat.threshold == 16.0
        assert dat.run_count == 8

    def test_roundtrip(self):
        dat = HPLDat(
            sizes=(400, 800),
            block_sizes=(32,),
            grids=(GridShape(2, 2),),
            threshold=8.0,
        )
        assert parse_hpl_dat(render_hpl_dat(dat)) == dat

    def test_blank_lines_tolerated(self):
        assert parse_hpl_dat(REALISTIC.replace("\n6 ", "\n\n6 ")).run_count == 8

    def test_too_short_rejected(self):
        with pytest.raises(SimulationError, match="too short"):
            parse_hpl_dat("just\nfour\nshort\nlines")

    def test_count_mismatch_rejected(self):
        broken = REALISTIC.replace("1600 3200    Ns", "1600")
        with pytest.raises(SimulationError, match="expected 2 values"):
            parse_hpl_dat(broken)

    def test_count_mismatch_with_comment_rejected(self):
        # the comment word is not silently taken as a value
        broken = REALISTIC.replace("1600 3200    Ns", "1600 Ns")
        with pytest.raises(SimulationError, match="bad Ns values"):
            parse_hpl_dat(broken)

    def test_non_numeric_rejected(self):
        broken = REALISTIC.replace("2            # of problems", "two          # of problems")
        with pytest.raises(SimulationError, match="bad # of problem sizes"):
            parse_hpl_dat(broken)

    def test_default_threshold_when_missing(self):
        trimmed = "\n".join(REALISTIC.splitlines()[:-1]) + "\n"
        assert parse_hpl_dat(trimmed).threshold == 16.0


class TestValidation:
    def test_invalid_sizes(self):
        with pytest.raises(SimulationError):
            HPLDat(sizes=())
        with pytest.raises(SimulationError):
            HPLDat(sizes=(0,))
        with pytest.raises(SimulationError):
            HPLDat(block_sizes=())
        with pytest.raises(SimulationError):
            HPLDat(grids=())
        with pytest.raises(SimulationError):
            HPLDat(threshold=0.0)

    def test_runs_order(self):
        dat = HPLDat(sizes=(100, 200), block_sizes=(8,), grids=(GridShape(1, 2),))
        assert [(n, nb) for n, nb, _ in dat.runs()] == [(100, 8), (200, 8)]


class TestRunDat:
    def test_executes_full_sweep(self):
        spec = kishimoto_cluster()
        config = ClusterConfig.from_tuple(("athlon", "pentium2"), (1, 1, 8, 1))
        dat = parse_hpl_dat(REALISTIC)
        results = run_dat(spec, config, dat)
        assert len(results) == 8
        assert all(r.wall_time_s > 0 for r in results)
        # NB affects the result: same (N, grid), different NB, different time
        assert results[0].wall_time_s != results[2].wall_time_s

    def test_grid_size_must_match_processes(self):
        spec = kishimoto_cluster()
        config = ClusterConfig.from_tuple(("athlon", "pentium2"), (1, 1, 4, 1))
        dat = HPLDat(sizes=(400,), block_sizes=(32,), grids=(GridShape(1, 9),))
        with pytest.raises(SimulationError, match="supplies 5"):
            run_dat(spec, config, dat)
