"""Unit tests for 1-D block-cyclic distribution arithmetic."""

import pytest

from repro.errors import SimulationError
from repro.hpl.blockcyclic import (
    block_owner,
    column_owner,
    columns_after,
    global_to_local,
    local_to_global,
    numroc,
    panel_rows,
    step_starts,
)


class TestNumroc:
    def test_partition_sums_to_n(self):
        for n, nb, p in [(100, 7, 3), (6400, 80, 9), (5, 8, 4), (0, 4, 2)]:
            assert sum(numroc(n, nb, i, p) for i in range(p)) == n

    def test_single_process_owns_everything(self):
        assert numroc(1234, 32, 0, 1) == 1234

    def test_block_multiple_even_split(self):
        # 12 blocks of 10 over 4 procs -> 3 blocks = 30 columns each
        for i in range(4):
            assert numroc(120, 10, i, 4) == 30

    def test_partial_last_block(self):
        # 25 columns, nb=10, 2 procs: blocks [10, 10, 5]; proc0 gets 10+5
        assert numroc(25, 10, 0, 2) == 15
        assert numroc(25, 10, 1, 2) == 10

    def test_invalid_args(self):
        with pytest.raises(SimulationError):
            numroc(-1, 4, 0, 2)
        with pytest.raises(SimulationError):
            numroc(10, 0, 0, 2)
        with pytest.raises(SimulationError):
            numroc(10, 4, 2, 2)
        with pytest.raises(SimulationError):
            numroc(10, 4, 0, 0)


class TestOwnership:
    def test_block_owner_round_robin(self):
        assert [block_owner(j, 3) for j in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_column_owner_follows_blocks(self):
        assert column_owner(0, 10, 3) == 0
        assert column_owner(9, 10, 3) == 0
        assert column_owner(10, 10, 3) == 1
        assert column_owner(30, 10, 3) == 0

    def test_global_local_roundtrip(self):
        n, nb, p = 137, 8, 5
        for j in range(n):
            owner, local = global_to_local(j, nb, p)
            assert local_to_global(local, owner, nb, p) == j

    def test_local_indices_are_dense(self):
        n, nb, p = 97, 8, 3
        for proc in range(p):
            locals_seen = sorted(
                global_to_local(j, nb, p)[1]
                for j in range(n)
                if column_owner(j, nb, p) == proc
            )
            assert locals_seen == list(range(numroc(n, nb, proc, p)))

    def test_invalid_args(self):
        with pytest.raises(SimulationError):
            block_owner(-1, 3)
        with pytest.raises(SimulationError):
            column_owner(5, 0, 3)
        with pytest.raises(SimulationError):
            local_to_global(-1, 0, 4, 2)


class TestColumnsAfter:
    def test_sums_to_trailing_width(self):
        n, nb, p = 640, 80, 9
        for j0 in range(0, n + 1, nb):
            counts = columns_after(j0, n, nb, p)
            assert counts.sum() == n - j0

    def test_zero_at_end(self):
        assert columns_after(100, 100, 10, 4).sum() == 0

    def test_matches_numroc_difference(self):
        n, nb, p = 250, 16, 3
        j0 = 64
        counts = columns_after(j0, n, nb, p)
        for proc in range(p):
            expected = numroc(n, nb, proc, p) - numroc(j0, nb, proc, p)
            assert counts[proc] == expected

    def test_out_of_range_j0(self):
        with pytest.raises(SimulationError):
            columns_after(101, 100, 10, 2)
        with pytest.raises(SimulationError):
            columns_after(-1, 100, 10, 2)


class TestSteps:
    def test_step_starts(self):
        assert step_starts(100, 30).tolist() == [0, 30, 60, 90]
        assert step_starts(90, 30).tolist() == [0, 30, 60]

    def test_panel_rows(self):
        assert panel_rows(100, 0) == 100
        assert panel_rows(100, 70) == 30
        with pytest.raises(SimulationError):
            panel_rows(100, 101)
