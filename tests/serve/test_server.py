"""End-to-end service tests over a real socket.

These are the acceptance tests of the serving layer: served numbers are
*bitwise* those of direct :class:`~repro.core.estimator.Estimator` calls
on the same loaded pipeline, concurrent traffic coalesces into
micro-batches, overload sheds typed ``Overloaded`` replies instead of
hanging, shutdown drains everything admitted, and a re-saved pipeline
directory hot-swaps without dropping requests.
"""

import asyncio
import json
import shutil
from pathlib import Path

from repro.cluster.config import ClusterConfig
from repro.core.persistence import load_pipeline
from repro.serve import EstimationServer, ModelRegistry, fire_concurrent

FIXTURE = Path(__file__).parent.parent / "golden" / "format1_pipeline"


def serve(coro_factory, **server_kwargs):
    """Start a server on an ephemeral port, run the scenario, shut down."""

    async def main():
        registry = server_kwargs.pop("registry", None)
        if registry is None:
            registry = ModelRegistry()
            registry.add("golden", FIXTURE)
        server_kwargs.setdefault("refresh_interval_s", None)
        server = EstimationServer(registry, port=0, **server_kwargs)
        host, port = await server.start()
        try:
            return await coro_factory(server, host, port)
        finally:
            await server.shutdown()

    return asyncio.run(main())


async def roundtrip(host, port, payload):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    line = await reader.readline()
    writer.close()
    return json.loads(line)


class TestGoldenIdentity:
    def test_served_estimates_bitwise_equal_direct_calls(self):
        """Acceptance: 64 concurrent queries, every total bitwise equal
        to the direct Estimator path on the same loaded pipeline."""
        sizes = [1600 + 80 * i for i in range(64)]
        payloads = [
            {"op": "estimate", "pipeline": "golden", "config": [1, 2, 8, 1], "n": n}
            for n in sizes
        ]

        async def scenario(server, host, port):
            return await fire_concurrent(host, port, payloads, concurrency=64)

        replies, _ = serve(scenario)
        direct = load_pipeline(FIXTURE)
        config = ClusterConfig.from_tuple(direct.plan.kinds, (1, 2, 8, 1))
        want = direct.estimate_totals(config, sizes)
        assert len(replies) == 64
        for reply, n, expected in zip(replies, sizes, want):
            assert reply["ok"], reply
            assert reply["result"]["ns"] == [n]
            assert reply["result"]["totals"] == [float(expected)]  # bitwise

    def test_concurrency_actually_batches(self):
        payloads = [
            {"op": "estimate", "pipeline": "golden", "config": [1, 2, 8, 1],
             "n": 1600 + 80 * i}
            for i in range(32)
        ]

        async def scenario(server, host, port):
            await fire_concurrent(host, port, payloads, concurrency=32)
            return server.metrics

        metrics = serve(scenario, batch_window_s=0.01)
        assert metrics.batch_sizes.max > 1, "no coalescing happened"
        assert metrics.coalesced_requests > 0

    def test_optimize_matches_direct_ranking(self):
        async def scenario(server, host, port):
            return await roundtrip(
                host, port,
                {"id": 1, "op": "optimize", "pipeline": "golden", "n": 3200, "top": 5},
            )

        reply = serve(scenario)
        direct = load_pipeline(FIXTURE)
        outcome = direct.optimize(3200)
        kinds = direct.plan.kinds
        assert reply["ok"]
        assert reply["result"]["sizes"][0]["ranking"] == [
            {"config": list(e.config.as_flat_tuple(kinds)), "estimate_s": e.estimate_s}
            for e in outcome.top(5)
        ]


class TestOverload:
    def test_overload_returns_typed_replies_not_hangs(self):
        """Acceptance: saturating a tiny queue yields Overloaded replies
        with backoff hints; every request is answered, nothing crashes."""
        payloads = [
            {"op": "estimate", "pipeline": "golden", "config": [1, 2, 8, 1],
             "n": 1600 + 80 * i}
            for i in range(48)
        ]

        async def scenario(server, host, port):
            return await fire_concurrent(host, port, payloads, concurrency=48)

        replies, _ = serve(scenario, max_pending=2, batch_window_s=0.05, max_batch=4)
        assert len(replies) == 48  # nothing dropped or hung
        shed = [r for r in replies if not r["ok"]]
        served = [r for r in replies if r["ok"]]
        assert served, "service answered nothing"
        assert shed, "tiny queue never shed under 48-way concurrency"
        for reply in shed:
            assert reply["error"]["type"] == "Overloaded"
            assert reply["error"]["capacity"] == 2
            assert reply["error"]["retry_after_ms"] > 0


class TestControlPlane:
    def test_ping_models_stats(self):
        async def scenario(server, host, port):
            ping = await roundtrip(host, port, {"id": 1, "op": "ping"})
            models = await roundtrip(
                host, port, {"id": 2, "op": "models", "pipeline": "golden"}
            )
            await roundtrip(
                host, port,
                {"id": 3, "op": "estimate", "pipeline": "golden",
                 "config": [1, 2, 8, 1], "n": 3200},
            )
            stats = await roundtrip(host, port, {"id": 4, "op": "stats"})
            return ping, models, stats

        ping, models, stats = serve(scenario)
        assert ping["result"]["pipelines"] == ["golden"]
        assert models["result"]["count"] == 42
        result = stats["result"]
        assert result["endpoints"]["estimate"]["requests"] == 1
        assert result["endpoints"]["estimate"]["latency"]["count"] == 1
        assert result["cache"]["pipelines"]["golden"]["cache"]["misses"] == 1

    def test_bad_request_replies_typed_with_id(self):
        async def scenario(server, host, port):
            bad_json = await roundtrip(host, port, "this is not json")
            bad_op = await roundtrip(host, port, {"id": 42, "op": "frobnicate"})
            unknown = await roundtrip(
                host, port,
                {"id": 43, "op": "estimate", "pipeline": "nope",
                 "config": [1, 1], "n": 400},
            )
            return bad_json, bad_op, unknown

        async def roundtrip(host, port, payload):
            reader, writer = await asyncio.open_connection(host, port)
            text = payload if isinstance(payload, str) else json.dumps(payload)
            writer.write((text + "\n").encode())
            await writer.drain()
            line = await reader.readline()
            writer.close()
            return json.loads(line)

        bad_json, bad_op, unknown = serve(scenario)
        assert bad_json["ok"] is False
        assert bad_json["error"]["type"] == "BadRequest"
        assert bad_op["id"] == 42 and bad_op["error"]["type"] == "BadRequest"
        assert unknown["id"] == 43
        assert unknown["error"]["type"] == "UnknownPipeline"


class TestGracefulShutdown:
    def test_inflight_requests_answered_before_exit(self):
        """Requests admitted before shutdown all get real replies."""

        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            for i in range(16):
                payload = {"id": i, "op": "estimate", "pipeline": "golden",
                           "config": [1, 2, 8, 1], "n": 1600 + 80 * i}
                writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()
            await asyncio.sleep(0.01)  # let the reader loop admit them
            await server.shutdown()
            replies = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                replies.append(json.loads(line))
            writer.close()
            return replies

        replies = serve(scenario, batch_window_s=0.05)
        assert len(replies) == 16
        answered = [r for r in replies if r["ok"]]
        refused = [r for r in replies if not r["ok"]]
        assert all(r["error"]["type"] == "ShuttingDown" for r in refused)
        assert answered, "shutdown dropped every in-flight request"
        for reply in answered:
            assert reply["result"]["totals"]


class TestHotReload:
    def test_resave_swaps_without_dropping_requests(self, tmp_path):
        """Acceptance: re-saving a served directory atomically swaps the
        entry (new fingerprint, invalidated cache) while requests keep
        being answered."""
        served_dir = tmp_path / "pipeline"
        shutil.copytree(FIXTURE, served_dir)
        registry = ModelRegistry()
        registry.add("golden", served_dir)

        async def scenario(server, host, port):
            payload = {"id": 0, "op": "estimate", "pipeline": "golden",
                       "config": [1, 3, 8, 1], "n": 3200}
            before = await roundtrip(host, port, payload)

            manifest_path = served_dir / "manifest.json"
            manifest = json.loads(manifest_path.read_text())
            manifest["adjustment"]["scales"] = [
                [mi, scale * 2.0] for mi, scale in manifest["adjustment"]["scales"]
            ]
            manifest_path.write_text(json.dumps(manifest, indent=1))

            reload_reply = await roundtrip(host, port, {"id": 1, "op": "reload"})
            after = await roundtrip(host, port, payload)
            stats = await roundtrip(host, port, {"id": 2, "op": "stats"})
            return before, reload_reply, after, stats

        before, reload_reply, after, stats = serve(scenario, registry=registry)
        assert reload_reply["result"]["reloaded"] == ["golden"]
        assert before["ok"] and after["ok"]
        assert after["result"]["fingerprint"] != before["result"]["fingerprint"]
        assert after["result"]["totals"][0] == 2.0 * before["result"]["totals"][0]
        pipeline_stats = stats["result"]["cache"]["pipelines"]["golden"]
        assert pipeline_stats["generation"] == 2
        # old generation's cache was retired; new one started cold
        assert pipeline_stats["cache"]["misses"] == 1
        assert stats["result"]["cache"]["session_cache"]["misses"] == 2


class TestCalibrationOps:
    """The observe/calibration ops: the serve side of the feedback loop."""

    @staticmethod
    def _observed_record(pipeline, config_values, n):
        from repro.hpl.driver import run_hpl
        from repro.measure.record import MeasurementRecord

        config = ClusterConfig.from_tuple(pipeline.plan.kinds, config_values)
        result = run_hpl(pipeline.spec, config, n, noise=None, seed=7)
        return MeasurementRecord.from_result(result, pipeline.plan.kinds, seed=7)

    def _serving(self):
        """(registry, calibrator) pair over the golden fixture."""
        from repro.calibrate import Calibrator

        registry = ModelRegistry()
        registry.add("golden", FIXTURE)
        calibrator = Calibrator(
            "golden", pipeline_provider=lambda: registry.get("golden").pipeline
        )
        return registry, calibrator

    def test_observe_ingests_and_reports_drift_state(self):
        registry, calibrator = self._serving()
        record = self._observed_record(
            registry.get("golden").pipeline, [1, 3, 8, 1], 3200
        )

        async def scenario(server, host, port):
            observe = await roundtrip(
                host, port,
                {"id": 1, "op": "observe", "pipeline": "golden",
                 "record": record.to_dict(), "source": "bench"},
            )
            status = await roundtrip(
                host, port, {"id": 2, "op": "calibration", "pipeline": "golden"}
            )
            everyone = await roundtrip(host, port, {"id": 3, "op": "calibration"})
            return observe, status, everyone, server.metrics

        observe, status, everyone, metrics = serve(
            scenario, registry=registry, calibrators={"golden": calibrator}
        )
        assert observe["ok"], observe
        result = observe["result"]
        assert result["seq"] == 0
        assert result["source"] == "bench"
        assert result["predicted"] is not None
        assert result["drift"]["drifted"] is False
        assert status["ok"]
        assert status["result"]["observations"] == 1
        assert status["result"]["sources"] == {"bench": 1}
        assert status["result"]["fingerprint"] == registry.get("golden").fingerprint
        assert list(everyone["result"]["pipelines"]) == ["golden"]
        # The server wired its metrics into the loop: ingests are counted.
        assert metrics.observations == 1
        assert metrics.to_dict()["calibration"]["observations"] == 1
        assert len(calibrator.log) == 1

    def test_malformed_record_is_bad_request(self):
        registry, calibrator = self._serving()

        async def scenario(server, host, port):
            missing = await roundtrip(
                host, port, {"id": 1, "op": "observe", "pipeline": "golden"}
            )
            wrong_shape = await roundtrip(
                host, port,
                {"id": 2, "op": "observe", "pipeline": "golden",
                 "record": {"n": "not-a-record"}},
            )
            bad_source = await roundtrip(
                host, port,
                {"id": 3, "op": "observe", "pipeline": "golden",
                 "record": {"n": 1}, "source": 7},
            )
            return missing, wrong_shape, bad_source

        missing, wrong_shape, bad_source = serve(
            scenario, registry=registry, calibrators={"golden": calibrator}
        )
        for reply in (missing, wrong_shape, bad_source):
            assert reply["ok"] is False
            assert reply["error"]["type"] == "BadRequest"
        assert len(calibrator.log) == 0  # nothing malformed was logged

    def test_observe_without_calibrator_is_bad_request(self):
        async def scenario(server, host, port):
            no_loop = await roundtrip(
                host, port,
                {"id": 1, "op": "observe", "pipeline": "golden", "record": {}},
            )
            unknown = await roundtrip(
                host, port,
                {"id": 2, "op": "observe", "pipeline": "nope", "record": {}},
            )
            status = await roundtrip(host, port, {"id": 3, "op": "calibration"})
            return no_loop, unknown, status

        no_loop, unknown, status = serve(scenario)  # no calibrators wired
        assert no_loop["error"]["type"] == "BadRequest"
        assert "no calibration loop" in no_loop["error"]["message"]
        assert unknown["error"]["type"] == "UnknownPipeline"
        assert status["ok"] and status["result"]["pipelines"] == {}
