"""Serving the search backends: request fields, grouping, counters."""

import asyncio
from pathlib import Path

import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import FLEET_COUNTER_FIELDS, ServeMetrics
from repro.serve.protocol import ProtocolError, Request, parse_request
from repro.serve.registry import ModelRegistry

FIXTURE = Path(__file__).parent.parent / "golden" / "format1_pipeline"


def run(coro):
    return asyncio.run(coro)


def make_batcher(**kwargs):
    registry = ModelRegistry()
    registry.add("golden", FIXTURE)
    return MicroBatcher(registry, **kwargs)


def optimize_request(i, backend=None, budget=None, ns=(3200,), top=3):
    return Request(
        id=i, op="optimize", pipeline="golden", ns=tuple(ns), top=top,
        backend=backend, budget=budget,
    )


class TestRequestFields:
    def test_optimize_carries_backend_and_budget(self):
        request = parse_request(
            '{"id": 1, "op": "optimize", "pipeline": "p", "n": 3200,'
            ' "backend": "branch-bound", "budget": 500}'
        )
        assert request.backend == "branch-bound"
        assert request.budget == 500

    def test_fields_default_to_none(self):
        request = parse_request(
            '{"id": 1, "op": "optimize", "pipeline": "p", "n": 3200}'
        )
        assert request.backend is None
        assert request.budget is None

    def test_unknown_backend_rejected_with_known_tags(self):
        with pytest.raises(ProtocolError, match="branch-bound"):
            parse_request(
                '{"id": 1, "op": "optimize", "pipeline": "p", "n": 3200,'
                ' "backend": "no-such"}'
            )

    @pytest.mark.parametrize("budget", ["0", "-3", "true", "2.5", '"40"'])
    def test_invalid_budget_rejected(self, budget):
        with pytest.raises(ProtocolError, match="budget"):
            parse_request(
                '{"id": 1, "op": "optimize", "pipeline": "p", "n": 3200,'
                f' "budget": {budget}}}'
            )

    def test_whatif_accepts_the_fields_too(self):
        request = parse_request(
            '{"id": 1, "op": "whatif", "config": [1,2,8,1], "n": 3200,'
            ' "backend": "beam", "budget": 40}'
        )
        assert request.backend == "beam"
        assert request.budget == 40


class TestBackendGrouping:
    def test_same_backend_requests_share_one_search(self):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.01)
            batcher.start()
            futures = [
                batcher.submit(
                    optimize_request(i, backend="branch-bound", ns=(3200 + 80 * i,))
                )
                for i in range(4)
            ]
            results = await asyncio.gather(*futures)
            await batcher.drain_and_stop()
            return batcher, results

        batcher, results = run(scenario())
        assert batcher.metrics.batch_groups.max == 1
        for result in results:
            search = result["sizes"][0]["search"]
            assert search["backend"] == "branch-bound"
            assert search["evaluations"] >= 1

    def test_distinct_backends_never_share_a_search(self):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.01)
            batcher.start()
            futures = [
                batcher.submit(optimize_request(0, backend=None)),
                batcher.submit(optimize_request(1, backend="branch-bound")),
                batcher.submit(optimize_request(2, backend="beam", budget=40)),
                batcher.submit(optimize_request(3, backend="beam", budget=20)),
            ]
            results = await asyncio.gather(*futures)
            await batcher.drain_and_stop()
            return batcher, results

        batcher, results = run(scenario())
        # None / branch-bound / (beam, 40) / (beam, 20): four groups.
        assert batcher.metrics.batch_groups.max == 4
        assert results[1]["sizes"][0]["search"]["backend"] == "branch-bound"
        assert results[2]["sizes"][0]["search"]["backend"] == "beam"

    def test_backend_winner_matches_default_exhaustive(self):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.0)
            batcher.start()
            default = await batcher.submit(optimize_request(0))
            bb = await batcher.submit(optimize_request(1, backend="branch-bound"))
            await batcher.drain_and_stop()
            return default, bb

        default, bb = run(scenario())
        a = default["sizes"][0]["ranking"][0]
        b = bb["sizes"][0]["ranking"][0]
        assert a["config"] == b["config"]
        assert a["estimate_s"] == b["estimate_s"]


class TestSearchCounters:
    def test_fleet_counter_fields_include_search(self):
        assert "search_evaluations" in FLEET_COUNTER_FIELDS
        assert "search_pruned" in FLEET_COUNTER_FIELDS

    def test_fleet_counter_values_stay_aligned(self):
        metrics = ServeMetrics()
        values = metrics.fleet_counter_values()
        assert len(values) == len(FLEET_COUNTER_FIELDS)
        assert all(v == 0 for v in values)

    def test_optimize_feeds_search_counters(self):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.0)
            batcher.start()
            await batcher.submit(optimize_request(0, backend="branch-bound"))
            await batcher.drain_and_stop()
            return batcher.metrics

        metrics = run(scenario())
        assert metrics.search_evaluations >= 1
        assert metrics.search_pruned >= 1
        entry = metrics.search_backends["branch-bound"]
        assert entry["runs"] == 1
        by_field = dict(zip(FLEET_COUNTER_FIELDS, metrics.fleet_counter_values()))
        assert by_field["search_evaluations"] == metrics.search_evaluations
        assert by_field["search_pruned"] == metrics.search_pruned
        assert "search" in metrics.to_dict()
        assert "search[branch-bound]" in metrics.describe()
