"""Model registry: loading, fingerprint keys, hot reload, cache swap."""

import json
import shutil
from pathlib import Path

import pytest

from repro.core.persistence import load_pipeline
from repro.errors import ModelError, ReproError
from repro.serve.registry import ModelRegistry, UnknownPipeline

FIXTURE = Path(__file__).parent.parent / "golden" / "format1_pipeline"


@pytest.fixture
def served_dir(tmp_path):
    """A private copy of the golden pipeline directory (safe to mutate)."""
    target = tmp_path / "pipeline"
    shutil.copytree(FIXTURE, target)
    return target


def _rewrite_adjustment(directory: Path, factor: float) -> None:
    """Simulate a re-save that changed the calibration: scale the
    adjustment in the manifest (an estimate-determining artifact)."""
    manifest_path = directory / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["adjustment"]["scales"] = [
        [mi, scale * factor] for mi, scale in manifest["adjustment"]["scales"]
    ]
    manifest_path.write_text(json.dumps(manifest, indent=1))


class TestLoading:
    def test_add_and_get(self):
        registry = ModelRegistry()
        entry = registry.add("golden", FIXTURE)
        assert registry.get("golden") is entry
        assert registry.names() == ["golden"]
        assert entry.generation == 1
        assert entry.key == ("golden", entry.fingerprint)

    def test_fingerprint_matches_pipeline_cache_fingerprint(self):
        """The registry key's fingerprint is *the* estimate-cache
        fingerprint, so serve-level invalidation can never drift from
        the in-pipeline rule."""
        registry = ModelRegistry()
        entry = registry.add("golden", FIXTURE)
        assert entry.fingerprint == load_pipeline(FIXTURE).estimate_cache.fingerprint

    def test_duplicate_name_rejected(self):
        registry = ModelRegistry()
        registry.add("golden", FIXTURE)
        with pytest.raises(ReproError, match="already registered"):
            registry.add("golden", FIXTURE)

    def test_unknown_pipeline_is_typed(self):
        registry = ModelRegistry()
        registry.add("golden", FIXTURE)
        with pytest.raises(UnknownPipeline, match="no pipeline named 'nope'"):
            registry.get("nope")

    def test_corrupt_directory_raises_model_error_with_path(self, served_dir):
        (served_dir / "models.json").write_text('{"truncated": ')
        registry = ModelRegistry()
        with pytest.raises(ModelError, match="models.json"):
            registry.add("bad", served_dir)


class TestCachedTotals:
    def test_bitwise_equal_to_direct_path_and_cached(self, served_dir):
        registry = ModelRegistry()
        entry = registry.add("golden", served_dir)
        config = entry.parse_config([1, 2, 8, 1])
        ns = [1600, 3200, 4800]
        direct = load_pipeline(served_dir).estimate_totals(config, ns)
        first = entry.cached_totals(config, ns)
        again = entry.cached_totals(config, ns)
        assert list(first) == list(direct)
        assert list(again) == list(direct)
        assert entry.cache.stats.misses == 3
        assert entry.cache.stats.hits == 3

    def test_cache_respects_capacity(self, served_dir):
        registry = ModelRegistry(cache_capacity=2)
        entry = registry.add("golden", served_dir)
        config = entry.parse_config([1, 2, 8, 1])
        entry.cached_totals(config, [1600, 3200, 4800])
        assert len(entry.cache) == 2
        assert entry.cache.stats.evictions == 1


class TestHotReload:
    def test_unchanged_directory_is_not_swapped(self, served_dir):
        registry = ModelRegistry()
        registry.add("golden", served_dir)
        assert registry.refresh() == []
        assert registry.get("golden").generation == 1

    def test_content_change_swaps_entry_and_retires_cache(self, served_dir):
        registry = ModelRegistry()
        entry = registry.add("golden", served_dir)
        config = entry.parse_config([1, 3, 8, 1])
        before = float(entry.cached_totals(config, [3200])[0])
        old_fingerprint = entry.fingerprint
        old_cache = entry.cache

        _rewrite_adjustment(served_dir, factor=2.0)
        assert registry.refresh() == ["golden"]

        fresh = registry.get("golden")
        assert fresh.generation == 2
        assert fresh.fingerprint != old_fingerprint
        assert fresh.cache is not old_cache  # fingerprint-scoped entries dropped
        after = float(fresh.cached_totals(config, [3200])[0])
        assert after == pytest.approx(2.0 * before)
        # the retired generation's counters fold into session totals
        assert registry.retired_cache_stats.misses == old_cache.stats.misses

    def test_byte_identical_resave_keeps_warm_cache(self, served_dir):
        registry = ModelRegistry()
        entry = registry.add("golden", served_dir)
        config = entry.parse_config([1, 3, 8, 1])
        entry.cached_totals(config, [3200])
        old_cache = entry.cache

        # Touch the manifest (same content, new mtime): files changed,
        # models did not — the entry swaps but the cache stays warm.
        manifest = served_dir / "manifest.json"
        manifest.write_text(manifest.read_text())
        assert registry.refresh() == ["golden"]
        fresh = registry.get("golden")
        assert fresh.generation == 2
        assert fresh.cache is old_cache
        fresh.cached_totals(config, [3200])
        assert fresh.cache.stats.hits == 1

    def test_half_written_directory_keeps_serving_old_entry(self, served_dir):
        registry = ModelRegistry()
        entry = registry.add("golden", served_dir)
        config = entry.parse_config([1, 2, 8, 1])
        before = float(entry.cached_totals(config, [3200])[0])

        (served_dir / "models.json").write_text('{"mid-write')
        assert registry.refresh() == []
        assert registry.last_reload_errors[0][0] == "golden"
        assert "models.json" in registry.last_reload_errors[0][1]

        survivor = registry.get("golden")
        assert survivor.generation == 1
        assert float(survivor.cached_totals(config, [3200])[0]) == before

    def test_force_refresh_reloads_unchanged(self, served_dir):
        registry = ModelRegistry()
        registry.add("golden", served_dir)
        assert registry.refresh(force=True) == ["golden"]
        assert registry.get("golden").generation == 2

    def test_snapshot_structure(self, served_dir):
        registry = ModelRegistry()
        entry = registry.add("golden", served_dir)
        entry.cached_totals(entry.parse_config([1, 2, 8, 1]), [3200])
        snapshot = registry.snapshot()
        pipeline = snapshot["pipelines"]["golden"]
        assert pipeline["generation"] == 1
        assert pipeline["cache"]["misses"] == 1
        assert pipeline["cache"]["fingerprint"] == entry.fingerprint
        assert snapshot["session_cache"]["misses"] == 1


class TestPromote:
    """The calibration loop's hot-swap hook: serve a different directory."""

    def test_promote_swaps_to_new_directory(self, served_dir, tmp_path):
        registry = ModelRegistry()
        entry = registry.add("golden", served_dir)
        config = entry.parse_config([1, 3, 8, 1])
        before = float(entry.cached_totals(config, [3200])[0])
        old_fingerprint = entry.fingerprint
        old_cache = entry.cache

        candidate_dir = tmp_path / "candidate"
        shutil.copytree(served_dir, candidate_dir)
        _rewrite_adjustment(candidate_dir, factor=2.0)

        fresh = registry.promote("golden", candidate_dir)
        assert registry.get("golden") is fresh
        assert fresh.directory == candidate_dir
        assert fresh.generation == 2
        assert fresh.fingerprint != old_fingerprint
        # New fingerprint: the old cache retires into session totals.
        assert fresh.cache is not old_cache
        assert registry.retired_cache_stats.misses == old_cache.stats.misses
        after = float(fresh.cached_totals(config, [3200])[0])
        assert after == pytest.approx(2.0 * before)

    def test_promote_same_fingerprint_keeps_warm_cache(self, served_dir, tmp_path):
        registry = ModelRegistry()
        entry = registry.add("golden", served_dir)
        entry.cached_totals(entry.parse_config([1, 3, 8, 1]), [3200])
        old_cache = entry.cache

        # A byte-identical copy (a rollback target re-serving the same
        # generation) keeps the warm cache: same fingerprint, same answers.
        twin_dir = tmp_path / "twin"
        shutil.copytree(served_dir, twin_dir)
        fresh = registry.promote("golden", twin_dir)
        assert fresh.directory == twin_dir
        assert fresh.cache is old_cache

    def test_promotion_retires_eviction_counters(self, served_dir, tmp_path):
        """LRU eviction counts survive the invalidation-on-promotion path:
        the retired generation's evictions fold into the session totals and
        the new generation's cache starts from zero."""
        registry = ModelRegistry(cache_capacity=2)
        entry = registry.add("golden", served_dir)
        config = entry.parse_config([1, 2, 8, 1])
        entry.cached_totals(config, [1600, 3200, 4800, 6400])  # 2 evictions
        assert entry.cache.stats.evictions == 2

        candidate_dir = tmp_path / "candidate"
        shutil.copytree(served_dir, candidate_dir)
        _rewrite_adjustment(candidate_dir, factor=2.0)
        fresh = registry.promote("golden", candidate_dir)

        assert registry.retired_cache_stats.evictions == 2
        assert fresh.cache.stats.evictions == 0
        assert len(fresh.cache) == 0
        # ...and the session aggregate in the stats snapshot keeps them.
        fresh.cached_totals(config, [1600, 3200, 4800])  # 1 more eviction
        snapshot = registry.snapshot()
        assert snapshot["session_cache"]["evictions"] == 3
        assert snapshot["pipelines"]["golden"]["cache"]["evictions"] == 1

    def test_promote_unknown_name_rejected(self, served_dir):
        registry = ModelRegistry()
        with pytest.raises(UnknownPipeline):
            registry.promote("nope", served_dir)

    def test_failed_promote_keeps_old_entry(self, served_dir, tmp_path):
        registry = ModelRegistry()
        entry = registry.add("golden", served_dir)
        broken = tmp_path / "broken"
        broken.mkdir()
        with pytest.raises(ReproError):
            registry.promote("golden", broken)
        assert registry.get("golden") is entry  # still serving


class TestReloadFailureCounters:
    """Failed reload attempts are counted, not silently skipped."""

    def test_failures_accumulate_over_refreshes(self, served_dir):
        registry = ModelRegistry()
        registry.add("golden", served_dir)
        (served_dir / "models.json").write_text('{"mid-write')
        assert registry.refresh() == []
        assert registry.reload_failures == 1
        # The live entry's signature never advanced (the swap failed), so
        # the next pass retries — and fails — again.
        assert registry.refresh() == []
        # last_reload_errors shows only the latest pass; the lifetime
        # counter keeps growing.
        assert len(registry.last_reload_errors) == 1
        assert registry.reload_failures == 2
        assert registry.snapshot()["reload_failures"] == 2

    def test_failures_mirror_into_attached_metrics(self, served_dir):
        from repro.serve.metrics import ServeMetrics

        registry = ModelRegistry()
        registry.metrics = ServeMetrics()
        registry.add("golden", served_dir)
        (served_dir / "models.json").write_text('{"mid-write')
        registry.refresh()
        assert registry.metrics.reload_failures == 1
        assert registry.metrics.to_dict()["reload_failures"] == 1

    def test_successful_refresh_counts_no_failures(self, served_dir):
        registry = ModelRegistry()
        registry.add("golden", served_dir)
        _rewrite_adjustment(served_dir, factor=2.0)
        assert registry.refresh() == ["golden"]
        assert registry.reload_failures == 0


class TestModelInventory:
    def test_inventory_lists_every_model(self):
        registry = ModelRegistry()
        entry = registry.add("golden", FIXTURE)
        inventory = entry.model_inventory()
        assert inventory["backend"] == "binned"
        assert inventory["count"] == len(inventory["models"]) == 42
        kinds = {m["type"] for m in inventory["models"]}
        assert kinds == {"nt", "pt"}
        assert any(m["composed"] for m in inventory["models"])
