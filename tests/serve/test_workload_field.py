"""The ``workload`` request field: strict validation, typed payloads,
batcher routing."""

import asyncio
import json
from pathlib import Path

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.core.persistence import save_pipeline
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    ERROR_INVALID_REQUEST,
    Overloaded,
    ProtocolError,
    Request,
    encode_exception,
    parse_request,
)
from repro.serve.registry import ModelRegistry

FIXTURE = Path(__file__).parent.parent / "golden" / "format1_pipeline"


def line(**payload):
    return json.dumps(payload)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def sorting_dir(tmp_path_factory):
    pipeline = EstimationPipeline(
        kishimoto_cluster(),
        PipelineConfig(protocol="ns", seed=11, workload="sorting"),
    )
    return save_pipeline(
        pipeline,
        tmp_path_factory.mktemp("served") / "sorting",
        include_evaluation=False,
    )


@pytest.fixture()
def registry(sorting_dir):
    registry = ModelRegistry()
    registry.add("golden", FIXTURE)
    registry.add("sorted", sorting_dir)
    return registry


class TestParseValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            {"op": "estimate", "pipeline": "p", "config": [1, 2, 8, 1], "n": 3200},
            {"op": "optimize", "pipeline": "p", "n": 3200},
            {"op": "whatif", "config": [1, 2, 8, 1], "n": 3200},
            {"op": "pareto", "pipeline": "p", "n": 3200},
        ],
    )
    def test_batched_ops_accept_workload_uniformly(self, payload):
        request = parse_request(line(id=1, workload="sorting", **payload))
        assert request.workload == "sorting"
        # ...and it stays optional.
        assert parse_request(line(id=1, **payload)).workload is None

    def test_control_ops_reject_workload_as_unknown_field(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(line(id=1, op="models", pipeline="p", workload="hpl"))
        assert err.value.error_type == ERROR_INVALID_REQUEST
        assert "'workload'" in str(err.value)

    def test_unknown_workload_carries_typed_payload(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(
                line(id=1, op="optimize", pipeline="p", n=3200, workload="summa")
            )
        exc = err.value
        assert exc.error_type == ERROR_INVALID_REQUEST
        assert exc.extra() == {
            "field": "workload",
            "known": ["hpl", "montecarlo", "sorting"],
        }
        reply = json.loads(encode_exception(1, exc))
        assert reply["error"]["type"] == ERROR_INVALID_REQUEST
        assert reply["error"]["known"] == ["hpl", "montecarlo", "sorting"]
        assert reply["error"]["field"] == "workload"

    def test_non_string_workload_rejected(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(
                line(id=1, op="estimate", pipeline="p", config=[1], n=10, workload=7)
            )
        assert err.value.error_type == ERROR_INVALID_REQUEST
        assert err.value.extra() == {"field": "workload"}


class TestUnifiedExtra:
    def test_plain_protocol_error_has_no_extra_keys(self):
        reply = json.loads(encode_exception(4, ProtocolError("nope")))
        assert set(reply["error"]) == {"type", "message"}

    def test_overloaded_still_carries_backoff_payload(self):
        reply = json.loads(encode_exception(4, Overloaded(9, 8, 25.0)))
        assert reply["error"]["type"] == "Overloaded"
        assert reply["error"]["pending"] == 9
        assert reply["error"]["capacity"] == 8
        assert reply["error"]["retry_after_ms"] == 25.0


class TestBatcherRouting:
    def submit_one(self, registry, request):
        async def scenario():
            batcher = MicroBatcher(registry, batch_window_s=0)
            batcher.start()
            try:
                return await batcher.submit(request)
            finally:
                await batcher.drain_and_stop()

        return run(scenario())

    def test_matching_workload_assertion_passes(self, registry):
        result = self.submit_one(
            registry,
            Request(
                id=1, op="estimate", pipeline="sorted",
                config=(1, 2, 8, 1), ns=(8000,), workload="sorting",
            ),
        )
        assert result["totals"][0] > 0

    @pytest.mark.parametrize("op", ["estimate", "optimize", "pareto"])
    def test_mismatched_workload_is_typed_invalid_request(self, registry, op):
        request = Request(
            id=1, op=op, pipeline="golden",
            config=(1, 2, 8, 1) if op == "estimate" else None,
            ns=(3200,), workload="sorting",
        )
        with pytest.raises(ProtocolError) as err:
            self.submit_one(registry, request)
        exc = err.value
        assert exc.error_type == ERROR_INVALID_REQUEST
        assert exc.extra() == {
            "field": "workload",
            "pipeline": "golden",
            "pipeline_workload": "hpl",
            "requested_workload": "sorting",
        }

    def test_whatif_sweeps_only_the_requested_family(self, registry):
        result = self.submit_one(
            registry,
            Request(
                id=1, op="whatif", config=(1, 2, 8, 1), ns=(8000,),
                workload="sorting",
            ),
        )
        assert list(result["pipelines"]) == ["sorted"]
        assert result["pipelines"]["sorted"]["workload"] == "sorting"
        assert result["best"] == ["sorted"]

    def test_whatif_unserved_family_is_typed_error(self, registry):
        with pytest.raises(ProtocolError) as err:
            self.submit_one(
                registry,
                Request(
                    id=1, op="whatif", config=(1, 2, 8, 1), ns=(8000,),
                    workload="montecarlo",
                ),
            )
        assert err.value.error_type == ERROR_INVALID_REQUEST
        assert err.value.extra()["requested_workload"] == "montecarlo"


class TestRegistryExposure:
    def test_snapshot_and_inventory_name_the_family(self, registry):
        snapshot = registry.snapshot()
        assert snapshot["pipelines"]["golden"]["workload"] == "hpl"
        assert snapshot["pipelines"]["sorted"]["workload"] == "sorting"
        assert registry.get("sorted").model_inventory()["workload"] == "sorting"
        assert registry.get("golden").model_inventory()["workload"] == "hpl"
