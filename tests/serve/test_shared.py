"""Shared-memory artifacts: segment layout, zero-copy pipeline loading,
torn-artifact detection, and the fleet stats block."""

from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.core.persistence import load_pipeline, read_pipeline_blobs
from repro.errors import ModelError
from repro.hpl.schedule import _build_panel_table
from repro.serve.metrics import FLEET_COUNTER_FIELDS, LATENCY_BUCKETS_MS
from repro.serve.shared import (
    ArtifactSegment,
    FleetStatsBlock,
    load_pipeline_from_segment,
    model_coefficients,
    pack_pipeline_segment,
    seed_from_segment,
    shared_panel_tables,
)

FIXTURE = Path(__file__).parent.parent / "golden" / "format1_pipeline"

N_LATENCY = len(LATENCY_BUCKETS_MS) + 1


@pytest.fixture
def segment():
    """A packed golden-pipeline segment, unlinked on teardown."""
    seg = pack_pipeline_segment(FIXTURE)
    try:
        yield seg
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:
            pass


class TestArtifactSegment:
    def test_blob_round_trip(self):
        blobs = {"a.json": b'{"x": 1}', "b.bin": bytes(range(256))}
        arrays = {"v": np.arange(7, dtype=np.float64)}
        with ArtifactSegment.pack({"kind": "test"}, blobs, arrays) as seg:
            assert seg.meta == {"kind": "test"}
            assert seg.blob_names() == ["a.json", "b.bin"]
            for name, blob in blobs.items():
                assert seg.blob(name) == blob

    def test_array_is_read_only_view(self):
        arrays = {"v": np.arange(5, dtype=np.int64)}
        with ArtifactSegment.pack({}, {}, arrays) as seg:
            view = seg.array("v")
            assert view.dtype == np.int64
            np.testing.assert_array_equal(view, arrays["v"])
            assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view[0] = 99

    def test_attach_sees_the_packed_payload(self):
        arrays = {"v": np.linspace(0.0, 1.0, 9)}
        with ArtifactSegment.pack({"n": 3}, {"t": b"text"}, arrays) as seg:
            other = ArtifactSegment.attach(seg.name)
            try:
                assert other.meta == {"n": 3}
                assert other.blob("t") == b"text"
                np.testing.assert_array_equal(other.array("v"), arrays["v"])
            finally:
                other.close()

    def test_bad_magic_is_typed(self):
        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            shm.buf[:8] = b"GARBAGE!"
            with pytest.raises(ModelError, match="bad magic"):
                ArtifactSegment(shm, owner=False)
        finally:
            shm.close()
            shm.unlink()


class TestPipelineSegment:
    def test_segment_pipeline_is_bitwise_identical(self, segment):
        disk = load_pipeline(FIXTURE)
        shared = load_pipeline_from_segment(segment)
        assert shared.estimate_cache.fingerprint == disk.estimate_cache.fingerprint
        values = (1, 2, 8, 1)
        for n in (1600, 3200):
            ours = shared.estimate(
                ClusterConfig.from_tuple(shared.plan.kinds, values), n
            )
            theirs = disk.estimate(
                ClusterConfig.from_tuple(disk.plan.kinds, values), n
            )
            assert ours.total == theirs.total

    def test_blobs_match_the_directory(self, segment):
        blobs, _ = read_pipeline_blobs(FIXTURE)
        assert set(segment.blob_names()) == set(blobs)
        for name, blob in blobs.items():
            assert segment.blob(name) == blob

    def test_coefficients_are_deterministic(self):
        pipeline = load_pipeline(FIXTURE)
        first = model_coefficients(pipeline)
        second = model_coefficients(load_pipeline(FIXTURE))
        assert first.dtype == np.float64
        assert first.size > 0
        np.testing.assert_array_equal(first, second)

    def test_torn_coefficients_are_detected(self, segment):
        # Corrupt one packed coefficient in place (the read-only flag
        # protects the *view*, not the underlying shared buffer).
        dtype, shape, off = segment._arrays["coefficients"]
        raw = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=segment._shm.buf, offset=off
        )
        raw[0] += 1.0
        with pytest.raises(ModelError, match="torn shared artifact"):
            load_pipeline_from_segment(segment)

    def test_fingerprint_skew_is_detected(self):
        blobs, _ = read_pipeline_blobs(FIXTURE)
        coefficients = model_coefficients(load_pipeline(FIXTURE))
        with ArtifactSegment.pack(
            {"kind": "pipeline", "fingerprint": "bogus"},
            blobs,
            {"coefficients": coefficients},
        ) as seg:
            with pytest.raises(ModelError, match="fingerprint"):
                load_pipeline_from_segment(seg)

    def test_panel_tables_round_trip(self, segment):
        tables = shared_panel_tables(segment)
        assert tables, "golden campaign should yield panel tables"
        sample = tables[0]
        rebuilt = _build_panel_table(sample.n, sample.nb, sample.p)
        np.testing.assert_array_equal(sample.update_flops, rebuilt.update_flops)
        np.testing.assert_array_equal(sample.owner, rebuilt.owner)
        assert not sample.update_flops.flags.writeable

    def test_seed_from_segment_counts_tables(self, segment):
        count = seed_from_segment(segment)
        assert count == len(segment.meta["panel_tables"])
        assert count > 0


class TestFleetStatsBlock:
    def _publish(self, block, index, requests, epoch=1):
        counters = [0] * len(FLEET_COUNTER_FIELDS)
        counters[FLEET_COUNTER_FIELDS.index("requests")] = requests
        counters[FLEET_COUNTER_FIELDS.index("errors")] = 1
        latency = [0] * N_LATENCY
        latency[0] = requests
        block.publish(
            index,
            pid=1000 + index,
            port=9000 + index,
            epoch=epoch,
            heartbeat_us=123456,
            counters=counters,
            latency_counts=latency,
            latency_sum_us=requests * 500,
            latency_max_us=900,
            cache=(10, 5, 1),
        )

    def test_publish_and_read_back(self):
        block = FleetStatsBlock.create(2)
        try:
            self._publish(block, 0, requests=7)
            row = block.row(0)
            assert row.pid == 1000 and row.port == 9000 and row.attached
            assert row.counters["requests"] == 7
            assert row.cache.as_tuple() == (10, 5, 1)
            # untouched rows read as empty, not garbage
            assert block.row(1).pid == 0
        finally:
            block.close()
            block.unlink()

    def test_attach_sees_live_rows(self):
        block = FleetStatsBlock.create(1)
        try:
            self._publish(block, 0, requests=3)
            other = FleetStatsBlock.attach(block.name)
            try:
                assert other.workers == 1
                assert other.row(0).counters["requests"] == 3
            finally:
                other.close()
        finally:
            block.close()
            block.unlink()

    def test_aggregate_sums_live_rows_only(self):
        block = FleetStatsBlock.create(3)
        try:
            self._publish(block, 0, requests=4)
            self._publish(block, 2, requests=6)
            status = block.aggregate()
            assert status["totals"]["requests"] == 10
            assert status["totals"]["errors"] == 2
            assert status["latency"]["count"] == 10
            assert status["cache"]["hits"] == 20
            assert len(status["workers"]) == 3
            assert status["workers"][1]["pid"] == 0
        finally:
            block.close()
            block.unlink()

    def test_restarts_and_detach(self):
        block = FleetStatsBlock.create(2)
        try:
            assert block.restarts() == [0, 0]
            assert block.bump_restart(1) == 1
            assert block.bump_restart(1) == 2
            assert block.restarts() == [0, 2]
            self._publish(block, 0, requests=1)
            block.mark_detached(0)
            assert not block.row(0).attached
            assert block.row(0).counters["requests"] == 1  # counters frozen
        finally:
            block.close()
            block.unlink()

    def test_publish_validates_shapes(self):
        block = FleetStatsBlock.create(1)
        try:
            with pytest.raises(ModelError, match="counters"):
                block.publish(
                    0,
                    pid=1,
                    port=1,
                    epoch=1,
                    heartbeat_us=0,
                    counters=[1, 2],
                    latency_counts=[0] * N_LATENCY,
                    latency_sum_us=0,
                    latency_max_us=0,
                    cache=(0, 0, 0),
                )
        finally:
            block.close()
            block.unlink()

    def test_create_rejects_zero_workers(self):
        with pytest.raises(ModelError, match=">= 1 worker"):
            FleetStatsBlock.create(0)
