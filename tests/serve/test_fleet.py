"""Multi-process fleet tests: sharded serving, two-phase promotion
under live traffic, and crash respawn.

These spawn real worker processes (fork) over real sockets, so they are
the serving layer's heaviest tests — kept to 2 replicas and small
request counts.
"""

import asyncio
import json
import shutil
import threading
import time
from pathlib import Path

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.persistence import load_pipeline
from repro.errors import ReproError
from repro.serve.client import ServeClient, fire_concurrent
from repro.serve.fleet import (
    MAX_AUTO_WORKERS,
    FleetConfig,
    FleetSupervisor,
    reuse_port_supported,
)

FIXTURE = Path(__file__).parent.parent / "golden" / "format1_pipeline"


def make_candidate(tmp_path, factor=1.25):
    """A re-calibrated copy of the golden pipeline (new fingerprint):
    the adjustment scales change, so estimates and the estimate-cache
    fingerprint both differ from the incumbent."""
    target = tmp_path / "candidate"
    shutil.copytree(FIXTURE, target)
    manifest_path = target / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["adjustment"]["scales"] = [
        [mi, scale * factor] for mi, scale in manifest["adjustment"]["scales"]
    ]
    manifest_path.write_text(json.dumps(manifest, indent=1))
    return target


@pytest.fixture
def fleet():
    """A running 2-replica fleet serving the golden pipeline."""
    supervisor = FleetSupervisor(
        {"golden": FIXTURE}, FleetConfig(workers=2, stats_interval_s=0.05)
    )
    with supervisor:
        yield supervisor


class TestFleetConfig:
    def test_resolve_workers(self):
        assert FleetConfig(workers=3).resolve_workers() == 3
        auto = FleetConfig(workers=0).resolve_workers()
        assert 1 <= auto <= MAX_AUTO_WORKERS
        with pytest.raises(ReproError, match="workers must be >= 0"):
            FleetConfig(workers=-1).resolve_workers()

    def test_resolve_listener(self, monkeypatch):
        import repro.serve.fleet as fleet_mod

        assert FleetConfig(listener="router").resolve_listener() == "router"
        with pytest.raises(ReproError, match="unknown listener"):
            FleetConfig(listener="bogus").resolve_listener()
        monkeypatch.setattr(fleet_mod, "reuse_port_supported", lambda: True)
        assert FleetConfig(listener="auto").resolve_listener() == "reuseport"
        monkeypatch.setattr(fleet_mod, "reuse_port_supported", lambda: False)
        assert FleetConfig(listener="auto").resolve_listener() == "router"
        with pytest.raises(ReproError, match="no SO_REUSEPORT"):
            FleetConfig(listener="reuseport").resolve_listener()

    def test_fleet_needs_a_pipeline(self):
        with pytest.raises(ReproError, match="at least one pipeline"):
            FleetSupervisor({})


class TestFleetServing:
    def test_bitwise_identity_and_status(self, fleet):
        host, port = fleet.host, fleet.port
        direct = load_pipeline(FIXTURE)
        config = ClusterConfig.from_tuple(direct.plan.kinds, (1, 2, 8, 1))
        sizes = [1600, 2400, 3200]
        expected = [direct.estimate(config, n).total for n in sizes]

        with ServeClient(host, port) as client:
            result = client.estimate("golden", [1, 2, 8, 1], sizes)
            assert result["totals"] == expected  # bitwise, not approx
            assert result["fingerprint"] == direct.estimate_cache.fingerprint

            status = client.fleet_status()
        assert status["fleet"] is True
        assert len(status["workers"]) == 2
        assert status["totals"]["requests"] >= 1
        # the answering replica freshens its own row before aggregating
        assert status["answered_by"] in (0, 1)

    def test_supervisor_status_names_fingerprints(self, fleet):
        status = fleet.status()
        direct = load_pipeline(FIXTURE)
        assert status["pipelines"] == {
            "golden": direct.estimate_cache.fingerprint
        }
        assert status["restarts"] == [0, 0]

    def test_both_replicas_share_the_port(self, fleet):
        if fleet.listener != "reuseport":
            pytest.skip("kernel accept sharding needs SO_REUSEPORT")
        # Many short-lived connections: the kernel spreads them across
        # replicas; all of them answer on the fleet's single port.
        for _ in range(8):
            with ServeClient(fleet.host, fleet.port) as client:
                assert client.ping()["pong"] is True

    def test_router_listener_serves(self):
        supervisor = FleetSupervisor(
            {"golden": FIXTURE},
            FleetConfig(workers=2, listener="router", stats_interval_s=0.05),
        )
        with supervisor:
            direct = load_pipeline(FIXTURE)
            config = ClusterConfig.from_tuple(direct.plan.kinds, (1, 2, 8, 1))
            with ServeClient(supervisor.host, supervisor.port) as client:
                result = client.estimate("golden", [1, 2, 8, 1], [1600])
                assert result["totals"] == [direct.estimate(config, 1600).total]


class TestPromotion:
    def test_promote_under_traffic_never_tears(self, fleet, tmp_path):
        """The two-phase swap: every reply during a promotion carries
        either the old fingerprint or the new one — never anything
        else — and replies after the promotion all carry the new one."""
        old = load_pipeline(FIXTURE).estimate_cache.fingerprint
        candidate_dir = make_candidate(tmp_path)
        new = load_pipeline(candidate_dir).estimate_cache.fingerprint
        assert new != old

        payloads = [
            {"op": "estimate", "pipeline": "golden", "config": [1, 2, 8, 1],
             "ns": [1600 + 80 * (i % 16)]}
            for i in range(200)
        ]
        outcome = {}

        def promote():
            time.sleep(0.05)  # let some old-generation replies through
            outcome.update(fleet.promote("golden", candidate_dir))

        promoter = threading.Thread(target=promote)
        promoter.start()
        replies, _ = asyncio.run(
            fire_concurrent(fleet.host, fleet.port, payloads, concurrency=8)
        )
        promoter.join(timeout=60)
        assert not promoter.is_alive()

        assert outcome["fingerprint"] == new
        assert outcome["replicas"] == 2
        seen = {reply["result"]["fingerprint"] for reply in replies}
        assert seen <= {old, new}
        for reply in replies:
            assert reply["ok"], reply

        # post-promotion: every replica answers with the candidate
        with ServeClient(fleet.host, fleet.port) as client:
            for _ in range(4):
                result = client.estimate("golden", [1, 2, 8, 1], [1600])
                assert result["fingerprint"] == new
        assert fleet.status()["pipelines"]["golden"] == new

    def test_promoted_numbers_are_the_candidates(self, fleet, tmp_path):
        candidate_dir = make_candidate(tmp_path)
        direct = load_pipeline(candidate_dir)
        config = ClusterConfig.from_tuple(direct.plan.kinds, (1, 2, 8, 1))
        fleet.promote("golden", candidate_dir)
        with ServeClient(fleet.host, fleet.port) as client:
            result = client.estimate("golden", [1, 2, 8, 1], [3200])
        assert result["totals"] == [direct.estimate(config, 3200).total]

    def test_promote_unknown_pipeline_is_typed(self, fleet, tmp_path):
        with pytest.raises(ReproError, match="no pipeline named"):
            fleet.promote("nope", make_candidate(tmp_path))

    def test_promote_bad_directory_aborts_cleanly(self, fleet, tmp_path):
        with pytest.raises(ReproError):
            fleet.promote("golden", tmp_path / "not-a-pipeline")
        # the fleet still serves the incumbent after the failed pack
        old = load_pipeline(FIXTURE).estimate_cache.fingerprint
        with ServeClient(fleet.host, fleet.port) as client:
            assert client.estimate("golden", [1, 2, 8, 1], [1600])[
                "fingerprint"
            ] == old


class TestCrashResilience:
    def test_killed_replica_respawns_and_fleet_keeps_serving(self, fleet):
        pid = fleet.kill_worker(0)
        assert pid not in fleet.worker_pids()

        # survivors keep answering while the monitor respawns
        with ServeClient(fleet.host, fleet.port) as client:
            assert client.ping()["pong"] is True

        # wait for the respawn to *publish* (a live process may not have
        # written its stats row yet)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            workers = fleet.status()["workers"]
            if len(fleet.worker_pids()) == 2 and workers[0]["epoch"] == 2:
                break
            time.sleep(0.1)
        assert len(fleet.worker_pids()) == 2, "replica was not respawned"
        assert fleet.status()["restarts"] == [1, 0]

        # the respawned replica serves too, and fleet_status (answered
        # by whichever replica takes the connection) reports the restart
        with ServeClient(fleet.host, fleet.port) as client:
            status = client.fleet_status()
        assert status["restarts"] == [1, 0]
        epochs = {w["index"]: w["epoch"] for w in status["workers"]}
        assert epochs[0] == 2 and epochs[1] == 1

    def test_respawned_replica_serves_the_promoted_generation(
        self, fleet, tmp_path
    ):
        candidate_dir = make_candidate(tmp_path)
        new = load_pipeline(candidate_dir).estimate_cache.fingerprint
        fleet.promote("golden", candidate_dir)
        fleet.kill_worker(1)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if len(fleet.worker_pids()) == 2:
                break
            time.sleep(0.1)
        assert len(fleet.worker_pids()) == 2
        # every reply (old replica or respawned one) is the candidate's
        with ServeClient(fleet.host, fleet.port) as client:
            for _ in range(6):
                assert (
                    client.estimate("golden", [1, 2, 8, 1], [1600])["fingerprint"]
                    == new
                )


class TestListenerSupport:
    def test_reuse_port_supported_is_bool(self):
        assert isinstance(reuse_port_supported(), bool)
