"""Serving the cost axis: strict request validation and the pareto op.

Two contracts: (1) a top-level field an op does not define is a typed
``InvalidRequest`` reply, never silently ignored; (2) a served frontier
is *bitwise* the direct :meth:`EstimationPipeline.pareto` call on the
same loaded pipeline — same points, same floats, untruncated.
"""

import asyncio
import json
from pathlib import Path

import pytest

from repro.core.persistence import load_pipeline, save_pipeline
from repro.core.pipeline import EstimationPipeline
from repro.cost.presets import kishimoto_rate_card
from repro.serve import EstimationServer, ModelRegistry, fire_concurrent

FIXTURE = Path(__file__).parent.parent / "golden" / "format1_pipeline"


@pytest.fixture(scope="module")
def costed_dir(tmp_path_factory):
    """The golden pipeline re-saved with the published rate card."""
    base = load_pipeline(FIXTURE)
    priced = EstimationPipeline(
        base.spec.with_cost(kishimoto_rate_card()), base.config, base.plan
    )
    out = tmp_path_factory.mktemp("costed") / "pipeline"
    save_pipeline(priced, out)
    return out


def serve(costed_dir, coro_factory):
    async def main():
        registry = ModelRegistry()
        registry.add("costed", costed_dir)
        server = EstimationServer(registry, port=0, refresh_interval_s=None)
        host, port = await server.start()
        try:
            return await coro_factory(server, host, port)
        finally:
            await server.shutdown()

    return asyncio.run(main())


async def roundtrip(reader, writer, payload):
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


class TestStrictValidation:
    @pytest.mark.parametrize(
        "payload, offender",
        [
            ({"op": "estimate", "pipeline": "costed", "config": [1, 1, 0, 0],
              "n": 3200, "bogus": 1}, "bogus"),
            ({"op": "pareto", "pipeline": "costed", "n": 3200, "top": 5},
             "top"),
            ({"op": "ping", "pipeline": "costed"}, "pipeline"),
            ({"op": "optimize", "pipeline": "costed", "n": 3200,
              "objektive": "time"}, "objektive"),
        ],
    )
    def test_unknown_field_is_typed_invalid_request(
        self, costed_dir, payload, offender
    ):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            reply = await roundtrip(reader, writer, {"id": 1, **payload})
            writer.close()
            return reply

        reply = serve(costed_dir, scenario)
        assert reply["ok"] is False
        assert reply["error"]["type"] == "InvalidRequest"
        assert offender in reply["error"]["message"]

    def test_known_fields_still_accepted(self, costed_dir):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            reply = await roundtrip(
                reader,
                writer,
                {"id": 1, "op": "optimize", "pipeline": "costed", "n": 3200,
                 "top": 3, "backend": "branch-bound", "budget": 100},
            )
            writer.close()
            return reply

        assert serve(costed_dir, scenario)["ok"] is True


class TestServedPareto:
    def test_served_frontier_bitwise_equals_direct_call(self, costed_dir):
        pipeline = load_pipeline(costed_dir)
        sizes = [1600, 3200]
        direct = {
            outcome.n: outcome
            for outcome in pipeline.pareto_many(sizes)
        }

        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            reply = await roundtrip(
                reader,
                writer,
                {"id": 1, "op": "pareto", "pipeline": "costed", "ns": sizes},
            )
            writer.close()
            return reply

        reply = serve(costed_dir, scenario)
        assert reply["ok"] is True
        result = reply["result"]
        assert result["pipeline"] == "costed"
        assert result["fingerprint"]  # per-point provenance
        kinds = pipeline.plan.kinds
        for size_result in result["sizes"]:
            outcome = direct[size_result["n"]]
            assert size_result["complete"] is True
            served = [
                (tuple(p["config"]), p["time_s"], p["dollars"], p["energy_wh"])
                for p in size_result["points"]
            ]
            want = [
                (tuple(p.config.as_flat_tuple(kinds)), p.time_s, p.dollars,
                 p.energy_wh)
                for p in outcome.points
            ]
            assert served == want

    def test_max_cost_is_honored_and_echoed(self, costed_dir):
        pipeline = load_pipeline(costed_dir)
        cap = pipeline.pareto(3200).min_cost.dollars * 1.01

        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            reply = await roundtrip(
                reader,
                writer,
                {"id": 1, "op": "pareto", "pipeline": "costed", "n": 3200,
                 "max_cost": cap},
            )
            writer.close()
            return reply

        result = serve(costed_dir, scenario)["result"]
        size_result = result["sizes"][0]
        assert size_result["max_cost"] == cap
        assert all(p["dollars"] <= cap for p in size_result["points"])

    def test_concurrent_paretos_coalesce_and_count(self, costed_dir):
        payloads = [
            {"op": "pareto", "pipeline": "costed", "n": 1600 + 80 * i}
            for i in range(16)
        ]

        async def scenario(server, host, port):
            replies, _ = await fire_concurrent(host, port, payloads, 8)
            return replies, server.metrics

        replies, metrics = serve(costed_dir, scenario)
        assert len(replies) == len(payloads)
        assert all(reply["ok"] for reply in replies)
        assert metrics.frontiers == 16
        assert metrics.frontier_points >= 16
        assert "budget-frontier" in metrics.search_backends

    def test_weighted_objective_over_the_wire(self, costed_dir):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            fast = await roundtrip(
                reader, writer,
                {"id": 1, "op": "optimize", "pipeline": "costed", "n": 3200,
                 "objective": "weighted:0.0", "top": 1},
            )
            cheap = await roundtrip(
                reader, writer,
                {"id": 2, "op": "optimize", "pipeline": "costed", "n": 3200,
                 "objective": "weighted:1.0", "top": 1},
            )
            writer.close()
            return fast, cheap

        fast, cheap = serve(costed_dir, scenario)
        assert fast["ok"] and cheap["ok"]
        pipeline = load_pipeline(costed_dir)
        frontier = pipeline.pareto(3200)
        kinds = pipeline.plan.kinds
        assert tuple(fast["result"]["sizes"][0]["ranking"][0]["config"]) == (
            tuple(frontier.min_time.config.as_flat_tuple(kinds))
        )
        assert tuple(cheap["result"]["sizes"][0]["ranking"][0]["config"]) == (
            tuple(frontier.min_cost.config.as_flat_tuple(kinds))
        )
