"""Wire-protocol unit tests: parsing, validation, typed error replies."""

import json
import math

import pytest

from repro.serve.protocol import (
    ERROR_OVERLOADED,
    Overloaded,
    ProtocolError,
    decode_reply,
    encode_error,
    encode_exception,
    encode_ok,
    parse_request,
)


class TestParseRequest:
    def test_estimate_with_ns(self):
        request = parse_request(
            '{"id": 7, "op": "estimate", "pipeline": "p", '
            '"config": [1,2,8,1], "ns": [1600, 3200]}'
        )
        assert request.id == 7
        assert request.op == "estimate"
        assert request.pipeline == "p"
        assert request.config == (1, 2, 8, 1)
        assert request.ns == (1600, 3200)

    def test_scalar_n_normalizes_to_ns(self):
        request = parse_request(
            '{"id": 1, "op": "estimate", "pipeline": "p", "config": [1,1], "n": 400}'
        )
        assert request.ns == (400,)

    def test_optimize_carries_top(self):
        request = parse_request(
            '{"id": 2, "op": "optimize", "pipeline": "p", "n": 3200, "top": 3}'
        )
        assert request.top == 3 and request.ns == (3200,)

    def test_control_ops_need_no_params(self):
        for op in ("stats", "reload", "ping"):
            assert parse_request(json.dumps({"id": 0, "op": op})).op == op

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            '["a", "list"]',
            '{"id": 1}',  # no op
            '{"id": 1, "op": "frobnicate"}',
            '{"id": 1, "op": "estimate", "config": [1,1], "n": 4}',  # no pipeline
            '{"id": 1, "op": "estimate", "pipeline": "p", "n": 4}',  # no config
            '{"id": 1, "op": "estimate", "pipeline": "p", "config": [1,1]}',  # no n
            '{"id": 1, "op": "estimate", "pipeline": "p", "config": [1,1], "n": -3}',
            '{"id": 1, "op": "estimate", "pipeline": "p", "config": [1,1], "ns": []}',
            '{"id": 1, "op": "estimate", "pipeline": "p", "config": [1,"x"], "n": 4}',
            '{"id": 1, "op": "estimate", "pipeline": "p", "config": [1,1], "ns": [4.5]}',
            '{"id": 1, "op": "optimize", "pipeline": "p", "n": 4, "top": 0}',
            '{"id": 1, "op": "models"}',  # no pipeline
            '{"id": 1, "op": "estimate", "pipeline": 5, "config": [1,1], "n": 4}',
        ],
    )
    def test_malformed_requests_rejected(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_booleans_are_not_integers(self):
        with pytest.raises(ProtocolError):
            parse_request(
                '{"id": 1, "op": "estimate", "pipeline": "p", '
                '"config": [true, 1], "n": 4}'
            )


class TestReplies:
    def test_ok_roundtrip(self):
        line = encode_ok(3, {"totals": [1.5, float("inf")]})
        reply = decode_reply(line)
        assert reply["ok"] is True and reply["id"] == 3
        assert reply["result"]["totals"][0] == 1.5
        assert math.isinf(reply["result"]["totals"][1])

    def test_numpy_scalars_encode(self):
        import numpy as np

        reply = decode_reply(encode_ok(1, {"value": np.float64(2.5), "n": np.int64(4)}))
        assert reply["result"] == {"value": 2.5, "n": 4}

    def test_error_reply_is_typed(self):
        reply = decode_reply(encode_error(9, "BadRequest", "nope"))
        assert reply["ok"] is False
        assert reply["error"]["type"] == "BadRequest"
        assert reply["error"]["message"] == "nope"

    def test_overloaded_exception_reply_carries_backoff(self):
        exc = Overloaded(pending=256, capacity=256, retry_after_ms=40.0)
        reply = decode_reply(encode_exception(5, exc))
        assert reply["error"]["type"] == ERROR_OVERLOADED
        assert reply["error"]["pending"] == 256
        assert reply["error"]["capacity"] == 256
        assert reply["error"]["retry_after_ms"] == 40.0

    def test_unknown_exception_maps_to_internal(self):
        reply = decode_reply(encode_exception(None, RuntimeError("boom")))
        assert reply["error"]["type"] == "Internal"
        assert "boom" in reply["error"]["message"]

    def test_malformed_reply_rejected(self):
        with pytest.raises(ProtocolError):
            decode_reply('{"id": 1}')
