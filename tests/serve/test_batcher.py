"""Micro-batcher: coalescing, bitwise identity, shedding, metrics."""

import asyncio
from pathlib import Path

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.persistence import load_pipeline
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import Overloaded, ProtocolError, Request
from repro.serve.registry import ModelRegistry

FIXTURE = Path(__file__).parent.parent / "golden" / "format1_pipeline"


def estimate_request(i, config=(1, 2, 8, 1), ns=(3200,)):
    return Request(id=i, op="estimate", pipeline="golden", config=tuple(config), ns=tuple(ns))


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def direct_pipeline():
    return load_pipeline(FIXTURE)


def make_batcher(**kwargs):
    registry = ModelRegistry()
    registry.add("golden", FIXTURE)
    return MicroBatcher(registry, **kwargs)


class TestCoalescing:
    def test_concurrent_estimates_share_one_batch(self, direct_pipeline):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.01)
            batcher.start()
            futures = [
                batcher.submit(estimate_request(i, ns=(1600 + 80 * i,)))
                for i in range(10)
            ]
            results = await asyncio.gather(*futures)
            await batcher.drain_and_stop()
            return batcher, results

        batcher, results = run(scenario())
        # all ten coalesced into one drain cycle...
        assert batcher.metrics.batches == 1
        assert batcher.metrics.batch_sizes.max == 10
        # ...and into ONE vectorized model evaluation (one group)
        assert batcher.metrics.batch_groups.max == 1
        config = ClusterConfig.from_tuple(
            direct_pipeline.plan.kinds, (1, 2, 8, 1)
        )
        for i, result in enumerate(results):
            n = 1600 + 80 * i
            want = float(direct_pipeline.estimate_totals(config, [n])[0])
            assert result["totals"] == [want]  # bitwise, not approx

    def test_distinct_configs_make_distinct_groups(self):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.01)
            batcher.start()
            futures = [
                batcher.submit(estimate_request(0, config=(1, 2, 8, 1))),
                batcher.submit(estimate_request(1, config=(1, 1, 8, 1))),
            ]
            await asyncio.gather(*futures)
            await batcher.drain_and_stop()
            return batcher

        batcher = run(scenario())
        assert batcher.metrics.batch_groups.max == 2

    def test_optimize_requests_merge_sizes(self, direct_pipeline):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.01)
            batcher.start()
            futures = [
                batcher.submit(
                    Request(id=i, op="optimize", pipeline="golden", ns=(n,), top=3)
                )
                for i, n in enumerate([1600, 3200, 1600])
            ]
            results = await asyncio.gather(*futures)
            await batcher.drain_and_stop()
            return batcher, results

        batcher, results = run(scenario())
        assert batcher.metrics.batch_groups.max == 1  # one optimize_many call
        outcome = direct_pipeline.optimize(1600)
        kinds = direct_pipeline.plan.kinds
        want_top = [
            {
                "config": list(e.config.as_flat_tuple(kinds)),
                "estimate_s": e.estimate_s,
            }
            for e in outcome.top(3)
        ]
        assert results[0]["sizes"][0]["ranking"] == want_top
        assert results[2]["sizes"][0]["ranking"] == want_top

    def test_max_batch_bounds_drain(self):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.01, max_batch=4)
            batcher.start()
            futures = [
                batcher.submit(estimate_request(i, ns=(1600 + 80 * i,)))
                for i in range(10)
            ]
            await asyncio.gather(*futures)
            await batcher.drain_and_stop()
            return batcher

        batcher = run(scenario())
        assert batcher.metrics.batch_sizes.max <= 4
        assert batcher.metrics.batches >= 3


class TestErrors:
    def test_group_failure_is_typed_and_isolated(self):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.01)
            batcher.start()
            bad = batcher.submit(estimate_request(0, config=(9, 9, 9, 9)))
            good = batcher.submit(estimate_request(1))
            results = await asyncio.gather(bad, good, return_exceptions=True)
            await batcher.drain_and_stop()
            return results

        bad_result, good_result = run(scenario())
        assert isinstance(bad_result, Exception)  # ConfigurationError
        assert isinstance(good_result, dict)
        assert good_result["totals"]

    def test_unknown_pipeline_rejected_per_request(self):
        async def scenario():
            batcher = make_batcher(batch_window_s=0)
            batcher.start()
            future = batcher.submit(
                Request(id=0, op="estimate", pipeline="nope", config=(1, 1), ns=(400,))
            )
            result = await asyncio.gather(future, return_exceptions=True)
            await batcher.drain_and_stop()
            return result[0]

        assert isinstance(run(scenario()), ProtocolError)


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error(self):
        async def scenario():
            # A long window wedges the worker after the first request, so
            # the queue (bound 2) observably fills and sheds.
            batcher = make_batcher(batch_window_s=0.2, max_pending=2)
            batcher.start()
            # The worker task has not run yet (no await since start), so
            # exactly max_pending submissions are admitted...
            admitted = [batcher.submit(estimate_request(i)) for i in range(2)]
            shed = []
            for i in range(2, 7):
                try:
                    admitted.append(batcher.submit(estimate_request(i)))
                except Overloaded as exc:
                    shed.append(exc)
            results = await asyncio.gather(*admitted)
            await batcher.drain_and_stop()
            return shed, results

        shed, results = run(scenario())
        assert len(shed) == 5, "queue bound never triggered"
        assert all(exc.capacity == 2 for exc in shed)
        assert all(exc.retry_after_ms > 0 for exc in shed)
        # every admitted request still got a real answer
        assert all(result["totals"] for result in results)

    def test_submit_after_drain_is_shutting_down(self):
        async def scenario():
            batcher = make_batcher()
            batcher.start()
            await batcher.drain_and_stop()
            with pytest.raises(ProtocolError, match="shutting down"):
                batcher.submit(estimate_request(0))

        run(scenario())

    def test_drain_answers_everything_admitted(self):
        async def scenario():
            batcher = make_batcher(batch_window_s=0.05)
            batcher.start()
            futures = [
                batcher.submit(estimate_request(i, ns=(1600 + 80 * i,)))
                for i in range(20)
            ]
            # Drain immediately: nothing admitted may be dropped.
            await batcher.drain_and_stop()
            return await asyncio.gather(*futures)

        results = run(scenario())
        assert len(results) == 20
        assert all(result["totals"] for result in results)


class TestWhatif:
    def test_whatif_answers_across_pipelines(self):
        async def scenario():
            registry = ModelRegistry()
            registry.add("a", FIXTURE)
            registry.add("b", FIXTURE)
            batcher = MicroBatcher(registry, batch_window_s=0)
            batcher.start()
            future = batcher.submit(
                Request(id=0, op="whatif", config=(1, 2, 8, 1), ns=(3200,))
            )
            result = await future
            await batcher.drain_and_stop()
            return result

        result = run(scenario())
        assert set(result["pipelines"]) == {"a", "b"}
        assert result["pipelines"]["a"]["totals"] == result["pipelines"]["b"]["totals"]
        assert result["best"] == ["a"]  # tie broken by name order
