"""The version ledger: persistence, promotion, rollback."""

from __future__ import annotations

import json

import pytest

from repro.calibrate import ModelVersions
from repro.core.persistence import load_pipeline
from repro.errors import CalibrationError


@pytest.fixture()
def ledger(tmp_path):
    return ModelVersions(tmp_path / "versions")


class TestAdd:
    def test_candidate_is_saved_and_loadable(self, ledger, incumbent):
        info = ledger.add(incumbent, parent_fingerprint=None)
        assert info.version_id == "v0001"
        assert info.status == "candidate"
        assert info.fingerprint == incumbent.estimate_cache.fingerprint
        assert info.protocol == incumbent.plan.name
        assert ledger.active_id is None  # candidates don't activate
        reloaded = ledger.load_pipeline("v0001")
        assert reloaded.estimate_cache.fingerprint == info.fingerprint
        # The version directory is a normal saved pipeline.
        direct = load_pipeline(ledger.directory("v0001"))
        assert direct.estimate_cache.fingerprint == info.fingerprint

    def test_promoted_status_bootstraps_active(self, ledger, incumbent):
        info = ledger.add(incumbent, status="promoted")
        assert ledger.active_id == info.version_id
        assert ledger.active().fingerprint == info.fingerprint

    def test_metadata_round_trips(self, ledger, incumbent, tmp_path):
        window = {"start_seq": 0, "end_seq": 9, "observations": 10}
        ledger.add(
            incumbent,
            parent_fingerprint="abc123",
            fit_window=window,
            residuals={"overall": {"count": 10}},
            shadow={"candidate_wins": True},
        )
        reread = ModelVersions(tmp_path / "versions")
        info = reread.get("v0001")
        assert info.parent_fingerprint == "abc123"
        assert info.fit_window == window
        assert info.shadow == {"candidate_wins": True}

    def test_bad_status_rejected(self, ledger, incumbent):
        with pytest.raises(CalibrationError, match="status"):
            ledger.add(incumbent, status="shipped")


class TestPromotion:
    def test_promote_retires_old_active(self, ledger, incumbent):
        ledger.add(incumbent, status="promoted")
        ledger.add(incumbent, parent_fingerprint=None)
        ledger.promote("v0002")
        assert ledger.active_id == "v0002"
        assert ledger.previous_id == "v0001"
        assert ledger.get("v0001").status == "retired"
        assert ledger.get("v0002").status == "promoted"

    def test_promote_is_idempotent_on_active(self, ledger, incumbent):
        ledger.add(incumbent, status="promoted")
        ledger.promote("v0001")
        assert ledger.previous_id is None  # no self-rollback loop

    def test_rollback_restores_previous(self, ledger, incumbent):
        ledger.add(incumbent, status="promoted")
        ledger.add(incumbent)
        ledger.promote("v0002")
        restored = ledger.rollback()
        assert restored.version_id == "v0001"
        assert ledger.active_id == "v0001"
        assert ledger.get("v0002").status == "retired"

    def test_rollback_without_history_rejected(self, ledger, incumbent):
        ledger.add(incumbent, status="promoted")
        with pytest.raises(CalibrationError, match="roll back"):
            ledger.rollback()

    def test_unknown_version_rejected(self, ledger):
        with pytest.raises(CalibrationError, match="unknown model version"):
            ledger.promote("v9999")
        with pytest.raises(CalibrationError, match="unknown model version"):
            ledger.get("v0042")

    def test_active_before_any_promotion_rejected(self, ledger):
        with pytest.raises(CalibrationError, match="promoted"):
            ledger.active()


class TestManifest:
    def test_state_survives_reopen(self, tmp_path, incumbent):
        root = tmp_path / "versions"
        ledger = ModelVersions(root)
        ledger.add(incumbent, status="promoted")
        ledger.add(incumbent)
        ledger.promote("v0002")
        reread = ModelVersions(root)
        assert reread.active_id == "v0002"
        assert reread.previous_id == "v0001"
        assert [v.version_id for v in reread.history()] == ["v0001", "v0002"]
        assert len(reread) == 2

    def test_no_tmp_file_left_behind(self, tmp_path, incumbent):
        root = tmp_path / "versions"
        ModelVersions(root).add(incumbent)
        assert not list(root.glob("*.tmp"))

    def test_corrupt_manifest_rejected(self, tmp_path):
        root = tmp_path / "versions"
        root.mkdir()
        (root / "MANIFEST.json").write_text("{broken")
        with pytest.raises(CalibrationError, match="corrupt"):
            ModelVersions(root)

    def test_unknown_format_rejected(self, tmp_path):
        root = tmp_path / "versions"
        root.mkdir()
        (root / "MANIFEST.json").write_text(
            json.dumps({"format": 99, "versions": []})
        )
        with pytest.raises(CalibrationError, match="format"):
            ModelVersions(root)

    def test_describe_marks_active(self, ledger, incumbent):
        assert ledger.describe() == "ModelVersions(empty)"
        ledger.add(incumbent, status="promoted")
        assert "* v0001 [promoted]" in ledger.describe()
