"""Acceptance test: the full calibration loop against a live service.

One scenario, end to end: healthy traffic scores clean → the platform's
network degrades → drifted observations (arriving over the socket as
``observe`` requests) fire the Page-Hinkley alarm → a refit on the
re-measured construction campaign produces a candidate that beats the
stale incumbent on the held-out live tail → promotion hot-swaps the
serving registry while concurrent requests are in flight → the promoted
model's served estimates are bitwise those of the candidate pipeline →
rollback restores the prior generation.  Everything is deterministic:
noiseless simulator, seed-free detector, positional holdout.
"""

from __future__ import annotations

import asyncio
import json

from repro.calibrate import (
    Calibrator,
    DriftConfig,
    DriftDetector,
    ModelVersions,
    ObservationLog,
    Recalibrator,
)
from repro.core.persistence import save_pipeline
from repro.serve import EstimationServer, ModelRegistry, fire_concurrent

TRAFFIC_SOURCE = "live"


async def roundtrip(host, port, payload):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    line = await reader.readline()
    writer.close()
    return json.loads(line)


async def observe(host, port, record, source=TRAFFIC_SOURCE):
    reply = await roundtrip(
        host,
        port,
        {
            "op": "observe",
            "pipeline": "cluster",
            "record": record.to_dict(),
            "source": source,
        },
    )
    assert reply["ok"], reply
    return reply["result"]


def test_drift_to_promotion_to_rollback(
    tmp_path, incumbent, base_spec, drifted_spec, drifted_campaign, make_record
):
    serving_dir = tmp_path / "serving"
    save_pipeline(
        incumbent,
        serving_dir,
        include_evaluation=incumbent.graph.has("evaluation"),
    )
    registry = ModelRegistry()
    registry.add("cluster", serving_dir)
    seed_fingerprint = registry.get("cluster").fingerprint

    calibrator = Calibrator(
        "cluster",
        pipeline_provider=lambda: registry.get("cluster").pipeline,
        log=ObservationLog(),
        detector=DriftDetector(DriftConfig(delta=0.02, threshold=0.5)),
        versions=ModelVersions(tmp_path / "versions"),
    )

    # Traffic: the calibration-family configs at the calibration size,
    # where the adjusted incumbent reproduces the healthy platform exactly.
    traffic_configs = incumbent.calibration_configs()
    n_traffic = incumbent.calibration_size()
    estimate_sizes = [1600 + 160 * i for i in range(32)]
    estimate_payloads = [
        {"op": "estimate", "pipeline": "cluster", "config": [1, 3, 8, 1], "n": n}
        for n in estimate_sizes
    ]

    async def scenario():
        server = EstimationServer(
            registry,
            port=0,
            refresh_interval_s=None,
            calibrators={"cluster": calibrator},
        )
        host, port = await server.start()
        try:
            # 1. Healthy traffic: residuals at rounding error, no alarm.
            for config in traffic_configs:
                result = await observe(
                    host, port, make_record(base_spec, config, n_traffic)
                )
                assert abs(result["residual"]) < 1e-9
                assert not result["drift"]["drifted"]

            # 2. The network degrades: the same traffic now runs ~2x slow
            #    and the detector alarms within one pass over the family.
            last = None
            for config in traffic_configs:
                last = await observe(
                    host,
                    port,
                    make_record(drifted_spec, config, n_traffic, trial=1),
                )
                assert last["residual"] > 1.0
            assert last["drift"]["drifted"]
            assert last["drift"]["alarm_direction"] == "increase"
            assert server.metrics.drift_alarms == 1
            assert calibrator.drifted

            # 3. Refit evidence: the construction campaign re-measured on
            #    the drifted platform (a batch replay, not socket traffic).
            calibrator.replay_dataset(drifted_campaign.dataset, source="replay")

            # 4. More drifted live traffic - this tail is the holdout.
            for config in traffic_configs:
                await observe(
                    host,
                    port,
                    make_record(drifted_spec, config, n_traffic, trial=2),
                )

            # 5. Refit + shadow evaluation: hold out exactly the live tail.
            calibrator.recalibrator = Recalibrator(
                holdout_fraction=(len(traffic_configs) + 0.5) / len(calibrator.log)
            )
            info, shadow = calibrator.refit()
            assert shadow.holdout_size == len(traffic_configs)
            assert shadow.candidate_wins, shadow.describe()
            assert shadow.improvement > 0.05
            assert info.status == "candidate"
            assert info.parent_fingerprint == seed_fingerprint
            assert info.fingerprint != seed_fingerprint
            # The ledger bootstrapped the serving seed as v0001.
            assert calibrator.versions.get("v0001").fingerprint == seed_fingerprint

            # 6. Promote while estimate traffic is in flight: nothing drops.
            in_flight = asyncio.get_running_loop().create_task(
                fire_concurrent(host, port, estimate_payloads, concurrency=16)
            )
            await asyncio.sleep(0.005)
            promoted = calibrator.promote(registry=registry)
            replies, _ = await in_flight
            assert len(replies) == len(estimate_payloads)
            assert all(reply["ok"] for reply in replies)
            assert promoted.version_id == info.version_id
            assert registry.get("cluster").fingerprint == info.fingerprint
            assert server.metrics.promotions == 1
            # Promotion resets the drift loop for the new generation.
            assert not calibrator.drifted

            # 7. Served estimates are bitwise the candidate pipeline's own.
            replies, _ = await fire_concurrent(
                host, port, estimate_payloads, concurrency=16
            )
            direct = calibrator.versions.load_pipeline(info.version_id)
            parsed = registry.get("cluster").parse_config([1, 3, 8, 1])
            want = direct.estimate_totals(parsed, estimate_sizes)
            for reply, expected in zip(replies, want):
                assert reply["ok"], reply
                assert reply["result"]["totals"] == [float(expected)]  # bitwise

            # 8. Rollback: the prior generation serves again.
            rolled = calibrator.rollback(registry=registry)
            assert rolled.version_id == "v0001"
            assert registry.get("cluster").fingerprint == seed_fingerprint
            assert server.metrics.rollbacks == 1
            assert calibrator.versions.active_id == "v0001"

            # The calibration op reflects the loop over the socket.
            status = await roundtrip(
                host, port, {"op": "calibration", "pipeline": "cluster"}
            )
            assert status["ok"]
            assert status["result"]["fingerprint"] == seed_fingerprint
            assert status["result"]["versions"]["active"] == "v0001"
            assert status["result"]["observations"] == len(calibrator.log)
        finally:
            await server.shutdown()

    asyncio.run(scenario())
