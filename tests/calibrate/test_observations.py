"""ObservationLog: append-only semantics, persistence, dataset adapter."""

from __future__ import annotations

import json

import pytest

from repro.calibrate import OBSERVATION_TRIAL_BASE, Observation, ObservationLog
from repro.errors import CalibrationError
from repro.measure.dataset import Dataset


@pytest.fixture()
def records(base_spec, make_record, make_config):
    """Three runs: two at the same (config, N) coordinate."""
    c13 = make_config(1, 3, 8, 1)
    c14 = make_config(1, 4, 8, 1)
    return [
        make_record(base_spec, c13, 3200),
        make_record(base_spec, c14, 3200),
        make_record(base_spec, c13, 3200, trial=1),
    ]


class TestAppend:
    def test_sequence_and_source(self, records):
        log = ObservationLog()
        first = log.append(records[0])
        second = log.append(records[1], source="serve")
        assert (first.seq, first.source) == (0, "live")
        assert (second.seq, second.source) == (1, "serve")
        assert len(log) == 2
        assert [o.seq for o in log] == [0, 1]

    def test_duplicate_coordinates_are_kept(self, records):
        log = ObservationLog()
        for record in records:
            log.append(record)
        coordinate = (records[0].config_tuple, records[0].n)
        matching = [
            o
            for o in log
            if (o.record.config_tuple, o.record.n) == coordinate
        ]
        assert len(matching) == 2

    def test_extend_from_dataset(self, records):
        log = ObservationLog()
        added = log.extend_from_dataset(Dataset(records), source="replay")
        assert [o.seq for o in added] == [0, 1, 2]
        assert log.sources() == {"replay": 3}

    def test_queries(self, records):
        log = ObservationLog()
        for record in records:
            log.append(record)
        assert [o.seq for o in log.tail(2)] == [1, 2]
        assert [o.seq for o in log.tail(10)] == [0, 1, 2]
        assert [o.seq for o in log.window(1, 2)] == [1, 2]
        with pytest.raises(CalibrationError):
            log.tail(0)


class TestDatasetAdapter:
    def test_trials_renumbered_into_reserved_band(self, records):
        log = ObservationLog()
        for record in records:
            log.append(record)
        dataset = log.as_dataset()
        assert len(dataset) == 3  # duplicates survive re-trialing
        trials = sorted(record.trial for record in dataset)
        assert trials == [
            OBSERVATION_TRIAL_BASE,
            OBSERVATION_TRIAL_BASE + 1,
            OBSERVATION_TRIAL_BASE + 2,
        ]

    def test_subset_selection(self, records):
        log = ObservationLog()
        for record in records:
            log.append(record)
        dataset = log.as_dataset(log.tail(1))
        assert len(dataset) == 1
        assert next(iter(dataset)).trial == OBSERVATION_TRIAL_BASE + 2


class TestPersistence:
    def test_roundtrip_resumes_sequence(self, tmp_path, records):
        path = tmp_path / "observations.jsonl"
        with ObservationLog(path) as log:
            log.append(records[0], source="a")
            log.append(records[1], source="b")
        with ObservationLog(path) as reopened:
            assert len(reopened) == 2
            assert reopened.sources() == {"a": 1, "b": 1}
            appended = reopened.append(records[2], source="c")
            assert appended.seq == 2
        with ObservationLog(path) as final:
            assert [o.seq for o in final] == [0, 1, 2]
            assert final[2].record.key() == records[2].key()

    def test_corrupt_line_rejected(self, tmp_path, records):
        path = tmp_path / "observations.jsonl"
        with ObservationLog(path) as log:
            log.append(records[0])
        path.write_text(path.read_text() + "not json\n")
        with pytest.raises(CalibrationError, match="corrupt"):
            ObservationLog(path)

    def test_out_of_sequence_rejected(self, tmp_path, records):
        path = tmp_path / "observations.jsonl"
        with ObservationLog(path) as log:
            entry = log.append(records[0])
        skewed = Observation(seq=5, source="x", record=entry.record)
        with path.open("a") as handle:
            handle.write(json.dumps(skewed.to_dict()) + "\n")
        with pytest.raises(CalibrationError, match="out of sequence"):
            ObservationLog(path)

    def test_malformed_observation_rejected(self):
        with pytest.raises(CalibrationError, match="malformed"):
            Observation.from_dict({"seq": 0, "source": "x"})

    def test_summary_mentions_path_and_sources(self, tmp_path, records):
        with ObservationLog(tmp_path / "log.jsonl") as log:
            assert log.summary() == "ObservationLog(empty)"
            log.append(records[0], source="serve")
            text = log.summary()
        assert "serve: 1" in text
        assert "log.jsonl" in text
