"""Residual statistics and the Page-Hinkley drift detector.

Everything here is pure arithmetic on hand-built residual streams —
no simulator, no RNG — because determinism is the detector's contract."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.calibrate import (
    DriftConfig,
    DriftDetector,
    ResidualStats,
    ResidualTracker,
)
from repro.errors import CalibrationError


class TestResidualStats:
    def test_matches_statistics_module(self):
        values = [0.01, -0.03, 0.2, 0.07, -0.11, 0.0]
        stats = ResidualStats()
        for value in values:
            stats.update(value)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(statistics.fmean(values))
        assert stats.std == pytest.approx(statistics.stdev(values))
        assert stats.max_abs == 0.2

    def test_degenerate_cases(self):
        stats = ResidualStats()
        assert stats.variance == 0.0
        stats.update(0.5)
        assert stats.variance == 0.0  # single sample
        with pytest.raises(CalibrationError):
            stats.update(math.nan)

    def test_to_dict_keys(self):
        stats = ResidualStats()
        stats.update(0.1)
        assert set(stats.to_dict()) == {"count", "mean", "std", "max_abs"}


class TestResidualTracker:
    def test_family_breakdown(self):
        tracker = ResidualTracker()
        tracker.update_total(0.1)
        tracker.update_family("pentium2", 3, 0.1)
        tracker.update_family("pentium2", 3, 0.3)
        tracker.update_family("pentium3", 1, -0.2)
        payload = tracker.to_dict()
        assert payload["overall"]["count"] == 1
        assert payload["by_family"]["pentium2/mi=3"]["count"] == 2
        assert payload["by_family"]["pentium3/mi=1"]["mean"] == pytest.approx(-0.2)

    def test_reset(self):
        tracker = ResidualTracker()
        tracker.update_total(0.4)
        tracker.update_family("k", 2, 0.4)
        tracker.reset()
        assert tracker.overall.count == 0
        assert tracker.by_family == {}


class TestDriftConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta": -0.1},
            {"threshold": 0.0},
            {"min_observations": 0},
            {"direction": "sideways"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(CalibrationError):
            DriftConfig(**kwargs)


class TestDriftDetector:
    def test_healthy_stream_never_alarms(self):
        detector = DriftDetector(DriftConfig(delta=0.02, threshold=0.5))
        # Zero-mean alternation: the accumulation cannot build.
        for i in range(200):
            state = detector.update(0.05 if i % 2 else -0.05)
        assert not state.drifted
        assert state.alarmed_at is None

    def test_sustained_shift_alarms_increase(self):
        detector = DriftDetector(
            DriftConfig(delta=0.02, threshold=0.5, min_observations=8)
        )
        for _ in range(20):
            detector.update(0.0)
        alarmed_at = None
        for _ in range(40):
            state = detector.update(0.3)
            if state.drifted:
                alarmed_at = state.alarmed_at
                break
        assert alarmed_at is not None
        assert state.alarm_direction == "increase"
        # The alarm is sticky and keeps its original index.
        later = detector.update(0.0)
        assert later.drifted and later.alarmed_at == alarmed_at

    def test_sustained_shift_alarms_decrease(self):
        detector = DriftDetector(DriftConfig(threshold=0.5))
        for _ in range(20):
            detector.update(0.0)
        for _ in range(40):
            state = detector.update(-0.3)
            if state.drifted:
                break
        assert state.drifted
        assert state.alarm_direction == "decrease"

    def test_direction_filter(self):
        def run(direction):
            detector = DriftDetector(
                DriftConfig(direction=direction, threshold=0.5)
            )
            for _ in range(20):
                detector.update(0.0)
            for _ in range(40):
                state = detector.update(-0.4)
            return state.drifted

        assert run("decrease")  # the shift is real...
        assert not run("increase")  # ...but filtered out by direction

    def test_min_observations_suppresses_early_alarm(self):
        config = DriftConfig(delta=0.0, threshold=0.1, min_observations=50)
        detector = DriftDetector(config)
        for i in range(49):
            assert not detector.update(1.0 if i else 0.0).drifted
        assert detector.update(1.0).drifted

    def test_isolated_outlier_does_not_alarm(self):
        detector = DriftDetector(DriftConfig(delta=0.02, threshold=2.0))
        for _ in range(30):
            detector.update(0.0)
        detector.update(1.5)  # one spike
        for _ in range(30):
            state = detector.update(0.0)
        assert not state.drifted

    def test_deterministic_replay(self):
        stream = [0.01 * ((i * 7) % 13 - 6) for i in range(100)] + [0.4] * 20
        states_a = [DriftDetector().update(x) for x in stream]
        states_b = [DriftDetector().update(x) for x in stream]
        assert states_a == states_b  # DriftState is a frozen dataclass

    def test_reset_clears_alarm(self):
        detector = DriftDetector(DriftConfig(threshold=0.2))
        for _ in range(10):
            detector.update(0.0)
        for _ in range(30):
            detector.update(0.5)
        assert detector.drifted
        detector.reset()
        assert not detector.drifted
        assert detector.state.observations == 0

    def test_non_finite_rejected(self):
        with pytest.raises(CalibrationError):
            DriftDetector().update(math.inf)

    def test_describe_mentions_status(self):
        detector = DriftDetector(DriftConfig(threshold=0.2))
        assert "healthy" in detector.describe()
        for _ in range(10):
            detector.update(0.0)
        for _ in range(30):
            detector.update(0.5)
        assert "DRIFTED" in detector.describe()
