"""Shared calibration fixtures: an incumbent pipeline and a drifted twin
of its platform.

The drift scenario is a degraded inter-node network (a switch
renegotiating down: 20x the latency, a quarter of the bandwidth), which
moves multi-node wall times by ~100% while leaving single-node runs
untouched — visible, asymmetric, and entirely deterministic because the
simulator is."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.hpl.driver import run_hpl
from repro.measure.record import MeasurementRecord


@pytest.fixture(scope="session")
def base_spec():
    return kishimoto_cluster()


@pytest.fixture(scope="session")
def drifted_spec(base_spec):
    """The same cluster after its network degraded."""
    network = dataclasses.replace(
        base_spec.network,
        latency_s=base_spec.network.latency_s * 20,
        bandwidth_bps=base_spec.network.bandwidth_bps / 4,
    )
    return dataclasses.replace(base_spec, network=network)


@pytest.fixture(scope="session")
def incumbent(base_spec):
    """The promoted model: an NS pipeline fitted on the healthy platform."""
    return EstimationPipeline(
        base_spec, PipelineConfig(protocol="ns", seed=7, noise=None)
    )


@pytest.fixture(scope="session")
def drifted_campaign(drifted_spec, incumbent):
    """The incumbent's construction plan re-measured on the drifted
    platform — the refit evidence a real operator would collect."""
    from repro.measure.campaign import run_campaign

    return run_campaign(drifted_spec, incumbent.plan, noise=None, seed=7)


@pytest.fixture(scope="session")
def make_record(incumbent):
    """(spec, config, n, trial) -> MeasurementRecord of one noiseless run."""

    def _make(spec, config, n, trial=0):
        result = run_hpl(
            spec, config, n, params=None, noise=None, seed=7, trial=trial
        )
        return MeasurementRecord.from_result(
            result, incumbent.plan.kinds, seed=7, trial=trial
        )

    return _make
