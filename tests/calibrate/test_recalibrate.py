"""Dataset merging, candidate building and shadow scoring."""

from __future__ import annotations

import pytest

import repro.calibrate.recalibrate as recalibrate_module
from repro.calibrate import (
    OBSERVATION_TRIAL_BASE,
    ObservationLog,
    Recalibrator,
    merge_with_observations,
)
from repro.errors import CalibrationError
from repro.measure.dataset import Dataset


@pytest.fixture()
def seed_dataset(base_spec, make_record, make_config):
    return Dataset(
        [
            make_record(base_spec, make_config(1, 3, 8, 1), 3200),
            make_record(base_spec, make_config(1, 4, 8, 1), 3200),
            make_record(base_spec, make_config(1, 3, 8, 1), 3200, trial=1),
        ]
    )


class TestMerge:
    def test_observation_supersedes_all_seed_trials(
        self, seed_dataset, drifted_spec, make_record, make_config
    ):
        log = ObservationLog()
        drifted = make_record(drifted_spec, make_config(1, 3, 8, 1), 3200)
        observation = log.append(drifted)
        merged, superseded = merge_with_observations(seed_dataset, [observation])
        # Both seed trials at (1,3,8,1)@3200 are gone; the observation stands.
        assert superseded == 2
        assert len(merged) == 2
        winners = [
            r for r in merged if r.trial >= OBSERVATION_TRIAL_BASE
        ]
        assert len(winners) == 1
        assert winners[0].wall_time_s == drifted.wall_time_s

    def test_newest_observation_wins_among_duplicates(
        self, seed_dataset, base_spec, drifted_spec, make_record, make_config
    ):
        log = ObservationLog()
        config = make_config(1, 3, 8, 1)
        log.append(make_record(base_spec, config, 3200))
        newest = log.append(make_record(drifted_spec, config, 3200))
        merged, _ = merge_with_observations(seed_dataset, log.observations)
        winners = [r for r in merged if r.trial >= OBSERVATION_TRIAL_BASE]
        assert len(winners) == 1
        assert winners[0].trial == OBSERVATION_TRIAL_BASE + newest.seq
        assert winners[0].wall_time_s == newest.record.wall_time_s

    def test_unobserved_coordinates_keep_seed_records(
        self, seed_dataset, drifted_spec, make_record, make_config
    ):
        log = ObservationLog()
        log.append(make_record(drifted_spec, make_config(1, 5, 8, 1), 3200))
        merged, superseded = merge_with_observations(
            seed_dataset, log.observations
        )
        assert superseded == 0
        assert len(merged) == len(seed_dataset) + 1


class TestSplit:
    def test_positional_tail_holdout(self):
        recalibrator = Recalibrator(holdout_fraction=0.25)
        observations = list(range(8))  # split() is shape-only
        fit, holdout = recalibrator.split(observations)
        assert fit == [0, 1, 2, 3, 4, 5]
        assert holdout == [6, 7]

    def test_minimum_one_holdout(self):
        fit, holdout = Recalibrator(holdout_fraction=0.25).split([1, 2])
        assert (fit, holdout) == ([1], [2])

    def test_too_few_observations(self):
        with pytest.raises(CalibrationError, match="at least 2"):
            Recalibrator().split([1])

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 2.0])
    def test_fraction_validation(self, fraction):
        with pytest.raises(CalibrationError):
            Recalibrator(holdout_fraction=fraction)


class TestCandidate:
    def test_refit_on_drifted_campaign_changes_fingerprint(
        self, incumbent, drifted_campaign
    ):
        log = ObservationLog()
        log.extend_from_dataset(drifted_campaign.dataset, source="replay")
        candidate = Recalibrator().build_candidate(incumbent, log.observations)
        assert candidate.parent_fingerprint == incumbent.estimate_cache.fingerprint
        assert candidate.fingerprint != candidate.parent_fingerprint
        assert candidate.fit_observations == len(log)
        assert candidate.fit_start_seq == 0
        assert candidate.fit_end_seq == len(log) - 1
        # Every drifted record lands on a seed construction coordinate.
        assert candidate.superseded_seed_records == len(
            incumbent.campaign.dataset
        )
        # Plan/protocol and adjustment are carried over, not re-derived.
        assert candidate.pipeline.plan.name == incumbent.plan.name
        assert candidate.pipeline.adjustment is incumbent.adjustment

    def test_requires_observations(self, incumbent):
        with pytest.raises(CalibrationError, match="at least one"):
            Recalibrator().build_candidate(incumbent, [])


class TestShadowScoring:
    def test_incumbent_scores_zero_on_its_own_platform(
        self, incumbent, base_spec, make_record
    ):
        # At the calibration size the adjusted model reproduces the
        # noiseless simulator to rounding error.
        log = ObservationLog()
        n = incumbent.calibration_size()
        for config in incumbent.calibration_configs():
            log.append(make_record(base_spec, config, n))
        score = Recalibrator().score(incumbent, log.observations)
        assert score.scored == len(log)
        assert score.skipped == 0
        assert score.mean_abs_relative_error < 1e-12

    def test_report_verdict(self, incumbent, base_spec, make_record):
        log = ObservationLog()
        n = incumbent.calibration_size()
        for config in incumbent.calibration_configs():
            log.append(make_record(base_spec, config, n))
        report = Recalibrator().shadow_evaluate(
            incumbent, incumbent, log.observations
        )
        assert report.holdout_size == len(log)
        assert report.improvement == 0.0
        assert not report.candidate_wins  # strict inequality on a tie
        assert "held-out" in report.describe()

    def test_empty_holdout_rejected(self, incumbent):
        with pytest.raises(CalibrationError, match="requires a holdout"):
            Recalibrator().shadow_evaluate(incumbent, incumbent, [])

    def test_all_points_outside_domain_rejected(
        self, incumbent, base_spec, make_record, make_config, monkeypatch
    ):
        log = ObservationLog()
        log.append(make_record(base_spec, make_config(1, 3, 8, 1), 3200))
        monkeypatch.setattr(
            recalibrate_module, "_predict", lambda pipeline, observation: None
        )
        with pytest.raises(CalibrationError, match="scored no observations"):
            Recalibrator().score(incumbent, log.observations)
