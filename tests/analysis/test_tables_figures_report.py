"""Tests for table rendering, figure series and reports."""

import pytest

from repro.analysis.correlation import correlation_data
from repro.analysis.figures import (
    Series,
    ascii_scatter,
    fig1_series,
    fig2_series,
    fig3a_series,
    fig3b_series,
    series_table,
)
from repro.analysis.report import (
    correlation_summary,
    cost_table,
    protocol_report,
    verification_table,
)
from repro.analysis.tables import render_markdown_table, render_table


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")

    def test_render_table_title(self):
        text = render_table(["x"], [[1]], title="My table")
        assert text.startswith("My table")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
        with pytest.raises(ValueError):
            render_markdown_table(["a"], [[1, 2]])

    def test_markdown_table_shape(self):
        text = render_markdown_table(["a", "b"], [["x", "y"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| x | y |"


class TestSeries:
    def test_series_validation(self):
        with pytest.raises(ValueError):
            Series("bad", (1.0, 2.0), (1.0,))

    def test_fig1_shapes(self):
        series = fig1_series("1.2.2", sizes=[1000, 3000], max_procs=2)
        assert [s.label for s in series] == ["1P/CPU", "2P/CPU"]
        assert all(len(s.y) == 2 for s in series)
        # multiprocessing costs throughput on a single CPU
        assert series[1].y[0] < series[0].y[0]

    def test_fig2_versions_and_units(self):
        series = fig2_series(block_sizes=[1024, 131072])
        labels = {s.label for s in series}
        assert labels == {"mpich-1.2.1", "mpich-1.2.2"}
        for s in series:
            assert s.x[0] == pytest.approx(1.0)  # KB
            assert 0 < s.y[0] < 3  # Gbit/s

    def test_fig3a_load_imbalance_story(self, spec):
        series = {s.label: s for s in fig3a_series(sizes=[8000], spec=spec)}
        het = series["Ath x 1 + P2 x 4"].y[0]
        p2x5 = series["P2 x 5"].y[0]
        # the heterogeneous config is dragged to ~the all-P2 level
        assert het == pytest.approx(p2x5, rel=0.25)

    def test_fig3b_multiprocessing_helps_at_large_n(self, spec):
        series = {s.label: s for s in fig3b_series(sizes=[9000], spec=spec)}
        assert series["n = 3"].y[0] > series["n = 1"].y[0]

    def test_series_table_renders_all_series(self):
        series = [Series("a", (1.0, 2.0), (0.1, 0.2)), Series("b", (1.0, 2.0), (0.3, 0.4))]
        text = series_table(series, "N")
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 3

    def test_series_table_empty(self):
        assert series_table([], "N") == "(no series)"


class TestReports:
    def test_cost_table_contains_sizes_and_total(self, basic_pipeline):
        text = cost_table(basic_pipeline)
        assert "athlon [sec]" in text
        assert "Total" in text
        assert "6400" in text

    def test_verification_table_has_one_row_per_size(self, basic_pipeline):
        text = verification_table(basic_pipeline, sizes=[3200, 4800])
        assert len(text.splitlines()) == 5  # title + header + rule + 2 rows

    def test_correlation_summary(self, basic_pipeline):
        text = correlation_summary(basic_pipeline, sizes=[4800])
        assert "R2" in text and "4800" in text

    def test_ascii_scatter_contains_groups(self, basic_pipeline):
        data = correlation_data(basic_pipeline, 4800)
        art = ascii_scatter(data)
        assert "|" in art and "estimate" in art
        assert any(ch.isdigit() for ch in art)

    def test_protocol_report_sections(self, ns_pipeline):
        text = protocol_report(ns_pipeline)
        for token in (
            "Protocol 'ns'",
            "Measurement cost",
            "ModelStore",
            "Adjustment",
            "Errors in estimated best configurations",
            "correlation",
        ):
            assert token in text
