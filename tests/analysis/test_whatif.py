"""Unit tests for what-if hardware comparisons."""

import pytest

from repro.analysis.whatif import VariantOutcome, compare_variants, comparison_table
from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.errors import MeasurementError

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


class TestVariantOutcome:
    def test_lookup(self):
        outcome = VariantOutcome(
            "x", ((1600, cfg(1, 1, 0, 0), 3.1), (3200, cfg(1, 1, 8, 1), 20.0))
        )
        assert outcome.config_at(3200).label(KINDS) == "1,1,8,1"
        assert outcome.time_at(1600) == 3.1
        with pytest.raises(MeasurementError):
            outcome.config_at(9999)


class TestCompare:
    @pytest.fixture(scope="class")
    def outcomes(self):
        variants = {
            "tx": kishimoto_cluster(network="100base-tx"),
            "sx": kishimoto_cluster(network="1000base-sx"),
        }
        return compare_variants(variants, protocol="ns", seed=11, sizes=(1600, 3200))

    def test_one_outcome_per_variant(self, outcomes):
        assert [o.label for o in outcomes] == ["tx", "sx"]
        assert len(outcomes[0].best_configs) == 2

    def test_gigabit_never_slower_at_optimum(self, outcomes):
        tx, sx = outcomes
        for n in (1600, 3200):
            assert sx.time_at(n) <= tx.time_at(n) * 1.02

    def test_table_renders(self, outcomes):
        text = comparison_table(outcomes, KINDS)
        assert "tx: best" in text and "sx: t [s]" in text
        assert "1600" in text

    def test_empty_variants_rejected(self):
        with pytest.raises(MeasurementError):
            compare_variants({})

    def test_empty_table(self):
        assert comparison_table([], KINDS) == "(no variants)"
