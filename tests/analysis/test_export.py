"""Tests for CSV export."""

import csv
import io

import pytest

from repro.analysis.correlation import correlation_data
from repro.analysis.export import (
    correlation_to_csv,
    cost_to_csv,
    export_figures,
    export_protocol,
    series_to_csv,
    verification_to_csv,
)
from repro.analysis.figures import Series


def parse_csv(text):
    return list(csv.reader(io.StringIO(text)))


class TestSerializers:
    def test_series_to_csv_wide_format(self):
        series = [
            Series("a", (1.0, 2.0), (0.5, 0.6)),
            Series("b", (1.0, 2.0), (0.7, 0.8)),
        ]
        rows = parse_csv(series_to_csv(series, "N"))
        assert rows[0] == ["N", "a", "b"]
        assert rows[1][0] == "1" and float(rows[1][2]) == pytest.approx(0.7)
        assert len(rows) == 3

    def test_empty_series(self):
        assert series_to_csv([], "N") == "N\n"

    def test_correlation_csv_has_62_rows(self, ns_pipeline):
        data = correlation_data(ns_pipeline, 1600)
        rows = parse_csv(correlation_to_csv(data))
        assert rows[0][0] == "config"
        assert len(rows) == 63
        # columns parse as numbers
        assert float(rows[1][2]) > 0 and float(rows[1][4]) > 0

    def test_verification_csv(self, ns_pipeline):
        rows = parse_csv(verification_to_csv(ns_pipeline))
        assert rows[0][0] == "n"
        assert len(rows) == 1 + len(ns_pipeline.plan.evaluation_sizes)

    def test_cost_csv_totals(self, ns_pipeline):
        rows = parse_csv(cost_to_csv(ns_pipeline))
        assert rows[0] == ["n", "athlon", "pentium2"]
        assert rows[-1][0] == "total"
        total = float(rows[-1][1]) + float(rows[-1][2])
        assert total == pytest.approx(ns_pipeline.campaign.total_cost_s, rel=1e-6)


class TestExportDirectories:
    def test_export_protocol_writes_files(self, ns_pipeline, tmp_path):
        written = export_protocol(ns_pipeline, tmp_path, correlation_sizes=[1600])
        names = sorted(p.name for p in written)
        assert names == [
            "ns_correlation_n1600.csv",
            "ns_cost.csv",
            "ns_verification.csv",
        ]
        for path in written:
            assert path.read_text().strip()

    def test_export_figures_writes_five_files(self, spec, tmp_path):
        written = export_figures(tmp_path, spec=spec)
        assert len(written) == 5
        assert (tmp_path / "fig2_netpipe.csv").exists()
        rows = parse_csv((tmp_path / "fig1_mpich121.csv").read_text())
        assert rows[0] == ["N", "1P/CPU", "2P/CPU", "3P/CPU", "4P/CPU"]
