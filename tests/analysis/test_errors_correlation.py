"""Tests for error rows (Tables 4/7/9) and correlation data (Figs 6-15)."""

import pytest

from repro.analysis.correlation import CorrelationData, ScatterPoint, correlation_data
from repro.analysis.errors import (
    EvaluationRow,
    evaluation_row,
    evaluation_rows,
    worst_abs_estimate_error,
    worst_regret,
)
from repro.cluster.config import ClusterConfig

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


class TestEvaluationRow:
    def test_error_definitions(self):
        row = EvaluationRow(
            n=6400,
            estimated_config=cfg(1, 1, 8, 1),
            tau=129.8,
            tau_hat=129.7,
            actual_config=cfg(1, 2, 8, 1),
            t_hat=125.2,
        )
        # the paper's Table 4 row for N=6400
        assert row.estimate_error == pytest.approx(0.037, abs=0.001)
        assert row.regret == pytest.approx(0.036, abs=0.001)
        assert not row.picked_optimum

    def test_picked_optimum_has_zero_regret(self):
        row = EvaluationRow(
            n=3200,
            estimated_config=cfg(1, 1, 0, 0),
            tau=20.0,
            tau_hat=20.4,
            actual_config=cfg(1, 1, 0, 0),
            t_hat=20.4,
        )
        assert row.picked_optimum
        assert row.regret == 0.0

    def test_as_cells(self):
        row = EvaluationRow(
            n=3200,
            estimated_config=cfg(1, 1, 0, 0),
            tau=20.0,
            tau_hat=20.4,
            actual_config=cfg(1, 1, 0, 0),
            t_hat=20.4,
        )
        cells = row.as_cells(KINDS)
        assert cells[0] == "3200"
        assert cells[1] == "1,1,0,0"

    def test_aggregates(self):
        rows = [
            EvaluationRow(1, cfg(1, 1, 0, 0), 10, 11, cfg(1, 1, 0, 0), 10),
            EvaluationRow(2, cfg(1, 1, 0, 0), 8, 12, cfg(1, 1, 0, 0), 10),
        ]
        assert worst_abs_estimate_error(rows) == pytest.approx(0.2)
        assert worst_regret(rows) == pytest.approx(0.2)


class TestPipelineRows:
    def test_row_consistency(self, basic_pipeline):
        row = evaluation_row(basic_pipeline, 4800)
        assert row.n == 4800
        assert row.tau_hat >= row.t_hat  # chosen config can't beat the optimum
        assert row.t_hat > 0

    def test_rows_cover_evaluation_sizes(self, basic_pipeline):
        rows = evaluation_rows(basic_pipeline, sizes=[3200, 4800])
        assert [row.n for row in rows] == [3200, 4800]


class TestCorrelation:
    def test_points_cover_grid(self, basic_pipeline):
        data = correlation_data(basic_pipeline, 4800)
        assert data.n == 4800
        assert len(data.points) == 62

    def test_groups_by_m1(self, basic_pipeline):
        data = correlation_data(basic_pipeline, 4800)
        groups = data.groups()
        assert set(groups) == {0, 1, 2, 3, 4, 5, 6}
        assert len(groups[0]) == 8  # P1=0: P2 in 1..8

    def test_adjustment_improves_fit_at_calibration_size(self, basic_pipeline):
        data = correlation_data(basic_pipeline, 6400)
        assert data.r_squared(adjusted=True) > data.r_squared(adjusted=False)
        assert data.mean_abs_deviation(adjusted=True) < data.mean_abs_deviation(
            adjusted=False
        )

    def test_adjusted_slope_near_one(self, basic_pipeline):
        data = correlation_data(basic_pipeline, 6400)
        assert data.systematic_slope(adjusted=True) == pytest.approx(1.0, abs=0.12)

    def test_metrics_on_synthetic_points(self):
        points = [
            ScatterPoint(cfg(1, 1, 0, 0), 1, 10.0, 10.0, 10.0),
            ScatterPoint(cfg(1, 2, 0, 0), 2, 20.0, 20.0, 20.0),
        ]
        data = CorrelationData(n=1, points=points)
        assert data.r_squared() == pytest.approx(1.0)
        assert data.mean_abs_deviation() == 0.0
        assert data.worst_deviation() == 0.0
        assert data.systematic_slope() == pytest.approx(1.0)

    def test_deviation_sign(self):
        point = ScatterPoint(cfg(1, 1, 0, 0), 1, 8.0, 8.0, 10.0)
        assert point.deviation() == pytest.approx(-0.2)
