"""Unit tests for the seed-sweep robustness study."""

import pytest

from repro.analysis.seedsweep import SweepStats, sweep_protocol
from repro.errors import MeasurementError


class TestSweepStats:
    def test_statistics(self):
        stats = SweepStats((0.1, 0.2, 0.3))
        assert stats.mean == pytest.approx(0.2)
        assert stats.worst == 0.3
        assert stats.best == 0.1
        assert stats.fraction_above(0.15) == pytest.approx(2 / 3)

    def test_single_value(self):
        stats = SweepStats((0.5,))
        assert stats.std == 0.0
        assert stats.mean == stats.worst == stats.best == 0.5


class TestSweepProtocol:
    @pytest.fixture(scope="class")
    def ns_sweep(self, spec):
        return sweep_protocol(spec, "ns", seeds=(11, 12), min_n=3200)

    def test_shape(self, ns_sweep):
        assert ns_sweep.protocol == "ns"
        assert ns_sweep.seeds == (11, 12)
        assert len(ns_sweep.worst_regret.values) == 2

    def test_ns_fails_on_every_seed(self, ns_sweep):
        assert ns_sweep.worst_abs_error.best > 0.30

    def test_summary_row(self, ns_sweep):
        row = ns_sweep.summary_row()
        assert row[0] == "ns"
        assert "±" in row[1]

    def test_empty_seeds_rejected(self, spec):
        with pytest.raises(MeasurementError):
            sweep_protocol(spec, "ns", seeds=())

    def test_min_n_filter_rejected_when_too_high(self, spec):
        with pytest.raises(MeasurementError, match="no evaluation sizes"):
            sweep_protocol(spec, "ns", seeds=(11,), min_n=100_000)
