"""Tests for decision-confidence (tie) analysis."""

import pytest

from repro.analysis.decision import (
    analyze_outcome,
    decision_report,
    decision_table,
)
from repro.cluster.config import ClusterConfig
from repro.core.optimizer import ExhaustiveOptimizer
from repro.errors import SearchError

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


def outcome_for(times):
    configs = list(times)
    estimator = lambda c, n: times[c.label(KINDS)]
    return ExhaustiveOptimizer(
        estimator, [ClusterConfig.from_tuple(KINDS, tuple(map(int, label.split(",")))) for label in configs]
    ).optimize(1)


class TestAnalyzeOutcome:
    def test_tie_set_membership(self):
        outcome = outcome_for(
            {"1,1,0,0": 100.0, "1,2,8,1": 103.0, "1,3,8,1": 120.0}
        )
        report = analyze_outcome(outcome, error_band=0.05)
        assert len(report.tie_set) == 2
        assert report.best.label(KINDS) == "1,1,0,0"
        assert report.contains(cfg(1, 2, 8, 1))
        assert not report.contains(cfg(1, 3, 8, 1))
        assert report.margin == pytest.approx(0.20)
        assert not report.is_confident

    def test_confident_when_winner_alone(self):
        outcome = outcome_for({"1,1,0,0": 100.0, "1,2,8,1": 150.0})
        report = analyze_outcome(outcome, error_band=0.05)
        assert report.is_confident
        assert report.margin == pytest.approx(0.50)

    def test_all_tied_gives_infinite_margin(self):
        outcome = outcome_for({"1,1,0,0": 100.0, "1,2,8,1": 101.0})
        report = analyze_outcome(outcome, error_band=0.10)
        assert len(report.tie_set) == 2
        assert report.margin == float("inf")
        assert "inf" in report.describe(KINDS)

    def test_negative_band_rejected(self):
        outcome = outcome_for({"1,1,0,0": 1.0})
        with pytest.raises(SearchError):
            analyze_outcome(outcome, error_band=-0.1)

    def test_describe(self):
        outcome = outcome_for({"1,1,0,0": 100.0, "1,2,8,1": 102.0})
        text = analyze_outcome(outcome, 0.05).describe(KINDS)
        assert "2 configuration(s) tied" in text


class TestOnPipeline:
    def test_near_ties_are_the_norm_at_large_n(self, basic_pipeline):
        """The reproduction's core nuance: at large N several M1 choices
        tie within the model's error band."""
        reports = decision_report(basic_pipeline, sizes=[9600], error_band=0.05)
        assert len(reports[0].tie_set) >= 2

    def test_measured_best_lies_in_tie_set(self, basic_pipeline):
        """Why argmin misses are benign: the ground-truth optimum is inside
        the estimated tie set at every evaluated size."""
        for report in decision_report(basic_pipeline, error_band=0.05):
            actual, _ = basic_pipeline.actual_best(report.n)
            assert report.contains(actual), (
                f"N={report.n}: measured best {actual.label(KINDS)} outside "
                f"tie set {[c.label(KINDS) for c, _ in report.tie_set]}"
            )

    def test_table_renders(self, basic_pipeline):
        text = decision_table(basic_pipeline, sizes=[3200, 9600])
        assert "tie" in text.lower()
        assert "9600" in text
        assert "NO" not in text  # measured best always inside the ties here

    def test_small_n_is_confident(self, basic_pipeline):
        """At N=3200 the Athlon-only configuration wins outright."""
        report = decision_report(basic_pipeline, sizes=[3200], error_band=0.03)[0]
        assert report.best.label(KINDS) == "1,1,0,0"
