"""Tests for the phase-breakdown diagnostics."""

import pytest

from repro.analysis.breakdown import (
    breakdown_report,
    kind_breakdown_table,
    process_breakdown_table,
)
from repro.cluster.config import ClusterConfig
from repro.hpl.driver import run_hpl

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


class TestBreakdownTables:
    @pytest.fixture(scope="class")
    def result(self, spec):
        return run_hpl(spec, cfg(1, 2, 8, 1), 3200)

    def test_kind_table_has_both_kinds(self, result):
        text = kind_breakdown_table(result)
        assert "athlon" in text and "pentium2" in text
        assert "Ta" in text and "Tc" in text
        assert f"N={result.n}" in text

    def test_process_table_rows(self, result):
        text = process_breakdown_table(result)
        # header + rule + title + one row per rank
        assert len(text.splitlines()) == 3 + result.total_processes

    def test_process_table_limit(self, result):
        text = process_breakdown_table(result, limit=3)
        assert len(text.splitlines()) == 3 + 3

    def test_report_names_bottleneck(self, spec):
        text = breakdown_report(spec, cfg(1, 1, 8, 1), 4800)
        assert "Bottleneck kind: pentium2" in text
        assert "dominant phase: update" in text

    def test_report_per_process_flag(self, spec):
        short = breakdown_report(spec, cfg(1, 1, 2, 1), 1600)
        long = breakdown_report(spec, cfg(1, 1, 2, 1), 1600, per_process=True)
        assert len(long) > len(short)
        assert "rank" in long and "rank" not in short


class TestBreakdownCLI:
    def test_cli_breakdown(self, capsys):
        from repro.cli import main

        code = main(["breakdown", "--config", "1,2,8,1", "--n", "1600"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Phase breakdown" in out and "Bottleneck kind" in out

    def test_cli_breakdown_per_process(self, capsys):
        from repro.cli import main

        code = main(
            ["breakdown", "--config", "0,0,4,1", "--n", "1600", "--per-process"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Per-process" in out
