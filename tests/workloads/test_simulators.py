"""Simulator determinism: scalar == batch bitwise, vectorized == reference."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import SimulationError
from repro.hpl.driver import NoiseSpec
from repro.measure.grids import PAPER_KINDS
from repro.workloads import run_montecarlo, run_montecarlo_batch, run_sorting, run_sorting_batch
from repro.workloads.montecarlo import simulate_montecarlo_reference
from repro.workloads.sorting import simulate_sorting_reference

CONFIGS = [(1, 2, 4, 1), (1, 3, 0, 0), (0, 0, 8, 1), (1, 1, 1, 1)]

FAMILIES = {
    "sorting": (run_sorting, run_sorting_batch, simulate_sorting_reference, 4000),
    "montecarlo": (
        run_montecarlo, run_montecarlo_batch, simulate_montecarlo_reference, 4096,
    ),
}


def config_of(values):
    return ClusterConfig.from_tuple(PAPER_KINDS, values)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("values", CONFIGS)
class TestBitwiseDeterminism:
    def test_scalar_equals_batch_with_noise(self, spec, family, values):
        """Batching must not change a single bit of any run, even under
        per-run noise: every (config, N, trial) seeds its own stream."""
        run, run_batch, _, n = FAMILIES[family]
        config = config_of(values)
        noise = NoiseSpec()
        sizes = [n, n // 2, n]
        trials = [0, 3, 1]
        batched = run_batch(spec, config, sizes, noise=noise, seed=7, trial=trials)
        for size, trial, from_batch in zip(sizes, trials, batched):
            scalar = run(spec, config, size, noise=noise, seed=7, trial=trial)
            assert scalar.wall_time_s == from_batch.wall_time_s  # bitwise
            for name, values_arr in scalar.phase_arrays.items():
                assert np.array_equal(values_arr, from_batch.phase_arrays[name])

    def test_repeated_runs_are_identical(self, spec, family, values):
        run, _, _, n = FAMILIES[family]
        config = config_of(values)
        noise = NoiseSpec()
        a = run(spec, config, n, noise=noise, seed=7, trial=2)
        b = run(spec, config, n, noise=noise, seed=7, trial=2)
        assert a.wall_time_s == b.wall_time_s

    def test_vectorized_matches_reference(self, spec, family, values):
        run, _, reference, n = FAMILIES[family]
        config = config_of(values)
        vectorized = run(spec, config, n)
        scalar = reference(spec, config, n)
        assert vectorized.wall_time_s == pytest.approx(
            scalar.wall_time_s, rel=1e-9
        )
        for name, values_arr in vectorized.phase_arrays.items():
            np.testing.assert_allclose(
                values_arr, scalar.phase_arrays[name], rtol=1e-9
            )


class TestResultInterface:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_result_satisfies_measurement_duck_interface(self, spec, family):
        run, _, _, n = FAMILIES[family]
        result = run(spec, config_of((1, 2, 4, 1)), n)
        assert result.total_processes == 6
        assert result.wall_time_s > 0
        assert result.gflops > 0
        assert set(result.kind_names()) == {"athlon", "pentium2"}
        assert result.bottleneck_kind() in result.kind_names()
        for kind in result.kind_names():
            phases = result.kind_phases(kind)
            assert phases.total > 0
            assert phases.total == pytest.approx(phases.ta + phases.tc)

    def test_noise_perturbs_times(self, spec):
        config = config_of((1, 2, 4, 1))
        quiet = run_sorting(spec, config, 4000)
        noisy = run_sorting(spec, config, 4000, noise=NoiseSpec(), seed=3)
        assert noisy.wall_time_s != quiet.wall_time_s

    def test_bad_order_rejected(self, spec):
        with pytest.raises(SimulationError, match=">= 1"):
            run_sorting(spec, config_of((1, 1, 0, 0)), 0)
        with pytest.raises(SimulationError, match=">= 1"):
            run_montecarlo_batch(spec, config_of((1, 1, 0, 0)), [1024, 0])

    def test_trial_length_mismatch_rejected(self, spec):
        with pytest.raises(SimulationError, match="trial indices"):
            run_sorting_batch(
                spec, config_of((1, 1, 0, 0)), [1000, 2000], trial=[0]
            )
