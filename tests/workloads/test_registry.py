"""Workload registry semantics: tags, resolution, inventory."""

import pytest

from repro.errors import ModelError
from repro.workloads import (
    HPLWorkload,
    MonteCarloWorkload,
    SortingWorkload,
    Workload,
    create_workload,
    iter_workloads,
    register_workload,
    registered_workloads,
)


class TestRegistry:
    def test_builtin_families_are_registered(self):
        assert registered_workloads() == ("hpl", "montecarlo", "sorting")

    def test_create_resolves_to_singletons(self):
        assert isinstance(create_workload("hpl"), HPLWorkload)
        assert isinstance(create_workload("sorting"), SortingWorkload)
        assert isinstance(create_workload("montecarlo"), MonteCarloWorkload)
        assert create_workload("sorting") is create_workload("sorting")

    def test_unknown_tag_is_model_error_naming_known_tags(self):
        with pytest.raises(ModelError, match="unknown workload 'summa'") as err:
            create_workload("summa")
        assert "hpl" in str(err.value)
        assert "sorting" in str(err.value)

    def test_reregistering_same_class_is_idempotent(self):
        register_workload("sorting")(SortingWorkload)
        assert isinstance(create_workload("sorting"), SortingWorkload)

    def test_reregistering_different_class_is_rejected(self):
        class Impostor(Workload):
            pass

        with pytest.raises(ModelError, match="already registered"):
            register_workload("sorting")(Impostor)

    def test_iter_workloads_sorted_pairs(self):
        pairs = iter_workloads()
        assert [tag for tag, _ in pairs] == ["hpl", "montecarlo", "sorting"]
        for tag, workload in pairs:
            assert workload.tag == tag


class TestDescribe:
    @pytest.mark.parametrize("tag", ["hpl", "sorting", "montecarlo"])
    def test_describe_is_serializable_inventory(self, tag):
        info = create_workload(tag).describe()
        assert info["tag"] == tag
        assert info["display"]
        assert info["phases"]
        # Compute + communication partition the phase list.
        assert sorted(info["compute_phases"] + info["comm_phases"]) == sorted(
            info["phases"]
        )
        # The paper's grid shape: 62 evaluation configurations, 5 sizes.
        assert info["evaluation_configs"] == 62
        assert len(info["evaluation_sizes"]) == 5

    def test_phase_decompositions(self):
        assert create_workload("sorting").phase_names == (
            "partition", "scatter", "local_sort", "merge",
        )
        assert create_workload("montecarlo").phase_names == (
            "sweep", "barrier", "rebalance",
        )
        assert create_workload("hpl").phase_names == (
            "pfact", "mxswp", "bcast", "update", "laswp", "uptrsv",
        )

    @pytest.mark.parametrize("tag", ["sorting", "montecarlo"])
    @pytest.mark.parametrize("protocol", ["basic", "nl", "ns"])
    def test_plans_exist_per_protocol(self, tag, protocol):
        plan = create_workload(tag).plan(protocol)
        assert plan.name == protocol
        assert len(plan.evaluation_configs) == 62

    def test_unknown_protocol_is_an_error(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="unknown protocol"):
            create_workload("sorting").plan("turbo")
