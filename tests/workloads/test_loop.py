"""The acceptance loop per family: campaign -> fit -> compose -> adjust
-> search (all backends) -> persist -> calibrate, with no
workload-specific branches outside ``repro.workloads``."""

import json
import math

import pytest

from repro.calibrate import Calibrator, ObservationLog
from repro.cli import main as cli_main
from repro.cluster.config import ClusterConfig
from repro.core.persistence import load_pipeline, save_pipeline
from repro.core.search import registered_search_backends


def pipelines(request):
    return {
        "sorting": request.getfixturevalue("sorting_pipeline"),
        "montecarlo": request.getfixturevalue("montecarlo_pipeline"),
    }


@pytest.mark.parametrize("family", ["sorting", "montecarlo"])
class TestFullLoop:
    def test_campaign_measures_the_planned_grid(self, request, family):
        pipeline = pipelines(request)[family]
        result = pipeline.campaign
        plan = pipeline.plan
        assert len(result.dataset) == len(list(plan.construction_runs()))
        assert result.total_cost_s > 0
        # Every record decomposes into the family's phases, not HPL's.
        record = result.dataset[0]
        phases = record.per_kind[0].phases
        assert tuple(phases.as_dict()) == pipeline.workload.phase_names

    def test_models_fit_and_estimates_are_finite(self, request, family):
        pipeline = pipelines(request)[family]
        assert pipeline.store.model_count > 0
        n = pipeline.plan.evaluation_sizes[0]
        config = ClusterConfig.from_tuple(pipeline.plan.kinds, (1, 2, 8, 1))
        total = float(pipeline.estimate_totals(config, [n])[0])
        assert math.isfinite(total) and total > 0

    def test_every_search_backend_runs(self, request, family):
        pipeline = pipelines(request)[family]
        n = pipeline.plan.evaluation_sizes[0]
        exhaustive = pipeline.optimize(n, backend="exhaustive")
        best = exhaustive.ranking[0].estimate_s
        for backend in registered_search_backends():
            outcome = pipeline.optimize(n, backend=backend)
            assert outcome.ranking, backend
            winner = outcome.ranking[0]
            assert math.isfinite(winner.estimate_s)
            # Every backend's winner is at least as slow as the true
            # optimum; the complete backends find exactly it.
            assert winner.estimate_s >= best or winner.estimate_s == pytest.approx(best)
            if backend in ("exhaustive", "branch-bound"):
                assert winner.estimate_s == best

    def test_save_load_round_trip_preserves_workload(
        self, request, family, tmp_path
    ):
        pipeline = pipelines(request)[family]
        out = save_pipeline(pipeline, tmp_path / family, include_evaluation=False)
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["format"] == 3
        assert manifest["workload"] == family
        reloaded = load_pipeline(out)
        assert reloaded.config.workload == family
        assert reloaded.workload.tag == family
        n = pipeline.plan.evaluation_sizes[0]
        config = ClusterConfig.from_tuple(pipeline.plan.kinds, (1, 2, 8, 1))
        assert float(reloaded.estimate_totals(config, [n])[0]) == float(
            pipeline.estimate_totals(config, [n])[0]
        )  # bitwise

    def test_calibrator_tags_observations_with_the_family(self, request, family):
        pipeline = pipelines(request)[family]
        calibrator = Calibrator(
            name=family, pipeline_provider=lambda: pipeline, log=ObservationLog()
        )
        record = pipeline.campaign.dataset[0]
        result = calibrator.ingest(record, source="test")
        assert calibrator.log[result.seq].workload == family
        assert calibrator.status()["workload"] == family


class TestCLI:
    def run(self, capsys, *argv):
        code = cli_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_workloads_inventory(self, capsys):
        code, out, _ = self.run(capsys, "workloads")
        assert code == 0
        for tag in ("hpl", "sorting", "montecarlo"):
            assert f"{tag}: " in out
        assert "scatter*" in out  # communication phases are marked
        assert "62 configs x 5 sizes" in out

    def test_workloads_single_tag(self, capsys):
        code, out, _ = self.run(capsys, "workloads", "--tag", "montecarlo")
        assert code == 0
        assert "montecarlo" in out and "sorting" not in out

    def test_unknown_workload_is_one_line_error_exit_1(self, capsys):
        code, out, err = self.run(capsys, "workloads", "--tag", "summa")
        assert code == 1
        assert err.strip() == (
            "error: unknown workload 'summa' (known: hpl, montecarlo, sorting)"
        )

    def test_optimize_rejects_unknown_workload(self, capsys):
        code, _, err = self.run(
            capsys, "optimize", "--workload", "summa", "--n", "4000"
        )
        assert code == 1
        assert "unknown workload 'summa'" in err

    def test_optimize_runs_a_sorting_pipeline(self, capsys):
        code, out, _ = self.run(
            capsys,
            "optimize", "--workload", "sorting", "--protocol", "ns",
            "--n", "8000", "--top", "3",
        )
        assert code == 0
        assert "Top 3 of 62 configurations" in out

    def test_estimate_workload_assertion(self, capsys, tmp_path, sorting_pipeline):
        out_dir = save_pipeline(
            sorting_pipeline, tmp_path / "saved", include_evaluation=False
        )
        code, out, _ = self.run(
            capsys,
            "estimate", "--dir", str(out_dir), "--config", "1,2,8,1",
            "--n", "8000", "--workload", "sorting",
        )
        assert code == 0 and "N=8000" in out
        code, _, err = self.run(
            capsys,
            "estimate", "--dir", str(out_dir), "--config", "1,2,8,1",
            "--n", "8000", "--workload", "hpl",
        )
        assert code == 1
        assert "serves workload 'sorting', not 'hpl'" in err
