"""Workload-family fixtures.

Full pipelines (campaign + fit + adjust) are session-scoped: they are
deterministic in their seed, so sharing them keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.core.pipeline import EstimationPipeline, PipelineConfig


@pytest.fixture(scope="session")
def spec():
    return kishimoto_cluster()


@pytest.fixture(scope="session")
def sorting_pipeline(spec):
    return EstimationPipeline(
        spec, PipelineConfig(protocol="ns", seed=11, workload="sorting")
    )


@pytest.fixture(scope="session")
def montecarlo_pipeline(spec):
    return EstimationPipeline(
        spec, PipelineConfig(protocol="ns", seed=11, workload="montecarlo")
    )
