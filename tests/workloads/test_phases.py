"""Phase-vector behavior and wire-format schema dispatch."""

import pytest

from repro.errors import MeasurementError, SimulationError
from repro.hpl.timing import PhaseTimes
from repro.workloads import (
    MonteCarloPhases,
    PhaseVector,
    SortingPhases,
    phases_from_dict,
    register_phases,
    registered_phase_schemas,
)


def sorting_phases():
    return SortingPhases(partition=0.1, scatter=0.2, local_sort=0.3, merge=0.4)


class TestPhaseVector:
    def test_ta_tc_partition_total(self):
        phases = sorting_phases()
        assert phases.ta == pytest.approx(0.1 + 0.3 + 0.4)
        assert phases.tc == pytest.approx(0.2)
        assert phases.total == pytest.approx(phases.ta + phases.tc)

    def test_algebra(self):
        phases = sorting_phases()
        doubled = phases + phases
        assert doubled.scatter == pytest.approx(0.4)
        assert phases.scaled(0.5).merge == pytest.approx(0.2)
        with pytest.raises(SimulationError, match="negative scale"):
            phases.scaled(-1.0)

    def test_dict_round_trip(self):
        phases = sorting_phases()
        assert SortingPhases.from_dict(phases.as_dict()) == phases

    def test_invalid_times_rejected(self):
        with pytest.raises(SimulationError, match="invalid time"):
            SortingPhases(
                partition=-0.1, scatter=0.0, local_sort=0.0, merge=0.0
            )
        with pytest.raises(SimulationError, match="invalid time"):
            MonteCarloPhases(sweep=float("nan"), barrier=0.0, rebalance=0.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(SimulationError, match="unknown phases"):
            SortingPhases.from_dict({"partition": 0.1, "pivot": 0.2})


class TestSchemaDispatch:
    def test_exact_schemas_route_to_their_class(self):
        sorting = phases_from_dict(sorting_phases().as_dict())
        assert isinstance(sorting, SortingPhases)
        mc = phases_from_dict({"sweep": 1.0, "barrier": 0.1, "rebalance": 0.2})
        assert isinstance(mc, MonteCarloPhases)

    def test_full_hpl_schema_routes_to_phase_times(self):
        data = {
            "pfact": 1.0, "mxswp": 0.1, "bcast": 0.2,
            "update": 3.0, "laswp": 0.3, "uptrsv": 0.1,
        }
        assert isinstance(phases_from_dict(data), PhaseTimes)

    def test_hpl_subset_keeps_permissive_read(self):
        # Pre-workload datasets could omit zero phases; they still load
        # as PhaseTimes with the missing fields at 0.0.
        phases = phases_from_dict({"pfact": 1.0, "update": 2.0})
        assert isinstance(phases, PhaseTimes)
        assert phases.bcast == 0.0

    def test_unknown_schema_is_measurement_error_naming_known(self):
        with pytest.raises(MeasurementError, match="no registered workload schema"):
            phases_from_dict({"warmup": 1.0, "teardown": 2.0})

    def test_registered_schemas_include_all_families(self):
        schemas = registered_phase_schemas()
        assert ("barrier", "rebalance", "sweep") in schemas
        assert ("local_sort", "merge", "partition", "scatter") in schemas

    def test_colliding_schema_is_rejected(self):
        class FakeSort(PhaseVector):
            PHASE_NAMES = ("partition", "scatter", "local_sort", "merge")
            COMPUTE_PHASES = ("partition", "local_sort", "merge")
            COMM_PHASES = ("scatter",)

        with pytest.raises(MeasurementError, match="already registered"):
            register_phases(FakeSort)

    def test_nonpartitioning_schema_is_rejected(self):
        class Broken(PhaseVector):
            PHASE_NAMES = ("alpha", "beta")
            COMPUTE_PHASES = ("alpha",)
            COMM_PHASES = ("alpha",)

        with pytest.raises(MeasurementError, match="must\\s+partition"):
            register_phases(Broken)
