"""Additional coverage for heuristic-search bookkeeping."""

import math

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.exts.heuristics import GreedyGrowth, SearchStats


class TestSearchStats:
    def test_record_tracks_best(self):
        stats = SearchStats()
        stats.record("config-a", 5.0)
        stats.record("config-b", 3.0)
        stats.record("config-c", 4.0)
        assert stats.best_estimate == 3.0
        assert stats.best_config == "config-b"
        assert stats.evaluations == 3
        assert stats.trace == [5.0, 3.0, 3.0]

    def test_initial_state(self):
        stats = SearchStats()
        assert stats.best_config is None
        assert stats.best_estimate == math.inf


class TestGreedyInternals:
    @pytest.fixture(scope="class")
    def searcher(self):
        return GreedyGrowth(kishimoto_cluster(), lambda c, n: 1.0)

    def test_state_config_roundtrip(self, searcher):
        state = (("athlon", 1, 2), ("pentium2", 4, 1))
        config = searcher._to_config(state)
        assert searcher._from_config(config) == state

    def test_neighbors_respect_bounds(self, searcher):
        state = (("athlon", 1, 6), ("pentium2", 8, 1))
        for neighbor in searcher._neighbors(state):
            for kind, pe, procs in neighbor:
                available = searcher.spec.pe_count(kind)
                assert 0 <= pe <= available
                assert procs <= searcher.max_procs
                if pe == 0:
                    assert procs == 0

    def test_neighbors_never_empty_config(self, searcher):
        state = (("athlon", 1, 1), ("pentium2", 0, 0))
        for neighbor in searcher._neighbors(state):
            assert sum(pe * procs for _, pe, procs in neighbor) >= 1

    def test_starts_include_both_sides_of_the_valley(self, searcher):
        starts = searcher._single_pe_starts()
        labels = {searcher._to_config(s).label(("athlon", "pentium2")) for s in starts}
        assert "1,1,0,0" in labels  # single fast PE
        assert "0,0,8,1" in labels  # the whole slow pool

    def test_evaluation_cache(self, searcher):
        stats = SearchStats()
        state = (("athlon", 1, 1), ("pentium2", 0, 0))
        a = searcher._evaluate(state, 100, stats)
        b = searcher._evaluate(state, 100, stats)
        assert a == b
        assert stats.evaluations == 1  # second hit came from the cache
