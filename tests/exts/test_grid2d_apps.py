"""Tests for 2-D process grids and the SUMMA application."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.errors import SimulationError
from repro.exts.apps import run_summa, simulate_summa, summa_flops, SummaResult
from repro.exts.grid2d import GridShape, grid_shapes, near_square_shape, simulate_schedule_2d
from repro.hpl.driver import NoiseSpec, run_hpl
from repro.hpl.schedule import simulate_schedule

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


@pytest.fixture(scope="module")
def spec():
    return kishimoto_cluster()


class TestGridShape:
    def test_coords_roundtrip(self):
        shape = GridShape(3, 4)
        for rank in range(12):
            row, col = shape.coords(rank)
            assert shape.rank_of(row, col) == rank

    def test_column_major_layout(self):
        shape = GridShape(2, 3)
        assert shape.coords(0) == (0, 0)
        assert shape.coords(1) == (1, 0)
        assert shape.coords(2) == (0, 1)

    def test_grid_shapes_enumeration(self):
        assert [(s.pr, s.q) for s in grid_shapes(12)] == [(1, 12), (2, 6), (3, 4)]
        assert [(s.pr, s.q) for s in grid_shapes(7)] == [(1, 7)]

    def test_near_square(self):
        assert (near_square_shape(16).pr, near_square_shape(16).q) == (4, 4)
        assert (near_square_shape(8).pr, near_square_shape(8).q) == (2, 4)

    def test_validation(self):
        with pytest.raises(SimulationError):
            GridShape(0, 2)
        with pytest.raises(SimulationError):
            GridShape(2, 2).coords(5)
        with pytest.raises(SimulationError):
            GridShape(2, 2).rank_of(2, 0)
        with pytest.raises(SimulationError):
            grid_shapes(0)


class TestSchedule2D:
    def test_1xp_grid_matches_1d_walker(self, spec):
        """With Pr = 1 the 2-D walker must reproduce the 1-D one."""
        config = cfg(1, 1, 8, 1)
        n = 2400
        t1d = simulate_schedule(spec, config, n).wall_time_s
        t2d = simulate_schedule_2d(spec, config, n, GridShape(1, 9)).wall_time_s
        assert t2d == pytest.approx(t1d, rel=0.02)

    def test_grid_size_must_match_processes(self, spec):
        with pytest.raises(SimulationError):
            simulate_schedule_2d(spec, cfg(1, 1, 8, 1), 1600, GridShape(2, 2))

    def test_square_grid_reduces_bcast_volume(self, spec):
        """Per-process broadcast traffic shrinks by Pr on a Pr x Q grid."""
        config = cfg(1, 1, 8, 1)
        n = 4800
        flat = simulate_schedule_2d(spec, config, n, GridShape(1, 9))
        square = simulate_schedule_2d(spec, config, n, GridShape(3, 3))
        assert square.phase_arrays["bcast"].mean() < flat.phase_arrays["bcast"].mean()

    def test_square_grid_pays_pivot_communication(self, spec):
        config = cfg(1, 1, 8, 1)
        n = 4800
        flat = simulate_schedule_2d(spec, config, n, GridShape(1, 9))
        square = simulate_schedule_2d(spec, config, n, GridShape(3, 3))
        assert square.phase_arrays["mxswp"].sum() > flat.phase_arrays["mxswp"].sum()

    def test_wall_positive_and_phases_finite(self, spec):
        result = simulate_schedule_2d(spec, cfg(0, 0, 8, 1), 3200, GridShape(2, 4))
        assert result.wall_time_s > 0
        for arr in result.phase_arrays.values():
            assert np.all(np.isfinite(arr)) and np.all(arr >= 0)

    def test_invalid_order(self, spec):
        with pytest.raises(SimulationError):
            simulate_schedule_2d(spec, cfg(1, 1, 0, 0), 0)


class TestSumma:
    def test_flops_definition(self):
        assert summa_flops(100) == pytest.approx(2e6)
        with pytest.raises(SimulationError):
            summa_flops(-1)

    def test_gflops_uses_matmul_count(self, spec):
        result = run_summa(spec, cfg(1, 1, 0, 0), 1600)
        assert result.gflops == pytest.approx(
            summa_flops(1600) / result.wall_time_s / 1e9
        )

    def test_no_lu_phases(self, spec):
        result = simulate_summa(spec, cfg(1, 1, 8, 1), 1600)
        assert np.all(result.phase_arrays["pfact"] == 0)
        assert np.all(result.phase_arrays["laswp"] == 0)
        assert np.all(result.phase_arrays["uptrsv"] == 0)
        assert result.phase_arrays["bcast"].sum() > 0
        assert result.phase_arrays["update"].sum() > 0

    def test_single_process_has_no_comm(self, spec):
        result = simulate_summa(spec, cfg(1, 1, 0, 0), 800)
        assert result.phase_arrays["bcast"].sum() == 0

    def test_summa_slower_than_hpl_per_matrix(self, spec):
        """3x the flops of LU on the same order -> roughly 3x the time."""
        config = cfg(1, 1, 8, 1)
        hpl_t = run_hpl(spec, config, 3200).wall_time_s
        summa_t = run_summa(spec, config, 3200).wall_time_s
        assert 2.0 < summa_t / hpl_t < 4.5

    def test_noise_reproducible(self, spec):
        a = run_summa(spec, cfg(1, 2, 4, 1), 1600, noise=NoiseSpec(), seed=4)
        b = run_summa(spec, cfg(1, 2, 4, 1), 1600, noise=NoiseSpec(), seed=4)
        assert a.wall_time_s == b.wall_time_s

    def test_result_type(self, spec):
        assert isinstance(run_summa(spec, cfg(1, 1, 0, 0), 400), SummaResult)

    def test_kind_breakdown_available(self, spec):
        result = run_summa(spec, cfg(1, 1, 8, 1), 1600)
        assert result.kind_tc("pentium2") > 0
        assert result.kind_ta("athlon") > 0
