"""Tests for the heterogeneous-distribution (HBC) baseline."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.errors import SimulationError
from repro.exts.baselines import run_hbc, simulate_hbc, weighted_owner_sequence
from repro.hpl.driver import NoiseSpec, run_hpl
from repro.hpl.schedule import simulate_schedule

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


@pytest.fixture(scope="module")
def spec():
    return kishimoto_cluster()


class TestWeightedOwnerSequence:
    def test_equal_weights_are_round_robin(self):
        owners = weighted_owner_sequence(9, [1.0, 1.0, 1.0])
        assert owners.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_counts_proportional_to_weights(self):
        owners = weighted_owner_sequence(100, [3.0, 1.0])
        counts = np.bincount(owners, minlength=2)
        assert counts[0] == 75 and counts[1] == 25

    def test_extreme_ratio(self):
        owners = weighted_owner_sequence(10, [9.0, 1.0])
        counts = np.bincount(owners, minlength=2)
        assert counts.tolist() == [9, 1]

    def test_weight_order_does_not_starve_anyone(self):
        owners = weighted_owner_sequence(30, [5.0, 1.0, 1.0])
        counts = np.bincount(owners, minlength=3)
        assert np.all(counts > 0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            weighted_owner_sequence(-1, [1.0])
        with pytest.raises(SimulationError):
            weighted_owner_sequence(4, [])
        with pytest.raises(SimulationError):
            weighted_owner_sequence(4, [1.0, -1.0])

    def test_zero_blocks(self):
        assert weighted_owner_sequence(0, [1.0, 2.0]).size == 0


class TestSimulateHBC:
    def test_equal_weights_match_plain_schedule(self, spec):
        """With uniform weights HBC degenerates to the standard walker."""
        config = cfg(0, 0, 8, 1)  # homogeneous: speed weights are ~equal
        n = 2400
        plain = simulate_schedule(spec, config, n)
        hbc = simulate_hbc(spec, config, n, weights=[1.0] * 8)
        assert hbc.wall_time_s == pytest.approx(plain.wall_time_s, rel=1e-9)

    def test_weighting_fixes_heterogeneous_imbalance(self, spec):
        """One process per PE on the mixed cluster: HBC beats the
        equal-distribution run by shifting work to the Athlon — the claim
        of the rewriting approaches the paper cites."""
        config = cfg(1, 1, 8, 1)
        n = 6400
        equal = simulate_schedule(spec, config, n).wall_time_s
        weighted = simulate_hbc(spec, config, n).wall_time_s
        assert weighted < 0.95 * equal

    def test_hbc_shifts_update_work_to_fast_pe(self, spec):
        config = cfg(1, 1, 8, 1)
        n = 4800
        equal = simulate_schedule(spec, config, n)
        hbc = simulate_hbc(spec, config, n)
        # rank 0 is the Athlon: it computes more under HBC
        assert hbc.phase_arrays["update"][0] > equal.phase_arrays["update"][0]
        # and the Pentium-IIs compute less
        assert hbc.phase_arrays["update"][1:].mean() < equal.phase_arrays[
            "update"
        ][1:].mean()

    def test_invalid_order(self, spec):
        with pytest.raises(SimulationError):
            simulate_hbc(spec, cfg(1, 1, 0, 0), 0)


class TestRunHBC:
    def test_driver_shape(self, spec):
        result = run_hbc(spec, cfg(1, 1, 8, 1), 1600)
        assert result.gflops > 0
        assert result.kind_ta("athlon") > 0

    def test_noise_reproducible(self, spec):
        a = run_hbc(spec, cfg(1, 1, 4, 1), 1600, noise=NoiseSpec(), seed=8)
        b = run_hbc(spec, cfg(1, 1, 4, 1), 1600, noise=NoiseSpec(), seed=8)
        assert a.wall_time_s == b.wall_time_s


class TestPaperComparison:
    """The paper's critique, measured: HBC must use every PE; the paper's
    subset+multiprocessing method may exclude slow ones."""

    def test_hbc_loses_at_small_n(self, spec):
        n = 1600
        hbc = run_hbc(spec, cfg(1, 1, 8, 1), n).wall_time_s
        athlon_alone = run_hpl(spec, cfg(1, 1, 0, 0), n).wall_time_s
        assert athlon_alone < hbc

    def test_hbc_competitive_at_large_n(self, spec):
        n = 9600
        hbc = run_hbc(spec, cfg(1, 1, 8, 1), n).wall_time_s
        best_multiproc = min(
            run_hpl(spec, cfg(1, m, 8, 1), n).wall_time_s for m in range(1, 5)
        )
        # both approaches fix the imbalance; within ~25% of each other
        assert hbc == pytest.approx(best_multiproc, rel=0.25)
