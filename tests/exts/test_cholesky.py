"""Tests for the Cholesky application (third app through the pipeline)."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.errors import SimulationError
from repro.exts.apps import CholeskyResult, cholesky_flops, run_cholesky, run_summa
from repro.hpl.driver import NoiseSpec, run_hpl

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


@pytest.fixture(scope="module")
def spec():
    return kishimoto_cluster()


class TestCholesky:
    def test_flops_definition(self):
        assert cholesky_flops(300) == pytest.approx(300**3 / 3, rel=0.01)
        with pytest.raises(SimulationError):
            cholesky_flops(-1)

    def test_result_type_and_gflops(self, spec):
        result = run_cholesky(spec, cfg(1, 1, 0, 0), 1600)
        assert isinstance(result, CholeskyResult)
        assert result.gflops == pytest.approx(
            cholesky_flops(1600) / result.wall_time_s / 1e9
        )

    def test_half_the_work_of_lu(self, spec):
        """n^3/3 vs 2n^3/3: Cholesky runs in about half LU's time."""
        config = cfg(1, 1, 0, 0)
        n = 3200
        lu_t = run_hpl(spec, config, n).wall_time_s
        chol_t = run_cholesky(spec, config, n).wall_time_s
        assert 0.35 < chol_t / lu_t < 0.65

    def test_no_pivoting_phases(self, spec):
        result = run_cholesky(spec, cfg(1, 1, 8, 1), 1600)
        arrays = result.schedule.phase_arrays
        assert np.all(arrays["mxswp"] == 0)
        assert np.all(arrays["laswp"] == 0)
        assert arrays["bcast"].sum() > 0

    def test_app_ordering_by_work(self, spec):
        """cholesky (n^3/3) < LU (2n^3/3) < SUMMA (2n^3)."""
        config = cfg(1, 1, 8, 1)
        n = 3200
        chol = run_cholesky(spec, config, n).wall_time_s
        lu = run_hpl(spec, config, n).wall_time_s
        summa = run_summa(spec, config, n).wall_time_s
        assert chol < lu < summa

    def test_noise_reproducible(self, spec):
        a = run_cholesky(spec, cfg(1, 2, 4, 1), 1600, noise=NoiseSpec(), seed=6)
        b = run_cholesky(spec, cfg(1, 2, 4, 1), 1600, noise=NoiseSpec(), seed=6)
        assert a.wall_time_s == b.wall_time_s

    def test_invalid_order(self, spec):
        with pytest.raises(SimulationError):
            run_cholesky(spec, cfg(1, 1, 0, 0), 0)


class TestCholeskyPipeline:
    def test_pipeline_generality(self, spec):
        """Third application through the unchanged pipeline."""
        from dataclasses import replace

        from repro.core.pipeline import EstimationPipeline, PipelineConfig
        from repro.measure.grids import nl_plan

        plan = replace(nl_plan(), evaluation_sizes=(3200, 4800))
        pipeline = EstimationPipeline(
            spec,
            PipelineConfig(
                protocol="nl", seed=11, runner=run_cholesky, calibration_n=4800
            ),
            plan=plan,
        )
        for n in plan.evaluation_sizes:
            best = pipeline.optimize(n).best
            chosen = pipeline.measured_time(best.config, n)
            _, t_hat = pipeline.actual_best(n)
            assert (chosen - t_hat) / t_hat <= 0.10
