"""Tests for heuristic configuration search."""

import pytest

from repro.cluster.presets import kishimoto_cluster, synthetic_cluster
from repro.core.optimizer import ExhaustiveOptimizer
from repro.errors import SearchError
from repro.exts.heuristics import (
    GreedyGrowth,
    HillClimber,
    SimulatedAnnealing,
    full_candidate_space,
)


def model_estimator(spec, n_ref=8000.0):
    """A cheap analytic objective with the real problem's structure:
    per-kind time = max over kinds of (work share / kind rate + comm)."""

    rates = {kind.name: kind.peak_gflops * 1e9 for kind in spec.kinds}

    def estimator(config, n):
        p = config.total_processes
        work = (2.0 / 3.0) * float(n) ** 3
        per_kind = []
        for alloc in config.active:
            rate = rates[alloc.kind_name]
            share = work * alloc.processes / p
            compute = share / (rate * alloc.pe_count) * (
                1 + 0.05 * (alloc.procs_per_pe - 1)
            )
            per_kind.append(compute)
        comm = 2e-7 * float(n) ** 2 * (1 + 0.1 * p)
        return max(per_kind) + comm

    return estimator


@pytest.fixture(scope="module")
def paper_spec():
    return kishimoto_cluster()


class TestCandidateSpace:
    def test_space_size_for_paper_cluster(self, paper_spec):
        # athlon: 1 + 1*6 choices; pentium2: 1 + 8*6 -> 7*49 - 1 empty = 342
        space = full_candidate_space(paper_spec, max_procs=6)
        assert len(space) == 342

    def test_max_procs_respected(self, paper_spec):
        for config in full_candidate_space(paper_spec, max_procs=2):
            for alloc in config.active:
                assert alloc.procs_per_pe <= 2


class TestGreedy:
    def test_finds_exhaustive_optimum_on_smooth_objective(self, paper_spec):
        estimator = model_estimator(paper_spec)
        greedy = GreedyGrowth(paper_spec, estimator)
        stats = greedy.search(8000)
        exhaustive = ExhaustiveOptimizer(
            estimator, full_candidate_space(paper_spec)
        ).optimize(8000)
        assert stats.best_estimate == pytest.approx(
            exhaustive.best.estimate_s, rel=0.02
        )

    def test_uses_fewer_evaluations_than_exhaustive(self, paper_spec):
        estimator = model_estimator(paper_spec)
        stats = GreedyGrowth(paper_spec, estimator).search(8000)
        assert stats.evaluations < 342 / 2

    def test_trace_is_monotone(self, paper_spec):
        stats = GreedyGrowth(paper_spec, model_estimator(paper_spec)).search(4800)
        assert all(b <= a for a, b in zip(stats.trace, stats.trace[1:]))

    def test_invalid_max_procs(self, paper_spec):
        with pytest.raises(SearchError):
            GreedyGrowth(paper_spec, lambda c, n: 1.0, max_procs=0)


class TestHillClimberAndAnnealing:
    def test_hill_climber_reaches_good_solution(self, paper_spec):
        estimator = model_estimator(paper_spec)
        stats = HillClimber(paper_spec, estimator).search(8000, restarts=3, seed=1)
        exhaustive = ExhaustiveOptimizer(
            estimator, full_candidate_space(paper_spec)
        ).optimize(8000)
        assert stats.best_estimate <= exhaustive.best.estimate_s * 1.10

    def test_annealing_matches_exhaustive(self, paper_spec):
        estimator = model_estimator(paper_spec)
        stats = SimulatedAnnealing(paper_spec, estimator).search(8000, steps=300, seed=2)
        exhaustive = ExhaustiveOptimizer(
            estimator, full_candidate_space(paper_spec)
        ).optimize(8000)
        assert stats.best_estimate <= exhaustive.best.estimate_s * 1.05

    def test_annealing_reproducible(self, paper_spec):
        estimator = model_estimator(paper_spec)
        a = SimulatedAnnealing(paper_spec, estimator).search(4800, steps=100, seed=7)
        b = SimulatedAnnealing(paper_spec, estimator).search(4800, steps=100, seed=7)
        assert a.best_estimate == b.best_estimate
        assert a.evaluations == b.evaluations

    def test_annealing_parameter_validation(self, paper_spec):
        sa = SimulatedAnnealing(paper_spec, lambda c, n: 1.0)
        with pytest.raises(SearchError):
            sa.search(100, steps=0)
        with pytest.raises(SearchError):
            sa.search(100, cooling=0.0)


class TestLargeCluster:
    def test_heuristics_scale_to_many_kinds(self):
        spec = synthetic_cluster([0.2, 0.4, 0.8, 1.6, 3.2], nodes_per_kind=2)
        estimator = model_estimator(spec)
        greedy = GreedyGrowth(spec, estimator, max_procs=4).search(12000)
        annealing = SimulatedAnnealing(spec, estimator, max_procs=4).search(
            12000, steps=500, seed=3
        )
        # sanity: both find something and agree within 15%
        assert greedy.best_config is not None
        assert annealing.best_estimate <= greedy.best_estimate * 1.15
        # fast kinds participate in the chosen configuration
        best = annealing.best_config
        assert best.pe_count("kind4") > 0
