"""Tests for the campaign grids (Tables 2/5/8) and campaign execution
(Tables 3/6)."""

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.errors import MeasurementError
from repro.hpl.driver import NoiseSpec
from repro.hpl.driver import run_hpl
from repro.measure.campaign import run_campaign, run_evaluation
from repro.measure.grids import (
    basic_plan,
    evaluation_configs,
    group_runs_by_config,
    nl_plan,
    ns_plan,
    plan_by_name,
)

from tests.conftest import config_of


class TestGrids:
    def test_basic_plan_has_486_construction_runs(self):
        """Paper Table 2: (6 + 48) x 9 = 486 sets."""
        plan = basic_plan()
        assert len(plan.construction_configs) == 54
        assert len(plan.construction_sizes) == 9
        assert plan.construction_count == 486

    def test_nl_ns_plans_have_120_construction_runs(self):
        """Paper Tables 5/8: (6 + 24) x 4 = 120 sets."""
        for plan in (nl_plan(), ns_plan()):
            assert len(plan.construction_configs) == 30
            assert plan.construction_count == 120

    def test_evaluation_grid_is_62_configs(self):
        """Paper Section 4.1: 62 possible configurations."""
        assert len(evaluation_configs()) == 62
        assert len(basic_plan().evaluation_configs) == 62

    def test_construction_configs_are_single_kind(self):
        for config in basic_plan().construction_configs:
            assert config.is_single_kind

    def test_evaluation_uses_m2_equal_1(self):
        for config in evaluation_configs():
            if config.pe_count("pentium2") > 0:
                assert config.procs_per_pe("pentium2") == 1

    def test_protocol_sizes_match_paper(self):
        assert basic_plan().construction_sizes == (400, 600, 800, 1200, 1600, 2400, 3200, 4800, 6400)
        assert nl_plan().construction_sizes == (1600, 3200, 4800, 6400)
        assert ns_plan().construction_sizes == (400, 800, 1200, 1600)
        assert basic_plan().evaluation_sizes == (3200, 4800, 6400, 8000, 9600)
        assert nl_plan().evaluation_sizes == (1600, 3200, 4800, 6400, 8000, 9600)

    def test_plan_by_name(self):
        assert plan_by_name("nl").name == "nl"
        with pytest.raises(MeasurementError):
            plan_by_name("huge")

    def test_run_iterators_cover_grid(self):
        plan = ns_plan()
        runs = list(plan.construction_runs())
        assert len(runs) == plan.construction_count
        evals = list(plan.evaluation_runs())
        assert len(evals) == plan.evaluation_count == 6 * 62

    def test_group_runs_by_config_preserves_order_and_indices(self):
        plan = ns_plan()
        entries = list(plan.construction_runs())
        groups = group_runs_by_config(entries)
        # First-seen configuration order, one group per distinct config.
        assert [config.key() for config, _ in groups] == list(
            dict.fromkeys(config.key() for _, config in entries)
        )
        # Every original entry appears exactly once with its plan index.
        flattened = sorted(
            (index, n) for _, indexed in groups for index, n in indexed
        )
        assert flattened == [(i, n) for i, (n, _) in enumerate(entries)]

    def test_group_runs_by_config_interleaved_configs(self):
        """An observation-replay stream interleaves configs arbitrarily;
        grouping must still be first-seen ordered and index-faithful."""
        a = config_of(1, 3, 8, 1)
        b = config_of(0, 0, 8, 2)
        entries = [(3200, a), (1600, b), (4800, a), (800, b), (3200, a)]
        groups = group_runs_by_config(entries)
        assert [config.key() for config, _ in groups] == [a.key(), b.key()]
        grouped = {config.key(): indexed for config, indexed in groups}
        # Within a group, plan order is preserved — including the
        # duplicate (config, n) coordinate at indices 0 and 4.
        assert grouped[a.key()] == [(0, 3200), (2, 4800), (4, 3200)]
        assert grouped[b.key()] == [(1, 1600), (3, 800)]

    def test_group_runs_by_config_equal_configs_coalesce(self):
        """Two distinct ClusterConfig objects with the same allocation are
        one group: grouping is by value, not identity."""
        entries = [
            (1600, config_of(1, 4, 0, 0)),
            (3200, config_of(1, 4, 0, 0)),
        ]
        groups = group_runs_by_config(entries)
        assert len(groups) == 1
        assert groups[0][1] == [(0, 1600), (1, 3200)]


class TestCampaign:
    @pytest.fixture(scope="class")
    def ns_result(self):
        return run_campaign(kishimoto_cluster(), ns_plan(), noise=NoiseSpec(), seed=3)

    def test_all_runs_recorded(self, ns_result):
        assert len(ns_result.dataset) == 120

    def test_cost_charged_to_measured_kind(self, ns_result):
        athlon = ns_result.cost_for_kind("athlon")
        p2 = ns_result.cost_for_kind("pentium2")
        assert athlon > 0 and p2 > 0
        assert ns_result.total_cost_s == pytest.approx(athlon + p2)
        assert ns_result.total_cost_s == pytest.approx(
            ns_result.dataset.total_wall_time()
        )

    def test_pentium2_dominates_cost(self, ns_result):
        """Paper Table 6: 'most of which is consumed by Pentium-II'."""
        assert ns_result.cost_for_kind("pentium2") > 5 * ns_result.cost_for_kind("athlon")

    def test_cost_per_n_increases(self, ns_result):
        costs = [ns_result.cost_for_n("pentium2", n) for n in (400, 800, 1200, 1600)]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    def test_campaign_reproducible(self):
        spec = kishimoto_cluster()
        a = run_campaign(spec, ns_plan(), noise=NoiseSpec(), seed=3)
        b = run_campaign(spec, ns_plan(), noise=NoiseSpec(), seed=3)
        assert a.dataset.to_json() == b.dataset.to_json()

    def test_evaluation_covers_grid(self):
        spec = kishimoto_cluster()
        plan = ns_plan()
        # restrict to one size for speed by shrinking the plan
        from dataclasses import replace

        small = replace(plan, evaluation_sizes=(1600,))
        evaluation = run_evaluation(spec, small, noise=NoiseSpec(), seed=3)
        assert len(evaluation) == 62
        assert evaluation.sizes() == [1600]


class TestBatchedCampaignEquality:
    """The batched walker path must be value-identical to run-by-run
    measurement — same datasets, same cost ledgers."""

    @staticmethod
    def scalar_runner(spec, config, n, params=None, noise=None, seed=0, trial=0):
        # A wrapper is not in BATCH_RUNNERS, so campaigns fall back to
        # the per-run path even though it computes exactly run_hpl.
        return run_hpl(
            spec, config, n, params=params, noise=noise, seed=seed, trial=trial
        )

    def test_campaign_dataset_and_costs_identical(self):
        spec = kishimoto_cluster()
        plan = ns_plan()
        noise = NoiseSpec()
        batched = run_campaign(spec, plan, noise=noise, seed=3)
        scalar = run_campaign(
            spec, plan, noise=noise, seed=3, runner=self.scalar_runner
        )
        assert batched.dataset.to_json() == scalar.dataset.to_json()
        for kind in ("athlon", "pentium2"):
            assert batched.cost_for_kind(kind) == scalar.cost_for_kind(kind)

    def test_evaluation_identical(self):
        from dataclasses import replace

        spec = kishimoto_cluster()
        small = replace(ns_plan(), evaluation_sizes=(1600,))
        batched = run_evaluation(spec, small, noise=NoiseSpec(), seed=3)
        scalar = run_evaluation(
            spec, small, noise=NoiseSpec(), seed=3, runner=self.scalar_runner
        )
        assert batched.to_json() == scalar.to_json()


class TestCostOrdering:
    """The paper's headline cost comparison: Basic >> NL >> NS."""

    def test_protocol_cost_ordering(self):
        spec = kishimoto_cluster()
        costs = {}
        for plan in (nl_plan(), ns_plan()):
            costs[plan.name] = run_campaign(spec, plan, seed=0).total_cost_s
        # NS (small N) is more than 10x cheaper than NL (paper: 12235 s vs
        # 572 s, a 21x gap).
        assert costs["ns"] * 10 < costs["nl"]
