"""Tests for the campaign advisor."""

from dataclasses import replace


from repro.measure.advisor import SAFE_EXTRAPOLATION, advise
from repro.measure.grids import basic_plan, custom_plan, nl_plan, ns_plan


class TestAdvisor:
    def test_basic_plan_is_sound(self, spec):
        report = advise(spec, basic_plan())
        assert report.ok
        codes = {f.code for f in report.findings}
        # Basic extrapolates 6400 -> 9600: worth an info, nothing more
        assert "extrapolation" in codes
        assert all(f.severity != "fatal" for f in report.findings)
        # athlon has 1 PE -> composed P-T models, flagged as info
        assert "composed-pt" in codes

    def test_ns_plan_is_fatally_flagged(self, spec):
        """The advisor catches the paper's Table 9 disaster *before* any
        measurement is taken."""
        report = advise(spec, ns_plan())
        assert not report.ok
        fatal_codes = {f.code for f in report.fatal}
        assert "extrapolation" in fatal_codes
        # NS also has exactly 4 sizes -> interpolation warning
        assert any(f.code == "interpolation-fit" for f in report.warnings)

    def test_nl_plan_passes_with_warnings(self, spec):
        report = advise(spec, nl_plan())
        assert report.ok
        assert any(f.code == "interpolation-fit" for f in report.warnings)

    def test_summa_footprint_flags_paging(self, spec):
        report = advise(spec, nl_plan(), footprint=3.0)
        assert not report.ok
        assert any(f.code == "paging-runs" for f in report.fatal)
        # and the HPL footprint on the same plan does not page
        assert not any(f.code == "paging-runs" for f in advise(spec, nl_plan()).findings)

    def test_too_few_sizes_fatal(self, spec):
        plan = replace(basic_plan(), construction_sizes=(400, 800, 1200))
        report = advise(spec, plan)
        assert any(f.code == "too-few-sizes" for f in report.fatal)

    def test_cost_bound_is_a_lower_bound_scale(self, spec, basic_campaign):
        """The peak-rate bound must be below the simulated truth but on the
        same order of magnitude."""
        report = advise(spec, basic_plan())
        actual = basic_campaign.total_cost_s
        assert report.estimated_cost_s < actual
        assert report.estimated_cost_s > actual / 10

    def test_render_mentions_everything(self, spec):
        text = advise(spec, ns_plan()).render()
        assert "FATAL" in text
        assert "estimated measurement cost" in text

    def test_custom_plan_three_kind(self):
        from repro.cluster.presets import synthetic_cluster

        spec = synthetic_cluster([0.3, 0.6, 1.2], nodes_per_kind=2)
        plan = custom_plan(spec, (800, 1600, 2400, 3200, 4800), (3200,))
        report = advise(spec, plan)
        assert report.ok

    def test_safe_extrapolation_matches_paper_boundary(self):
        # NL: 6400/9600 above the line; NS: 1600/9600 far below it
        assert 6400 / 9600 > SAFE_EXTRAPOLATION > 1600 / 9600
