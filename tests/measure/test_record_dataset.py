"""Unit tests for measurement records and datasets."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.errors import MeasurementError
from repro.hpl.driver import run_hpl
from repro.hpl.timing import PhaseTimes
from repro.measure.dataset import Dataset
from repro.measure.record import KindMeasurement, MeasurementRecord

KINDS = ("athlon", "pentium2")


def record_for(p1, m1, p2, m2, n, trial=0):
    spec = kishimoto_cluster()
    config = ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))
    result = run_hpl(spec, config, n)
    return MeasurementRecord.from_result(result, KINDS, trial=trial)


@pytest.fixture(scope="module")
def het_record():
    return record_for(1, 2, 8, 1, 1600)


@pytest.fixture(scope="module")
def athlon_record():
    return record_for(1, 1, 0, 0, 800)


class TestRecord:
    def test_from_result_fields(self, het_record):
        assert het_record.label == "1,2,8,1"
        assert het_record.n == 1600
        assert het_record.total_processes == 10
        assert not het_record.is_single_kind

    def test_per_kind_breakdown(self, het_record):
        athlon = het_record.kind("athlon")
        p2 = het_record.kind("pentium2")
        assert athlon.procs_per_pe == 2
        assert p2.pe_count == 8
        assert athlon.ta < p2.ta  # the fast PE computes its share faster

    def test_single_kind_record_excludes_unused(self, athlon_record):
        assert athlon_record.is_single_kind
        assert athlon_record.has_kind("athlon")
        assert not athlon_record.has_kind("pentium2")
        with pytest.raises(MeasurementError):
            athlon_record.kind("pentium2")

    def test_config_roundtrip(self, het_record):
        assert het_record.config().label(KINDS) == "1,2,8,1"

    def test_tuple_accessors(self, het_record):
        assert het_record.pe_count("pentium2") == 8
        assert het_record.procs_per_pe("athlon") == 2

    def test_serialization_roundtrip(self, het_record):
        restored = MeasurementRecord.from_dict(het_record.to_dict())
        assert restored == het_record

    def test_validation(self):
        with pytest.raises(MeasurementError):
            MeasurementRecord(
                kinds=KINDS,
                config_tuple=(1, 1, 0),  # wrong length
                n=100,
                total_processes=1,
                wall_time_s=1.0,
                gflops=1.0,
                per_kind=(),
            )
        with pytest.raises(MeasurementError):
            MeasurementRecord(
                kinds=KINDS,
                config_tuple=(1, 1, 0, 0),
                n=100,
                total_processes=1,
                wall_time_s=0.0,
                gflops=1.0,
                per_kind=(),
            )

    def test_kind_measurement_roundtrip(self):
        km = KindMeasurement("athlon", 1, 2, PhaseTimes(update=3.0, bcast=1.0))
        assert KindMeasurement.from_dict(km.to_dict()) == km
        assert km.total == pytest.approx(4.0)


class TestDataset:
    def test_duplicate_keys_rejected(self, athlon_record):
        ds = Dataset([athlon_record])
        with pytest.raises(MeasurementError):
            ds.add(athlon_record)

    def test_same_config_different_trial_allowed(self):
        ds = Dataset([record_for(1, 1, 0, 0, 400, trial=0)])
        ds.add(record_for(1, 1, 0, 0, 400, trial=1))
        assert len(ds) == 2

    def test_filters(self, athlon_record, het_record):
        ds = Dataset([athlon_record, het_record])
        assert len(ds.for_n(800)) == 1
        assert len(ds.for_config((1, 2, 8, 1))) == 1
        assert len(ds.single_kind("athlon")) == 1
        assert len(ds.single_kind("pentium2")) == 0

    def test_sizes_and_counts(self, athlon_record, het_record):
        ds = Dataset([athlon_record, het_record])
        assert ds.sizes() == [800, 1600]
        assert ds.process_counts() == [1, 10]
        assert len(ds.config_tuples()) == 2

    def test_lookup(self, het_record):
        ds = Dataset([het_record])
        assert ds.lookup((1, 2, 8, 1), 1600) is het_record
        with pytest.raises(MeasurementError):
            ds.lookup((1, 2, 8, 1), 3200)

    def test_total_wall_time(self, athlon_record, het_record):
        ds = Dataset([athlon_record, het_record])
        assert ds.total_wall_time() == pytest.approx(
            athlon_record.wall_time_s + het_record.wall_time_s
        )

    def test_merge_disjoint(self, athlon_record, het_record):
        merged = Dataset([athlon_record]).merge(Dataset([het_record]))
        assert len(merged) == 2

    def test_merge_collision_rejected(self, athlon_record):
        with pytest.raises(MeasurementError):
            Dataset([athlon_record]).merge(Dataset([athlon_record]))

    def test_json_roundtrip(self, athlon_record, het_record, tmp_path):
        ds = Dataset([athlon_record, het_record])
        path = tmp_path / "ds.json"
        ds.save(path)
        loaded = Dataset.load(path)
        assert len(loaded) == 2
        assert loaded[0] == ds[0] and loaded[1] == ds[1]

    def test_json_format_version_checked(self):
        with pytest.raises(MeasurementError):
            Dataset.from_json('{"format": 99, "records": []}')

    def test_csv_has_row_per_kind(self, het_record):
        csv_text = Dataset([het_record]).to_csv()
        lines = csv_text.strip().splitlines()
        assert len(lines) == 3  # header + athlon + pentium2
        assert "athlon" in csv_text and "pentium2" in csv_text

    def test_summary(self, athlon_record):
        assert "1 records" in Dataset([athlon_record]).summary()
        assert Dataset().summary() == "Dataset(empty)"
