"""Tests for repeated trials, robust aggregation and outlier injection."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import MeasurementError, SimulationError
from repro.hpl.driver import NoiseSpec, run_hpl
from repro.measure.grids import PAPER_KINDS, ns_plan
from repro.measure.record import MeasurementRecord
from repro.measure.trials import (
    aggregate_records,
    measure_with_trials,
    run_campaign_with_trials,
)

KINDS = PAPER_KINDS


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


def record_for(spec, config, n, trial, noise=None, seed=0):
    result = run_hpl(spec, config, n, noise=noise, seed=seed, trial=trial)
    return MeasurementRecord.from_result(result, KINDS, seed=seed, trial=trial)


class TestOutlierInjection:
    def test_outlier_spec_validation(self):
        with pytest.raises(SimulationError):
            NoiseSpec(outlier_probability=1.5)
        with pytest.raises(SimulationError):
            NoiseSpec(outlier_factor=0.5)

    def test_outliers_occur_at_expected_rate(self, spec):
        noise = NoiseSpec(outlier_probability=0.3, outlier_factor=3.0)
        clean = run_hpl(spec, cfg(1, 1, 0, 0), 800).wall_time_s
        slow = 0
        trials = 60
        for trial in range(trials):
            t = run_hpl(
                spec, cfg(1, 1, 0, 0), 800, noise=noise, seed=5, trial=trial
            ).wall_time_s
            if t > 2.0 * clean:
                slow += 1
        assert 0.15 < slow / trials < 0.45

    def test_outlier_runs_are_reproducible(self, spec):
        noise = NoiseSpec(outlier_probability=0.5)
        a = run_hpl(spec, cfg(1, 1, 4, 1), 800, noise=noise, seed=9, trial=3)
        b = run_hpl(spec, cfg(1, 1, 4, 1), 800, noise=noise, seed=9, trial=3)
        assert a.wall_time_s == b.wall_time_s


class TestAggregation:
    def test_median_resists_one_outlier(self, spec):
        noise = NoiseSpec(outlier_probability=0.0)
        records = [record_for(spec, cfg(1, 1, 0, 0), 800, t, noise, seed=1) for t in range(2)]
        # synthesize an outlier trial by scaling a clean record
        outlier = records[0]
        slow = MeasurementRecord(
            kinds=outlier.kinds,
            config_tuple=outlier.config_tuple,
            n=outlier.n,
            total_processes=outlier.total_processes,
            wall_time_s=outlier.wall_time_s * 5,
            gflops=outlier.gflops / 5,
            per_kind=tuple(
                type(km)(km.kind_name, km.pe_count, km.procs_per_pe, km.phases.scaled(5))
                for km in outlier.per_kind
            ),
            seed=outlier.seed,
            trial=2,
        )
        agg = aggregate_records(records + [slow], how="median")
        clean_wall = np.median([r.wall_time_s for r in records])
        assert agg.wall_time_s == pytest.approx(clean_wall, rel=0.05)
        # mean would have been dragged
        dragged = aggregate_records(records + [slow], how="mean")
        assert dragged.wall_time_s > 1.5 * agg.wall_time_s

    def test_min_takes_fastest(self, spec):
        records = [
            record_for(spec, cfg(1, 1, 0, 0), 800, t, NoiseSpec(), seed=2)
            for t in range(4)
        ]
        agg = aggregate_records(records, how="min")
        assert agg.wall_time_s == min(r.wall_time_s for r in records)

    def test_mismatched_trials_rejected(self, spec):
        a = record_for(spec, cfg(1, 1, 0, 0), 800, 0)
        b = record_for(spec, cfg(1, 1, 0, 0), 1200, 1)
        with pytest.raises(MeasurementError):
            aggregate_records([a, b])

    def test_unknown_aggregator_rejected(self, spec):
        a = record_for(spec, cfg(1, 1, 0, 0), 800, 0)
        with pytest.raises(MeasurementError):
            aggregate_records([a], how="mode")

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            aggregate_records([])

    def test_phase_identity_preserved(self, spec):
        """Field-wise aggregation keeps total == ta + tc exactly."""
        records = [
            record_for(spec, cfg(1, 2, 4, 1), 800, t, NoiseSpec(), seed=3)
            for t in range(3)
        ]
        agg = aggregate_records(records, how="median")
        for km in agg.per_kind:
            assert km.phases.total == pytest.approx(km.ta + km.tc)


class TestTrialCampaign:
    def test_measure_with_trials_cost_accounts_all(self, spec):
        record, cost = measure_with_trials(
            spec, cfg(1, 1, 0, 0), 800, KINDS, trials=3, noise=NoiseSpec(), seed=4
        )
        assert cost > 2.5 * record.wall_time_s  # three runs paid for

    def test_trials_must_be_positive(self, spec):
        with pytest.raises(MeasurementError):
            measure_with_trials(spec, cfg(1, 1, 0, 0), 800, KINDS, trials=0)

    def test_campaign_with_trials_triples_cost(self, spec):
        from dataclasses import replace
        from repro.measure.campaign import run_campaign

        plan = replace(ns_plan(), construction_sizes=(400, 800, 1200, 1600))
        single = run_campaign(spec, plan, noise=NoiseSpec(), seed=6)
        tripled = run_campaign_with_trials(
            spec, plan, trials=3, noise=NoiseSpec(), seed=6
        )
        assert len(tripled.dataset) == len(single.dataset)
        assert tripled.total_cost_s == pytest.approx(
            3 * single.total_cost_s, rel=0.10
        )
        assert tripled.plan_name == "ns-x3"

    def test_batched_trials_identical_to_scalar_path(self, spec):
        """The batched sizes-times-trials grid must reproduce the run-by-run
        trial campaign exactly, outliers included."""

        def scalar_runner(spec, config, n, params=None, noise=None, seed=0, trial=0):
            return run_hpl(
                spec, config, n, params=params, noise=noise, seed=seed, trial=trial
            )

        noise = NoiseSpec(outlier_probability=0.2, outlier_factor=3.0)
        plan = ns_plan()
        batched = run_campaign_with_trials(spec, plan, trials=3, noise=noise, seed=7)
        scalar = run_campaign_with_trials(
            spec, plan, trials=3, noise=noise, seed=7, runner=scalar_runner
        )
        assert batched.dataset.to_json() == scalar.dataset.to_json()
        for kind in KINDS:
            assert batched.cost_for_kind(kind) == scalar.cost_for_kind(kind)
