"""Determinism under parallelism: ``workers=k`` must reproduce the serial
campaign bit for bit.

Every simulated run derives its noise stream from ``(seed, config, N,
trial)``, so fan-out order cannot leak into the data; these tests pin
that property for construction campaigns, evaluation grids and
trial-aggregated campaigns — with noise and outlier injection enabled,
which is where hidden RNG sharing would show up first.  The 1-CPU-safe
clamp is bypassed by patching the advertised CPU count: oversubscribed
pools are a performance problem, never a correctness one.
"""

import pytest

import repro.perf.parallel as parallel
from repro.cluster.presets import kishimoto_cluster
from repro.hpl.driver import NoiseSpec
from repro.measure.campaign import run_campaign, run_evaluation
from repro.measure.grids import custom_plan
from repro.measure.trials import run_campaign_with_trials

#: Noise with outliers: the strongest stress on per-run seed independence.
NOISE = NoiseSpec(sigma_compute=0.02, sigma_comm=0.04, outlier_probability=0.25)


@pytest.fixture(scope="module")
def spec():
    return kishimoto_cluster()


@pytest.fixture(scope="module")
def tiny_plan(spec):
    """A small-but-real plan (10 configs x 4 sizes) so pooled runs stay fast."""
    return custom_plan(
        spec,
        construction_sizes=(400, 600, 800, 1200),
        evaluation_sizes=(1600,),
        max_procs=2,
        name="tiny",
    )


@pytest.fixture(autouse=True)
def many_cpus(monkeypatch):
    """Let the guard admit real pools on single-CPU CI boxes."""
    monkeypatch.setattr(parallel, "available_cpu_count", lambda: 8)


@pytest.fixture(scope="module")
def serial_campaign(spec, tiny_plan):
    return run_campaign(spec, tiny_plan, noise=NOISE, seed=42, workers=1)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_campaign_parallel_equals_serial(spec, tiny_plan, serial_campaign, workers):
    result = run_campaign(spec, tiny_plan, noise=NOISE, seed=42, workers=workers)
    assert result.plan_name == serial_campaign.plan_name
    assert result.dataset.to_json() == serial_campaign.dataset.to_json()
    assert result.cost_by_kind_and_n == serial_campaign.cost_by_kind_and_n


@pytest.mark.parametrize("workers", [2, 4])
def test_evaluation_parallel_equals_serial(spec, tiny_plan, workers):
    serial = run_evaluation(spec, tiny_plan, noise=NOISE, seed=42, workers=1)
    parallel_ds = run_evaluation(spec, tiny_plan, noise=NOISE, seed=42, workers=workers)
    assert parallel_ds.to_json() == serial.to_json()


def test_trials_campaign_parallel_equals_serial(spec, tiny_plan):
    serial = run_campaign_with_trials(
        spec, tiny_plan, trials=3, noise=NOISE, seed=42, workers=1
    )
    pooled = run_campaign_with_trials(
        spec, tiny_plan, trials=3, noise=NOISE, seed=42, workers=4
    )
    assert pooled.dataset.to_json() == serial.dataset.to_json()
    assert pooled.cost_by_kind_and_n == serial.cost_by_kind_and_n


def test_noiseless_campaign_parallel_equals_serial(spec, tiny_plan):
    serial = run_campaign(spec, tiny_plan, noise=None, seed=0, workers=1)
    pooled = run_campaign(spec, tiny_plan, noise=None, seed=0, workers=2)
    assert pooled.dataset.to_json() == serial.dataset.to_json()


def test_cost_rollup_matches_ledger(serial_campaign):
    """The precomputed per-kind rollup must agree with a fresh scan."""
    for kind in ("athlon", "pentium2"):
        expected = sum(
            cost
            for (k, _), cost in serial_campaign.cost_by_kind_and_n.items()
            if k == kind
        )
        assert serial_campaign.cost_for_kind(kind) == expected
    assert serial_campaign.cost_for_kind("no-such-kind") == 0.0
