"""Shared fixtures.

Expensive artifacts (campaigns, pipelines) are session-scoped: they are
deterministic in their seed, so sharing them across tests is safe and keeps
the suite fast.
"""

from __future__ import annotations

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.hpl.driver import NoiseSpec
from repro.measure.campaign import run_campaign
from repro.measure.grids import PAPER_KINDS, basic_plan


@pytest.fixture(scope="session")
def spec():
    """The paper's cluster (Table 1)."""
    return kishimoto_cluster()


@pytest.fixture(scope="session")
def kinds():
    return PAPER_KINDS


def config_of(p1: int, m1: int, p2: int, m2: int) -> ClusterConfig:
    return ClusterConfig.from_tuple(PAPER_KINDS, (p1, m1, p2, m2))


@pytest.fixture(scope="session")
def make_config():
    return config_of


@pytest.fixture(scope="session")
def basic_campaign(spec):
    return run_campaign(spec, basic_plan(), noise=NoiseSpec(), seed=11)


@pytest.fixture(scope="session")
def basic_pipeline(spec):
    return EstimationPipeline(spec, PipelineConfig(protocol="basic", seed=11))


@pytest.fixture(scope="session")
def nl_pipeline(spec):
    return EstimationPipeline(spec, PipelineConfig(protocol="nl", seed=11))


@pytest.fixture(scope="session")
def ns_pipeline(spec):
    return EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=11))
