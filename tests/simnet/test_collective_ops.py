"""Tests for the higher-level collectives (scatter/gather/allgather/
allreduce) on the MPI-like API."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.presets import kishimoto_cluster
from repro.errors import SimulationError
from repro.simnet.api import SimCommWorld
from repro.simnet.transport import Transport

KINDS = ("athlon", "pentium2")


def make_world(p1, m1, p2, m2):
    spec = kishimoto_cluster()
    config = ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))
    slots = place_processes(spec, config)
    return SimCommWorld(Transport(spec, slots))


class TestScatterGather:
    def test_scatter_delivers_slices(self):
        world = make_world(1, 1, 4, 1)
        got = {}

        def program(comm):
            payloads = [f"slice-{r}" for r in range(comm.size)] if comm.rank == 2 else None
            mine = yield from comm.scatter(2, 1024, payloads)
            got[comm.rank] = mine

        world.run(program)
        assert got == {r: f"slice-{r}" for r in range(5)}

    def test_scatter_payload_count_checked(self):
        world = make_world(1, 1, 1, 1)

        def program(comm):
            payloads = ["only-one"] if comm.rank == 0 else None
            yield from comm.scatter(0, 64, payloads)

        with pytest.raises(SimulationError, match="scatter needs"):
            world.run(program)

    def test_gather_collects_in_rank_order(self):
        world = make_world(1, 2, 2, 1)
        collected = {}

        def program(comm):
            out = yield from comm.gather(0, 256, payload=comm.rank * 10)
            if comm.rank == 0:
                collected["result"] = out

        world.run(program)
        assert collected["result"] == [0, 10, 20, 30]

    def test_gather_non_root_returns_none(self):
        world = make_world(1, 1, 1, 1)
        seen = {}

        def program(comm):
            out = yield from comm.gather(0, 64, payload=comm.rank)
            seen[comm.rank] = out

        world.run(program)
        assert seen[1] is None and seen[0] == [0, 1]


class TestAllgatherAllreduce:
    @pytest.mark.parametrize("shape", [(1, 1, 2, 1), (1, 2, 4, 1), (0, 0, 8, 1)])
    def test_allgather_everyone_gets_everything(self, shape):
        world = make_world(*shape)
        results = {}

        def program(comm):
            slices = yield from comm.allgather(512, payload=f"from-{comm.rank}")
            results[comm.rank] = slices

        world.run(program)
        expected = [f"from-{r}" for r in range(world.size)]
        for rank in range(world.size):
            assert results[rank] == expected

    def test_allreduce_sum(self):
        world = make_world(1, 1, 4, 1)
        sums = {}

        def program(comm):
            total = yield from comm.allreduce_sum(float(comm.rank + 1))
            sums[comm.rank] = total

        world.run(program)
        assert all(v == pytest.approx(15.0) for v in sums.values())

    def test_allgather_time_scales_with_size(self):
        small = make_world(0, 0, 2, 1)
        large = make_world(0, 0, 8, 1)
        nbytes = 100_000.0

        def program(comm):
            yield from comm.allgather(nbytes)

        t_small = max(small.run(program).values())
        t_large = max(large.run(program).values())
        assert t_large > 2.0 * t_small  # P-1 rounds of the same volume
