"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.simnet.event_sim import Put, Receive, Simulator, Timeout


class TestScheduling:
    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        hits = []

        def first():
            hits.append(sim.now)
            sim.schedule(2.0, lambda: hits.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert hits == [1.0, 3.0]


class TestProcesses:
    def test_timeout_advances_virtual_time(self):
        sim = Simulator()

        def proc():
            yield Timeout(5.0)
            yield Timeout(2.5)

        pid = sim.spawn(proc())
        sim.run()
        assert sim.finished(pid)
        assert sim.now == 7.5

    def test_put_then_receive(self):
        sim = Simulator()
        received = []

        def producer():
            yield Timeout(1.0)
            yield Put("box", "hello")

        def consumer():
            message = yield Receive("box")
            received.append((sim.now, message))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert received == [(1.0, "hello")]

    def test_receive_before_put_blocks(self):
        sim = Simulator()
        events = []

        def consumer():
            message = yield Receive("box")
            events.append(("got", sim.now, message))

        def producer():
            yield Timeout(4.0)
            yield Put("box", 42)

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert events == [("got", 4.0, 42)]

    def test_messages_are_fifo(self):
        sim = Simulator()
        got = []

        def producer():
            yield Put("box", 1)
            yield Put("box", 2)
            yield Put("box", 3)

        def consumer():
            for _ in range(3):
                got.append((yield Receive("box")))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == [1, 2, 3]

    def test_deadlock_detection(self):
        sim = Simulator()

        def stuck():
            yield Receive("never")

        pid = sim.spawn(stuck())
        sim.run()
        assert not sim.finished(pid)
        assert sim.deadlocked_pids() == [pid]

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def bad():
            yield "nonsense"

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            while True:
                yield Timeout(0.0)

        sim.spawn(forever())
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.1)

    def test_two_consumers_one_producer(self):
        sim = Simulator()
        got = []

        def consumer(tag):
            message = yield Receive("box")
            got.append((tag, message))

        def producer():
            yield Put("box", "x")
            yield Put("box", "y")

        sim.spawn(consumer("a"))
        sim.spawn(consumer("b"))
        sim.spawn(producer())
        sim.run()
        assert sorted(got) == [("a", "x"), ("b", "y")]
