"""Tests for the MPICH transport curves, Transport routing and NetPIPE."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.presets import kishimoto_cluster
from repro.errors import ClusterError, SimulationError
from repro.simnet.mpich import MPICHVersion, mpich_1_2_1, mpich_1_2_2, mpich_1_2_5
from repro.simnet.netpipe import probe_link, probe_transport, standard_block_sizes
from repro.simnet.transport import LinkKind, Transport
from repro.units import KB, to_gbps

KINDS = ("athlon", "pentium2")


def transport_for(p1, m1, p2, m2):
    spec = kishimoto_cluster()
    config = ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))
    return Transport(spec, place_processes(spec, config))


class TestMPICHCurves:
    def test_new_version_dominates_old_at_large_messages(self):
        old, new = mpich_1_2_1(), mpich_1_2_2()
        for size in (64 * KB, 128 * KB, 1024 * KB):
            assert new.effective_bandwidth(size) > old.effective_bandwidth(size)

    def test_old_version_collapses_past_32kb(self):
        old = mpich_1_2_1()
        assert old.effective_bandwidth(16 * KB) > old.effective_bandwidth(128 * KB)

    def test_new_version_monotone_saturating(self):
        new = mpich_1_2_2()
        sizes = np.array([1, 4, 16, 64, 256, 1024]) * KB
        bw = np.asarray(new.effective_bandwidth(sizes))
        assert np.all(np.diff(bw) >= 0)
        assert to_gbps(bw[-1]) == pytest.approx(2.2, rel=0.05)

    def test_interpolation_hits_anchors(self):
        version = mpich_1_2_2()
        for size, bw in zip(version.anchor_bytes, version.anchor_bps):
            assert version.effective_bandwidth(size) == pytest.approx(bw)

    def test_flat_extrapolation_beyond_anchors(self):
        version = mpich_1_2_2()
        assert version.effective_bandwidth(10 * 1024 * KB) == pytest.approx(
            version.anchor_bps[-1]
        )

    def test_mpich_125_slightly_faster_than_122(self):
        assert mpich_1_2_5().effective_bandwidth(64 * KB) > mpich_1_2_2().effective_bandwidth(64 * KB)

    def test_validation(self):
        with pytest.raises(ClusterError):
            MPICHVersion("bad", 0.0, (1.0,), (1.0,))
        with pytest.raises(ClusterError):
            MPICHVersion("bad", 0.0, (2.0, 1.0), (1.0, 1.0))
        with pytest.raises(ClusterError):
            MPICHVersion("bad", 0.0, (1.0, 2.0), (1.0, -1.0))
        with pytest.raises(ClusterError):
            MPICHVersion("bad", -1.0, (1.0, 2.0), (1.0, 1.0))
        with pytest.raises(ClusterError):
            mpich_1_2_2().message_time(-5)


class TestTransport:
    def test_link_classification(self):
        transport = transport_for(1, 2, 2, 1)
        # ranks: 0,1 athlon same CPU; 2,3 on node2's two CPUs
        assert transport.link_kind(0, 1) is LinkKind.SAME_CPU
        assert transport.link_kind(2, 3) is LinkKind.SAME_NODE
        assert transport.link_kind(1, 2) is LinkKind.NETWORK

    def test_self_message_is_free(self):
        transport = transport_for(1, 1, 1, 1)
        assert transport.message_time(0, 0, 1e6) == 0.0

    def test_network_slower_than_shared_memory(self):
        transport = transport_for(1, 2, 2, 1)
        nbytes = 500_000
        assert transport.message_time(1, 2, nbytes) > transport.message_time(0, 1, nbytes)

    def test_ring_hop_times_match_pairwise(self):
        transport = transport_for(1, 2, 4, 1)
        nbytes = 123_456
        hops = transport.ring_hop_times(nbytes)
        for i in range(transport.size):
            j = (i + 1) % transport.size
            assert hops[i] == pytest.approx(transport.message_time(i, j, nbytes))

    def test_empty_placement_rejected(self):
        with pytest.raises(SimulationError):
            Transport(kishimoto_cluster(), [])

    def test_describe_ring(self):
        text = transport_for(1, 2, 1, 1).describe_ring()
        assert "same-cpu" in text and "network" in text


class TestNetPIPE:
    def test_probe_link_throughput_at_most_half_bandwidth_effect(self):
        version = mpich_1_2_2()
        points = probe_link(version, [64 * KB])
        # ping-pong throughput equals one-way throughput for symmetric links
        assert points[0].throughput_bps == pytest.approx(
            version.throughput(64 * KB), rel=1e-9
        )

    def test_probe_link_rejects_non_positive_blocks(self):
        with pytest.raises(SimulationError):
            probe_link(mpich_1_2_2(), [0])

    def test_event_driven_probe_matches_closed_form(self):
        transport = transport_for(1, 2, 0, 0)
        blocks = [4 * KB, 64 * KB]
        event_points = probe_transport(transport, blocks, 0, 1, repeats=2)
        link_points = probe_link(kishimoto_cluster().intranode, blocks)
        for ep, lp in zip(event_points, link_points):
            assert ep.throughput_bps == pytest.approx(lp.throughput_bps, rel=1e-9)

    def test_probe_transport_validation(self):
        transport = transport_for(1, 2, 0, 0)
        with pytest.raises(SimulationError):
            probe_transport(transport, [KB], 0, 0)
        with pytest.raises(SimulationError):
            probe_transport(transport, [KB], 0, 1, repeats=0)

    def test_standard_block_sizes_geometric(self):
        sizes = standard_block_sizes(1024, 131072)
        assert sizes[0] == pytest.approx(1024)
        assert sizes[-1] == pytest.approx(131072)
        ratios = sizes[1:] / sizes[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_standard_block_sizes_validation(self):
        with pytest.raises(SimulationError):
            standard_block_sizes(0, 100)
        with pytest.raises(SimulationError):
            standard_block_sizes(100, 50)
