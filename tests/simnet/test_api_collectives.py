"""Tests for the MPI-like API and broadcast algorithms, including the
closed-form-vs-event-driven cross-validation."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.presets import kishimoto_cluster
from repro.errors import SimulationError
from repro.simnet.api import SimCommWorld
from repro.simnet.collectives import (
    binomial_delivery_times,
    ring_busy_times,
    ring_delivery_times,
    ring_delivery_times_batch,
    run_binomial_bcast,
    run_ring_bcast,
)
from repro.simnet.transport import Transport

KINDS = ("athlon", "pentium2")


def make_world(p1, m1, p2, m2):
    spec = kishimoto_cluster()
    config = ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))
    slots = place_processes(spec, config)
    return SimCommWorld(Transport(spec, slots))


class TestPointToPoint:
    def test_send_recv_payload(self):
        world = make_world(1, 1, 1, 1)
        got = []

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=1024, payload="panel")
            else:
                message = yield from comm.recv(0)
                got.append(message.payload)

        world.run(program)
        assert got == ["panel"]

    def test_send_time_matches_link_model(self):
        world = make_world(1, 1, 1, 1)
        nbytes = 100_000.0
        expected = world.transport.message_time(0, 1, nbytes)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=nbytes)
            else:
                yield from comm.recv(0)

        finish = world.run(program)
        assert finish[1] == pytest.approx(expected)

    def test_send_to_self_rejected(self):
        world = make_world(1, 2, 0, 0)

        def program(comm):
            yield from comm.send(comm.rank, nbytes=1)

        with pytest.raises(SimulationError):
            world.run(program, ranks=[0])

    def test_deadlock_reported_with_ranks(self):
        world = make_world(1, 1, 1, 1)

        def program(comm):
            yield from comm.recv((comm.rank + 1) % comm.size)

        with pytest.raises(SimulationError, match="deadlock"):
            world.run(program)


class TestBarrier:
    def test_barrier_completes_for_all(self):
        world = make_world(1, 2, 4, 1)

        def program(comm):
            yield from comm.barrier()

        finish = world.run(program)
        assert len(finish) == 6
        assert max(finish.values()) > 0


class TestRingBroadcast:
    @pytest.mark.parametrize("root", [0, 3, 8])
    def test_matches_closed_form_store_and_forward(self, root):
        world = make_world(1, 1, 8, 1)
        nbytes = 50_000.0
        finish = run_ring_bcast(world, root, nbytes)
        hops = world.transport.ring_hop_times(nbytes)
        delivery = ring_delivery_times(hops, root=root, pipeline_factor=1.0)
        p = world.size
        for rank in range(p):
            distance = (rank - root) % p
            if distance == 0:
                continue  # root's finish time includes only its send
            # Non-final ranks finish after forwarding; the last rank
            # finishes at its delivery time.
            if distance == p - 1:
                assert finish[rank] == pytest.approx(delivery[rank])
            else:
                assert finish[rank] >= delivery[rank] - 1e-12

    def test_all_ranks_receive_payload(self):
        world = make_world(1, 2, 2, 1)
        got = {}

        def program(comm):
            payload = yield from comm.bcast_ring(0, 1024, payload="block")
            got[comm.rank] = payload

        world.run(program)
        assert got == {r: "block" for r in range(world.size)}


class TestBinomialBroadcast:
    def test_all_ranks_receive(self):
        world = make_world(1, 1, 8, 1)
        finish = run_binomial_bcast(world, 0, 10_000.0)
        assert len(finish) == 9

    def test_binomial_faster_than_ring_for_many_ranks(self):
        world_ring = make_world(1, 1, 8, 1)
        world_tree = make_world(1, 1, 8, 1)
        nbytes = 100_000.0
        ring_finish = max(run_ring_bcast(world_ring, 0, nbytes).values())
        tree_finish = max(run_binomial_bcast(world_tree, 0, nbytes).values())
        assert tree_finish < ring_finish

    def test_delivery_rounds_formula(self):
        times = binomial_delivery_times(1.0, 8)
        # v receives in round ceil(log2(size)) - trailing_zeros(v)
        assert times.tolist() == [0, 3, 2, 3, 1, 3, 2, 3]

    def test_rotated_root(self):
        times = binomial_delivery_times(2.0, 4, root=2)
        assert times[2] == 0.0
        # v=2 (rank 0) has one trailing zero: round 2 - 1 = 1
        assert times[0] == pytest.approx(2.0)
        # odd v receive last (round 2)
        assert times[3] == pytest.approx(4.0)

    def test_formula_matches_event_driven_uniform_hops(self):
        # Same-CPU links have uniform cost; compare the closed form against
        # the event engine on a 4-process single-CPU ring.
        world = make_world(1, 4, 0, 0)
        nbytes = 8192.0
        hop = world.transport.message_time(0, 1, nbytes)
        finish = run_binomial_bcast(world, 0, nbytes)
        formula = binomial_delivery_times(hop, 4)
        # Leaves finish exactly at their delivery time.
        for v in (1, 3):
            assert finish[v] == pytest.approx(formula[v])


class TestClosedForms:
    def test_delivery_is_cumsum_for_full_pipeline(self):
        hops = [1.0, 2.0, 3.0, 4.0]
        delivery = ring_delivery_times(hops, root=0, pipeline_factor=1.0)
        assert delivery.tolist() == [0.0, 1.0, 3.0, 6.0]

    def test_pipeline_factor_discounts_downstream_hops(self):
        hops = [1.0, 1.0, 1.0, 1.0]
        delivery = ring_delivery_times(hops, root=0, pipeline_factor=0.5)
        assert delivery.tolist() == [0.0, 1.0, 1.5, 2.0]

    def test_zero_pipeline_means_single_hop_wait(self):
        hops = [2.0] * 5
        delivery = ring_delivery_times(hops, root=1, pipeline_factor=0.0)
        assert delivery[1] == 0.0
        assert all(delivery[(1 + d) % 5] == pytest.approx(2.0) for d in range(1, 5))

    def test_root_rotation_uses_correct_edges(self):
        hops = [1.0, 10.0, 100.0]
        delivery = ring_delivery_times(hops, root=1, pipeline_factor=1.0)
        # root 1 -> rank 2 via edge 1 (10), rank 2 -> rank 0 via edge 2 (100)
        assert delivery[1] == 0.0
        assert delivery[2] == pytest.approx(10.0)
        assert delivery[0] == pytest.approx(110.0)

    def test_busy_times_skip_last_rank(self):
        hops = [1.0, 2.0, 3.0]
        busy = ring_busy_times(hops, root=0)
        assert busy[0] == 1.0 and busy[1] == 2.0 and busy[2] == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            ring_delivery_times([], root=0)
        with pytest.raises(SimulationError):
            ring_delivery_times([1.0], root=5)
        with pytest.raises(SimulationError):
            ring_delivery_times([1.0, 1.0], root=0, pipeline_factor=1.5)
        with pytest.raises(SimulationError):
            binomial_delivery_times(-1.0, 4)

    def test_single_rank_ring(self):
        assert ring_delivery_times([0.5], root=0).tolist() == [0.0]


class TestBatchedClosedForm:
    def test_bitwise_equal_to_scalar_per_row(self):
        import numpy as np

        rng = np.random.default_rng(3)
        for p in (2, 3, 7, 14):
            steps = 9
            hops = rng.uniform(0.001, 1.0, size=(steps, p))
            roots = np.arange(steps) % p
            for factor in (0.0, 0.45, 1.0):
                batch = ring_delivery_times_batch(hops, roots, pipeline_factor=factor)
                for k in range(steps):
                    scalar = ring_delivery_times(
                        hops[k], root=int(roots[k]), pipeline_factor=factor
                    )
                    assert np.array_equal(batch[k], scalar), (p, k, factor)

    def test_one_dimensional_hops_broadcast(self):
        import numpy as np

        hops = [1.0, 2.0, 3.0]
        roots = np.array([0, 1, 2, 0])
        batch = ring_delivery_times_batch(hops, roots)
        for k, root in enumerate(roots):
            assert np.array_equal(batch[k], ring_delivery_times(hops, root=int(root)))

    def test_single_rank_and_validation(self):
        import numpy as np

        assert ring_delivery_times_batch([[0.5]], [0]).tolist() == [[0.0]]
        with pytest.raises(SimulationError):
            ring_delivery_times_batch(np.ones((2, 3)), [0])  # root count mismatch
        with pytest.raises(SimulationError):
            ring_delivery_times_batch(np.ones((1, 3)), [3])  # root out of range
        with pytest.raises(SimulationError):
            ring_delivery_times_batch(np.ones((1, 3)), [0], pipeline_factor=2.0)


class TestBatchedHopTimes:
    def test_rows_match_scalar_hop_times(self):
        import numpy as np

        spec = kishimoto_cluster()
        config = ClusterConfig.from_tuple(KINDS, (1, 2, 8, 1))
        transport = Transport(spec, place_processes(spec, config))
        sizes = np.array([64.0, 1024.0, 81920.0, 640000.0])
        batch = transport.ring_hop_times_batch(sizes)
        assert batch.shape == (len(sizes), transport.size)
        for k, nbytes in enumerate(sizes):
            assert np.array_equal(batch[k], transport.ring_hop_times(float(nbytes)))
