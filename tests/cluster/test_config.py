"""Unit tests for run configurations."""

import pytest

from repro.cluster.config import ClusterConfig, KindAllocation, enumerate_configs
from repro.cluster.presets import kishimoto_cluster
from repro.errors import ConfigurationError

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


class TestKindAllocation:
    def test_processes(self):
        assert KindAllocation("a", 4, 3).processes == 12

    def test_zero_pe_forces_zero_procs(self):
        with pytest.raises(ConfigurationError):
            KindAllocation("a", 0, 1)

    def test_used_kind_needs_processes(self):
        with pytest.raises(ConfigurationError):
            KindAllocation("a", 2, 0)

    def test_negative_pe_rejected(self):
        with pytest.raises(ConfigurationError):
            KindAllocation("a", -1, 1)


class TestClusterConfig:
    def test_total_processes_matches_paper_notation(self):
        # (P1=1, M1=3, P2=8, M2=1) -> P = 1*3 + 8*1 = 11
        assert cfg(1, 3, 8, 1).total_processes == 11

    def test_label_roundtrip(self):
        config = cfg(1, 4, 8, 1)
        assert config.label(KINDS) == "1,4,8,1"
        assert config.as_flat_tuple(KINDS) == (1, 4, 8, 1)

    def test_empty_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            cfg(0, 0, 0, 0)

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(
                (KindAllocation("a", 1, 1), KindAllocation("a", 2, 1))
            )

    def test_single_kind_and_single_pe_flags(self):
        assert cfg(1, 2, 0, 0).is_single_kind
        assert cfg(1, 2, 0, 0).is_single_pe
        assert not cfg(1, 1, 8, 1).is_single_kind
        assert cfg(0, 0, 1, 6).is_single_pe
        assert not cfg(0, 0, 2, 3).is_single_pe

    def test_canonical_drops_unused_kinds(self):
        assert cfg(1, 2, 0, 0).canonical().key() == (("athlon", 1, 2),)

    def test_key_identity_ignores_zero_allocations(self):
        explicit = cfg(1, 2, 0, 0)
        implicit = ClusterConfig.of(athlon=(1, 2))
        assert explicit.key() == implicit.key()

    def test_allocation_lookup_defaults_to_zero(self):
        config = ClusterConfig.of(athlon=(1, 2))
        assert config.pe_count("pentium2") == 0
        assert config.procs_per_pe("pentium2") == 0

    def test_from_tuple_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig.from_tuple(KINDS, (1, 2, 3))


class TestValidateAgainst:
    def test_fits(self):
        cfg(1, 6, 8, 1).validate_against(kishimoto_cluster())

    def test_too_many_pes(self):
        with pytest.raises(ConfigurationError):
            cfg(2, 1, 0, 0).validate_against(kishimoto_cluster())
        with pytest.raises(ConfigurationError):
            cfg(0, 0, 9, 1).validate_against(kishimoto_cluster())

    def test_unknown_kind(self):
        config = ClusterConfig.of(xeon=(1, 1))
        with pytest.raises(ConfigurationError):
            config.validate_against(kishimoto_cluster())


class TestEnumeration:
    def test_paper_evaluation_count_is_62(self):
        configs = list(
            enumerate_configs(
                KINDS,
                pe_ranges={"athlon": (0, 1), "pentium2": range(0, 9)},
                proc_ranges={"athlon": range(1, 7), "pentium2": (1,)},
            )
        )
        # P1 in {0,1} x M1 in 1..6 x P2 in 0..8, M2=1, minus the empty one:
        # 6*9 (P1=1) + 8 (P1=0, P2>=1) = 62
        assert len(configs) == 62

    def test_enumeration_has_no_duplicates(self):
        configs = list(
            enumerate_configs(
                KINDS,
                pe_ranges={"athlon": (0, 1), "pentium2": range(0, 3)},
                proc_ranges={"athlon": (1, 2), "pentium2": (1, 2)},
            )
        )
        keys = [c.key() for c in configs]
        assert len(keys) == len(set(keys))

    def test_every_enumerated_config_is_nonempty(self):
        for config in enumerate_configs(
            KINDS,
            pe_ranges={"athlon": (0, 1), "pentium2": (0, 1)},
            proc_ranges={"athlon": (1,), "pentium2": (1,)},
        ):
            assert config.total_processes >= 1
