"""Unit tests for process placement."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes, ring_neighbors
from repro.cluster.presets import kishimoto_cluster
from repro.errors import ConfigurationError

KINDS = ("athlon", "pentium2")


def cfg(p1, m1, p2, m2):
    return ClusterConfig.from_tuple(KINDS, (p1, m1, p2, m2))


@pytest.fixture(scope="module")
def spec():
    return kishimoto_cluster()


class TestPlacement:
    def test_rank_count_matches_config(self, spec):
        slots = place_processes(spec, cfg(1, 3, 8, 1))
        assert len(slots) == 11
        assert [s.rank for s in slots] == list(range(11))

    def test_athlon_ranks_come_first(self, spec):
        slots = place_processes(spec, cfg(1, 2, 8, 1))
        assert [s.kind.name for s in slots[:2]] == ["athlon", "athlon"]
        assert all(s.kind.name == "pentium2" for s in slots[2:])

    def test_co_residency_matches_allocation(self, spec):
        slots = place_processes(spec, cfg(1, 4, 8, 1))
        assert all(s.co_resident == 4 for s in slots if s.kind.name == "athlon")
        assert all(s.co_resident == 1 for s in slots if s.kind.name == "pentium2")

    def test_multiprocess_ranks_share_cpu(self, spec):
        slots = place_processes(spec, cfg(1, 3, 0, 0))
        assert all(slots[0].same_cpu(s) for s in slots)

    def test_pentium2_fills_nodes_in_order(self, spec):
        slots = place_processes(spec, cfg(0, 0, 8, 1))
        names = [s.node_name for s in slots]
        assert names == ["node2", "node2", "node3", "node3", "node4", "node4", "node5", "node5"]

    def test_partial_pentium2_uses_first_nodes(self, spec):
        slots = place_processes(spec, cfg(0, 0, 3, 2))
        # 3 CPUs -> node2 both CPUs + node3 first CPU, 2 procs each
        assert len(slots) == 6
        assert {s.node_name for s in slots} == {"node2", "node3"}

    def test_placement_is_deterministic(self, spec):
        a = place_processes(spec, cfg(1, 2, 4, 2))
        b = place_processes(spec, cfg(1, 2, 4, 2))
        assert a == b

    def test_oversized_config_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            place_processes(spec, cfg(0, 0, 9, 1))


class TestRingNeighbors:
    def test_ring_wraps_around(self, spec):
        slots = place_processes(spec, cfg(1, 1, 2, 1))
        edges = ring_neighbors(slots)
        assert len(edges) == 3
        assert edges[-1][0].rank == 2 and edges[-1][1].rank == 0

    def test_edge_classification_helpers(self, spec):
        slots = place_processes(spec, cfg(1, 2, 2, 1))
        # ranks 0,1 on the Athlon CPU; 2,3 on node2's two CPUs
        assert slots[0].same_cpu(slots[1])
        assert not slots[1].same_cpu(slots[2])
        assert slots[2].same_node(slots[3])
        assert not slots[2].same_cpu(slots[3])

    def test_empty_ring(self):
        assert ring_neighbors([]) == []
