"""Cluster serialization across the cost-field format bump (1 -> 2).

Backward compatibility is the contract: a format-1 description (written
before rate cards existed) must load with ``cost=None`` and behave
exactly as before, while a format-2 description round-trips its card
bitwise.  Unknown fields inside a stored card are version skew and must
raise a typed error naming the offending path.
"""

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.cluster.serialize import cluster_from_dict, cluster_to_dict
from repro.cost.model import CostModel
from repro.cost.presets import kishimoto_rate_card
from repro.errors import ClusterError, ModelError


@pytest.fixture()
def priced_spec():
    return kishimoto_cluster().with_cost(kishimoto_rate_card())


class TestFormatBump:
    def test_unpriced_spec_round_trips_without_cost_key(self):
        spec = kishimoto_cluster()
        data = cluster_to_dict(spec)
        assert data["format"] == 2
        assert "cost" not in data
        loaded = cluster_from_dict(data)
        assert loaded.cost is None
        assert loaded.name == spec.name

    def test_priced_spec_round_trips_bitwise(self, priced_spec):
        loaded = cluster_from_dict(cluster_to_dict(priced_spec))
        assert loaded.cost == priced_spec.cost
        assert loaded.cost.dollars_per_pe_second("athlon") == (
            priced_spec.cost.dollars_per_pe_second("athlon")
        )

    def test_old_format_loads_with_zero_cost_default(self):
        data = cluster_to_dict(kishimoto_cluster())
        data["format"] = 1
        loaded = cluster_from_dict(data)
        assert loaded.cost is None

    def test_unknown_future_format_rejected(self):
        data = cluster_to_dict(kishimoto_cluster())
        data["format"] = 3
        with pytest.raises(ClusterError):
            cluster_from_dict(data)


class TestStrictness:
    def test_unknown_cost_field_raises_naming_path(self, priced_spec):
        data = cluster_to_dict(priced_spec)
        data["cost"]["rates"][0]["surge_multiplier"] = 2.0
        with pytest.raises(
            ModelError,
            match=r"unknown field cost\.rates\[0\]\.surge_multiplier",
        ):
            cluster_from_dict(data)

    def test_card_pricing_unknown_kind_rejected(self):
        with pytest.raises(ClusterError, match="unknown kind 'xeon'"):
            kishimoto_cluster().with_cost(CostModel.of(xeon=1.0))

    def test_describe_includes_rate_card(self, priced_spec):
        text = priced_spec.describe()
        assert "rate card" in text
        assert "athlon" in text
