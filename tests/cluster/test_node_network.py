"""Unit tests for nodes and network models."""

import numpy as np
import pytest

from repro.cluster.network import NetworkSpec, fast_ethernet, gigabit_sx, ideal_network
from repro.cluster.node import Node
from repro.cluster.presets import athlon_1333
from repro.errors import ClusterError
from repro.units import MB


class TestNode:
    def test_usable_memory(self):
        node = Node("n", athlon_1333(), memory_bytes=768 * MB, os_reserved_bytes=48 * MB)
        assert node.usable_memory_bytes == 720 * MB

    def test_rejects_zero_cpus(self):
        with pytest.raises(ClusterError):
            Node("n", athlon_1333(), cpus=0)

    def test_rejects_reserved_exceeding_memory(self):
        with pytest.raises(ClusterError):
            Node("n", athlon_1333(), memory_bytes=MB, os_reserved_bytes=2 * MB)

    def test_rejects_empty_name(self):
        with pytest.raises(ClusterError):
            Node("", athlon_1333())


class TestNetworkSpec:
    def test_message_time_is_latency_plus_transfer(self):
        net = NetworkSpec("t", latency_s=1e-4, bandwidth_bps=1e8, half_saturation_bytes=0)
        assert net.message_time(1e6) == pytest.approx(1e-4 + 0.01)

    def test_zero_size_message_costs_latency(self):
        net = fast_ethernet()
        assert net.message_time(0) == pytest.approx(net.latency_s)

    def test_negative_size_rejected(self):
        with pytest.raises(ClusterError):
            fast_ethernet().message_time(-1)

    def test_effective_bandwidth_saturates(self):
        net = fast_ethernet()
        small = net.effective_bandwidth(512)
        large = net.effective_bandwidth(10 * MB)
        assert small < large
        assert large == pytest.approx(net.bandwidth_bps, rel=0.01)

    def test_message_time_vectorized_matches_scalar(self):
        net = fast_ethernet()
        sizes = np.array([1e3, 1e4, 1e5, 1e6])
        vec = net.message_time(sizes)
        for size, t in zip(sizes, vec):
            assert t == pytest.approx(net.message_time(float(size)))

    def test_message_time_monotone_in_size(self):
        net = fast_ethernet()
        sizes = np.logspace(2, 7, 30)
        times = np.asarray(net.message_time(sizes))
        assert np.all(np.diff(times) > 0)

    def test_throughput_below_line_rate(self):
        net = fast_ethernet()
        assert net.throughput(64 * 1024) < net.bandwidth_bps

    def test_gigabit_faster_than_fast_ethernet(self):
        size = 1e6
        assert gigabit_sx().message_time(size) < fast_ethernet().message_time(size)

    def test_ideal_network_has_no_latency(self):
        net = ideal_network()
        assert net.message_time(0) == 0.0
        assert net.message_time(1e12) == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ClusterError):
            NetworkSpec("bad", latency_s=-1, bandwidth_bps=1e8)
        with pytest.raises(ClusterError):
            NetworkSpec("bad", latency_s=0, bandwidth_bps=0)
        with pytest.raises(ClusterError):
            NetworkSpec("bad", latency_s=0, bandwidth_bps=1e8, half_saturation_bytes=-1)
