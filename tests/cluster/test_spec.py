"""Unit tests for ClusterSpec."""

import pytest

from repro.cluster.network import fast_ethernet, gigabit_sx
from repro.cluster.node import Node
from repro.cluster.presets import athlon_1333, kishimoto_cluster, single_node_cluster, synthetic_cluster
from repro.cluster.spec import ClusterSpec
from repro.errors import ClusterError
from repro.simnet.mpich import mpich_1_2_1, mpich_1_2_2


def two_kind_spec() -> ClusterSpec:
    return kishimoto_cluster()


class TestInventory:
    def test_paper_cluster_matches_table1(self):
        spec = two_kind_spec()
        assert len(spec.nodes) == 5
        assert spec.pe_count("athlon") == 1
        assert spec.pe_count("pentium2") == 8  # 4 dual-CPU nodes
        assert spec.total_pes == 9
        assert spec.kind_names == ("athlon", "pentium2")

    def test_kind_lookup(self):
        spec = two_kind_spec()
        assert spec.kind("athlon").peak_gflops > spec.kind("pentium2").peak_gflops
        with pytest.raises(ClusterError):
            spec.kind("itanium")

    def test_nodes_of_kind(self):
        spec = two_kind_spec()
        assert len(spec.nodes_of_kind("pentium2")) == 4
        assert len(spec.nodes_of_kind("athlon")) == 1

    def test_pe_counts_mapping(self):
        assert two_kind_spec().pe_counts() == {"athlon": 1, "pentium2": 8}

    def test_describe_mentions_everything(self):
        text = two_kind_spec().describe()
        for token in ("athlon", "pentium2", "100base-tx", "mpich", "768 MB"):
            assert token in text


class TestValidation:
    def test_duplicate_node_names_rejected(self):
        node = Node("same", athlon_1333())
        with pytest.raises(ClusterError):
            ClusterSpec("bad", (node, node), fast_ethernet(), mpich_1_2_2())

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            ClusterSpec("bad", (), fast_ethernet(), mpich_1_2_2())

    def test_conflicting_kind_definitions_rejected(self):
        a = Node("n1", athlon_1333())
        conflicting = Node("n2", athlon_1333().scaled("athlon", 2.0))
        with pytest.raises(ClusterError):
            ClusterSpec("bad", (a, conflicting), fast_ethernet(), mpich_1_2_2())


class TestDerivation:
    def test_with_network_replaces_only_network(self):
        spec = two_kind_spec()
        fast = spec.with_network(gigabit_sx())
        assert fast.network.name == "1000base-sx"
        assert fast.nodes == spec.nodes

    def test_with_intranode(self):
        spec = two_kind_spec().with_intranode(mpich_1_2_1())
        assert spec.intranode.name == "mpich-1.2.1"


class TestPresets:
    def test_single_node_cluster(self):
        spec = single_node_cluster(cpus=2)
        assert spec.total_pes == 2
        assert len(spec.kinds) == 1

    def test_kishimoto_rejects_unknown_options(self):
        with pytest.raises(ClusterError):
            kishimoto_cluster(mpich="9.9")
        with pytest.raises(ClusterError):
            kishimoto_cluster(network="infiniband")

    def test_synthetic_cluster_kind_rates(self):
        spec = synthetic_cluster([0.2, 0.5, 1.0], nodes_per_kind=2)
        assert len(spec.kinds) == 3
        rates = [k.peak_gflops for k in spec.kinds]
        assert rates == pytest.approx([0.2, 0.5, 1.0])
        assert spec.total_pes == 6

    def test_synthetic_cluster_requires_kinds(self):
        with pytest.raises(ClusterError):
            synthetic_cluster([])
