"""Unit tests for PE kinds and their performance model."""

import pytest

from repro.cluster.pe import PEKind
from repro.cluster.presets import athlon_1333, pentium2_400
from repro.errors import ClusterError


def make_kind(**overrides) -> PEKind:
    base = dict(name="test", peak_gflops=1.0, ramp_n=1000.0)
    base.update(overrides)
    return PEKind(**base)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ClusterError):
            make_kind(name="")

    def test_non_positive_peak_rejected(self):
        with pytest.raises(ClusterError):
            make_kind(peak_gflops=0.0)
        with pytest.raises(ClusterError):
            make_kind(peak_gflops=-1.0)

    def test_non_positive_ramp_rejected(self):
        with pytest.raises(ClusterError):
            make_kind(ramp_n=0.0)

    def test_bad_efficiency_floor_rejected(self):
        with pytest.raises(ClusterError):
            make_kind(efficiency_floor=0.0)
        with pytest.raises(ClusterError):
            make_kind(efficiency_floor=1.5)

    def test_negative_oversub_rejected(self):
        with pytest.raises(ClusterError):
            make_kind(oversub_penalty=-0.1)


class TestEfficiency:
    def test_linear_ramp_below_knee(self):
        kind = make_kind(ramp_n=1000.0, efficiency_floor=0.01)
        assert kind.efficiency(500) == pytest.approx(0.5)
        assert kind.efficiency(250) == pytest.approx(0.25)

    def test_saturates_at_one(self):
        kind = make_kind(ramp_n=1000.0)
        assert kind.efficiency(1000) == 1.0
        assert kind.efficiency(50000) == 1.0

    def test_floor_applies_to_tiny_problems(self):
        kind = make_kind(ramp_n=1000.0, efficiency_floor=0.05)
        assert kind.efficiency(1) == pytest.approx(0.05)
        assert kind.efficiency(0) == pytest.approx(0.05)
        assert kind.efficiency(-5) == pytest.approx(0.05)

    def test_monotone_nondecreasing(self):
        kind = make_kind(ramp_n=1500.0)
        values = [kind.efficiency(n) for n in range(0, 4000, 100)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestRates:
    def test_single_process_rate_is_peak_times_efficiency(self):
        kind = make_kind(peak_gflops=2.0, ramp_n=1000.0)
        assert kind.process_rate(2000, 1) == pytest.approx(2.0e9)
        assert kind.process_rate(500, 1) == pytest.approx(1.0e9)

    def test_oversubscription_divides_rate(self):
        kind = make_kind(peak_gflops=1.0, ramp_n=100.0, oversub_penalty=0.0)
        assert kind.process_rate(1000, 2) == pytest.approx(0.5e9)
        assert kind.process_rate(1000, 4) == pytest.approx(0.25e9)

    def test_oversub_penalty_reduces_aggregate(self):
        kind = make_kind(oversub_penalty=0.05, ramp_n=100.0)
        assert kind.pe_rate(1000, 1) == pytest.approx(1.0e9)
        assert kind.pe_rate(1000, 2) == pytest.approx(1.0e9 / 1.05)

    def test_pe_rate_is_m_times_process_rate(self):
        kind = make_kind()
        for m in (1, 2, 3, 6):
            assert kind.pe_rate(3000, m) == pytest.approx(
                m * kind.process_rate(3000, m)
            )

    def test_invalid_process_count_rejected(self):
        kind = make_kind()
        with pytest.raises(ClusterError):
            kind.process_rate(1000, 0)
        with pytest.raises(ClusterError):
            kind.step_overhead(0)

    def test_step_overhead_grows_with_co_residency(self):
        kind = make_kind(ctx_switch_s=2e-3, panel_overhead_s=1e-3)
        assert kind.step_overhead(1) == pytest.approx(1e-3)
        assert kind.step_overhead(3) == pytest.approx(1e-3 + 4e-3)

    def test_mem_copy_rate_unit(self):
        kind = make_kind(mem_copy_gbs=0.5)
        assert kind.mem_copy_rate() == pytest.approx(0.5e9)


class TestScaled:
    def test_scaled_changes_only_rate_and_name(self):
        base = make_kind(peak_gflops=1.0)
        fast = base.scaled("fast", 2.5)
        assert fast.name == "fast"
        assert fast.peak_gflops == pytest.approx(2.5)
        assert fast.ramp_n == base.ramp_n
        assert fast.oversub_penalty == base.oversub_penalty

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ClusterError):
            make_kind().scaled("bad", 0.0)


class TestPresets:
    def test_athlon_is_faster_than_pentium2(self):
        ath, p2 = athlon_1333(), pentium2_400()
        ratio = ath.peak_gflops / p2.peak_gflops
        # the paper says an Athlon 1.33 GHz is ~4-5x a Pentium-II 400 MHz
        assert 4.0 <= ratio <= 5.0

    def test_preset_names(self):
        assert athlon_1333().name == "athlon"
        assert pentium2_400().name == "pentium2"
