"""Golden agreement of the exact search backends on the paper's grid.

The branch-and-bound backend prunes subtrees with model-derived lower
bounds, but it is still an *exact* search: on the paper's 62-candidate
grid, at every evaluation size of every protocol, its winner must be
**bitwise** identical to the exhaustive optimizer's — same configuration
key, same estimate float, ``==`` with no tolerances.  Any drift means
the bound is not a true lower bound (or the tie-break order changed).
"""

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.core.pipeline import EstimationPipeline, PipelineConfig

PROTOCOLS = ("basic", "nl", "ns")


@pytest.fixture(scope="module")
def pipelines():
    spec = kishimoto_cluster()
    return {
        protocol: EstimationPipeline(
            spec, PipelineConfig(protocol=protocol, seed=7)
        )
        for protocol in PROTOCOLS
    }


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestBranchBoundGolden:
    def test_best_bitwise_identical_at_every_size(self, pipelines, protocol):
        pipeline = pipelines[protocol]
        for n in pipeline.plan.evaluation_sizes:
            exhaustive = pipeline.optimize(n)
            bb = pipeline.optimize(n, backend="branch-bound")
            assert bb.best.config.key() == exhaustive.best.config.key(), (
                f"{protocol} winner drifted at N={n}"
            )
            assert bb.best.estimate_s == exhaustive.best.estimate_s, (
                f"{protocol} estimate drifted at N={n}"
            )

    def test_branch_bound_actually_prunes(self, pipelines, protocol):
        pipeline = pipelines[protocol]
        n = pipeline.plan.evaluation_sizes[0]
        exhaustive = pipeline.optimize(n)
        bb = pipeline.optimize(n, backend="branch-bound")
        assert bb.stats.evaluations + bb.stats.pruned_candidates == len(
            exhaustive.ranking
        )
        assert bb.stats.evaluations < len(exhaustive.ranking)

    def test_evaluated_subset_estimates_match_exhaustive(
        self, pipelines, protocol
    ):
        """Every candidate branch-and-bound did evaluate carries the
        identical float the exhaustive ranking assigns it."""
        pipeline = pipelines[protocol]
        n = pipeline.plan.evaluation_sizes[-1]
        exhaustive = pipeline.optimize(n)
        bb = pipeline.optimize(n, backend="branch-bound")
        for entry in bb.ranking:
            assert entry.estimate_s == exhaustive.estimate_for(entry.config)
