"""Persistence format compatibility.

``format1_pipeline/`` is a directory written by the *pre-refactor* code
(manifest ``format: 1``, ``models.json`` with separate ``nt``/``pt``
lists) from an NS seed-7 run.  The current loader must keep reading it —
and the models/adjustment it restores must reproduce the golden seed-7
estimates exactly, because the loaded state *is* the old pipeline's
state.  Unknown (future) manifest formats must be rejected loudly.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.core.persistence import load_pipeline, save_pipeline
from repro.errors import MeasurementError, ModelError

FIXTURE = Path(__file__).parent / "format1_pipeline"
GOLDEN_PATH = Path(__file__).parent / "protocol_estimates_seed7.json"


class TestFormat1Compatibility:
    def test_fixture_is_format_1(self):
        manifest = json.loads((FIXTURE / "manifest.json").read_text())
        assert manifest["format"] == 1

    def test_loads_without_rerunning(self):
        pipeline = load_pipeline(FIXTURE)
        assert pipeline.plan.name == "ns"
        assert pipeline.config.seed == 7
        assert pipeline.store.model_count > 0
        # Loading must not have scheduled any measurement/fit stages.
        assert pipeline.perf.stage_calls("campaign") == 0
        assert pipeline.perf.stage_calls("fit") == 0

    def test_loaded_state_reproduces_golden_estimates(self):
        golden = json.loads(GOLDEN_PATH.read_text())["protocols"]["ns"]
        pipeline = load_pipeline(FIXTURE)
        assert json.loads(json.dumps(pipeline.adjustment.to_dict())) == (
            golden["adjustment"]
        )
        for n_text, expected in golden["sizes"].items():
            outcome = pipeline.optimize(int(n_text))
            got = [
                {
                    "config": list(e.config.as_flat_tuple(pipeline.plan.kinds)),
                    "estimate": e.estimate_s,
                }
                for e in outcome.ranking
            ]
            assert json.loads(json.dumps(got)) == expected


class TestResaveRoundTrip:
    def test_resave_upgrades_to_current_format(self, tmp_path):
        pipeline = load_pipeline(FIXTURE)
        out = save_pipeline(pipeline, tmp_path / "saved", include_evaluation=False)
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["format"] == 3
        # The old-format artifact had no workload tag; resaving records
        # the implicit hpl it loaded as.
        assert manifest["workload"] == "hpl"
        # The model store keeps its own (format-2) flat tagged list.
        models = json.loads((out / "models.json").read_text())
        assert models["format"] == 2
        assert all("type" in m for m in models["models"])
        reloaded = load_pipeline(out)
        assert reloaded.store.fingerprint() == pipeline.store.fingerprint()
        assert reloaded.adjustment.to_dict() == pipeline.adjustment.to_dict()

    def test_old_formats_load_as_implicit_hpl(self):
        pipeline = load_pipeline(FIXTURE)
        assert pipeline.config.workload == "hpl"
        assert pipeline.workload.tag == "hpl"


class TestFormatRejection:
    def test_unknown_manifest_format_is_model_error(self, tmp_path):
        bad = tmp_path / "future"
        shutil.copytree(FIXTURE, bad)
        manifest = json.loads((bad / "manifest.json").read_text())
        manifest["format"] = 99
        (bad / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ModelError, match="unknown pipeline format 99"):
            load_pipeline(bad)

    def test_missing_manifest_is_measurement_error(self, tmp_path):
        with pytest.raises(MeasurementError, match="not a saved pipeline"):
            load_pipeline(tmp_path)

    def test_unknown_workload_tag_is_model_error_naming_the_path(self, tmp_path):
        bad = tmp_path / "alien"
        shutil.copytree(FIXTURE, bad)
        manifest = json.loads((bad / "manifest.json").read_text())
        manifest["format"] = 3
        manifest["workload"] = "summa"
        (bad / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ModelError, match="unknown workload 'summa'") as err:
            load_pipeline(bad)
        # The error names both the known tags and the offending manifest.
        assert "hpl" in str(err.value)
        assert str(bad / "manifest.json") in str(err.value)
