"""Golden tests: the refactored pipeline must be *bitwise* identical.

``protocol_estimates_seed7.json`` was captured from the pre-refactor code
(one lazily-memoizing ``EstimationPipeline`` class, concrete-class model
dispatch) by ``tools``-style capture of seeded basic/nl/ns runs: every
fitted/composed model's coefficients, the calibrated adjustment, and the
full optimizer ranking (configuration order *and* exact estimate floats)
at every evaluation size.  These tests replay the same runs on the
current code and compare with ``==`` — no tolerances.  Any drift means
the model-API/stage-graph refactor changed behavior, which it must not.
"""

import json
from pathlib import Path

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.core.pipeline import EstimationPipeline, PipelineConfig

GOLDEN_PATH = Path(__file__).parent / "protocol_estimates_seed7.json"


def _round_trip(value):
    """Normalize tuples/ints exactly as the golden JSON encoding did
    (floats survive JSON round-trips exactly, so ``==`` stays bitwise)."""
    return json.loads(json.dumps(value))


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def pipelines(golden):
    spec = kishimoto_cluster()
    return {
        protocol: EstimationPipeline(
            spec, PipelineConfig(protocol=protocol, seed=golden["seed"])
        )
        for protocol in golden["protocols"]
    }


@pytest.mark.parametrize("protocol", ["basic", "nl", "ns"])
class TestGoldenProtocols:
    def test_models_bitwise_identical(self, golden, pipelines, protocol):
        expected = golden["protocols"][protocol]["models"]
        pipeline = pipelines[protocol]
        nt = {
            f"{kind}|{p}|{mi}": _round_trip(model.to_dict())
            for (kind, p, mi), model in sorted(pipeline.store.nt.items())
        }
        pt = {
            f"{kind}|{mi}": _round_trip(model.to_dict())
            for (kind, mi), model in sorted(pipeline.store.pt.items())
        }
        assert nt == expected["nt"]
        assert pt == expected["pt"]

    def test_adjustment_bitwise_identical(self, golden, pipelines, protocol):
        expected = golden["protocols"][protocol]["adjustment"]
        assert _round_trip(pipelines[protocol].adjustment.to_dict()) == expected

    def test_rankings_bitwise_identical(self, golden, pipelines, protocol):
        expected = golden["protocols"][protocol]["sizes"]
        pipeline = pipelines[protocol]
        for n in pipeline.plan.evaluation_sizes:
            outcome = pipeline.optimize(n)
            got = [
                {
                    "config": list(entry.config.as_flat_tuple(pipeline.plan.kinds)),
                    "estimate": entry.estimate_s,
                }
                for entry in outcome.ranking
            ]
            assert _round_trip(got) == expected[str(n)], (
                f"{protocol} ranking drifted at N={n}"
            )
