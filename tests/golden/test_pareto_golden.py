"""Golden Pareto frontiers on the paper's cluster with the published card.

The acceptance contract of the cost subsystem: at every evaluation size
of every protocol, (1) each frontier point is non-dominated against the
*entire* candidate grid (not just its frontier peers), and (2) the
frontier's minimum-time endpoint is **bitwise** the exhaustive
optimizer's winner — same configuration key, same float, ``==`` with no
tolerances.  The frontier engine may prune; it may never drift.
"""

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.cost.evaluate import config_dollar_rate
from repro.cost.pareto import dominates
from repro.cost.presets import kishimoto_rate_card

PROTOCOLS = ("basic", "nl", "ns")


@pytest.fixture(scope="module")
def pipelines():
    spec = kishimoto_cluster().with_cost(kishimoto_rate_card())
    return {
        protocol: EstimationPipeline(
            spec, PipelineConfig(protocol=protocol, seed=7)
        )
        for protocol in PROTOCOLS
    }


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestParetoGolden:
    def test_min_time_endpoint_bitwise_equals_exhaustive_winner(
        self, pipelines, protocol
    ):
        """The endpoint's *time* is bitwise the exhaustive winner's
        estimate at every size.  The configuration matches too, except
        when the exhaustive key-tie-break winner is itself dominated (an
        exact time tie against a strictly cheaper configuration — the
        frontier must keep the cheaper one); then the endpoint carries
        the identical float and costs no more."""
        model = pipelines[protocol].cost_model
        pipeline = pipelines[protocol]
        for n in pipeline.plan.evaluation_sizes:
            exhaustive = pipeline.optimize(n)  # default: exhaustive
            frontier = pipeline.pareto(n)
            endpoint = frontier.min_time
            assert endpoint.time_s == exhaustive.best.estimate_s, (
                f"{protocol} min-time estimate drifted at N={n}"
            )
            if endpoint.config.key() != exhaustive.best.config.key():
                # Only an exact time tie may substitute the winner, and
                # only for a strictly cheaper configuration.
                assert exhaustive.estimate_for(endpoint.config) == (
                    exhaustive.best.estimate_s
                ), f"{protocol} endpoint is not time-tied at N={n}"
                winner_dollars = exhaustive.best.estimate_s * (
                    config_dollar_rate(model, exhaustive.best.config)
                )
                assert endpoint.dollars < winner_dollars, (
                    f"{protocol} endpoint substitution not cheaper at N={n}"
                )

    def test_every_point_non_dominated_against_full_grid(
        self, pipelines, protocol
    ):
        pipeline = pipelines[protocol]
        model = pipeline.cost_model
        n = pipeline.plan.evaluation_sizes[-1]
        exhaustive = pipeline.optimize(n)
        grid = [
            (entry.estimate_s,
             entry.estimate_s * config_dollar_rate(model, entry.config))
            for entry in exhaustive.ranking
        ]
        frontier = pipeline.pareto(n)
        for point in frontier.points:
            for objectives in grid:
                assert not dominates(
                    objectives, (point.time_s, point.dollars)
                ), (
                    f"{protocol} frontier point {point.config.label()} "
                    f"dominated at N={n}"
                )

    def test_frontier_points_sorted_and_mutually_non_dominated(
        self, pipelines, protocol
    ):
        pipeline = pipelines[protocol]
        n = pipeline.plan.evaluation_sizes[0]
        frontier = pipeline.pareto(n)
        times = [p.time_s for p in frontier.points]
        dollars = [p.dollars for p in frontier.points]
        assert times == sorted(times)
        assert dollars == sorted(dollars, reverse=True)
        for p in frontier.points:
            for q in frontier.points:
                assert not dominates(p.objectives(), q.objectives())
