"""Tests for deterministic RNG streams and unit helpers."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro import units


class TestStreams:
    def test_same_keys_same_stream(self):
        a = rng_mod.stream(42, "campaign", ("cfg", 1), 800)
        b = rng_mod.stream(42, "campaign", ("cfg", 1), 800)
        assert np.array_equal(a.random(16), b.random(16))

    def test_different_keys_different_streams(self):
        a = rng_mod.stream(42, "campaign", 800).random(8)
        b = rng_mod.stream(42, "campaign", 801).random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = rng_mod.stream(1, "x").random(8)
        b = rng_mod.stream(2, "x").random(8)
        assert not np.array_equal(a, b)

    def test_key_separator_prevents_concatenation_collisions(self):
        a = rng_mod.stream(0, "ab", "c").random(4)
        b = rng_mod.stream(0, "a", "bc").random(4)
        assert not np.array_equal(a, b)

    def test_stable_across_processes(self):
        """The stream derivation must not depend on Python's salted hash():
        the first draw for a fixed key is a constant."""
        value = rng_mod.stream(123, "golden").random()
        again = rng_mod.stream(123, "golden").random()
        assert value == again

    def test_spawn_seed_deterministic(self):
        assert rng_mod.spawn_seed(5, "a") == rng_mod.spawn_seed(5, "a")
        assert rng_mod.spawn_seed(5, "a") != rng_mod.spawn_seed(5, "b")


class TestUnits:
    def test_gflops(self):
        assert units.gflops(2e9, 2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            units.gflops(1.0, -1.0)

    def test_to_gbps(self):
        assert units.to_gbps(125_000_000) == pytest.approx(1.0)

    def test_matrix_bytes(self):
        assert units.matrix_bytes(1000) == 8_000_000
        with pytest.raises(ValueError):
            units.matrix_bytes(-1)

    def test_pretty_bytes(self):
        assert units.pretty_bytes(512) == "512.0 B"
        assert units.pretty_bytes(768 * units.MB) == "768.0 MB"
        assert units.pretty_bytes(3 * units.GB) == "3.0 GB"

    def test_pretty_seconds_bands(self):
        assert "us" in units.pretty_seconds(5e-6)
        assert "ms" in units.pretty_seconds(0.005)
        assert units.pretty_seconds(3.21) == "3.2 s"
        assert units.pretty_seconds(125) == "2m 05.0s"
        assert units.pretty_seconds(3 * units.HOUR + 120) == "3h 02m"
        assert units.pretty_seconds(-3.0).startswith("-")

    def test_network_constants(self):
        # vendors quote bits; we store bytes
        assert 100 * units.MBPS_IN_BYTES == pytest.approx(12.5e6)
        assert units.GBPS_IN_BYTES == pytest.approx(125e6)
