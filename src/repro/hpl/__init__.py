"""HPL substrate: the benchmark the paper models, rebuilt for simulation.

Two complementary implementations live here:

* a **numeric** blocked LU factorization with partial pivoting
  (:mod:`repro.hpl.lu`) that actually factors matrices — used to validate
  the algorithm structure, pivoting and the flop-count formulas against
  real linear algebra (HPL's own residual check included);
* a **performance** simulator (:mod:`repro.hpl.schedule`) that walks the
  identical panel-by-panel schedule over a placed process set and accrues
  the per-process phase times HPL's ``-DHPL_DETAILED_TIMING`` reports:
  ``pfact``, ``mxswp``, ``bcast``, ``laswp``, ``update``, ``uptrsv``.

:mod:`repro.hpl.driver` is the user-facing entry point: run HPL of order
``N`` on a cluster configuration and get wall time, Gflops and the timing
breakdown that the estimation models consume.
"""

from repro.hpl.driver import HPLParameters, HPLResult, run_hpl
from repro.hpl.lu import blocked_lu, hpl_residual_check, lu_solve
from repro.hpl.timing import PhaseTimes, ProcessTiming

__all__ = [
    "HPLParameters",
    "HPLResult",
    "PhaseTimes",
    "ProcessTiming",
    "blocked_lu",
    "hpl_residual_check",
    "lu_solve",
    "run_hpl",
]
