"""One-dimensional block-cyclic distribution arithmetic.

HPL distributes the matrix over a ``1 x P`` process grid in the paper's
experiments: *columns* are dealt out in blocks of ``nb``, block ``j`` going
to process ``j mod P``.  Everything the schedule simulator needs reduces to
counting — how many columns a process owns, how many of them lie to the
right of the current panel — and those counts follow ScaLAPACK's ``NUMROC``
convention, reimplemented and property-tested here.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SimulationError


def _check(n: int, nb: int, nprocs: int) -> None:
    if n < 0:
        raise SimulationError(f"matrix extent must be >= 0, got {n}")
    if nb < 1:
        raise SimulationError(f"block size must be >= 1, got {nb}")
    if nprocs < 1:
        raise SimulationError(f"process count must be >= 1, got {nprocs}")


def numroc(n: int, nb: int, iproc: int, nprocs: int, srcproc: int = 0) -> int:
    """Number of rows/columns of a distributed dimension owned by ``iproc``.

    Mirrors ScaLAPACK's ``NUMROC`` with ``isrcproc = srcproc``.
    """
    _check(n, nb, nprocs)
    if not (0 <= iproc < nprocs):
        raise SimulationError(f"iproc {iproc} out of range for {nprocs} processes")
    mydist = (nprocs + iproc - srcproc) % nprocs
    nblocks = n // nb
    count = (nblocks // nprocs) * nb
    extra = nblocks % nprocs
    if mydist < extra:
        count += nb
    elif mydist == extra:
        count += n % nb
    return count


def block_owner(jblock: int, nprocs: int, srcproc: int = 0) -> int:
    """Process owning global block index ``jblock``."""
    if jblock < 0:
        raise SimulationError(f"block index must be >= 0, got {jblock}")
    if nprocs < 1:
        raise SimulationError(f"process count must be >= 1, got {nprocs}")
    return (jblock + srcproc) % nprocs


def column_owner(j: int, nb: int, nprocs: int, srcproc: int = 0) -> int:
    """Process owning global column ``j``."""
    if j < 0:
        raise SimulationError(f"column index must be >= 0, got {j}")
    if nb < 1:
        raise SimulationError(f"block size must be >= 1, got {nb}")
    return block_owner(j // nb, nprocs, srcproc)


def global_to_local(j: int, nb: int, nprocs: int) -> Tuple[int, int]:
    """Map global column ``j`` to ``(owner, local column index)``."""
    owner = column_owner(j, nb, nprocs)
    block = j // nb
    local_block = block // nprocs
    return owner, local_block * nb + (j % nb)


def local_to_global(local_j: int, iproc: int, nb: int, nprocs: int) -> int:
    """Inverse of :func:`global_to_local` for process ``iproc``."""
    if local_j < 0:
        raise SimulationError(f"local index must be >= 0, got {local_j}")
    local_block = local_j // nb
    global_block = local_block * nprocs + iproc
    return global_block * nb + (local_j % nb)


def columns_after(
    j0: int, n: int, nb: int, nprocs: int
) -> np.ndarray:
    """Columns each process owns in the trailing submatrix ``[j0, n)``.

    Vectorized over processes: returns an integer array of length
    ``nprocs``.  This is the quantity that sets each process's share of the
    ``update`` work at the panel step starting at global column ``j0``.
    """
    _check(n, nb, nprocs)
    if j0 < 0 or j0 > n:
        raise SimulationError(f"j0 must be in [0, {n}], got {j0}")
    total = np.empty(nprocs, dtype=np.int64)
    head = np.empty(nprocs, dtype=np.int64)
    for p in range(nprocs):
        total[p] = numroc(n, nb, p, nprocs)
        head[p] = numroc(j0, nb, p, nprocs)
    return total - head


def panel_rows(n: int, j0: int) -> int:
    """Rows of the panel factored at global column ``j0`` (trailing height)."""
    if j0 < 0 or j0 > n:
        raise SimulationError(f"j0 must be in [0, {n}], got {j0}")
    return n - j0


def step_starts(n: int, nb: int) -> np.ndarray:
    """Global column index at which each panel step begins."""
    _check(n, nb, 1)
    return np.arange(0, n, nb, dtype=np.int64)
