"""Memory-footprint model and the paging penalty.

HPL stores ``N^2`` doubles spread over the ``P`` processes (plus panel
workspace); a node hosting ``k`` processes therefore needs roughly
``k/P * N^2 * 8`` bytes.  When that exceeds the node's usable RAM the OS
pages, and throughput falls off a cliff — the paper's Figure 3(a) shows the
single 768 MB Athlon collapsing at N = 10000 (an 800 MB matrix), while five
Pentium-II nodes hold the same matrix comfortably.

Section 3.4 of the paper points out that because the requirement is
predictable from ``N`` and ``P``, the *model* can bin on it.  The binning
support in :mod:`repro.core.binning` consumes :func:`memory_ratio` for
exactly that purpose.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.cluster.placement import ProcessSlot
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.units import DOUBLE


def process_bytes(n: int, p: int, nb: int = 80) -> float:
    """Bytes one process needs: its matrix share plus panel workspace."""
    if n < 0:
        raise SimulationError(f"negative order {n}")
    if p < 1:
        raise SimulationError(f"process count must be >= 1, got {p}")
    share = float(n) * n * DOUBLE / p
    workspace = float(n) * nb * DOUBLE * 2.0  # current + incoming panel
    return share + workspace


def node_required_bytes(
    n: int, total_processes: int, procs_on_node: int, nb: int = 80
) -> float:
    """Bytes required on one node hosting ``procs_on_node`` processes."""
    return process_bytes(n, total_processes, nb) * procs_on_node


def memory_ratio(
    n: int, total_processes: int, procs_on_node: int, usable_bytes: float, nb: int = 80
) -> float:
    """Required / usable memory on a node; values above 1 mean paging."""
    if usable_bytes <= 0:
        raise SimulationError("usable_bytes must be positive")
    return node_required_bytes(n, total_processes, procs_on_node, nb) / usable_bytes


def paging_slowdown(ratio: float, slope: float = 12.0) -> float:
    """Compute-throughput slowdown factor for a memory-pressure ratio.

    1.0 while the working set fits; grows linearly with the overflow
    fraction after that.  ``slope = 12`` calibrates the Athlon's drop from
    ~1.1 to ~0.5 Gflops at N = 10000 (ratio ~1.10).
    """
    if ratio < 0:
        raise SimulationError(f"negative memory ratio {ratio}")
    if slope < 0:
        raise SimulationError(f"negative paging slope {slope}")
    if ratio <= 1.0:
        return 1.0
    return 1.0 + slope * (ratio - 1.0)


def config_memory_ratio(
    spec: "object",
    config: "object",
    n: int,
    kind_name: str,
    nb: int = 80,
    footprint: float = 1.0,
) -> float:
    """Worst-node memory pressure of one kind under a run configuration.

    ``footprint`` scales the per-process working set for applications that
    keep more data resident than HPL's single matrix (SUMMA holds three:
    ``footprint = 3``).  Returns 0.0 for kinds that do not participate.

    This is the quantity the paper's Section 3.4 calls "predetermined from
    N and P": it gates memory binning without running anything.
    """
    alloc = config.allocation(kind_name)
    nodes = spec.nodes_of_kind(kind_name)
    if alloc.pe_count == 0 or not nodes:
        return 0.0
    if footprint <= 0:
        raise SimulationError("footprint must be positive")
    effective_n = int(round(n * footprint**0.5))
    worst = 0.0
    remaining = alloc.pe_count
    for node in nodes:
        used_cpus = min(node.cpus, remaining)
        if used_cpus <= 0:
            break
        remaining -= used_cpus
        procs_on_node = used_cpus * alloc.procs_per_pe
        worst = max(
            worst,
            memory_ratio(
                effective_n,
                config.total_processes,
                procs_on_node,
                node.usable_memory_bytes,
                nb,
            ),
        )
    return worst


def node_slowdowns(
    spec: ClusterSpec,
    slots: Sequence[ProcessSlot],
    n: int,
    nb: int = 80,
    slope: float = 12.0,
) -> np.ndarray:
    """Per-*process* paging slowdown factors for a placement.

    Processes on the same node share its memory pressure; the returned
    array is indexed by rank.
    """
    total = len(slots)
    if total == 0:
        raise SimulationError("empty placement")
    per_node: Dict[int, int] = {}
    for slot in slots:
        per_node[slot.node_index] = per_node.get(slot.node_index, 0) + 1
    node_factor: Dict[int, float] = {}
    for node_index, count in per_node.items():
        node = spec.nodes[node_index]
        ratio = memory_ratio(n, total, count, node.usable_memory_bytes, nb)
        node_factor[node_index] = paging_slowdown(ratio, slope)
    return np.array([node_factor[s.node_index] for s in slots], dtype=float)
