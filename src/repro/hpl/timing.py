"""Detailed timing records, mirroring ``-DHPL_DETAILED_TIMING``.

The paper's Figure 4 decomposes HPL's wall time into items; the model then
groups them (Section 3.2)::

    Ta = (rfact - mxswp) + (update - laswp) + uptrsv     # computation
    Tc = mxswp + laswp + bcast                           # communication

In our records ``pfact`` already *excludes* ``mxswp`` (they are separate
fields; the paper's ``rfact = pfact + mxswp``) and ``update`` *excludes*
``laswp``, so the groupings reduce to sums of disjoint fields — the
identity ``total == ta + tc`` holds exactly and is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Mapping

import numpy as np

from repro.errors import SimulationError

PHASE_NAMES = ("pfact", "mxswp", "bcast", "update", "laswp", "uptrsv")

#: Phases the paper counts as computation and as communication.
COMPUTE_PHASES = ("pfact", "update", "uptrsv")
COMM_PHASES = ("mxswp", "bcast", "laswp")


@dataclass(frozen=True)
class PhaseTimes:
    """Seconds spent in each HPL phase by one process (or an aggregate)."""

    pfact: float = 0.0
    mxswp: float = 0.0
    bcast: float = 0.0
    update: float = 0.0
    laswp: float = 0.0
    uptrsv: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not np.isfinite(value) or value < 0:
                raise SimulationError(f"phase {f.name} has invalid time {value!r}")

    # -- paper groupings -------------------------------------------------------

    @property
    def rfact(self) -> float:
        """Recursive panel factorization incl. pivot communication
        (the paper's ``rfact = pfact + mxswp``)."""
        return self.pfact + self.mxswp

    @property
    def ta(self) -> float:
        """Computation time per the paper's grouping."""
        return self.pfact + self.update + self.uptrsv

    @property
    def tc(self) -> float:
        """Communication time per the paper's grouping."""
        return self.mxswp + self.laswp + self.bcast

    @property
    def total(self) -> float:
        return self.ta + self.tc

    # -- algebra ------------------------------------------------------------------

    def __add__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(
            **{name: getattr(self, name) + getattr(other, name) for name in PHASE_NAMES}
        )

    def scaled(self, factor: float) -> "PhaseTimes":
        if factor < 0:
            raise SimulationError(f"negative scale factor {factor}")
        return PhaseTimes(
            **{name: getattr(self, name) * factor for name in PHASE_NAMES}
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in PHASE_NAMES}

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "PhaseTimes":
        unknown = set(data) - set(PHASE_NAMES)
        if unknown:
            raise SimulationError(f"unknown phases: {sorted(unknown)}")
        return cls(**{name: float(data.get(name, 0.0)) for name in PHASE_NAMES})

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray], index: int) -> "PhaseTimes":
        """Extract process ``index`` from per-phase arrays (simulator output)."""
        return cls(**{name: float(arrays[name][index]) for name in PHASE_NAMES})


@dataclass(frozen=True)
class ProcessTiming:
    """Phase times of one placed process."""

    rank: int
    kind_name: str
    phases: PhaseTimes

    @property
    def ta(self) -> float:
        return self.phases.ta

    @property
    def tc(self) -> float:
        return self.phases.tc

    @property
    def total(self) -> float:
        return self.phases.total


def aggregate_mean(timings: Iterable[PhaseTimes]) -> PhaseTimes:
    """Field-wise mean of several phase records (model-construction view:
    processes of a kind behave statistically identically)."""
    items: List[PhaseTimes] = list(timings)
    if not items:
        raise SimulationError("cannot aggregate zero timings")
    acc = items[0]
    for item in items[1:]:
        acc = acc + item
    return acc.scaled(1.0 / len(items))


def aggregate_max_total(timings: Iterable[PhaseTimes]) -> PhaseTimes:
    """The record with the largest total (the bottleneck process)."""
    items = list(timings)
    if not items:
        raise SimulationError("cannot aggregate zero timings")
    return max(items, key=lambda t: t.total)
