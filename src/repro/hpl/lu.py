"""Numeric blocked LU factorization with partial pivoting.

This is a working implementation of the algorithm HPL times: right-looking
blocked LU with partial pivoting, panel by panel, exactly the schedule the
performance simulator walks.  It exists to pin the reproduction to real
linear algebra:

* tests verify ``P A = L U`` to machine precision and compare against
  :func:`scipy.linalg.lu_factor`;
* the optional flop counter validates the closed forms of
  :mod:`repro.hpl.workload` phase by phase;
* :func:`hpl_residual_check` reproduces HPL's pass/fail criterion
  ``||Ax - b||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * N) < threshold``.

The implementation is vectorized NumPy (rank-``nb`` GEMM updates), fast
enough for the validation sizes used in tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.hpl import workload


@dataclass
class FlopCounter:
    """Per-phase flop tally, filled when passed to :func:`blocked_lu`."""

    phases: Dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, flops: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + flops

    @property
    def total(self) -> float:
        return sum(self.phases.values())


def _panel_factor(
    a: np.ndarray, piv: np.ndarray, j0: int, nb: int, counter: Optional[FlopCounter]
) -> None:
    """Factor the panel ``a[j0:, j0:j0+nb]`` in place with partial pivoting.

    Row swaps are applied across the *full* width of ``a`` (simplest correct
    choice; HPL defers the trailing part to ``laswp`` but the arithmetic is
    identical).
    """
    n = a.shape[0]
    jend = min(j0 + nb, n)
    for j in range(j0, jend):
        # pivot search in column j below the diagonal
        col = a[j:, j]
        p = j + int(np.argmax(np.abs(col)))
        piv[j] = p
        if p != j:
            a[[j, p], :] = a[[p, j], :]
        pivot = a[j, j]
        if pivot == 0.0:
            raise SimulationError(f"singular matrix: zero pivot at column {j}")
        if j + 1 < n:
            a[j + 1 :, j] /= pivot
            if counter is not None:
                counter.add("pfact", float(n - j - 1))
            if j + 1 < jend:
                # rank-1 update restricted to the panel
                a[j + 1 :, j + 1 : jend] -= np.outer(
                    a[j + 1 :, j], a[j, j + 1 : jend]
                )
                if counter is not None:
                    counter.add("pfact", 2.0 * (n - j - 1) * (jend - j - 1))


def blocked_lu(
    a: np.ndarray,
    nb: int = 64,
    counter: Optional[FlopCounter] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Factor ``a`` in place: right-looking blocked LU with partial pivoting.

    Returns ``(lu, piv)`` where ``lu`` holds ``L`` strictly below the
    diagonal (unit diagonal implied) and ``U`` on and above it, and
    ``piv[j]`` is the row swapped with row ``j`` at step ``j`` (LAPACK
    ``getrf`` convention, 0-based).
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise SimulationError(f"need a square matrix, got shape {a.shape}")
    if a.dtype != np.float64:
        raise SimulationError(f"need float64, got {a.dtype}")
    if nb < 1:
        raise SimulationError(f"block size must be >= 1, got {nb}")
    n = a.shape[0]
    piv = np.arange(n)
    for j0 in range(0, n, nb):
        jend = min(j0 + nb, n)
        width = jend - j0
        _panel_factor(a, piv, j0, nb, counter)
        if jend < n:
            # U12 = L11^{-1} A12  (unit lower triangular solve)
            l11 = a[j0:jend, j0:jend]
            a12 = a[j0:jend, jend:]
            for i in range(1, width):
                a12[i, :] -= l11[i, :i] @ a12[:i, :]
            if counter is not None:
                counter.add("update", workload.trsm_flops(width, n - jend))
            # A22 -= L21 @ U12
            a[jend:, jend:] -= a[jend:, j0:jend] @ a12
            if counter is not None:
                counter.add(
                    "update", workload.gemm_flops(n - jend, width, n - jend)
                )
    return a, piv


def apply_pivots(b: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Apply the row interchanges recorded in ``piv`` to ``b`` (forward order)."""
    out = b.copy()
    for j, p in enumerate(piv):
        if p != j:
            out[[j, p]] = out[[p, j]]
    return out


def lu_solve(
    lu: np.ndarray, piv: np.ndarray, b: np.ndarray, counter: Optional[FlopCounter] = None
) -> np.ndarray:
    """Solve ``A x = b`` given the output of :func:`blocked_lu`."""
    n = lu.shape[0]
    if b.shape[0] != n:
        raise SimulationError(f"rhs length {b.shape[0]} != order {n}")
    x = apply_pivots(np.asarray(b, dtype=np.float64), piv)
    # forward substitution with unit lower triangle
    for i in range(1, n):
        x[i] -= lu[i, :i] @ x[:i]
    # backward substitution with upper triangle
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[i] -= lu[i, i + 1 :] @ x[i + 1 :]
        x[i] /= lu[i, i]
    if counter is not None:
        counter.add("uptrsv", workload.solve_flops(n))
    return x


def reconstruct(lu: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Rebuild the (row-permuted) original matrix ``P A = L U``; tests use
    this to verify the factorization exactly."""
    n = lu.shape[0]
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    return lower @ upper


def permutation_vector(piv: np.ndarray) -> np.ndarray:
    """Convert LAPACK-style swap records to the permutation ``perm`` with
    ``(P A)[i] = A[perm[i]]``."""
    n = piv.shape[0]
    perm = np.arange(n)
    for j, p in enumerate(piv):
        if p != j:
            perm[[j, p]] = perm[[p, j]]
    return perm


def hpl_residual_check(
    a: np.ndarray, x: np.ndarray, b: np.ndarray, threshold: float = 16.0
) -> Tuple[float, bool]:
    """HPL's scaled residual: returns ``(value, passed)``.

    ``value = ||Ax - b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * N)``
    and the run *passes* when ``value < threshold`` (HPL default 16).
    """
    n = a.shape[0]
    if n == 0:
        raise SimulationError("empty system")
    r = a @ x - b
    eps = np.finfo(np.float64).eps
    denom = eps * (
        np.linalg.norm(a, np.inf) * np.linalg.norm(x, np.inf)
        + np.linalg.norm(b, np.inf)
    ) * n
    value = float(np.linalg.norm(r, np.inf) / denom)
    return value, value < threshold


def hpl_reference_run(
    n: int, nb: int = 64, seed: int = 0
) -> Tuple[float, bool, FlopCounter]:
    """Generate a random system, factor, solve and residual-check it —
    the full numeric path of one HPL run.  Returns
    ``(residual, passed, flop counter)``."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    counter = FlopCounter()
    lu, piv = blocked_lu(a.copy(), nb=nb, counter=counter)
    x = lu_solve(lu, piv, b, counter=counter)
    residual, passed = hpl_residual_check(a, x, b)
    return residual, passed, counter
