"""A functional distributed LU over the simulated message-passing layer.

This is the missing link between the two HPL implementations:

* :mod:`repro.hpl.lu` factors matrices *serially*;
* :mod:`repro.hpl.schedule` *prices* the distributed schedule without
  touching data.

Here the factorization actually runs distributed: ``P`` generator
processes each own the columns a 1-by-P block-cyclic distribution assigns
them, panels are factored by their owner, broadcast along the increasing
ring via :class:`~repro.simnet.api.SimComm`, pivots are applied locally
(``laswp``), and trailing updates happen on local data only.  The result
is bit-identical to the serial factorization (tested), every rank's
message count matches the closed-form schedule the performance walker
assumes (tested), and the virtual clock yields a message-level execution
time for small problems.

This module favours clarity over speed — it exists to *validate* the
schedule, not to run N = 9600 (the per-element work is NumPy, but the
panel loop round-trips through the event engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.hpl.blockcyclic import global_to_local, numroc
from repro.simnet.api import SimComm, SimCommWorld
from repro.simnet.transport import Transport


@dataclass
class DistributedLUResult:
    """Outcome of one distributed factorization."""

    n: int
    nb: int
    size: int
    lu: np.ndarray  # reassembled global LU factors
    piv: np.ndarray  # LAPACK-style swap vector
    finish_times: Dict[int, float]  # per-rank virtual finish time
    messages_sent: Dict[int, int]  # per-rank point-to-point sends

    @property
    def virtual_time(self) -> float:
        return max(self.finish_times.values())


class _RankState:
    """Local data of one rank: its block-cyclic column slice."""

    def __init__(self, a: np.ndarray, rank: int, nb: int, size: int):
        n = a.shape[0]
        self.rank = rank
        self.nb = nb
        self.size = size
        self.n = n
        local_cols = numroc(n, nb, rank, size)
        self.local = np.empty((n, local_cols), dtype=np.float64)
        self.global_cols: List[int] = []
        for j in range(n):
            owner, local_j = global_to_local(j, nb, size)
            if owner == rank:
                self.local[:, local_j] = a[:, j]
                self.global_cols.append(j)
        self.piv_records: List[Tuple[int, int]] = []  # (j, pivot row)
        self.sends = 0

    def local_index(self, j: int) -> int:
        owner, local_j = global_to_local(j, self.nb, self.size)
        if owner != self.rank:
            raise SimulationError(f"rank {self.rank} does not own column {j}")
        return local_j


def _factor_panel(
    state: _RankState, j0: int, width: int
) -> Tuple[np.ndarray, List[int]]:
    """Factor the local panel columns [j0, j0+width); returns the factored
    panel (full height, for broadcast) and the pivot rows chosen."""
    n = state.n
    pivots: List[int] = []
    local_js = [state.local_index(j) for j in range(j0, j0 + width)]
    for offset, (j, local_j) in enumerate(zip(range(j0, j0 + width), local_js)):
        col = state.local[j:, local_j]
        p = j + int(np.argmax(np.abs(col)))
        pivots.append(p)
        if p != j:
            state.local[[j, p], :] = state.local[[p, j], :]
        pivot = state.local[j, local_j]
        if pivot == 0.0:
            raise SimulationError(f"singular matrix: zero pivot at column {j}")
        if j + 1 < n:
            state.local[j + 1 :, local_j] /= pivot
            for other in local_js[offset + 1 :]:
                state.local[j + 1 :, other] -= (
                    state.local[j + 1 :, local_j] * state.local[j, other]
                )
    panel = state.local[:, local_js[0] : local_js[0] + width].copy()
    return panel, pivots


def _apply_pivots_local(state: _RankState, j0: int, width: int, pivots: List[int]) -> None:
    """laswp: apply the panel's row interchanges to the local columns
    *outside* the panel (the owner already swapped its own full slice)."""
    for j, p in zip(range(j0, j0 + width), pivots):
        if p != j:
            state.local[[j, p], :] = state.local[[p, j], :]


def _update_trailing(
    state: _RankState, j0: int, width: int, panel: np.ndarray
) -> None:
    """TRSM + GEMM on the local columns right of the panel."""
    n = state.n
    jend = j0 + width
    local_trailing = [
        state.local_index(j)
        for j in state.global_cols
        if j >= jend
    ]
    if not local_trailing:
        return
    cols = state.local[:, local_trailing]
    l11 = panel[j0:jend, :]
    # forward substitution with the unit lower triangle of the panel
    for i in range(1, width):
        cols[j0 + i, :] -= l11[i, :i] @ cols[j0 : j0 + i, :]
    if jend < n:
        cols[jend:, :] -= panel[jend:, :] @ cols[j0:jend, :]
    state.local[:, local_trailing] = cols


def distributed_lu(
    spec: ClusterSpec,
    config: ClusterConfig,
    a: np.ndarray,
    nb: int = 8,
) -> DistributedLUResult:
    """Factor ``a`` with ``config``'s processes over the event engine.

    Returns the reassembled LU factors (equal to
    :func:`repro.hpl.lu.blocked_lu`'s up to floating-point round-off — the
    per-element arithmetic matches; only BLAS accumulation order differs),
    the pivot vector, per-rank virtual finish times and message counts.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise SimulationError(f"need a square matrix, got {a.shape}")
    n = a.shape[0]
    slots = place_processes(spec, config)
    size = len(slots)
    world = SimCommWorld(Transport(spec, slots))

    states = [_RankState(a, rank, nb, size) for rank in range(size)]
    piv = np.arange(n)

    def program(comm: SimComm) -> Generator:
        state = states[comm.rank]
        for k, j0 in enumerate(range(0, n, nb)):
            width = min(nb, n - j0)
            owner = k % size
            nbytes = float((n - j0) * width * 8 + width * 4)
            if comm.rank == owner:
                panel, pivots = _factor_panel(state, j0, width)
                payload = (panel, pivots)
                if size > 1:
                    yield from comm.bcast_ring(owner, nbytes, payload, tag=k)
                    state.sends += 1
            else:
                payload = yield from comm.bcast_ring(owner, nbytes, None, tag=k)
                panel, pivots = payload
                if (comm.rank - owner) % size != size - 1:
                    state.sends += 1  # forwarded along the ring
                _apply_pivots_local(state, j0, width, pivots)
            if comm.rank == 0:  # record the swap vector once
                for offset, p in enumerate(pivots):
                    piv[j0 + offset] = p
            _update_trailing(state, j0, width, panel)

    finish = world.run(program)

    # Reassemble the global factors from the local slices.
    lu = np.empty_like(a)
    for state in states:
        for j in state.global_cols:
            lu[:, j] = state.local[:, state.local_index(j)]

    return DistributedLUResult(
        n=n,
        nb=nb,
        size=size,
        lu=lu,
        piv=piv,
        finish_times=finish,
        messages_sent={rank: states[rank].sends for rank in range(size)},
    )


def expected_ring_messages(n: int, nb: int, size: int) -> Dict[int, int]:
    """Closed-form per-rank send counts of the panel broadcasts — what the
    performance walker implicitly assumes.

    Per step, the owner sends once and every non-owner except the last in
    the ring forwards once; a rank therefore sends on every step unless it
    is the step's last ring member.
    """
    if size < 1:
        raise SimulationError("size must be >= 1")
    counts = {rank: 0 for rank in range(size)}
    if size == 1:
        return counts
    steps = (n + nb - 1) // nb
    for k in range(steps):
        owner = k % size
        last = (owner - 1) % size
        for rank in range(size):
            if rank != last:
                counts[rank] += 1
    return counts
