"""Top-level HPL run driver: the simulated ``xhpl`` binary.

:func:`run_hpl` executes one simulated HPL run and returns an
:class:`HPLResult` carrying everything a measurement campaign records:
wall time, the reported Gflops, and the per-process / per-kind detailed
timing breakdown that the estimation models are fitted to.

Noise injection lives here (not in the schedule walker) so that a single
``(seed, config, N, trial)`` tuple reproducibly determines a measurement —
the property the model-fitting layer and all tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.hpl.schedule import (
    HPLParameters,
    ScheduleResult,
    simulate_schedule,
    simulate_schedule_batch,
)
from repro.hpl.timing import PhaseTimes, ProcessTiming, aggregate_mean
from repro.hpl.workload import hpl_benchmark_flops
from repro.rng import stream
from repro.units import gflops


@dataclass(frozen=True)
class NoiseSpec:
    """Measurement-noise model: log-normal jitter plus rare outliers.

    ``sigma_compute`` perturbs per-process computation rates and
    ``sigma_comm`` the communication costs; both default to the ~1.5%
    run-to-run variation typical of a dedicated paper-era cluster.

    ``outlier_probability`` injects whole-run slowdowns (a cron job, an
    NFS stall, another user's stray process): with this probability a run
    is uniformly ``outlier_factor`` x slower.  Repeated trials with robust
    aggregation (:mod:`repro.measure.trials`) are the standard defence.
    """

    sigma_compute: float = 0.015
    sigma_comm: float = 0.03
    outlier_probability: float = 0.0
    outlier_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.sigma_compute < 0 or self.sigma_comm < 0:
            raise SimulationError("noise sigmas must be >= 0")
        if not (0.0 <= self.outlier_probability <= 1.0):
            raise SimulationError("outlier_probability must be in [0, 1]")
        if self.outlier_factor < 1.0:
            raise SimulationError("outlier_factor must be >= 1")

    @property
    def enabled(self) -> bool:
        return (
            self.sigma_compute > 0
            or self.sigma_comm > 0
            or self.outlier_probability > 0
        )


@dataclass
class HPLResult:
    """One simulated HPL measurement."""

    spec_name: str
    config: ClusterConfig
    n: int
    schedule: ScheduleResult

    @property
    def wall_time_s(self) -> float:
        return self.schedule.wall_time_s

    @property
    def gflops(self) -> float:
        """The figure HPL prints: benchmark flops over wall time."""
        return gflops(hpl_benchmark_flops(self.n), self.wall_time_s)

    @property
    def total_processes(self) -> int:
        return self.schedule.size

    def process_timings(self) -> List[ProcessTiming]:
        return self.schedule.all_timings()

    def kind_names(self) -> List[str]:
        seen: List[str] = []
        for slot in self.schedule.slots:
            if slot.kind.name not in seen:
                seen.append(slot.kind.name)
        return seen

    def kind_phases(self, kind_name: str) -> PhaseTimes:
        """Mean phase breakdown over the processes of one kind.

        The paper models the per-PE time ``Ti`` of each kind; processes of
        a kind are statistically identical under the paper's assumptions,
        so the mean is the natural per-kind measurement.
        """
        phases = [
            t.phases for t in self.process_timings() if t.kind_name == kind_name
        ]
        if not phases:
            raise SimulationError(
                f"kind {kind_name!r} has no processes in config {self.config.label()}"
            )
        return aggregate_mean(phases)

    def kind_ta(self, kind_name: str) -> float:
        return self.kind_phases(kind_name).ta

    def kind_tc(self, kind_name: str) -> float:
        return self.kind_phases(kind_name).tc

    def bottleneck_kind(self) -> str:
        """Kind whose mean busy time is largest (drives the wall time)."""
        return max(self.kind_names(), key=lambda k: self.kind_phases(k).total)


def run_hpl(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    trial: int = 0,
) -> HPLResult:
    """Run one simulated HPL measurement.

    Parameters
    ----------
    spec, config, n:
        Cluster, run configuration and problem order.
    params:
        HPL build/tuning parameters (block size etc.).
    noise:
        Measurement noise; ``None`` disables it (bit-exact determinism).
    seed, trial:
        Together with the configuration and ``n`` these fully determine
        the noise draw, so campaigns are reproducible and independent
        per measurement.
    """
    compute_noise = comm_noise = None
    if noise is not None and noise.enabled:
        p = config.total_processes
        rng = stream(seed, "hpl-run", config.key(), n, trial)
        compute_noise = np.exp(rng.normal(0.0, noise.sigma_compute, size=p))
        comm_noise = np.exp(rng.normal(0.0, noise.sigma_comm, size=p))
        if noise.outlier_probability > 0 and rng.random() < noise.outlier_probability:
            compute_noise = compute_noise * noise.outlier_factor
            comm_noise = comm_noise * noise.outlier_factor
    schedule = simulate_schedule(
        spec, config, n, params=params, compute_noise=compute_noise, comm_noise=comm_noise
    )
    return HPLResult(spec_name=spec.name, config=config, n=n, schedule=schedule)


def _noise_rows(
    config: ClusterConfig,
    sizes: Sequence[int],
    trials: Sequence[int],
    noise: Optional[NoiseSpec],
    seed: int,
):
    """Per-run noise rows for a batch, drawn exactly as :func:`run_hpl`
    draws them — one independent ``(seed, config, N, trial)`` stream per
    row — so batched results stay bit-identical to per-run ones."""
    if noise is None or not noise.enabled:
        return None, None
    p = config.total_processes
    compute_rows = np.empty((len(sizes), p))
    comm_rows = np.empty((len(sizes), p))
    for i, (n, trial) in enumerate(zip(sizes, trials)):
        rng = stream(seed, "hpl-run", config.key(), n, trial)
        compute = np.exp(rng.normal(0.0, noise.sigma_compute, size=p))
        comm = np.exp(rng.normal(0.0, noise.sigma_comm, size=p))
        if noise.outlier_probability > 0 and rng.random() < noise.outlier_probability:
            compute = compute * noise.outlier_factor
            comm = comm * noise.outlier_factor
        compute_rows[i] = compute
        comm_rows[i] = comm
    return compute_rows, comm_rows


def run_hpl_batch(
    spec: ClusterSpec,
    config: ClusterConfig,
    ns: Sequence[int],
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    trial: Union[int, Sequence[int]] = 0,
) -> List[HPLResult]:
    """Run one configuration at many problem orders in a single batched
    simulation (:func:`~repro.hpl.schedule.simulate_schedule_batch`).

    ``ns`` may repeat sizes; ``trial`` is either one trial index shared by
    every entry or a per-entry sequence (a campaign batches a config's full
    ``sizes x trials`` grid in one call).  Each entry's noise comes from
    the same ``(seed, config, N, trial)`` stream :func:`run_hpl` would use,
    and the batched walker is bitwise-equal to the scalar one, so entry
    ``i`` of the result is bit-identical to
    ``run_hpl(spec, config, ns[i], ..., trial=trial[i])``.
    """
    sizes = [int(n) for n in ns]
    if isinstance(trial, (int, np.integer)):
        trials = [int(trial)] * len(sizes)
    else:
        trials = [int(t) for t in trial]
        if len(trials) != len(sizes):
            raise SimulationError(
                f"{len(sizes)} sizes but {len(trials)} trial indices"
            )
    compute_rows, comm_rows = _noise_rows(config, sizes, trials, noise, seed)
    schedules = simulate_schedule_batch(
        spec,
        config,
        sizes,
        params=params,
        compute_noise=compute_rows,
        comm_noise=comm_rows,
    )
    return [
        HPLResult(spec_name=spec.name, config=config, n=n, schedule=schedule)
        for n, schedule in zip(sizes, schedules)
    ]


def sweep_sizes(
    spec: ClusterSpec,
    config: ClusterConfig,
    sizes,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
) -> Dict[int, HPLResult]:
    """Run one configuration across several problem orders (one batched
    simulation; later duplicates of a size win, as in the dict literal)."""
    results = run_hpl_batch(
        spec, config, [int(n) for n in sizes], params=params, noise=noise, seed=seed
    )
    return {result.n: result for result in results}
