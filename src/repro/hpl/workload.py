"""Operation counts of LU decomposition with partial pivoting.

These closed forms define the *work* the performance simulator converts
into time, and they are validated against the numeric implementation in
tests (FLOP counting instrumentation of :mod:`repro.hpl.lu`).

HPL convention: the benchmark charges ``2/3 N^3 - 1/2 N^2 + ...`` — we use
the standard ``total_lu_flops`` plus ``solve_flops`` for the triangular
solves, and per-phase counts matching the paper's Section 3.2 orders:

* panel factorization (``pfact``): factoring an ``m x nb`` tall panel,
  ``m*nb^2 - nb^3/3`` flops to leading order;
* trailing update (``update``): triangular solve on the ``nb x q`` strip
  plus the rank-``nb`` GEMM on the ``(m-nb) x q`` trailing block,
  ``nb^2*q + 2*(m-nb)*nb*q``;
* backward substitution (``uptrsv``): ``~N^2`` flops total.

Every function accepts scalars or NumPy arrays (broadcasting element-wise)
so the vectorized schedule walker can evaluate a whole panel sweep as one
array program.  All counts are integers well below 2**53, so the closed
forms are *exact* — array results are bitwise identical to the scalar
ones, which is what lets the batched walker's golden tests demand
equality rather than tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def _check_nonneg(value, message: str) -> None:
    """Validation that works for scalars and arrays alike."""
    if np.any(np.asarray(value) < 0):
        raise SimulationError(message)


def total_lu_flops(n) -> float:
    """Flops of LU factorization of an ``n x n`` matrix (exact polynomial).

    ``2/3 n^3 - 1/2 n^2 - 1/6 n`` — the classic Gaussian-elimination count
    with one multiply and one add per inner element and division row scaling.
    """
    _check_nonneg(n, f"negative order {n}")
    n_arr = np.asarray(n, dtype=float)
    # exact value is 0 at n in {0, 1}; clamp the float round-off
    out = np.maximum((2.0 / 3.0) * n_arr**3 - 0.5 * n_arr**2 - (1.0 / 6.0) * n_arr, 0.0)
    return out if out.ndim else float(out)


def solve_flops(n) -> float:
    """Flops of the two triangular solves for one right-hand side."""
    _check_nonneg(n, f"negative order {n}")
    n_arr = np.asarray(n, dtype=float)
    out = 2.0 * n_arr**2
    return out if out.ndim else float(out)


def hpl_benchmark_flops(n) -> float:
    """The flop count HPL divides by to report Gflops
    (``2/3 n^3 + 3/2 n^2``, matrix generation excluded)."""
    _check_nonneg(n, f"negative order {n}")
    n_arr = np.asarray(n, dtype=float)
    out = (2.0 / 3.0) * n_arr**3 + 1.5 * n_arr**2
    return out if out.ndim else float(out)


def pfact_flops(m, nb) -> float:
    """Flops of factoring an ``m x nb`` panel (``m >= nb``), leading order.

    Derived by summing the rank-1 update column by column:
    ``sum_{j=0}^{k-1} 2 (m-1-j)(nb-1-j) + (m-1-j)`` with ``k = min(m, nb)``.
    The sum telescopes to the closed form below (``S1 = k(k-1)/2``,
    ``S2 = (k-1)k(2k-1)/6``); every term is an exact integer in float64, so
    the closed form equals the column-by-column loop bitwise.
    """
    _check_nonneg(m, "panel dimensions must be >= 0")
    _check_nonneg(nb, "panel dimensions must be >= 0")
    m_arr = np.asarray(m, dtype=float)
    nb_arr = np.asarray(nb, dtype=float)
    k = np.minimum(m_arr, nb_arr)
    a = m_arr - 1.0
    b = nb_arr - 1.0
    s1 = k * (k - 1.0) / 2.0
    s2 = (k - 1.0) * k * (2.0 * k - 1.0) / 6.0
    total = k * (2.0 * a * b + a) - (2.0 * a + 2.0 * b + 1.0) * s1 + 2.0 * s2
    out = np.where(k > 0.0, total, 0.0)
    return out if out.ndim else float(out)


def trsm_flops(nb, q) -> float:
    """Flops of the unit-lower triangular solve ``L11^{-1} * U12``
    (``nb x nb`` unit triangle applied to ``nb x q``): each of the ``q``
    columns costs ``sum_{i<nb} 2i = nb (nb - 1)`` flops — exact, so the
    blocked totals telescope to the unblocked LU count (tested against the
    instrumented numeric factorization)."""
    _check_nonneg(nb, "dimensions must be >= 0")
    _check_nonneg(q, "dimensions must be >= 0")
    nb_arr = np.asarray(nb, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    out = np.where(nb_arr > 0.0, nb_arr * (nb_arr - 1.0) * q_arr, 0.0)
    return out if out.ndim else float(out)


def gemm_flops(m, nb, q) -> float:
    """Flops of the trailing rank-``nb`` update ``A22 -= L21 @ U12``
    (``(m) x nb`` times ``nb x q``)."""
    _check_nonneg(m, "dimensions must be >= 0")
    _check_nonneg(nb, "dimensions must be >= 0")
    _check_nonneg(q, "dimensions must be >= 0")
    m_arr = np.asarray(m, dtype=float)
    out = 2.0 * m_arr * np.asarray(nb, dtype=float) * np.asarray(q, dtype=float)
    return out if out.ndim else float(out)


def update_flops(m, nb, q) -> float:
    """Flops a process spends updating ``q`` local trailing columns when the
    panel is ``m x nb`` (``m`` = trailing height including the panel rows)."""
    mm = np.maximum(np.asarray(m, dtype=float) - np.asarray(nb, dtype=float), 0.0)
    out = trsm_flops(nb, q) + gemm_flops(mm, nb, q)
    return out if isinstance(out, np.ndarray) and out.ndim else float(out)


def panel_bytes(m, nb, element_size: int = 8) -> float:
    """Bytes broadcast per panel: the factored ``m x nb`` block plus the
    pivot vector."""
    _check_nonneg(m, "panel dimensions must be >= 0")
    _check_nonneg(nb, "panel dimensions must be >= 0")
    m_arr = np.asarray(m, dtype=float)
    nb_arr = np.asarray(nb, dtype=float)
    out = m_arr * nb_arr * element_size + nb_arr * 4.0
    return out if out.ndim else float(out)


def laswp_bytes(nb, q, element_size: int = 8):
    """Local memory traffic of applying ``nb`` row interchanges across ``q``
    local columns (each swap reads and writes both rows).

    ``nb`` and ``q`` may be scalars or NumPy arrays (per-step panel widths,
    per-process column counts); the result broadcasts accordingly.
    """
    nb_arr = np.asarray(nb, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if np.any(nb_arr < 0) or np.any(q_arr < 0):
        raise SimulationError("dimensions must be >= 0")
    result = 2.0 * nb_arr * q_arr * element_size
    return result if result.ndim else float(result)
