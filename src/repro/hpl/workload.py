"""Operation counts of LU decomposition with partial pivoting.

These closed forms define the *work* the performance simulator converts
into time, and they are validated against the numeric implementation in
tests (FLOP counting instrumentation of :mod:`repro.hpl.lu`).

HPL convention: the benchmark charges ``2/3 N^3 - 1/2 N^2 + ...`` — we use
the standard ``total_lu_flops`` plus ``solve_flops`` for the triangular
solves, and per-phase counts matching the paper's Section 3.2 orders:

* panel factorization (``pfact``): factoring an ``m x nb`` tall panel,
  ``m*nb^2 - nb^3/3`` flops to leading order;
* trailing update (``update``): triangular solve on the ``nb x q`` strip
  plus the rank-``nb`` GEMM on the ``(m-nb) x q`` trailing block,
  ``nb^2*q + 2*(m-nb)*nb*q``;
* backward substitution (``uptrsv``): ``~N^2`` flops total.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def total_lu_flops(n: int) -> float:
    """Flops of LU factorization of an ``n x n`` matrix (exact polynomial).

    ``2/3 n^3 - 1/2 n^2 - 1/6 n`` — the classic Gaussian-elimination count
    with one multiply and one add per inner element and division row scaling.
    """
    if n < 0:
        raise SimulationError(f"negative order {n}")
    # exact value is 0 at n in {0, 1}; clamp the float round-off
    return max((2.0 / 3.0) * n**3 - 0.5 * n**2 - (1.0 / 6.0) * n, 0.0)


def solve_flops(n: int) -> float:
    """Flops of the two triangular solves for one right-hand side."""
    if n < 0:
        raise SimulationError(f"negative order {n}")
    return 2.0 * n**2


def hpl_benchmark_flops(n: int) -> float:
    """The flop count HPL divides by to report Gflops
    (``2/3 n^3 + 3/2 n^2``, matrix generation excluded)."""
    if n < 0:
        raise SimulationError(f"negative order {n}")
    return (2.0 / 3.0) * n**3 + 1.5 * n**2


def pfact_flops(m: int, nb: int) -> float:
    """Flops of factoring an ``m x nb`` panel (``m >= nb``), leading order.

    Derived by summing the rank-1 update column by column:
    ``sum_{j=0}^{nb-1} 2 (m - j)(nb - j - 1) + (m - j)``.
    """
    if m < 0 or nb < 0:
        raise SimulationError("panel dimensions must be >= 0")
    if m == 0 or nb == 0:
        return 0.0
    k = min(m, nb)
    # Exact sum of 2*(m-1-j)*(nb-1-j) + (m-1-j) for j in [0, k)
    total = 0.0
    for j in range(k):
        total += 2.0 * (m - 1 - j) * (nb - 1 - j) + (m - 1 - j)
    return total


def trsm_flops(nb: int, q: int) -> float:
    """Flops of the unit-lower triangular solve ``L11^{-1} * U12``
    (``nb x nb`` unit triangle applied to ``nb x q``): each of the ``q``
    columns costs ``sum_{i<nb} 2i = nb (nb - 1)`` flops — exact, so the
    blocked totals telescope to the unblocked LU count (tested against the
    instrumented numeric factorization)."""
    if nb < 0 or q < 0:
        raise SimulationError("dimensions must be >= 0")
    return float(nb) * (nb - 1) * q if nb > 0 else 0.0


def gemm_flops(m: int, nb: int, q: int) -> float:
    """Flops of the trailing rank-``nb`` update ``A22 -= L21 @ U12``
    (``(m) x nb`` times ``nb x q``)."""
    if m < 0 or nb < 0 or q < 0:
        raise SimulationError("dimensions must be >= 0")
    return 2.0 * m * nb * q


def update_flops(m: int, nb: int, q: int) -> float:
    """Flops a process spends updating ``q`` local trailing columns when the
    panel is ``m x nb`` (``m`` = trailing height including the panel rows)."""
    mm = max(m - nb, 0)
    return trsm_flops(nb, q) + gemm_flops(mm, nb, q)


def panel_bytes(m: int, nb: int, element_size: int = 8) -> float:
    """Bytes broadcast per panel: the factored ``m x nb`` block plus the
    pivot vector."""
    if m < 0 or nb < 0:
        raise SimulationError("panel dimensions must be >= 0")
    return float(m) * nb * element_size + nb * 4.0


def laswp_bytes(nb: int, q, element_size: int = 8):
    """Local memory traffic of applying ``nb`` row interchanges across ``q``
    local columns (each swap reads and writes both rows).

    ``q`` may be a scalar or a NumPy array (per-process column counts);
    the result broadcasts accordingly.
    """
    q_arr = np.asarray(q, dtype=float)
    if nb < 0 or np.any(q_arr < 0):
        raise SimulationError("dimensions must be >= 0")
    result = 2.0 * nb * q_arr * element_size
    return result if result.ndim else float(result)
