"""Panel-by-panel performance simulation of HPL on a placed process set.

This walks the exact schedule of right-looking blocked LU on a ``1 x P``
block-cyclic grid (the same loop :mod:`repro.hpl.lu` executes numerically)
and converts each phase's *work* into *time* using the cluster's rate and
link models:

per panel step ``k`` (global column ``j0 = k*nb``, trailing height
``m = N - j0``):

1. the owning process factors the ``m x nb`` panel (``pfact``) and resolves
   pivots (``mxswp``);
2. the panel travels the process ring (``bcast``): the increasing-ring
   broadcast of HPL, with cross-step pipelining summarized by a calibrated
   ``ring_pipeline_factor`` (see :mod:`repro.simnet.collectives`);
3. every process applies the row interchanges to its local trailing columns
   (``laswp``) and performs the triangular-solve + rank-``nb`` GEMM update
   (``update``) on the ``q_p`` columns it owns;
4. the step completes when the slowest process finishes (bulk-synchronous,
   matching the paper's no-overlap modelling assumption);

and a final backward substitution (``uptrsv``) closes the run.

Rates come from :class:`~repro.cluster.pe.PEKind` (efficiency ramp,
oversubscription) degraded by the node-level paging model of
:mod:`repro.hpl.memory`.

Two walkers share those models:

* :func:`simulate_schedule` — the **reference implementation**: a Python
  loop over the O(N/nb) panel steps, vectorized only over processes.
* :func:`simulate_schedule_batch` — the **production walker**: the whole
  panel sweep is evaluated as one NumPy array program over a
  ``(sizes, num_panels, P)`` grid, batching *several problem orders of one
  configuration* in a single call by padding every size to the largest
  panel count.  Padded steps contribute exact zeros, and every array
  expression applies the same IEEE operations in the same order as the
  reference loop, so for identical inputs the two walkers agree **bitwise**
  (golden-tested per phase, per rank).

The per-``(n, nb, P)`` step geometry (panel widths, owners, trailing-column
counts and the derived workload tables — all analytic in ``(n, nb, k)``) is
memoized in a :class:`PanelTable` cache so repeated trials of one
configuration/size skip the recomputation entirely.  :func:`walker_stats`
exposes walker timings, batch sizes and table hit counts; the measurement
layer folds them into :class:`~repro.perf.report.PerfReport`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import ProcessSlot, place_processes
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.hpl import workload
from repro.hpl.memory import node_slowdowns
from repro.hpl.timing import PHASE_NAMES, PhaseTimes, ProcessTiming
from repro.simnet.collectives import ring_delivery_times, ring_delivery_times_batch
from repro.simnet.transport import LinkKind, Transport


@dataclass(frozen=True)
class HPLParameters:
    """Tunables of the simulated HPL build (the ``HPL.dat`` analog).

    Attributes
    ----------
    nb:
        Column block size (HPL's NB; the paper-era sweet spot was 60–120).
    pfact_efficiency:
        Panel factorization runs on level-1/2 BLAS; this is its rate as a
        fraction of the DGEMM rate.
    ring_pipeline_factor:
        Fraction of the downstream store-and-forward chain a rank actually
        waits for (1.0 = strict bulk-synchronous chain, lower values model
        HPL's cross-step overlap).  See ``simnet.collectives``.
    forward_interference:
        Store-and-forward slowdown caused by CPU time-sharing: a ring hop
        *sent by* a process whose CPU hosts ``m`` processes is stretched by
        ``1 + forward_interference * (m - 1)``.  The sender's memcpy
        and socket writes compete with its siblings' compute and the MPI
        progress engines' busy-waiting, so oversubscribed ring positions
        throttle the broadcast chain through them.  This is the term that
        makes extra processes on a fast PE *costly* at small N (an O(N^2)
        communication tax growing with m) while still profitable at large
        N where the O(N^3/P) balance gain dominates — the crossover
        structure of the paper's Figure 3(b) and Tables 4/7.
    intranode_interference_weight:
        Fraction of ``forward_interference`` applied to shared-memory hops.
        Kernel TCP sends burn far more time-shared CPU than intra-node
        memcpys, so network hops take the full interference and intra-node
        hops only this fraction of it.
    same_cpu_handoff_s:
        Scheduler handoff cost per ring hop whose sender and receiver
        time-share one CPU, per extra co-resident process.  The paper-era
        Linux 2.4 scheduler charges roughly a timeslice to wake the
        receiving sibling and drain the shared-memory pipe — the effect
        Sasou et al. observed and the paper traces through Figures 1-2.
    pfact_wait_factor:
        Fraction of the owner's panel time non-owners spend blocked in the
        broadcast (1.0 = no overlap, the paper's modelling assumption).
    mxswp_per_column_s:
        Pivot bookkeeping cost per panel column (the paper's O(1) item).
    uptrsv_latency_s:
        Per-process latency contribution of the solve's ring traffic.
    paging_slope:
        Throughput penalty slope once a node's memory overflows.
    """

    nb: int = 80
    pfact_efficiency: float = 0.35
    ring_pipeline_factor: float = 0.45
    forward_interference: float = 0.9
    intranode_interference_weight: float = 0.3
    same_cpu_handoff_s: float = 0.010
    pfact_wait_factor: float = 1.0
    mxswp_per_column_s: float = 2.0e-6
    uptrsv_latency_s: float = 1.0e-4
    paging_slope: float = 12.0

    def __post_init__(self) -> None:
        if self.nb < 1:
            raise SimulationError(f"nb must be >= 1, got {self.nb}")
        if not (0.0 < self.pfact_efficiency <= 1.0):
            raise SimulationError("pfact_efficiency must be in (0, 1]")
        if not (0.0 <= self.ring_pipeline_factor <= 1.0):
            raise SimulationError("ring_pipeline_factor must be in [0, 1]")
        if self.forward_interference < 0.0:
            raise SimulationError("forward_interference must be >= 0")
        if not (0.0 <= self.intranode_interference_weight <= 1.0):
            raise SimulationError("intranode_interference_weight must be in [0, 1]")
        if self.same_cpu_handoff_s < 0:
            raise SimulationError("same_cpu_handoff_s must be >= 0")
        if not (0.0 <= self.pfact_wait_factor <= 1.0):
            raise SimulationError("pfact_wait_factor must be in [0, 1]")


@dataclass
class ScheduleResult:
    """Output of one simulated HPL run."""

    n: int
    params: HPLParameters
    slots: List[ProcessSlot]
    phase_arrays: Dict[str, np.ndarray]
    wall_time_s: float

    @property
    def size(self) -> int:
        return len(self.slots)

    def process_timing(self, rank: int) -> ProcessTiming:
        return ProcessTiming(
            rank=rank,
            kind_name=self.slots[rank].kind.name,
            phases=PhaseTimes.from_arrays(self.phase_arrays, rank),
        )

    def all_timings(self) -> List[ProcessTiming]:
        return [self.process_timing(r) for r in range(self.size)]

    def busy_times(self) -> np.ndarray:
        """Per-rank total busy (phase-accounted) time."""
        return sum(self.phase_arrays[name] for name in PHASE_NAMES)


# -- walker instrumentation ----------------------------------------------------


@dataclass
class WalkerStats:
    """Counters of both schedule walkers (per process; see note below).

    ``scalar_*`` track the reference per-step loop, ``batch_*`` the
    vectorized multi-size walker (``batch_sizes`` = total problem orders
    simulated across batched calls, ``batch_max`` = largest single batch),
    and ``table_*`` the :class:`PanelTable` memo.  Counters live in module
    state: campaigns fanned out over a process pool accumulate them in the
    workers, so a parallel campaign's main-process report only covers work
    done in the main process.
    """

    scalar_calls: int = 0
    scalar_seconds: float = 0.0
    batch_calls: int = 0
    batch_seconds: float = 0.0
    batch_sizes: int = 0
    batch_max: int = 0
    table_hits: int = 0
    table_misses: int = 0

    def snapshot(self) -> "WalkerStats":
        return replace(self)

    def delta(self, earlier: "WalkerStats") -> "WalkerStats":
        """Field-wise difference (``batch_max`` takes the current value)."""
        return WalkerStats(
            scalar_calls=self.scalar_calls - earlier.scalar_calls,
            scalar_seconds=self.scalar_seconds - earlier.scalar_seconds,
            batch_calls=self.batch_calls - earlier.batch_calls,
            batch_seconds=self.batch_seconds - earlier.batch_seconds,
            batch_sizes=self.batch_sizes - earlier.batch_sizes,
            batch_max=self.batch_max,
            table_hits=self.table_hits - earlier.table_hits,
            table_misses=self.table_misses - earlier.table_misses,
        )

    def merge(self, other: "WalkerStats") -> None:
        """Accumulate ``other`` into this record (maxing ``batch_max``)."""
        for f in fields(self):
            if f.name == "batch_max":
                self.batch_max = max(self.batch_max, other.batch_max)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def to_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def describe(self) -> str:
        batch = (
            f"batch {self.batch_calls} calls/{self.batch_sizes} sizes "
            f"(max {self.batch_max}) {self.batch_seconds:.4f}s"
        )
        scalar = f"scalar {self.scalar_calls} calls {self.scalar_seconds:.4f}s"
        table = f"panel-table {self.table_hits} hits/{self.table_misses} misses"
        return f"{batch}; {scalar}; {table}"


_WALKER_STATS = WalkerStats()


def walker_stats() -> WalkerStats:
    """The live (mutable) walker counters of this process."""
    return _WALKER_STATS


def reset_walker_stats() -> None:
    """Zero the walker counters (tests and benches)."""
    global _WALKER_STATS
    _WALKER_STATS = WalkerStats()


# -- memoized panel geometry ---------------------------------------------------


@dataclass(frozen=True)
class PanelTable:
    """Precomputed step geometry and workload of one ``(n, nb, P)`` sweep.

    Everything here is analytic in ``(n, nb, k)`` and the ring position —
    independent of rates, noise and the network — so one table serves every
    trial and every configuration sharing the process count.  Shapes:
    ``(K,)`` per step, ``(K, P)`` per step and rank, ``K = ceil(n / nb)``.
    """

    n: int
    nb: int
    p: int
    nblocks: int
    owner: np.ndarray  #: (K,) int — panel owner, ``k % P``
    width: np.ndarray  #: (K,) float — panel column count (last may be partial)
    m_rows: np.ndarray  #: (K,) float — trailing height ``n - k*nb``
    q: np.ndarray  #: (K, P) float — trailing columns owned per rank
    pfact_flops: np.ndarray  #: (K,) float
    update_flops: np.ndarray  #: (K, P) float
    laswp_bytes: np.ndarray  #: (K, P) float
    panel_nbytes: np.ndarray  #: (K,) float — broadcast payload per step


def _build_panel_table(n: int, nb: int, p: int) -> PanelTable:
    nblocks = (n + nb - 1) // nb
    last_block_cols = n - (nblocks - 1) * nb
    k = np.arange(nblocks)
    j0 = k * nb
    width = np.minimum(nb, n - j0).astype(float)
    m_rows = (n - j0).astype(float)
    owner = k % p
    # Trailing blocks of step k are k+1 .. nblocks-1; the count owned by
    # rank r is the number of offsets o in [0, T) with o = (r - k - 1) mod p,
    # T = nblocks - 1 - k — the closed form of the reference walker's
    # bincount over ``arange(k+1, nblocks) % p``.
    trailing = nblocks - 1 - k  # (K,)
    offset0 = (np.arange(p)[None, :] - k[:, None] - 1) % p  # (K, P)
    count = np.where(
        trailing[:, None] > offset0,
        (trailing[:, None] - offset0 + p - 1) // p,
        0,
    ).astype(float)
    q = count * nb
    if nblocks > 1:
        # the final block may be partial; it is trailing for every k < K-1
        q[: nblocks - 1, (nblocks - 1) % p] -= nb - last_block_cols
    return PanelTable(
        n=n,
        nb=nb,
        p=p,
        nblocks=nblocks,
        owner=owner,
        width=width,
        m_rows=m_rows,
        q=q,
        pfact_flops=np.asarray(workload.pfact_flops(m_rows, width), dtype=float),
        update_flops=np.asarray(
            workload.update_flops(m_rows[:, None], width[:, None], q), dtype=float
        ),
        laswp_bytes=np.asarray(
            workload.laswp_bytes(width[:, None], q), dtype=float
        ),
        panel_nbytes=np.asarray(workload.panel_bytes(m_rows, width), dtype=float),
    )


#: Bounded LRU of panel tables; a campaign touches ``sizes x process
#: counts`` keys (tens), trials and repeated configurations hit.
_PANEL_TABLE_CAP = 256
_panel_tables: "OrderedDict[Tuple[int, int, int], PanelTable]" = OrderedDict()


def panel_table(n: int, nb: int, p: int) -> PanelTable:
    """The memoized :class:`PanelTable` for ``(n, nb, p)`` (LRU-bounded)."""
    if n < 1 or nb < 1 or p < 1:
        raise SimulationError(f"panel_table needs positive (n, nb, p), got {(n, nb, p)}")
    key = (int(n), int(nb), int(p))
    table = _panel_tables.get(key)
    if table is not None:
        _WALKER_STATS.table_hits += 1
        _panel_tables.move_to_end(key)
        return table
    _WALKER_STATS.table_misses += 1
    table = _build_panel_table(*key)
    _panel_tables[key] = table
    while len(_panel_tables) > _PANEL_TABLE_CAP:
        _panel_tables.popitem(last=False)
    return table


def clear_panel_tables() -> None:
    """Drop every memoized panel table (tests)."""
    _panel_tables.clear()


def seed_panel_tables(tables: Iterable[PanelTable]) -> int:
    """Pre-populate the memo with already-built tables; returns the count.

    Fleet workers seed the memo with shared-memory-backed tables
    (:mod:`repro.serve.shared`) so N replicas hold one copy of the panel
    geometry instead of N.  Seeded tables participate in the same LRU as
    locally built ones; a seeded key that is later evicted is simply
    rebuilt locally — correctness never depends on the seed.
    """
    count = 0
    for table in tables:
        _panel_tables[(table.n, table.nb, table.p)] = table
        count += 1
    while len(_panel_tables) > _PANEL_TABLE_CAP:
        _panel_tables.popitem(last=False)
    return count


# -- shared rate/ring models ---------------------------------------------------


def _rank_rates(
    spec: ClusterSpec,
    slots: Sequence[ProcessSlot],
    n: int,
    params: HPLParameters,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-rank static rates (update, pfact, laswp) and step overheads."""
    p = len(slots)
    paging = node_slowdowns(spec, slots, n, nb=params.nb, slope=params.paging_slope)
    update_rate = np.empty(p)
    pfact_rate = np.empty(p)
    laswp_rate = np.empty(p)
    step_overhead = np.empty(p)
    for r, slot in enumerate(slots):
        kind = slot.kind
        m = slot.co_resident
        update_rate[r] = kind.process_rate(n, m) / paging[r]
        # pfact runs at level-1/2 BLAS speed on a time-shared CPU: the
        # owner's siblings are inside MPI blocking receives, and the
        # paper-era MPICH progress engine busy-waits, so they do not yield
        # the CPU — the owner only gets its 1/m share.
        pfact_rate[r] = kind.process_rate(n, m) * params.pfact_efficiency / paging[r]
        laswp_rate[r] = kind.mem_copy_rate() / m / paging[r]
        step_overhead[r] = kind.step_overhead(m)
    return update_rate, pfact_rate, laswp_rate, step_overhead


def _ring_factors(
    params: HPLParameters,
    slots: Sequence[ProcessSlot],
    transport: Transport,
) -> Tuple[np.ndarray, np.ndarray]:
    """Ring-forwarding slowdown of each sender (CPU time-sharing; see
    ``HPLParameters.forward_interference``) and the fixed scheduler-handoff
    cost on hops whose endpoints time-share a CPU.  Network hops take the
    full interference; shared-memory hops a calibrated fraction of it."""
    co_res = np.array([slot.co_resident for slot in slots], dtype=float)
    ring_kinds = transport.ring_link_kinds()
    edge_weight = np.array(
        [
            1.0 if kind is LinkKind.NETWORK else params.intranode_interference_weight
            for kind in ring_kinds
        ]
    )
    forward_slow = 1.0 + params.forward_interference * (co_res - 1.0) * edge_weight
    same_cpu_edge = np.array(
        [kind is LinkKind.SAME_CPU for kind in ring_kinds], dtype=bool
    )
    hop_handoff = np.where(
        same_cpu_edge, params.same_cpu_handoff_s * (co_res - 1.0), 0.0
    )
    return forward_slow, hop_handoff


# -- reference walker ----------------------------------------------------------


def simulate_schedule(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> ScheduleResult:
    """Simulate HPL of order ``n`` under ``config`` on ``spec``.

    ``compute_noise`` / ``comm_noise`` are optional per-rank multiplicative
    factors (length ``P``) applied to computation and communication costs
    respectively; the measurement layer supplies them (seeded), unit tests
    usually omit them for determinism.

    This is the reference per-step loop; :func:`simulate_schedule_batch`
    is the vectorized production walker and must agree with it bitwise.
    """
    if n < 1:
        raise SimulationError(f"matrix order must be >= 1, got {n}")
    started = time.perf_counter()
    params = params if params is not None else HPLParameters()
    slots = place_processes(spec, config)
    p = len(slots)
    transport = Transport(spec, slots)

    f_comp = _noise_or_ones(compute_noise, p, "compute_noise")
    f_comm = _noise_or_ones(comm_noise, p, "comm_noise")

    update_rate, pfact_rate, laswp_rate, step_overhead = _rank_rates(
        spec, slots, n, params
    )
    forward_slow, hop_handoff = _ring_factors(params, slots, transport)

    phase = {name: np.zeros(p) for name in PHASE_NAMES}
    wall = 0.0

    nb = params.nb
    nblocks = (n + nb - 1) // nb
    last_block_cols = n - (nblocks - 1) * nb
    ranks = np.arange(p)

    for k in range(nblocks):
        j0 = k * nb
        width = min(nb, n - j0)
        m_rows = n - j0
        owner = k % p

        # Trailing columns owned by each process (strictly right of panel).
        if k + 1 < nblocks:
            trailing_blocks = np.arange(k + 1, nblocks)
            counts = np.bincount(trailing_blocks % p, minlength=p).astype(float)
            q = counts * nb
            # the final block may be partial
            q[(nblocks - 1) % p] -= nb - last_block_cols
        else:
            q = np.zeros(p)

        # -- phase costs ------------------------------------------------------
        t_pfact = (
            workload.pfact_flops(m_rows, width) / pfact_rate[owner] * f_comp[owner]
        )
        t_mxswp = width * params.mxswp_per_column_s * f_comm[owner]

        step = np.zeros(p)
        phase["pfact"][owner] += t_pfact
        phase["mxswp"][owner] += t_mxswp
        step[owner] += t_pfact + t_mxswp

        if p > 1:
            nbytes = workload.panel_bytes(m_rows, width)
            hops = transport.ring_hop_times(nbytes) * forward_slow + hop_handoff
            delivery = ring_delivery_times(
                hops, root=owner, pipeline_factor=params.ring_pipeline_factor
            )
            head_wait = (t_pfact + t_mxswp) * params.pfact_wait_factor
            non_owner = ranks != owner
            bcast_wait = np.where(non_owner, head_wait + delivery, 0.0)
            bcast_wait *= f_comm
            send_cost = hops[owner] * f_comm[owner]  # the owner's injection
            phase["bcast"][owner] += send_cost
            phase["bcast"][non_owner] += bcast_wait[non_owner]
            step[owner] += send_cost
            step[non_owner] = np.maximum(
                step[non_owner], bcast_wait[non_owner]
            )

        t_laswp = workload.laswp_bytes(width, q) / laswp_rate * f_comm
        t_update = np.array(
            [workload.update_flops(m_rows, width, int(qq)) for qq in q]
        ) / update_rate * f_comp
        t_over = step_overhead * f_comp

        phase["laswp"] += t_laswp
        phase["update"] += t_update + t_over
        step += t_laswp + t_update + t_over

        wall += float(np.max(step))

    # Backward substitution --------------------------------------------------
    t_uptrsv = (
        workload.solve_flops(n) / p / update_rate + params.uptrsv_latency_s * p
    ) * f_comp
    phase["uptrsv"] += t_uptrsv
    wall += float(np.max(t_uptrsv))

    _WALKER_STATS.scalar_calls += 1
    _WALKER_STATS.scalar_seconds += time.perf_counter() - started

    return ScheduleResult(
        n=n,
        params=params,
        slots=slots,
        phase_arrays=phase,
        wall_time_s=wall,
    )


# -- vectorized multi-size walker ----------------------------------------------


def simulate_schedule_batch(
    spec: ClusterSpec,
    config: ClusterConfig,
    ns: Sequence[int],
    params: Optional[HPLParameters] = None,
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> List[ScheduleResult]:
    """Simulate one configuration at *many* problem orders in one call.

    ``ns`` may repeat sizes (e.g. one entry per trial); noise arrays, when
    given, carry one row per entry (shape ``(len(ns), P)``).  Every size is
    padded to the largest panel count and the whole ``(sizes, panels, P)``
    grid is evaluated as a handful of NumPy array programs; padded steps
    contribute exact zeros.  Results are bitwise identical to calling
    :func:`simulate_schedule` per entry with the matching noise row —
    the golden tests assert per-phase, per-rank equality.
    """
    sizes = [int(n) for n in ns]
    if not sizes:
        raise SimulationError("simulate_schedule_batch needs at least one size")
    for n in sizes:
        if n < 1:
            raise SimulationError(f"matrix order must be >= 1, got {n}")
    started = time.perf_counter()
    params = params if params is not None else HPLParameters()
    slots = place_processes(spec, config)
    p = len(slots)
    transport = Transport(spec, slots)
    rows = len(sizes)

    f_comp = _noise_rows(compute_noise, rows, p, "compute_noise")  # (S, P)
    f_comm = _noise_rows(comm_noise, rows, p, "comm_noise")

    forward_slow, hop_handoff = _ring_factors(params, slots, transport)

    # -- per-unique-size tables, rates and (noise-free) broadcast chains ------
    unique_sizes = list(dict.fromkeys(sizes))
    position = {n: i for i, n in enumerate(unique_sizes)}
    row_of = np.array([position[n] for n in sizes])
    tables = [panel_table(n, params.nb, p) for n in unique_sizes]
    steps = max(table.nblocks for table in tables)  # padded panel count K

    def padded(stack_shape, per_table):
        out = np.zeros((len(tables),) + stack_shape)
        for i, table in enumerate(tables):
            value = per_table(table)
            out[i, : table.nblocks] = value
        return out

    pfact_flops_u = padded((steps,), lambda t: t.pfact_flops)
    width_u = padded((steps,), lambda t: t.width)
    update_flops_u = padded((steps, p), lambda t: t.update_flops)
    laswp_bytes_u = padded((steps, p), lambda t: t.laswp_bytes)
    valid_u = padded((steps,), lambda t: np.ones(t.nblocks))
    rates_u = np.empty((len(tables), 4, p))
    for i, table in enumerate(tables):
        rates_u[i] = _rank_rates(spec, slots, table.n, params)
    if p > 1:
        hops_own_u = np.zeros((len(tables), steps))
        delivery_u = np.zeros((len(tables), steps, p))
        for i, table in enumerate(tables):
            hops = (
                transport.ring_hop_times_batch(table.panel_nbytes) * forward_slow
                + hop_handoff
            )
            delivery_u[i, : table.nblocks] = ring_delivery_times_batch(
                hops, table.owner, pipeline_factor=params.ring_pipeline_factor
            )
            hops_own_u[i, : table.nblocks] = hops[
                np.arange(table.nblocks), table.owner
            ]

    # -- expand to batch rows (one row per (size, noise) entry) ---------------
    owner = np.arange(steps) % p  # owners do not depend on n
    kidx = np.arange(steps)
    update_rate = rates_u[row_of, 0]  # (S, P)
    pfact_rate = rates_u[row_of, 1]
    laswp_rate = rates_u[row_of, 2]
    step_overhead = rates_u[row_of, 3]
    valid = valid_u[row_of, :, None].astype(bool)  # (S, K, 1)

    # -- pfact / mxswp (owner-only phases) ------------------------------------
    t_pfact = (
        pfact_flops_u[row_of] / pfact_rate[:, owner] * f_comp[:, owner]
    )  # (S, K)
    t_mxswp = width_u[row_of] * params.mxswp_per_column_s * f_comm[:, owner]
    own_base = t_pfact + t_mxswp

    phase_mats: Dict[str, np.ndarray] = {}
    scatter = np.zeros((rows, steps, p))
    scatter[:, kidx, owner] = t_pfact
    phase_mats["pfact"] = scatter
    scatter = np.zeros((rows, steps, p))
    scatter[:, kidx, owner] = t_mxswp
    phase_mats["mxswp"] = scatter

    # -- broadcast ------------------------------------------------------------
    if p > 1:
        head_wait = own_base * params.pfact_wait_factor  # (S, K)
        non_owner = np.arange(p)[None, :] != owner[:, None]  # (K, P)
        wait = np.where(
            non_owner[None, :, :],
            head_wait[:, :, None] + delivery_u[row_of],
            0.0,
        )
        wait = wait * f_comm[:, None, :]
        send_cost = hops_own_u[row_of] * f_comm[:, owner]  # (S, K)
        bcast = wait.copy()
        bcast[:, kidx, owner] = send_cost
        phase_mats["bcast"] = bcast
        step_base = wait.copy()
        step_base[:, kidx, owner] = own_base + send_cost
    else:
        phase_mats["bcast"] = np.zeros((rows, steps, p))
        step_base = np.zeros((rows, steps, p))
        step_base[:, kidx, owner] = own_base

    # -- laswp / update / overhead --------------------------------------------
    t_laswp = laswp_bytes_u[row_of] / laswp_rate[:, None, :] * f_comm[:, None, :]
    t_update = (
        update_flops_u[row_of] / update_rate[:, None, :] * f_comp[:, None, :]
    )
    t_over = (step_overhead * f_comp)[:, None, :]  # same every (real) step
    phase_mats["laswp"] = t_laswp
    phase_mats["update"] = np.where(valid, t_update + t_over, 0.0)

    step = step_base + np.where(valid, (t_laswp + t_update) + t_over, 0.0)
    wall_body = step.max(axis=2).cumsum(axis=1)[:, -1]  # (S,)

    # -- backward substitution ------------------------------------------------
    solve = np.array([workload.solve_flops(n) for n in sizes])  # (S,)
    t_uptrsv = (
        solve[:, None] / p / update_rate + params.uptrsv_latency_s * p
    ) * f_comp  # (S, P)

    # -- fold steps into per-rank phase totals --------------------------------
    # cumsum accumulates left-to-right exactly like the reference loop's
    # ``+=`` per step (padded steps add exact zeros), keeping bitwise parity.
    phase_totals = {
        name: mat.cumsum(axis=1)[:, -1, :] for name, mat in phase_mats.items()
    }
    phase_totals["uptrsv"] = t_uptrsv
    walls = wall_body + t_uptrsv.max(axis=1)

    results = []
    for s, n in enumerate(sizes):
        arrays = {
            name: np.ascontiguousarray(phase_totals[name][s])
            for name in PHASE_NAMES
        }
        results.append(
            ScheduleResult(
                n=n,
                params=params,
                slots=slots,
                phase_arrays=arrays,
                wall_time_s=float(walls[s]),
            )
        )

    _WALKER_STATS.batch_calls += 1
    _WALKER_STATS.batch_seconds += time.perf_counter() - started
    _WALKER_STATS.batch_sizes += rows
    _WALKER_STATS.batch_max = max(_WALKER_STATS.batch_max, rows)
    return results


def _noise_or_ones(
    noise: Optional[np.ndarray], p: int, name: str
) -> np.ndarray:
    if noise is None:
        return np.ones(p)
    arr = np.asarray(noise, dtype=float)
    if arr.shape != (p,):
        raise SimulationError(f"{name} must have shape ({p},), got {arr.shape}")
    if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
        raise SimulationError(f"{name} must be positive and finite")
    return arr


def _noise_rows(
    noise: Optional[np.ndarray], rows: int, p: int, name: str
) -> np.ndarray:
    if noise is None:
        return np.ones((rows, p))
    arr = np.asarray(noise, dtype=float)
    if arr.shape != (rows, p):
        raise SimulationError(
            f"{name} must have shape ({rows}, {p}), got {arr.shape}"
        )
    if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
        raise SimulationError(f"{name} must be positive and finite")
    return arr
