"""Panel-by-panel performance simulation of HPL on a placed process set.

This walks the exact schedule of right-looking blocked LU on a ``1 x P``
block-cyclic grid (the same loop :mod:`repro.hpl.lu` executes numerically)
and converts each phase's *work* into *time* using the cluster's rate and
link models:

per panel step ``k`` (global column ``j0 = k*nb``, trailing height
``m = N - j0``):

1. the owning process factors the ``m x nb`` panel (``pfact``) and resolves
   pivots (``mxswp``);
2. the panel travels the process ring (``bcast``): the increasing-ring
   broadcast of HPL, with cross-step pipelining summarized by a calibrated
   ``ring_pipeline_factor`` (see :mod:`repro.simnet.collectives`);
3. every process applies the row interchanges to its local trailing columns
   (``laswp``) and performs the triangular-solve + rank-``nb`` GEMM update
   (``update``) on the ``q_p`` columns it owns;
4. the step completes when the slowest process finishes (bulk-synchronous,
   matching the paper's no-overlap modelling assumption);

and a final backward substitution (``uptrsv``) closes the run.

Rates come from :class:`~repro.cluster.pe.PEKind` (efficiency ramp,
oversubscription) degraded by the node-level paging model of
:mod:`repro.hpl.memory`.  The loop is vectorized over processes with NumPy;
only the O(N/nb) step loop is Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import ProcessSlot, place_processes
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.hpl import workload
from repro.hpl.memory import node_slowdowns
from repro.hpl.timing import PHASE_NAMES, PhaseTimes, ProcessTiming
from repro.simnet.collectives import ring_delivery_times
from repro.simnet.transport import LinkKind, Transport


@dataclass(frozen=True)
class HPLParameters:
    """Tunables of the simulated HPL build (the ``HPL.dat`` analog).

    Attributes
    ----------
    nb:
        Column block size (HPL's NB; the paper-era sweet spot was 60–120).
    pfact_efficiency:
        Panel factorization runs on level-1/2 BLAS; this is its rate as a
        fraction of the DGEMM rate.
    ring_pipeline_factor:
        Fraction of the downstream store-and-forward chain a rank actually
        waits for (1.0 = strict bulk-synchronous chain, lower values model
        HPL's cross-step overlap).  See ``simnet.collectives``.
    forward_interference:
        Store-and-forward slowdown caused by CPU time-sharing: a ring hop
        *sent by* a process whose CPU hosts ``m`` processes is stretched by
        ``1 + forward_interference * (m - 1)``.  The sender's memcpy
        and socket writes compete with its siblings' compute and the MPI
        progress engines' busy-waiting, so oversubscribed ring positions
        throttle the broadcast chain through them.  This is the term that
        makes extra processes on a fast PE *costly* at small N (an O(N^2)
        communication tax growing with m) while still profitable at large
        N where the O(N^3/P) balance gain dominates — the crossover
        structure of the paper's Figure 3(b) and Tables 4/7.
    intranode_interference_weight:
        Fraction of ``forward_interference`` applied to shared-memory hops.
        Kernel TCP sends burn far more time-shared CPU than intra-node
        memcpys, so network hops take the full interference and intra-node
        hops only this fraction of it.
    same_cpu_handoff_s:
        Scheduler handoff cost per ring hop whose sender and receiver
        time-share one CPU, per extra co-resident process.  The paper-era
        Linux 2.4 scheduler charges roughly a timeslice to wake the
        receiving sibling and drain the shared-memory pipe — the effect
        Sasou et al. observed and the paper traces through Figures 1-2.
    pfact_wait_factor:
        Fraction of the owner's panel time non-owners spend blocked in the
        broadcast (1.0 = no overlap, the paper's modelling assumption).
    mxswp_per_column_s:
        Pivot bookkeeping cost per panel column (the paper's O(1) item).
    uptrsv_latency_s:
        Per-process latency contribution of the solve's ring traffic.
    paging_slope:
        Throughput penalty slope once a node's memory overflows.
    """

    nb: int = 80
    pfact_efficiency: float = 0.35
    ring_pipeline_factor: float = 0.45
    forward_interference: float = 0.9
    intranode_interference_weight: float = 0.3
    same_cpu_handoff_s: float = 0.010
    pfact_wait_factor: float = 1.0
    mxswp_per_column_s: float = 2.0e-6
    uptrsv_latency_s: float = 1.0e-4
    paging_slope: float = 12.0

    def __post_init__(self) -> None:
        if self.nb < 1:
            raise SimulationError(f"nb must be >= 1, got {self.nb}")
        if not (0.0 < self.pfact_efficiency <= 1.0):
            raise SimulationError("pfact_efficiency must be in (0, 1]")
        if not (0.0 <= self.ring_pipeline_factor <= 1.0):
            raise SimulationError("ring_pipeline_factor must be in [0, 1]")
        if self.forward_interference < 0.0:
            raise SimulationError("forward_interference must be >= 0")
        if not (0.0 <= self.intranode_interference_weight <= 1.0):
            raise SimulationError("intranode_interference_weight must be in [0, 1]")
        if self.same_cpu_handoff_s < 0:
            raise SimulationError("same_cpu_handoff_s must be >= 0")
        if not (0.0 <= self.pfact_wait_factor <= 1.0):
            raise SimulationError("pfact_wait_factor must be in [0, 1]")


@dataclass
class ScheduleResult:
    """Output of one simulated HPL run."""

    n: int
    params: HPLParameters
    slots: List[ProcessSlot]
    phase_arrays: Dict[str, np.ndarray]
    wall_time_s: float

    @property
    def size(self) -> int:
        return len(self.slots)

    def process_timing(self, rank: int) -> ProcessTiming:
        return ProcessTiming(
            rank=rank,
            kind_name=self.slots[rank].kind.name,
            phases=PhaseTimes.from_arrays(self.phase_arrays, rank),
        )

    def all_timings(self) -> List[ProcessTiming]:
        return [self.process_timing(r) for r in range(self.size)]

    def busy_times(self) -> np.ndarray:
        """Per-rank total busy (phase-accounted) time."""
        return sum(self.phase_arrays[name] for name in PHASE_NAMES)


def simulate_schedule(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> ScheduleResult:
    """Simulate HPL of order ``n`` under ``config`` on ``spec``.

    ``compute_noise`` / ``comm_noise`` are optional per-rank multiplicative
    factors (length ``P``) applied to computation and communication costs
    respectively; the measurement layer supplies them (seeded), unit tests
    usually omit them for determinism.
    """
    if n < 1:
        raise SimulationError(f"matrix order must be >= 1, got {n}")
    params = params if params is not None else HPLParameters()
    slots = place_processes(spec, config)
    p = len(slots)
    transport = Transport(spec, slots)

    f_comp = _noise_or_ones(compute_noise, p, "compute_noise")
    f_comm = _noise_or_ones(comm_noise, p, "comm_noise")

    # Per-rank static rates --------------------------------------------------
    paging = node_slowdowns(spec, slots, n, nb=params.nb, slope=params.paging_slope)
    update_rate = np.empty(p)
    pfact_rate = np.empty(p)
    laswp_rate = np.empty(p)
    step_overhead = np.empty(p)
    for r, slot in enumerate(slots):
        kind = slot.kind
        m = slot.co_resident
        update_rate[r] = kind.process_rate(n, m) / paging[r]
        # pfact runs at level-1/2 BLAS speed on a time-shared CPU: the
        # owner's siblings are inside MPI blocking receives, and the
        # paper-era MPICH progress engine busy-waits, so they do not yield
        # the CPU — the owner only gets its 1/m share.
        pfact_rate[r] = kind.process_rate(n, m) * params.pfact_efficiency / paging[r]
        laswp_rate[r] = kind.mem_copy_rate() / m / paging[r]
        step_overhead[r] = kind.step_overhead(m)

    # Ring-forwarding slowdown of each sender (CPU time-sharing; see
    # HPLParameters.forward_interference).  Network hops take the full
    # interference; shared-memory hops a calibrated fraction of it.
    co_res = np.array([slot.co_resident for slot in slots], dtype=float)
    ring_kinds = transport.ring_link_kinds()
    edge_weight = np.array(
        [
            1.0 if kind is LinkKind.NETWORK else params.intranode_interference_weight
            for kind in ring_kinds
        ]
    )
    forward_slow = 1.0 + params.forward_interference * (co_res - 1.0) * edge_weight
    # Fixed scheduler-handoff cost on hops whose endpoints time-share a CPU.
    same_cpu_edge = np.array(
        [kind is LinkKind.SAME_CPU for kind in ring_kinds], dtype=bool
    )
    hop_handoff = np.where(
        same_cpu_edge, params.same_cpu_handoff_s * (co_res - 1.0), 0.0
    )

    phase = {name: np.zeros(p) for name in PHASE_NAMES}
    wall = 0.0

    nb = params.nb
    nblocks = (n + nb - 1) // nb
    last_block_cols = n - (nblocks - 1) * nb
    ranks = np.arange(p)

    for k in range(nblocks):
        j0 = k * nb
        width = min(nb, n - j0)
        m_rows = n - j0
        owner = k % p

        # Trailing columns owned by each process (strictly right of panel).
        if k + 1 < nblocks:
            trailing_blocks = np.arange(k + 1, nblocks)
            counts = np.bincount(trailing_blocks % p, minlength=p).astype(float)
            q = counts * nb
            # the final block may be partial
            q[(nblocks - 1) % p] -= nb - last_block_cols
        else:
            q = np.zeros(p)

        # -- phase costs ------------------------------------------------------
        t_pfact = (
            workload.pfact_flops(m_rows, width) / pfact_rate[owner] * f_comp[owner]
        )
        t_mxswp = width * params.mxswp_per_column_s * f_comm[owner]

        step = np.zeros(p)
        phase["pfact"][owner] += t_pfact
        phase["mxswp"][owner] += t_mxswp
        step[owner] += t_pfact + t_mxswp

        if p > 1:
            nbytes = workload.panel_bytes(m_rows, width)
            hops = transport.ring_hop_times(nbytes) * forward_slow + hop_handoff
            delivery = ring_delivery_times(
                hops, root=owner, pipeline_factor=params.ring_pipeline_factor
            )
            head_wait = (t_pfact + t_mxswp) * params.pfact_wait_factor
            non_owner = ranks != owner
            bcast_wait = np.where(non_owner, head_wait + delivery, 0.0)
            bcast_wait *= f_comm
            send_cost = hops[owner] * f_comm[owner]  # the owner's injection
            phase["bcast"][owner] += send_cost
            phase["bcast"][non_owner] += bcast_wait[non_owner]
            step[owner] += send_cost
            step[non_owner] = np.maximum(
                step[non_owner], bcast_wait[non_owner]
            )

        t_laswp = workload.laswp_bytes(width, q) / laswp_rate * f_comm
        t_update = np.array(
            [workload.update_flops(m_rows, width, int(qq)) for qq in q]
        ) / update_rate * f_comp
        t_over = step_overhead * f_comp

        phase["laswp"] += t_laswp
        phase["update"] += t_update + t_over
        step += t_laswp + t_update + t_over

        wall += float(np.max(step))

    # Backward substitution --------------------------------------------------
    t_uptrsv = (
        workload.solve_flops(n) / p / update_rate + params.uptrsv_latency_s * p
    ) * f_comp
    phase["uptrsv"] += t_uptrsv
    wall += float(np.max(t_uptrsv))

    return ScheduleResult(
        n=n,
        params=params,
        slots=slots,
        phase_arrays=phase,
        wall_time_s=wall,
    )


def _noise_or_ones(
    noise: Optional[np.ndarray], p: int, name: str
) -> np.ndarray:
    if noise is None:
        return np.ones(p)
    arr = np.asarray(noise, dtype=float)
    if arr.shape != (p,):
        raise SimulationError(f"{name} must have shape ({p},), got {arr.shape}")
    if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
        raise SimulationError(f"{name} must be positive and finite")
    return arr
