"""HPL.dat input files: parse, render, and drive the simulator with them.

The real HPL benchmark reads its sweep parameters from ``HPL.dat`` — a
line-oriented file of values followed by comments, in a fixed order.  This
module supports the subset the performance model cares about:

* problem sizes (``N``),
* block sizes (``NB``),
* process grids (``P x Q``),
* the residual-check threshold.

Parsing is deliberately strict about structure (counts must match their
declared lengths, values must be positive) but tolerant about the comment
text, exactly like HPL itself.  :func:`runs` enumerates the full sweep an
``HPL.dat`` describes, and :func:`run_dat` executes it on the simulator
(using the 2-D schedule walker whenever a grid has ``P > 1`` rows).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.exts.grid2d import GridShape, simulate_schedule_2d
from repro.hpl.driver import HPLResult
from repro.hpl.schedule import HPLParameters

_HEADER = (
    "HPLinpack benchmark input file",
    "(reproduced driver: repro.hpl.hpldat)",
)


@dataclass(frozen=True)
class HPLDat:
    """The supported subset of an HPL.dat sweep."""

    sizes: Tuple[int, ...] = (1000,)
    block_sizes: Tuple[int, ...] = (80,)
    grids: Tuple[GridShape, ...] = (GridShape(1, 4),)
    threshold: float = 16.0

    def __post_init__(self) -> None:
        if not self.sizes or any(n < 1 for n in self.sizes):
            raise SimulationError(f"invalid problem sizes {self.sizes}")
        if not self.block_sizes or any(nb < 1 for nb in self.block_sizes):
            raise SimulationError(f"invalid block sizes {self.block_sizes}")
        if not self.grids:
            raise SimulationError("need at least one process grid")
        if self.threshold <= 0:
            raise SimulationError("threshold must be positive")

    @property
    def run_count(self) -> int:
        return len(self.sizes) * len(self.block_sizes) * len(self.grids)

    def runs(self) -> Iterator[Tuple[int, int, GridShape]]:
        """Every (N, NB, grid) combination, in HPL's sweep order."""
        for n in self.sizes:
            for nb in self.block_sizes:
                for grid in self.grids:
                    yield n, nb, grid


def render_hpl_dat(dat: HPLDat) -> str:
    """Serialize to the classic HPL.dat layout."""
    lines = list(_HEADER)
    lines.append("HPL.out      output file name (if any)")
    lines.append("6            device out (6=stdout,7=stderr,file)")
    lines.append(f"{len(dat.sizes)}            # of problems sizes (N)")
    lines.append(" ".join(str(n) for n in dat.sizes) + "  Ns")
    lines.append(f"{len(dat.block_sizes)}            # of NBs")
    lines.append(" ".join(str(nb) for nb in dat.block_sizes) + "  NBs")
    lines.append("0            PMAP process mapping (0=Row-,1=Column-major)")
    lines.append(f"{len(dat.grids)}            # of process grids (P x Q)")
    lines.append(" ".join(str(g.pr) for g in dat.grids) + "  Ps")
    lines.append(" ".join(str(g.q) for g in dat.grids) + "  Qs")
    lines.append(f"{dat.threshold}         threshold")
    return "\n".join(lines) + "\n"


def _values(line: str) -> List[str]:
    """Leading whitespace-separated values of a data line (HPL ignores the
    trailing comment)."""
    return line.split()


def _take_int(line: str, what: str) -> int:
    tokens = _values(line)
    if not tokens:
        raise SimulationError(f"missing value for {what}")
    try:
        return int(tokens[0])
    except ValueError as exc:
        raise SimulationError(f"bad {what}: {tokens[0]!r}") from exc


def _take_ints(line: str, count: int, what: str) -> List[int]:
    tokens = _values(line)
    if len(tokens) < count:
        raise SimulationError(
            f"{what}: expected {count} values, found {len(tokens)}"
        )
    try:
        return [int(token) for token in tokens[:count]]
    except ValueError as exc:
        raise SimulationError(f"bad {what} values: {tokens[:count]}") from exc


def parse_hpl_dat(text: str) -> HPLDat:
    """Parse the supported subset of an HPL.dat file.

    Follows HPL's positional layout: two header lines, output file, device,
    then the counted lists.  Raises :class:`SimulationError` with a
    pointed message on malformed input.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) < 11:
        raise SimulationError(
            f"HPL.dat too short: {len(lines)} non-empty lines, need >= 11"
        )
    cursor = 4  # skip two header lines, output file, device
    n_sizes = _take_int(lines[cursor], "# of problem sizes")
    cursor += 1
    sizes = _take_ints(lines[cursor], n_sizes, "Ns")
    cursor += 1
    n_nbs = _take_int(lines[cursor], "# of NBs")
    cursor += 1
    nbs = _take_ints(lines[cursor], n_nbs, "NBs")
    cursor += 1
    cursor += 1  # PMAP line (parsed but unused: ranks are placed row-major)
    n_grids = _take_int(lines[cursor], "# of process grids")
    cursor += 1
    ps = _take_ints(lines[cursor], n_grids, "Ps")
    cursor += 1
    qs = _take_ints(lines[cursor], n_grids, "Qs")
    cursor += 1
    threshold = 16.0
    if cursor < len(lines):
        tokens = _values(lines[cursor])
        if tokens:
            try:
                threshold = float(tokens[0])
            except ValueError as exc:
                raise SimulationError(f"bad threshold: {tokens[0]!r}") from exc
    grids = tuple(GridShape(pr, q) for pr, q in zip(ps, qs))
    return HPLDat(
        sizes=tuple(sizes),
        block_sizes=tuple(nbs),
        grids=grids,
        threshold=threshold,
    )


def run_dat(
    spec: ClusterSpec,
    config: ClusterConfig,
    dat: HPLDat,
    params: HPLParameters | None = None,
) -> List[HPLResult]:
    """Execute every run an HPL.dat describes on the simulator.

    Each grid's size must equal the configuration's process count (as real
    HPL requires ``P*Q == np``).  Uses the 2-D walker throughout so grids
    with ``Pr > 1`` behave per :mod:`repro.exts.grid2d`.
    """
    base = params if params is not None else HPLParameters()
    results = []
    for n, nb, grid in dat.runs():
        if grid.size != config.total_processes:
            raise SimulationError(
                f"grid {grid} needs {grid.size} processes; configuration "
                f"{config.label()} supplies {config.total_processes}"
            )
        schedule = simulate_schedule_2d(
            spec, config, n, grid, params=replace(base, nb=nb)
        )
        results.append(
            HPLResult(spec_name=spec.name, config=config, n=n, schedule=schedule)
        )
    return results
