"""NetPIPE-like throughput probing (the paper's Figure 2 tool).

NetPIPE measures the round-trip time of ping-pong exchanges across a range
of message sizes and reports the achieved throughput per size.  We run the
same protocol over the simulated transport: rank 0 sends a block, rank 1
echoes it back, repeated ``repeats`` times; throughput is
``2 * repeats * block / total_time``.

The probe works both directly on a link model (closed form — used for the
Figure 2 bench since it sweeps many sizes) and through the event engine
(used in tests to confirm the two agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.simnet.api import SimCommWorld
from repro.simnet.transport import Transport


@dataclass(frozen=True)
class ThroughputPoint:
    """One NetPIPE sample."""

    block_bytes: float
    seconds_per_exchange: float
    throughput_bps: float


def probe_link(link, block_sizes: Sequence[float]) -> List[ThroughputPoint]:
    """Closed-form ping-pong throughput over any object exposing
    ``message_time(nbytes)`` (a :class:`NetworkSpec` or
    :class:`MPICHVersion`)."""
    points = []
    for block in block_sizes:
        if block <= 0:
            raise SimulationError(f"block size must be positive: {block}")
        one_way = float(link.message_time(block))
        round_trip = 2.0 * one_way
        points.append(
            ThroughputPoint(
                block_bytes=float(block),
                seconds_per_exchange=round_trip,
                throughput_bps=2.0 * float(block) / round_trip,
            )
        )
    return points


def probe_transport(
    transport: Transport,
    block_sizes: Sequence[float],
    rank_a: int = 0,
    rank_b: int = 1,
    repeats: int = 3,
) -> List[ThroughputPoint]:
    """Event-driven ping-pong between two placed ranks.

    Runs the full protocol on the discrete-event engine, so it exercises
    message ordering, blocking sends and mailbox wakeups — the validation
    path for :func:`probe_link`.
    """
    if rank_a == rank_b:
        raise SimulationError("ping-pong needs two distinct ranks")
    if repeats < 1:
        raise SimulationError("repeats must be >= 1")
    points = []
    for block in block_sizes:
        world = SimCommWorld(transport)

        def program(comm, block=float(block)):
            if comm.rank == rank_a:
                for i in range(repeats):
                    yield from comm.send(rank_b, block, tag=i)
                    yield from comm.recv(rank_b, tag=i)
            elif comm.rank == rank_b:
                for i in range(repeats):
                    yield from comm.recv(rank_a, tag=i)
                    yield from comm.send(rank_a, block, tag=i)

        finish = world.run(program, ranks=[rank_a, rank_b])
        total = max(finish.values())
        per_exchange = total / repeats
        points.append(
            ThroughputPoint(
                block_bytes=float(block),
                seconds_per_exchange=per_exchange,
                throughput_bps=2.0 * float(block) / per_exchange,
            )
        )
    return points


def standard_block_sizes(
    lo: float = 1024.0, hi: float = 131072.0, points_per_octave: int = 2
) -> np.ndarray:
    """Geometric sweep of block sizes, NetPIPE-style (1 KB .. 128 KB)."""
    if lo <= 0 or hi <= lo:
        raise SimulationError("need 0 < lo < hi")
    octaves = np.log2(hi / lo)
    count = max(2, int(round(octaves * points_per_octave)) + 1)
    return lo * 2.0 ** np.linspace(0.0, octaves, count)
