"""A small discrete-event simulation engine.

The engine drives the MPI-like communicator of :mod:`repro.simnet.api` and
the NetPIPE prober.  It is intentionally minimal but complete: a virtual
clock, a stable priority queue of events, and cooperative *processes*
written as Python generators that ``yield`` requests to the scheduler.

Processes may yield:

* :class:`Timeout` — resume after a virtual delay;
* :class:`Receive` — block until a message arrives in a mailbox;
* :class:`Put` — deposit a message into a mailbox (possibly waking a
  blocked receiver) and continue immediately.

Determinism: simultaneous events fire in scheduling order (a monotone
sequence number breaks ties), so runs are exactly reproducible.

The HPL schedule simulator does *not* run on this engine — its panel loop
is bulk-synchronous and vectorizes over processes with NumPy (see
:mod:`repro.hpl.schedule`), which is orders of magnitude faster for
measurement campaigns with hundreds of configurations.  The event engine is
the substrate for message-level experiments where per-message ordering
matters (collectives, ping-pong probing) and for validating the closed-form
broadcast costs used by the fast path.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class Timeout:
    """Yield to resume after ``delay`` units of virtual time."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


@dataclass(frozen=True)
class Receive:
    """Yield to block until a message is available in ``mailbox``.

    The received payload becomes the value of the ``yield`` expression.
    """

    mailbox: str


@dataclass(frozen=True)
class Put:
    """Yield to deposit ``payload`` into ``mailbox`` and continue."""

    mailbox: str
    payload: Any = None


ProcessGen = Generator[Any, Any, None]


class _Mailbox:
    __slots__ = ("messages", "waiters")

    def __init__(self) -> None:
        self.messages: Deque[Any] = deque()
        self.waiters: Deque[int] = deque()  # pids blocked on this mailbox


class Simulator:
    """Virtual-time scheduler for generator processes and callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._procs: Dict[int, ProcessGen] = {}
        self._next_pid = 0
        self._mailboxes: Dict[str, _Mailbox] = {}
        self._finished: Dict[int, bool] = {}

    # -- low-level scheduling --------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback))
        self._seq += 1

    # -- processes ---------------------------------------------------------------

    def spawn(self, gen: ProcessGen, delay: float = 0.0) -> int:
        """Register a generator process; returns its pid."""
        pid = self._next_pid
        self._next_pid += 1
        self._procs[pid] = gen
        self._finished[pid] = False
        self.schedule(delay, lambda: self._step(pid, None))
        return pid

    def finished(self, pid: int) -> bool:
        return self._finished.get(pid, False)

    def _mailbox(self, name: str) -> _Mailbox:
        box = self._mailboxes.get(name)
        if box is None:
            box = self._mailboxes[name] = _Mailbox()
        return box

    def _step(self, pid: int, send_value: Any) -> None:
        gen = self._procs.get(pid)
        if gen is None:
            return
        try:
            request = gen.send(send_value)
        except StopIteration:
            self._finished[pid] = True
            del self._procs[pid]
            return
        self._dispatch(pid, request)

    def _dispatch(self, pid: int, request: Any) -> None:
        if isinstance(request, Timeout):
            self.schedule(request.delay, lambda: self._step(pid, None))
        elif isinstance(request, Put):
            box = self._mailbox(request.mailbox)
            box.messages.append(request.payload)
            if box.waiters:
                waiter = box.waiters.popleft()
                payload = box.messages.popleft()
                self.schedule(0.0, lambda: self._step(waiter, payload))
            self.schedule(0.0, lambda: self._step(pid, None))
        elif isinstance(request, Receive):
            box = self._mailbox(request.mailbox)
            if box.messages and not box.waiters:
                payload = box.messages.popleft()
                self.schedule(0.0, lambda: self._step(pid, payload))
            else:
                box.waiters.append(pid)
        else:
            raise SimulationError(
                f"process yielded unsupported request: {request!r}"
            )

    # -- execution -----------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Execute events until the queue drains (or ``until``/``max_events``).

        Returns the final virtual time.  ``max_events`` guards against
        accidentally non-terminating process graphs in tests.
        """
        events = 0
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            callback()
            events += 1
            if events > max_events:
                raise SimulationError(f"exceeded {max_events} events; livelock?")
        return self.now

    def deadlocked_pids(self) -> List[int]:
        """Pids of processes still blocked on a mailbox after :meth:`run`."""
        blocked = []
        for box in self._mailboxes.values():
            blocked.extend(box.waiters)
        return sorted(pid for pid in blocked if not self._finished.get(pid, False))
