"""Simulated messaging substrate.

This subpackage provides everything below the application:

* :mod:`repro.simnet.event_sim` — a small discrete-event simulation engine
  (virtual clock, event queue, generator-based processes).
* :mod:`repro.simnet.api` — an MPI-like communicator (send/recv/bcast/
  barrier) whose operations advance *virtual* time according to link models.
* :mod:`repro.simnet.mpich` — intra-node shared-memory transport curves for
  the two MPICH versions the paper compares (Figures 1 and 2).
* :mod:`repro.simnet.transport` — resolves which link model connects two
  placed processes (same CPU / same node / network) and vectorizes hop
  costs for the broadcast ring.
* :mod:`repro.simnet.collectives` — broadcast algorithms (increasing ring,
  binomial tree) in both closed-form and event-driven forms.
* :mod:`repro.simnet.netpipe` — a NetPIPE-like ping-pong throughput prober.
"""

from repro.simnet.api import SimCommWorld
from repro.simnet.event_sim import Simulator
from repro.simnet.mpich import MPICHVersion, mpich_1_2_1, mpich_1_2_2
from repro.simnet.transport import LinkKind, Transport

__all__ = [
    "LinkKind",
    "MPICHVersion",
    "SimCommWorld",
    "Simulator",
    "Transport",
    "mpich_1_2_1",
    "mpich_1_2_2",
]
