"""Link resolution between placed processes, and vectorized hop costs.

Three link classes exist in the model, matching the paper's environment:

* ``SAME_CPU`` — two processes time-sharing one processor; messages go
  through the MPI library's shared-memory device (MPICH version curve).
* ``SAME_NODE`` — two processes on different CPUs of one node (the dual
  Pentium-II boxes); also the shared-memory device.
* ``NETWORK`` — processes on different nodes; the cluster interconnect.

The paper's modelling assumptions (homogeneous network, sender-independent
cost) mean a link's cost depends only on its class and the message size.
:class:`Transport` pre-classifies the ring edges of a placement once and
then evaluates per-step hop times for an *array* of message sizes in one
vectorized call — the schedule simulator's inner loop.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro.errors import SimulationError

if TYPE_CHECKING:  # imported lazily to avoid a cluster <-> simnet import cycle
    from repro.cluster.placement import ProcessSlot
    from repro.cluster.spec import ClusterSpec


class LinkKind(enum.Enum):
    """Classification of the channel between two processes."""

    SAME_CPU = "same-cpu"
    SAME_NODE = "same-node"
    NETWORK = "network"


def classify(a: "ProcessSlot", b: "ProcessSlot") -> LinkKind:
    """Link class between two placed processes."""
    if a.same_cpu(b):
        return LinkKind.SAME_CPU
    if a.same_node(b):
        return LinkKind.SAME_NODE
    return LinkKind.NETWORK


class Transport:
    """Message costs over a specific cluster + placement.

    Parameters
    ----------
    spec:
        The cluster (supplies the network and intra-node models).
    slots:
        Placement produced by :func:`repro.cluster.placement.place_processes`.
    """

    def __init__(self, spec: "ClusterSpec", slots: Sequence["ProcessSlot"]):
        if not slots:
            raise SimulationError("transport needs at least one process")
        self.spec = spec
        self.slots = list(slots)
        self.size = len(slots)

    # -- pairwise -------------------------------------------------------------

    def link_kind(self, rank_a: int, rank_b: int) -> LinkKind:
        return classify(self.slots[rank_a], self.slots[rank_b])

    def message_time(self, rank_a: int, rank_b: int, nbytes: float) -> float:
        """Seconds to move ``nbytes`` from ``rank_a`` to ``rank_b``."""
        if rank_a == rank_b:
            return 0.0
        kind = self.link_kind(rank_a, rank_b)
        if kind is LinkKind.NETWORK:
            return float(self.spec.network.message_time(nbytes))
        return float(self.spec.intranode.message_time(nbytes))

    # -- ring structure (HPL broadcast path) ------------------------------------

    def ring_link_kinds(self) -> List[LinkKind]:
        """Link class of each directed ring edge ``rank -> rank+1 (mod P)``."""
        return [
            classify(self.slots[i], self.slots[(i + 1) % self.size])
            for i in range(self.size)
        ]

    def ring_hop_times(self, nbytes: float) -> np.ndarray:
        """Per-edge transfer time for a message of ``nbytes`` along the ring.

        Returns an array of length ``P`` where entry ``i`` is the cost of
        the edge ``i -> i+1``.  Vectorized over edges; the (at most three)
        distinct link classes are evaluated once each.
        """
        kinds = self.ring_link_kinds()
        times = np.empty(self.size, dtype=float)
        network_time = None
        intranode_time = None
        for i, kind in enumerate(kinds):
            if kind is LinkKind.NETWORK:
                if network_time is None:
                    network_time = float(self.spec.network.message_time(nbytes))
                times[i] = network_time
            else:
                if intranode_time is None:
                    intranode_time = float(self.spec.intranode.message_time(nbytes))
                times[i] = intranode_time
        return times

    def ring_hop_times_batch(self, nbytes) -> np.ndarray:
        """Per-edge transfer times for *many* message sizes at once.

        ``nbytes`` is an array of ``K`` message sizes (one per panel step);
        the result is ``(K, P)`` where row ``k`` is bitwise identical to
        ``ring_hop_times(nbytes[k])`` — both link models evaluate their
        cost curves element-wise, so batching the sizes changes nothing
        numerically.  This is the batched schedule walker's hop kernel.
        """
        sizes = np.asarray(nbytes, dtype=float).reshape(-1)
        kinds = self.ring_link_kinds()
        is_network = np.array([kind is LinkKind.NETWORK for kind in kinds])
        out = np.empty((sizes.shape[0], self.size), dtype=float)
        if is_network.any():
            network = np.asarray(self.spec.network.message_time(sizes), dtype=float)
            out[:, is_network] = network[:, None]
        if (~is_network).any():
            intranode = np.asarray(
                self.spec.intranode.message_time(sizes), dtype=float
            )
            out[:, ~is_network] = intranode[:, None]
        return out

    def describe_ring(self) -> str:
        """Human-readable ring path, for debugging placements."""
        parts = []
        kinds = self.ring_link_kinds()
        for i in range(self.size):
            nxt = (i + 1) % self.size
            parts.append(f"{i}->{nxt}[{kinds[i].value}]")
        return " ".join(parts)
