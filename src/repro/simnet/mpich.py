"""Intra-node shared-memory transport models per MPICH version.

The paper's Section 2 traces a reported multiprocessing anomaly (Sasou et
al.) to the MPI library: with MPICH 1.2.1 the throughput between two
processes *on the same processor* collapses for large messages (its
shared-memory device blocks when its internal buffer fills, and the
paper-era scheduler made the handoff pathological), while MPICH 1.2.2
sustains ~2.2 Gbit/s.  NetPIPE measurements of the two versions are the
paper's Figure 2; the impact on whole-HPL multiprocessing is Figure 1.

We model each version as a piecewise log-linear throughput curve over the
message size, anchored at the block sizes NetPIPE sweeps (1 KB .. 128 KB),
with flat extrapolation beyond the anchors, plus a per-message latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ClusterError
from repro.units import GBPS_IN_BYTES, KB, USEC


@dataclass(frozen=True)
class MPICHVersion:
    """One MPI library's intra-node transport curve.

    Parameters
    ----------
    name:
        Version label (``"mpich-1.2.2"``).
    latency_s:
        Per-message shared-memory latency.
    anchor_bytes / anchor_bps:
        Matched arrays: message sizes and the sustained throughput
        (bytes/s) achieved at those sizes.  Interpolation between anchors
        is linear in ``log(size)``.
    """

    name: str
    latency_s: float
    anchor_bytes: Tuple[float, ...]
    anchor_bps: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.anchor_bytes) != len(self.anchor_bps):
            raise ClusterError(f"{self.name}: anchor arrays must match in length")
        if len(self.anchor_bytes) < 2:
            raise ClusterError(f"{self.name}: need at least two anchors")
        sizes = np.asarray(self.anchor_bytes, dtype=float)
        if np.any(np.diff(sizes) <= 0):
            raise ClusterError(f"{self.name}: anchor sizes must strictly increase")
        if np.any(np.asarray(self.anchor_bps) <= 0):
            raise ClusterError(f"{self.name}: anchor throughputs must be positive")
        if self.latency_s < 0:
            raise ClusterError(f"{self.name}: latency must be >= 0")

    def effective_bandwidth(self, nbytes):
        """Sustained bandwidth (bytes/s) at a message size (scalar or array)."""
        b = np.maximum(np.asarray(nbytes, dtype=float), 1.0)
        logx = np.log(b)
        log_anchor = np.log(np.asarray(self.anchor_bytes, dtype=float))
        bw = np.interp(logx, log_anchor, np.asarray(self.anchor_bps, dtype=float))
        return bw if bw.ndim else float(bw)

    def message_time(self, nbytes):
        """Transfer time in seconds (scalar or array)."""
        b = np.asarray(nbytes, dtype=float)
        if np.any(b < 0):
            raise ClusterError("message size must be >= 0")
        bw = np.asarray(self.effective_bandwidth(b), dtype=float)
        t = self.latency_s + b / bw
        return t if t.ndim else float(t)

    def throughput(self, nbytes):
        """Achieved end-to-end throughput including latency (bytes/s)."""
        b = np.asarray(nbytes, dtype=float)
        t = np.asarray(self.message_time(b), dtype=float)
        result = np.where(t > 0, b / np.maximum(t, 1e-30), 0.0)
        return result if result.ndim else float(result)


def mpich_1_2_1() -> MPICHVersion:
    """MPICH 1.2.1: throughput collapses for messages past ~32 KB.

    The collapse is the signature of Figure 2(a); HPL panel broadcasts are
    hundreds of KB, landing squarely in the degraded region, which is why
    multiprocessing performance falls apart in Figure 1(a).
    """
    return MPICHVersion(
        name="mpich-1.2.1",
        latency_s=18 * USEC,
        anchor_bytes=(1 * KB, 4 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 1024 * KB),
        anchor_bps=(
            0.35 * GBPS_IN_BYTES,
            0.90 * GBPS_IN_BYTES,
            1.30 * GBPS_IN_BYTES,
            0.90 * GBPS_IN_BYTES,
            0.35 * GBPS_IN_BYTES,
            0.18 * GBPS_IN_BYTES,
            0.06 * GBPS_IN_BYTES,
        ),
    )


def mpich_1_2_2() -> MPICHVersion:
    """MPICH 1.2.2: buffering fixed; saturates near 2.2 Gbit/s (Figure 2(b))."""
    return MPICHVersion(
        name="mpich-1.2.2",
        latency_s=15 * USEC,
        anchor_bytes=(1 * KB, 4 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 1024 * KB),
        anchor_bps=(
            0.40 * GBPS_IN_BYTES,
            1.05 * GBPS_IN_BYTES,
            1.75 * GBPS_IN_BYTES,
            2.00 * GBPS_IN_BYTES,
            2.15 * GBPS_IN_BYTES,
            2.20 * GBPS_IN_BYTES,
            2.20 * GBPS_IN_BYTES,
        ),
    )


def mpich_1_2_5() -> MPICHVersion:
    """MPICH 1.2.5, the version the paper's final measurements use (Table 1).

    Behaviour is close to 1.2.2 with slightly better large-message
    throughput; we keep it distinct so campaigns can state exactly what
    they ran.
    """
    base = mpich_1_2_2()
    return MPICHVersion(
        name="mpich-1.2.5",
        latency_s=14 * USEC,
        anchor_bytes=base.anchor_bytes,
        anchor_bps=tuple(bw * 1.05 for bw in base.anchor_bps),
    )
