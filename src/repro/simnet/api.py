"""MPI-like communication API over the discrete-event engine.

:class:`SimCommWorld` owns a :class:`~repro.simnet.event_sim.Simulator` and
a :class:`~repro.simnet.transport.Transport`; :class:`SimComm` is the
per-rank handle a process generator uses, mirroring the mpi4py surface
(``send`` / ``recv`` / ``bcast`` / ``barrier``) but advancing *virtual*
time according to the link models instead of moving real bytes.

Processes are written as generators and must ``yield from`` communicator
calls, e.g.::

    def worker(comm: SimComm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1024, payload="panel")
        else:
            msg = yield from comm.recv(0)

Timing semantics (deliberately simple, matching the paper's assumptions):
a send costs the full message time on the *sender* (rendezvous-style
blocking send), and the message becomes available to the receiver when the
transfer finishes.  A receive blocks until the message is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

__all__ = ["Message", "SimComm", "SimCommWorld"]

from repro.errors import SimulationError
from repro.simnet.event_sim import Put, Receive, Simulator, Timeout
from repro.simnet.transport import Transport


@dataclass(frozen=True)
class Message:
    """Envelope moved between ranks."""

    source: int
    dest: int
    tag: int
    nbytes: float
    payload: Any = None


def _mailbox_name(dest: int, source: int, tag: int) -> str:
    return f"p2p:{dest}:{source}:{tag}"


class SimComm:
    """Per-rank communicator handle."""

    def __init__(self, world: "SimCommWorld", rank: int):
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def now(self) -> float:
        """Current virtual time (valid while the simulation runs)."""
        return self.world.sim.now

    # -- point to point -----------------------------------------------------

    def send(
        self, dest: int, nbytes: float, payload: Any = None, tag: int = 0
    ) -> Generator[Any, Any, None]:
        """Blocking send: occupies the sender for the full transfer time."""
        if not (0 <= dest < self.size):
            raise SimulationError(f"send to invalid rank {dest}")
        if dest == self.rank:
            raise SimulationError("send to self is not supported")
        cost = self.world.transport.message_time(self.rank, dest, nbytes)
        yield Timeout(cost)
        message = Message(self.rank, dest, tag, nbytes, payload)
        yield Put(_mailbox_name(dest, self.rank, tag), message)

    def recv(self, source: int, tag: int = 0) -> Generator[Any, Any, Message]:
        """Blocking receive; returns the :class:`Message`."""
        if not (0 <= source < self.size):
            raise SimulationError(f"recv from invalid rank {source}")
        message = yield Receive(_mailbox_name(self.rank, source, tag))
        return message

    # -- collectives ------------------------------------------------------------

    def bcast_ring(
        self, root: int, nbytes: float, payload: Any = None, tag: int = 0
    ) -> Generator[Any, Any, Any]:
        """Increasing-ring broadcast (HPL's long-message algorithm).

        The root sends to ``root+1``; every other rank receives from its
        predecessor and forwards to its successor (except the last).
        Returns the payload at every rank.
        """
        if self.size == 1:
            return payload
        distance = (self.rank - root) % self.size
        if distance == 0:
            yield from self.send((self.rank + 1) % self.size, nbytes, payload, tag)
            return payload
        message = yield from self.recv((self.rank - 1) % self.size, tag)
        if distance != self.size - 1:
            yield from self.send(
                (self.rank + 1) % self.size, nbytes, message.payload, tag
            )
        return message.payload

    def bcast_binomial(
        self, root: int, nbytes: float, payload: Any = None, tag: int = 0
    ) -> Generator[Any, Any, Any]:
        """Binomial-tree broadcast (MPI's short-message algorithm)."""
        size = self.size
        if size == 1:
            return payload
        vrank = (self.rank - root) % size
        data = payload
        # Receive phase: find the lowest set bit of vrank; the parent is
        # vrank with that bit cleared (MPICH's classic binomial).
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = ((vrank - mask) + root) % size
                message = yield from self.recv(parent, tag)
                data = message.payload
                break
            mask <<= 1
        # Send phase: children are vrank + mask' for mask' descending below
        # the receive mask (the root descends from the highest power of 2).
        mask >>= 1
        while mask > 0:
            if vrank + mask < size:
                child = ((vrank + mask) + root) % size
                yield from self.send(child, nbytes, data, tag)
            mask >>= 1
        return data

    def scatter(
        self, root: int, nbytes_each: float, payloads: Optional[List[Any]] = None,
        tag: int = 0,
    ) -> Generator[Any, Any, Any]:
        """Linear scatter: the root sends slice ``i`` to rank ``i``.

        Returns this rank's slice.  ``payloads`` (root only) must have one
        entry per rank; other ranks pass ``None``.
        """
        if self.rank == root:
            data = payloads if payloads is not None else [None] * self.size
            if len(data) != self.size:
                raise SimulationError(
                    f"scatter needs {self.size} payloads, got {len(data)}"
                )
            for dest in range(self.size):
                if dest == root:
                    continue
                yield from self.send(dest, nbytes_each, data[dest], tag)
            return data[root]
        message = yield from self.recv(root, tag)
        return message.payload

    def gather(
        self, root: int, nbytes_each: float, payload: Any = None, tag: int = 0
    ) -> Generator[Any, Any, Optional[List[Any]]]:
        """Linear gather: every rank sends to the root; the root returns
        the rank-ordered list, others ``None``."""
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = payload
            for source in range(self.size):
                if source == root:
                    continue
                message = yield from self.recv(source, tag)
                out[source] = message.payload
            return out
        yield from self.send(root, nbytes_each, payload, tag)
        return None

    def allgather(
        self, nbytes_each: float, payload: Any = None, tag: int = 0
    ) -> Generator[Any, Any, List[Any]]:
        """Ring allgather: P-1 rounds, each rank forwarding the slice it
        just received — the bandwidth-optimal classic."""
        size = self.size
        slices: List[Any] = [None] * size
        slices[self.rank] = payload
        current = self.rank
        for step in range(size - 1):
            dest = (self.rank + 1) % size
            source = (self.rank - 1) % size
            yield from self.send(dest, nbytes_each, (current, slices[current]), tag + step)
            message = yield from self.recv(source, tag + step)
            index, data = message.payload
            slices[index] = data
            current = index
        return slices

    def allreduce_sum(
        self, value: float, nbytes: float = 8.0, tag: int = 0
    ) -> Generator[Any, Any, float]:
        """Gather-to-zero + broadcast sum reduction (correctness over
        asymptotic optimality; the schedule simulator never calls this —
        it exists for message-level experiments and tests)."""
        gathered = yield from self.gather(0, nbytes, value, tag)
        if self.rank == 0:
            total = float(sum(gathered))  # type: ignore[arg-type]
            result = yield from self.bcast_binomial(0, nbytes, total, tag + 500_000)
        else:
            result = yield from self.bcast_binomial(0, nbytes, None, tag + 500_000)
        return float(result)

    def barrier(self, tag: int = 0) -> Generator[Any, Any, None]:
        """Linear barrier through rank 0 (correctness over speed)."""
        zero_bytes = 1.0
        if self.rank == 0:
            for source in range(1, self.size):
                yield from self.recv(source, tag=tag + 1_000_000)
            for dest in range(1, self.size):
                yield from self.send(dest, zero_bytes, tag=tag + 2_000_000)
        else:
            yield from self.send(0, zero_bytes, tag=tag + 1_000_000)
            yield from self.recv(0, tag=tag + 2_000_000)


class SimCommWorld:
    """A set of ranks plus the engine that runs them."""

    def __init__(self, transport: Transport):
        self.transport = transport
        self.size = transport.size
        self.sim = Simulator()
        self._finish_times: Dict[int, float] = {}

    def comm(self, rank: int) -> SimComm:
        if not (0 <= rank < self.size):
            raise SimulationError(f"invalid rank {rank}")
        return SimComm(self, rank)

    def run(
        self,
        program: Callable[[SimComm], Generator[Any, Any, Any]],
        ranks: Optional[Sequence[int]] = None,
    ) -> Dict[int, float]:
        """Run ``program(comm)`` on every rank; return per-rank finish times.

        Raises :class:`SimulationError` on deadlock (a rank still blocked
        after the event queue drains).
        """
        selected = list(ranks) if ranks is not None else list(range(self.size))
        pid_to_rank: Dict[int, int] = {}

        def wrap(rank: int) -> Generator[Any, Any, None]:
            yield from program(self.comm(rank))
            self._finish_times[rank] = self.sim.now

        for rank in selected:
            pid = self.sim.spawn(wrap(rank))
            pid_to_rank[pid] = rank
        self.sim.run()
        stuck = self.sim.deadlocked_pids()
        if stuck:
            ranks_stuck = sorted(pid_to_rank.get(pid, -1) for pid in stuck)
            raise SimulationError(f"deadlock: ranks {ranks_stuck} never finished")
        missing = [rank for rank in selected if rank not in self._finish_times]
        if missing:
            raise SimulationError(f"ranks {missing} did not run to completion")
        return dict(self._finish_times)
