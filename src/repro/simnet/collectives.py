"""Broadcast cost models, closed-form and event-driven.

HPL broadcasts each factored panel along the process ring (its default
long-message algorithm is the *increasing ring*).  The schedule simulator
needs the per-rank delivery and busy times of that broadcast *in closed
form* (it runs thousands of panel steps); this module provides them, and
the event-driven equivalents over :class:`~repro.simnet.api.SimComm` are
used in tests to validate the closed forms against an actual message-level
execution.

Pipelining across panel steps: in real HPL the ring forwarding of panel
``k`` overlaps with the update of panel ``k-1`` and the factorization of
panel ``k+1``, so a rank far from the root does *not* wait the full chain
of store-and-forward hops in steady state.  The closed form exposes this
as a ``pipeline_factor`` in [0, 1]: a rank at ring distance ``d`` waits ::

    wait(d) = hop_1 + pipeline_factor * (hop_2 + ... + hop_d)

``pipeline_factor = 1`` is a strict bulk-synchronous store-and-forward
chain (what the event-driven run reproduces exactly); values below 1 model
cross-step overlap.  The calibrated default lives with the HPL schedule
parameters, not here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SimulationError


def ring_delivery_times(
    hop_times: Sequence[float],
    root: int = 0,
    pipeline_factor: float = 1.0,
) -> np.ndarray:
    """Virtual time at which each rank holds the panel, relative to the
    moment the root starts sending.

    ``hop_times[i]`` is the cost of edge ``i -> i+1 (mod P)``.  The root's
    own delivery time is 0.  With ``pipeline_factor = 1`` this is the exact
    store-and-forward chain: rank at distance ``d`` receives at
    ``sum of the first d hop costs``.
    """
    hops = np.asarray(hop_times, dtype=float)
    p = hops.shape[0]
    if p == 0:
        raise SimulationError("empty ring")
    if not (0 <= root < p):
        raise SimulationError(f"invalid root {root} for ring of {p}")
    if not (0.0 <= pipeline_factor <= 1.0):
        raise SimulationError(f"pipeline_factor must be in [0,1]: {pipeline_factor}")
    if p == 1:
        return np.zeros(1)
    # Edge used to reach the rank at distance d (1-based) is (root+d-1) mod p.
    edge_order = (root + np.arange(p - 1)) % p
    chain = hops[edge_order]
    discounted = chain.copy()
    discounted[1:] *= pipeline_factor
    arrival_by_distance = np.concatenate(([0.0], np.cumsum(discounted)))
    out = np.empty(p, dtype=float)
    distances = (np.arange(p) - root) % p
    out[:] = arrival_by_distance[distances]
    return out


def ring_delivery_times_batch(
    hop_times,
    roots,
    pipeline_factor: float = 1.0,
) -> np.ndarray:
    """Root-vector form of :func:`ring_delivery_times`.

    ``hop_times`` is ``(K, P)`` — one ring of per-edge costs per step —
    and ``roots`` is ``(K,)`` — that step's broadcast root.  Returns the
    ``(K, P)`` delivery times, row ``k`` bitwise identical to
    ``ring_delivery_times(hop_times[k], roots[k], pipeline_factor)``
    (same element-wise operations, and the cumulative sum along the chain
    accumulates in the same left-to-right order).  A 1-D ``hop_times`` is
    broadcast across all roots.
    """
    hops = np.asarray(hop_times, dtype=float)
    roots_arr = np.asarray(roots, dtype=int)
    if roots_arr.ndim != 1:
        raise SimulationError(f"roots must be 1-D, got shape {roots_arr.shape}")
    if hops.ndim == 1:
        hops = np.broadcast_to(hops, (roots_arr.shape[0], hops.shape[0]))
    if hops.ndim != 2:
        raise SimulationError(f"hop_times must be 1-D or 2-D, got {hops.ndim}-D")
    steps, p = hops.shape
    if p == 0:
        raise SimulationError("empty ring")
    if steps != roots_arr.shape[0]:
        raise SimulationError(
            f"{steps} hop rows but {roots_arr.shape[0]} roots"
        )
    if steps and (roots_arr.min() < 0 or roots_arr.max() >= p):
        bad = roots_arr[(roots_arr < 0) | (roots_arr >= p)][0]
        raise SimulationError(f"invalid root {bad} for ring of {p}")
    if not (0.0 <= pipeline_factor <= 1.0):
        raise SimulationError(f"pipeline_factor must be in [0,1]: {pipeline_factor}")
    if p == 1:
        return np.zeros((steps, 1))
    # Edge used to reach the rank at distance d (1-based) is (root+d-1) mod p.
    edge_order = (roots_arr[:, None] + np.arange(p - 1)[None, :]) % p
    chain = np.take_along_axis(hops, edge_order, axis=1)
    discounted = chain.copy()
    discounted[:, 1:] *= pipeline_factor
    arrival_by_distance = np.concatenate(
        [np.zeros((steps, 1)), np.cumsum(discounted, axis=1)], axis=1
    )
    distances = (np.arange(p)[None, :] - roots_arr[:, None]) % p
    return np.take_along_axis(arrival_by_distance, distances, axis=1)


def ring_busy_times(
    hop_times: Sequence[float],
    root: int = 0,
) -> np.ndarray:
    """Time each rank spends *transmitting* during the ring broadcast.

    The root sends once (edge ``root``); intermediate ranks forward once;
    the last rank only receives.  Receive time is accounted through
    :func:`ring_delivery_times` (waiting), so it is excluded here to avoid
    double counting.
    """
    hops = np.asarray(hop_times, dtype=float)
    p = hops.shape[0]
    if p == 0:
        raise SimulationError("empty ring")
    busy = np.zeros(p, dtype=float)
    if p == 1:
        return busy
    for distance in range(p - 1):  # the rank at distance p-1 does not forward
        rank = (root + distance) % p
        busy[rank] = hops[rank]
    return busy


def binomial_delivery_times(
    per_hop_time: float,
    size: int,
    root: int = 0,
) -> np.ndarray:
    """Delivery times for a binomial-tree broadcast with uniform hop cost.

    MPICH's classic algorithm: each parent sends to its children with
    descending masks, one blocking send per round, so a rank at virtual
    position ``v > 0`` (``v = (rank - root) mod size``) receives in round
    ``ceil(log2(size)) - trailing_zeros(v)`` — e.g. for size 8 the arrival
    rounds are ``[0, 3, 2, 3, 1, 3, 2, 3]``.
    """
    if size < 1:
        raise SimulationError("size must be >= 1")
    if per_hop_time < 0:
        raise SimulationError("negative hop time")
    total_rounds = max(size - 1, 0).bit_length()
    rounds = np.zeros(size, dtype=float)
    for rank in range(size):
        v = (rank - root) % size
        if v == 0:
            continue
        trailing_zeros = (v & -v).bit_length() - 1
        rounds[rank] = total_rounds - trailing_zeros
    return rounds * per_hop_time


# -- event-driven counterparts (validation) -----------------------------------


def run_ring_bcast(world, root: int, nbytes: float):
    """Execute an increasing-ring broadcast on a :class:`SimCommWorld`;
    returns per-rank finish times.  Used by tests to validate
    :func:`ring_delivery_times` with ``pipeline_factor = 1``."""

    def program(comm):
        yield from comm.bcast_ring(root, nbytes)

    return world.run(program)


def run_binomial_bcast(world, root: int, nbytes: float):
    """Execute a binomial broadcast on a :class:`SimCommWorld`."""

    def program(comm):
        yield from comm.bcast_binomial(root, nbytes)

    return world.run(program)
