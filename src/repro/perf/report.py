"""Measurement in the loop (perf-engine layer 3).

A speedup nobody can observe is a speedup nobody can trust.
:class:`PerfReport` accumulates wall-clock timings per pipeline stage
(campaign, evaluation, fit, compose, adjust, search) plus the estimate
cache's hit/miss statistics, so every
:class:`~repro.core.pipeline.EstimationPipeline` can say where its time
went — and ``benchmarks/bench_perf_engine.py`` can record the
serial-vs-parallel and looped-vs-batched comparisons from the same
instrumentation the production path uses.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.perf.cache import EstimateCache

#: Canonical stage order for rendering (unknown stages append after).
PIPELINE_STAGES = ("campaign", "evaluation", "fit", "compose", "adjust", "search")

#: Stages of the online-calibration loop (:mod:`repro.calibrate`), timed
#: through the same ledger and rendered after the pipeline stages.
CALIBRATION_STAGES = ("ingest", "refit", "shadow", "promote")


@dataclass
class StageTiming:
    """Accumulated wall time of one pipeline stage."""

    seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.calls += 1


@dataclass
class CostStats:
    """Accumulated Pareto-frontier accounting of one pipeline.

    One entry per :meth:`PerfReport.record_frontier` call; sizes add up
    across runs so a batched ``pareto_many`` sweep reports its total
    frontier yield alongside the search counters that produced it.
    """

    frontiers: int = 0
    points: int = 0
    #: Frontier runs restricted by a ``max_cost`` budget.
    constrained: int = 0
    #: Frontier runs stopped early by an evaluation budget (their points
    #: are exact only over the visited candidates).
    incomplete: int = 0

    def record(self, outcome) -> None:
        """Fold one duck-typed :class:`repro.cost.pareto.FrontierOutcome`."""
        self.frontiers += 1
        self.points += len(outcome.points)
        if getattr(outcome, "max_cost", None) is not None:
            self.constrained += 1
        if not getattr(outcome, "complete", True):
            self.incomplete += 1

    def to_dict(self) -> Dict[str, int]:
        return {
            "frontiers": self.frontiers,
            "points": self.points,
            "constrained": self.constrained,
            "incomplete": self.incomplete,
        }

    def describe(self) -> str:
        detail = f"{self.frontiers} frontiers, {self.points} points"
        if self.constrained:
            detail += f", {self.constrained} cost-constrained"
        if self.incomplete:
            detail += f", {self.incomplete} incomplete"
        return detail


@dataclass
class GridKernelStats:
    """Accounting of the candidate-axis grid estimation kernel.

    One :meth:`record_block` per kernel invocation (a block of candidate
    configurations evaluated in one vectorized pass); candidates that had
    to take the per-candidate scalar/batched path instead — unsupported
    backend, memory bins — are counted as :attr:`scalar_fallback` rows so
    the vectorized coverage is observable in ``--profile`` output.
    """

    #: Kernel invocations (one per evaluated candidate block).
    blocks: int = 0
    #: Candidate rows across all blocks (``candidates / blocks`` is the
    #: average block width the search layer achieved).
    block_candidates: int = 0
    #: candidate x size cells the kernel evaluated vectorized.
    cells: int = 0
    #: Candidate rows that fell back to the per-candidate batched path.
    scalar_fallback: int = 0

    def record_block(self, candidates: int, sizes: int) -> None:
        self.blocks += 1
        self.block_candidates += candidates
        self.cells += candidates * sizes

    def record_fallback(self, candidates: int) -> None:
        self.scalar_fallback += candidates

    @property
    def candidates_per_block(self) -> float:
        return self.block_candidates / self.blocks if self.blocks else 0.0

    def to_dict(self) -> Dict[str, int]:
        return {
            "blocks": self.blocks,
            "block_candidates": self.block_candidates,
            "cells": self.cells,
            "scalar_fallback": self.scalar_fallback,
        }

    def describe(self) -> str:
        detail = (
            f"{self.blocks} blocks, "
            f"{self.candidates_per_block:.1f} candidates/block, "
            f"{self.cells} kernel cells"
        )
        if self.scalar_fallback:
            detail += f", {self.scalar_fallback} scalar-fallback rows"
        return detail


class PerfReport:
    """Per-stage wall-clock ledger of one pipeline (plus cache stats)."""

    def __init__(self) -> None:
        self._stages: Dict[str, StageTiming] = {}
        self.cache: Optional[EstimateCache] = None
        #: Schedule-walker counters (duck-typed
        #: :class:`repro.hpl.schedule.WalkerStats` — kept loose so the perf
        #: layer stays below ``hpl`` in the import graph).
        self.walker: Optional[object] = None
        #: Per-backend search counters (duck-typed
        #: :class:`repro.core.search.SearchStats` — same layering rule as
        #: the walker), accumulated across every optimize call.
        self.search_backends: Dict[str, Dict[str, int]] = {}
        #: Pareto-frontier accounting (None until a frontier is computed).
        self.cost: Optional[CostStats] = None
        #: Grid-kernel accounting (None until the engine builds a kernel).
        self.grid: Optional[GridKernelStats] = None

    def record_search(self, stats) -> None:
        """Fold one search run's :class:`SearchStats` into the per-backend
        counters; the search engine calls this per optimize outcome."""
        if stats is None:
            return
        entry = self.search_backends.setdefault(
            stats.backend or "unknown",
            {
                "runs": 0,
                "evaluations": 0,
                "pruned_subtrees": 0,
                "pruned_candidates": 0,
                "bound_evaluations": 0,
                "dedup_hits": 0,
                "exhausted": 0,
                "stuck": 0,
            },
        )
        entry["runs"] += 1
        entry["evaluations"] += stats.evaluations
        entry["pruned_subtrees"] += stats.pruned_subtrees
        entry["pruned_candidates"] += stats.pruned_candidates
        entry["bound_evaluations"] += stats.bound_evaluations
        entry["dedup_hits"] += getattr(stats, "dedup_hits", 0)
        entry["exhausted"] += int(stats.exhausted)
        entry["stuck"] += int(getattr(stats, "stuck", False))

    def record_frontier(self, outcome) -> None:
        """Fold one Pareto-frontier outcome (duck-typed
        :class:`repro.cost.pareto.FrontierOutcome`) into :attr:`cost`."""
        if outcome is None:
            return
        if self.cost is None:
            self.cost = CostStats()
        self.cost.record(outcome)

    def record_walker(self, stats) -> None:
        """Fold a walker-stats delta (``snapshot``/``delta``/``merge``
        protocol of :class:`repro.hpl.schedule.WalkerStats`) into the
        report; the measure and evaluation stages call this with the
        counters their campaign runs accumulated."""
        if self.walker is None:
            self.walker = stats.snapshot()
        else:
            self.walker.merge(stats)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block and charge it to ``name`` (accumulating)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def add(self, name: str, seconds: float) -> None:
        self._stages.setdefault(name, StageTiming()).add(seconds)

    def stage_seconds(self, name: str) -> float:
        timing = self._stages.get(name)
        return timing.seconds if timing else 0.0

    def stage_calls(self, name: str) -> int:
        timing = self._stages.get(name)
        return timing.calls if timing else 0

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self._stages.values())

    def stages(self) -> List[str]:
        """Recorded stage names, canonical order first."""
        canonical = PIPELINE_STAGES + CALIBRATION_STAGES
        known = [s for s in canonical if s in self._stages]
        extra = [s for s in self._stages if s not in canonical]
        return known + extra

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            name: {"seconds": t.seconds, "calls": t.calls}
            for name, t in self._stages.items()
        }
        if self.cache is not None:
            out["cache"] = {
                "fingerprint": self.cache.fingerprint,
                "entries": len(self.cache),
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
            }
        if self.walker is not None:
            out["walker"] = self.walker.to_dict()
        if self.search_backends:
            out["search_backends"] = {
                name: dict(entry)
                for name, entry in sorted(self.search_backends.items())
            }
        if self.cost is not None:
            out["cost"] = self.cost.to_dict()
        if self.grid is not None:
            out["grid"] = self.grid.to_dict()
        return out

    def render(self) -> str:
        """Human-readable stage table (what the benches persist)."""
        lines = ["stage        calls   seconds"]
        for name in self.stages():
            timing = self._stages[name]
            lines.append(f"{name:<12} {timing.calls:>5}   {timing.seconds:9.4f}")
        lines.append(f"{'total':<12} {'':>5}   {self.total_seconds:9.4f}")
        if self.cache is not None:
            lines.append(f"cache: {self.cache.describe()}")
        if self.walker is not None:
            lines.append(f"walker: {self.walker.describe()}")
        for name, entry in sorted(self.search_backends.items()):
            detail = (
                f"search[{name}]: {entry['runs']} runs, "
                f"{entry['evaluations']} evaluations"
            )
            if entry["pruned_subtrees"]:
                detail += (
                    f", pruned {entry['pruned_candidates']} candidates "
                    f"in {entry['pruned_subtrees']} subtrees"
                )
            if entry["exhausted"]:
                detail += f", {entry['exhausted']} budget-exhausted"
            if entry.get("dedup_hits"):
                detail += f", {entry['dedup_hits']} dedup hits"
            if entry.get("stuck"):
                detail += f", {entry['stuck']} stuck"
            lines.append(detail)
        if self.cost is not None:
            lines.append(f"cost: {self.cost.describe()}")
        if self.grid is not None:
            lines.append(f"grid: {self.grid.describe()}")
        return "\n".join(lines)
