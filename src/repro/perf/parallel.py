"""Parallel fan-out of measurement runs (perf-engine layer 1).

The paper's whole economic argument is that model construction is cheap
relative to measuring everything (Tables 3/6) — but our *simulated*
campaigns were still a serial Python loop.  Every measurement in a
campaign is independent and deterministically seeded by
``(seed, config, N, trial)`` (see :func:`repro.hpl.driver.run_hpl`), so
the runs can be fanned out over a process pool without changing a single
bit of the resulting dataset: :class:`ParallelRunner` preserves task
order and each task derives its own noise stream, hence
``workers=k`` produces the same records as ``workers=1`` in the same
order.  The determinism tests in ``tests/measure/test_parallel_campaign.py``
assert exactly that, outliers and all.

Oversubscription guard: asking for more workers than the machine has
CPUs silently *slows down* CPU-bound fan-out, so :func:`resolve_workers`
clamps the requested count to the available CPUs and warns (once per
process) when it does.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import MeasurementError

T = TypeVar("T")
R = TypeVar("R")


#: cgroup v2 CPU quota file (``"max 100000"`` or ``"<quota> <period>"``).
_CGROUP_CPU_MAX = "/sys/fs/cgroup/cpu.max"


def _cgroup_cpu_limit(path: str = _CGROUP_CPU_MAX) -> Optional[int]:
    """Effective CPU count from a cgroup v2 quota, or ``None`` if unbounded.

    Containers commonly cap CPU *bandwidth* (``cpu.max``) without
    shrinking the affinity mask, so ``sched_getaffinity`` alone
    over-reports — a pod limited to 2 CPUs on a 64-core node still sees
    64 in its mask.  The quota is ``ceil(quota / period)`` whole CPUs;
    malformed or absent files mean "no limit" rather than an error.
    """
    try:
        with open(path, "r") as fh:
            parts = fh.read().split()
        if len(parts) != 2 or parts[0] == "max":
            return None
        quota, period = int(parts[0]), int(parts[1])
        if quota <= 0 or period <= 0:
            return None
        return max(1, -(-quota // period))
    except (OSError, ValueError):
        return None


def available_cpu_count() -> int:
    """CPUs this process may use.

    The minimum of the scheduler affinity mask (taskset, cpusets) and
    any cgroup v2 bandwidth quota (container CPU limits) — either can be
    the binding constraint, and ``os.cpu_count()`` respects neither.
    """
    try:
        cpus = len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cpus = os.cpu_count() or 1
    limit = _cgroup_cpu_limit()
    if limit is not None:
        cpus = min(cpus, limit)
    return cpus


def default_worker_count(cap: Optional[int] = None) -> int:
    """A sensible default worker count: all available CPUs, optionally
    capped.  The serving fleet (``repro serve --workers 0``) and any
    other auto-sizing caller share this one definition of "available" so
    container limits are respected everywhere.
    """
    cpus = available_cpu_count()
    if cap is not None:
        cpus = min(cpus, cap)
    return max(1, cpus)


_oversubscription_warned = False


def reset_oversubscription_warning() -> None:
    """Re-arm the once-per-process oversubscription warning (test hook)."""
    global _oversubscription_warned
    _oversubscription_warned = False


def resolve_workers(workers: int) -> int:
    """Validate and clamp a ``workers=`` request.

    Returns ``min(workers, available CPUs)``; the first time a request is
    clamped, a :class:`RuntimeWarning` explains why (after that the clamp
    stays silent — campaigns resolve workers per call and one nag is
    enough).
    """
    global _oversubscription_warned
    if workers < 1:
        raise MeasurementError(f"workers must be >= 1, got {workers}")
    cpus = available_cpu_count()
    if workers > cpus:
        if not _oversubscription_warned:
            warnings.warn(
                f"workers={workers} exceeds the {cpus} available CPU(s); "
                f"clamping to {cpus} to avoid oversubscription",
                RuntimeWarning,
                stacklevel=3,
            )
            _oversubscription_warned = True
        return cpus
    return workers


class ParallelRunner:
    """Ordered map over a process pool (or inline when ``workers == 1``).

    The callable must be picklable (a module-level function or a
    :func:`functools.partial` of one) because workers are separate
    processes; the items likewise.  Results come back in input order, so
    a campaign assembled from them is indistinguishable from the serial
    loop's.
    """

    def __init__(self, workers: int = 1):
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving order.

        Falls back to the plain serial loop when the pool cannot help
        (one worker or at most one item) — that path is byte-for-byte
        today's behavior and never forks.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        # Chunking amortizes IPC: a campaign run is ~ms-scale, so per-task
        # submission overhead would eat the win.
        chunksize = max(1, len(items) // (self.workers * 4))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
