"""Parallel fan-out of measurement runs (perf-engine layer 1).

The paper's whole economic argument is that model construction is cheap
relative to measuring everything (Tables 3/6) — but our *simulated*
campaigns were still a serial Python loop.  Every measurement in a
campaign is independent and deterministically seeded by
``(seed, config, N, trial)`` (see :func:`repro.hpl.driver.run_hpl`), so
the runs can be fanned out over a process pool without changing a single
bit of the resulting dataset: :class:`ParallelRunner` preserves task
order and each task derives its own noise stream, hence
``workers=k`` produces the same records as ``workers=1`` in the same
order.  The determinism tests in ``tests/measure/test_parallel_campaign.py``
assert exactly that, outliers and all.

Oversubscription guard: asking for more workers than the machine has
CPUs silently *slows down* CPU-bound fan-out, so :func:`resolve_workers`
clamps the requested count to the available CPUs and warns (once per
process) when it does.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

from repro.errors import MeasurementError

T = TypeVar("T")
R = TypeVar("R")


def available_cpu_count() -> int:
    """CPUs this process may use (affinity-aware where the OS supports it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


_oversubscription_warned = False


def reset_oversubscription_warning() -> None:
    """Re-arm the once-per-process oversubscription warning (test hook)."""
    global _oversubscription_warned
    _oversubscription_warned = False


def resolve_workers(workers: int) -> int:
    """Validate and clamp a ``workers=`` request.

    Returns ``min(workers, available CPUs)``; the first time a request is
    clamped, a :class:`RuntimeWarning` explains why (after that the clamp
    stays silent — campaigns resolve workers per call and one nag is
    enough).
    """
    global _oversubscription_warned
    if workers < 1:
        raise MeasurementError(f"workers must be >= 1, got {workers}")
    cpus = available_cpu_count()
    if workers > cpus:
        if not _oversubscription_warned:
            warnings.warn(
                f"workers={workers} exceeds the {cpus} available CPU(s); "
                f"clamping to {cpus} to avoid oversubscription",
                RuntimeWarning,
                stacklevel=3,
            )
            _oversubscription_warned = True
        return cpus
    return workers


class ParallelRunner:
    """Ordered map over a process pool (or inline when ``workers == 1``).

    The callable must be picklable (a module-level function or a
    :func:`functools.partial` of one) because workers are separate
    processes; the items likewise.  Results come back in input order, so
    a campaign assembled from them is indistinguishable from the serial
    loop's.
    """

    def __init__(self, workers: int = 1):
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving order.

        Falls back to the plain serial loop when the pool cannot help
        (one worker or at most one item) — that path is byte-for-byte
        today's behavior and never forks.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        # Chunking amortizes IPC: a campaign run is ~ms-scale, so per-task
        # submission overhead would eat the win.
        chunksize = max(1, len(items) // (self.workers * 4))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
