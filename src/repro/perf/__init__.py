"""Performance engine: parallel campaigns, cached/batched estimation,
and stage-level timing.

Three coordinated layers (see DESIGN.md "Performance engine"):

1. :mod:`repro.perf.parallel` — fan measurement runs out over a process
   pool with deterministic per-run seeding (``workers=`` knob on
   :func:`repro.measure.campaign.run_campaign` and friends);
2. :mod:`repro.perf.cache` — memoized model evaluation keyed by
   ``(config, N, model fingerprint)``, feeding the batched
   ``optimize_many`` search path;
3. :mod:`repro.perf.report` — per-stage wall-clock and cache statistics
   attached to every :class:`~repro.core.pipeline.EstimationPipeline`.
"""

from repro.perf.cache import CacheStats, EstimateCache, model_fingerprint
from repro.perf.parallel import (
    ParallelRunner,
    available_cpu_count,
    default_worker_count,
    reset_oversubscription_warning,
    resolve_workers,
)
from repro.perf.report import PIPELINE_STAGES, PerfReport, StageTiming

__all__ = [
    "CacheStats",
    "EstimateCache",
    "model_fingerprint",
    "ParallelRunner",
    "available_cpu_count",
    "default_worker_count",
    "reset_oversubscription_warning",
    "resolve_workers",
    "PIPELINE_STAGES",
    "PerfReport",
    "StageTiming",
]
