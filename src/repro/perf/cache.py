"""Estimate caching (perf-engine layer 2).

The optimizer and the sweep/what-if analyses ask the same
``(configuration, N)`` questions over and over — a seed sweep re-ranks
the same 62 candidates at every size, a what-if study re-evaluates whole
grids.  Model evaluation is pure: for a *fixed* set of fitted models the
estimate of ``(config, N)`` never changes.  :class:`EstimateCache`
memoizes those lookups.

**Invalidation rule** (also documented in DESIGN.md): a cache is bound
to a *model fingerprint* — a hash over every fitted/composed model's
coefficients, the adjustment scales, and the estimator-relevant pipeline
knobs.  The fingerprint participates in every key, so entries produced
by one model generation can never answer for another; refit the models
and the pipeline builds a fresh cache with a fresh fingerprint.  Timing
fields (e.g. ``ModelStore.build_seconds``) are deliberately excluded:
two stores holding identical models fingerprint identically.

**Bounding rule**: a long-lived cache (the serving layer keeps one per
registry entry for the lifetime of the process) must not grow without
limit.  Passing ``capacity`` turns the cache into an LRU: both hits and
updates refresh an entry's recency, and inserting beyond capacity evicts
the least-recently-used entry, counted in :attr:`CacheStats.evictions`.
The default (``capacity=None``) keeps the historical unbounded behavior
for the in-pipeline caches, whose working set is the candidate grid.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from repro.errors import ReproError


def model_fingerprint(*parts: object) -> str:
    """Stable short hash of the model state that determines estimates.

    Callers pass plain-data renderings (``to_dict()`` outputs, tuples of
    knobs); anything whose ``repr`` is value-determined works.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`EstimateCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Fold another counter set into this one (e.g. when a serving
        registry retires a cache generation but keeps session totals)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def as_tuple(self) -> Tuple[int, int, int]:
        """``(hits, misses, evictions)`` — the wire/shared-memory form.

        Fleet replicas publish exactly these three integers per stats
        row; :meth:`from_tuple` rebuilds the counters on the supervisor
        side for the fleet-wide rollup.
        """
        return (self.hits, self.misses, self.evictions)

    @classmethod
    def from_tuple(cls, values: Tuple[int, int, int]) -> "CacheStats":
        """Inverse of :meth:`as_tuple`."""
        hits, misses, evictions = values
        return cls(hits=int(hits), misses=int(misses), evictions=int(evictions))

    def describe(self) -> str:
        text = (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate)"
        )
        if self.evictions:
            text += f", {self.evictions} evictions"
        return text


class EstimateCache:
    """Memo of ``(config, N)`` -> estimated seconds under one fingerprint.

    Keys are ``(config.key(), n, fingerprint)``;
    :meth:`key_of` exposes the config part so hot loops can compute it
    once per configuration instead of once per lookup.  With a
    ``capacity`` the cache is a strict LRU (see module docstring).
    """

    def __init__(self, fingerprint: str = "", capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        self.fingerprint = fingerprint
        self.capacity = capacity
        self.stats = CacheStats()
        self._data: OrderedDict[Tuple[Hashable, int, str], float] = OrderedDict()

    @staticmethod
    def key_of(config) -> Hashable:
        """The per-configuration key component (hashable, canonical)."""
        return config.key()

    def get(self, config_key: Hashable, n: int) -> Optional[float]:
        """Cached estimate, counting the lookup as a hit or miss."""
        key = (config_key, n, self.fingerprint)
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
            if self.capacity is not None:
                self._data.move_to_end(key)
        return value

    def put(self, config_key: Hashable, n: int, value: float) -> None:
        key = (config_key, n, self.fingerprint)
        if key in self._data:
            self._data[key] = value
            if self.capacity is not None:
                self._data.move_to_end(key)
            return
        self._data[key] = value
        if self.capacity is not None and len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters survive; they describe the session)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def describe(self) -> str:
        bound = f"/{self.capacity}" if self.capacity is not None else ""
        return (
            f"EstimateCache(fingerprint={self.fingerprint or '(none)'}, "
            f"{len(self._data)}{bound} entries, {self.stats.describe()})"
        )
