"""Estimate caching (perf-engine layer 2).

The optimizer and the sweep/what-if analyses ask the same
``(configuration, N)`` questions over and over — a seed sweep re-ranks
the same 62 candidates at every size, a what-if study re-evaluates whole
grids.  Model evaluation is pure: for a *fixed* set of fitted models the
estimate of ``(config, N)`` never changes.  :class:`EstimateCache`
memoizes those lookups.

**Invalidation rule** (also documented in DESIGN.md): a cache is bound
to a *model fingerprint* — a hash over every fitted/composed model's
coefficients, the adjustment scales, and the estimator-relevant pipeline
knobs.  The fingerprint participates in every key, so entries produced
by one model generation can never answer for another; refit the models
and the pipeline builds a fresh cache with a fresh fingerprint.  Timing
fields (e.g. ``ModelStore.build_seconds``) are deliberately excluded:
two stores holding identical models fingerprint identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple


def model_fingerprint(*parts: object) -> str:
    """Stable short hash of the model state that determines estimates.

    Callers pass plain-data renderings (``to_dict()`` outputs, tuples of
    knobs); anything whose ``repr`` is value-determined works.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`EstimateCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate)"
        )


class EstimateCache:
    """Memo of ``(config, N)`` -> estimated seconds under one fingerprint.

    Keys are ``(config.key(), n, fingerprint)``;
    :meth:`key_of` exposes the config part so hot loops can compute it
    once per configuration instead of once per lookup.
    """

    def __init__(self, fingerprint: str = ""):
        self.fingerprint = fingerprint
        self.stats = CacheStats()
        self._data: Dict[Tuple[Hashable, int, str], float] = {}

    @staticmethod
    def key_of(config) -> Hashable:
        """The per-configuration key component (hashable, canonical)."""
        return config.key()

    def get(self, config_key: Hashable, n: int) -> Optional[float]:
        """Cached estimate, counting the lookup as a hit or miss."""
        value = self._data.get((config_key, n, self.fingerprint))
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def put(self, config_key: Hashable, n: int, value: float) -> None:
        self._data[(config_key, n, self.fingerprint)] = value

    def clear(self) -> None:
        """Drop all entries (counters survive; they describe the session)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def describe(self) -> str:
        return (
            f"EstimateCache(fingerprint={self.fingerprint or '(none)'}, "
            f"{len(self._data)} entries, {self.stats.describe()})"
        )
