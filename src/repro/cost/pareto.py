"""Exact Pareto frontiers over (execution time, dollar cost).

A configuration *dominates* another when it is no worse on every
objective and strictly better on at least one; the **frontier** is the
set of non-dominated configurations — every point on it is a rational
answer to "how much am I willing to pay to finish sooner?".

The frontier here is exact and deterministic:

* dominance uses ``<=`` / ``<`` on the raw floats (no tolerances);
  points tied on *every* objective are all kept, so no arbitrary
  representative is chosen among exact ties;
* frontier points are ordered by ``(time, dollars, config.key())`` —
  the same canonical tie-break the exhaustive optimizer uses, which is
  what makes the min-time endpoint bitwise-identical to
  :class:`~repro.core.search.ExhaustiveOptimizer`'s winner;
* :func:`enumerate_frontier` is the brute-force reference (evaluate
  everything, filter); :class:`repro.cost.search.BudgetFrontierSearch`
  produces the identical frontier while pruning dominated subtrees.

Energy rides along as provenance on every point (it is proportional to
``time * watts`` and therefore monotone with time for a fixed
configuration — putting it on the dominance test would only ever
re-confirm the time axis).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.core.search.base import (
    Estimator,
    SearchStats,
    validated_estimate,
)
from repro.cost.evaluate import config_dollar_rate, config_watts
from repro.cost.model import CostModel
from repro.errors import SearchError

#: The frontier's objective axes, in reply/report order.
FRONTIER_OBJECTIVES: Tuple[str, ...] = ("time_s", "dollars")


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated configuration with its full objective vector."""

    config: ClusterConfig
    n: int
    time_s: float
    dollars: float
    energy_wh: float

    def objectives(self) -> Tuple[float, float]:
        return (self.time_s, self.dollars)

    def sort_key(self) -> Tuple:
        return (self.time_s, self.dollars, self.config.key())

    def to_dict(self, kinds: Optional[Sequence[str]] = None) -> Dict[str, object]:
        return {
            "config": list(self.config.as_flat_tuple(kinds)),
            "time_s": self.time_s,
            "dollars": self.dollars,
            "energy_wh": self.energy_wh,
        }


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` dominates ``b`` (<= everywhere,
    < somewhere)."""
    if len(a) != len(b):
        raise SearchError(f"objective vectors differ in length: {a!r} vs {b!r}")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(points: Sequence[FrontierPoint]) -> List[FrontierPoint]:
    """The non-dominated subset, canonically ordered.

    Sorting by ``(time, dollars, key)`` first makes the filter a single
    sweep: a point is dominated iff some point before it in that order
    has ``dollars`` strictly below the running minimum... but exact ties
    must survive, so the sweep keeps a point when its dollars are at or
    below the strictly-cheaper-and-faster floor.
    """
    ordered = sorted(points, key=lambda p: p.sort_key())
    front: List[FrontierPoint] = []
    best_dollars = math.inf  # cheapest strictly-faster-or-equal point so far
    for point in ordered:
        if any(dominates(kept.objectives(), point.objectives()) for kept in front):
            continue
        front.append(point)
        best_dollars = min(best_dollars, point.dollars)
    return front


def build_point(
    model: CostModel, config: ClusterConfig, n: int, time_s: float
) -> FrontierPoint:
    """Assemble one point from an estimated time (infinite times yield
    infinite dollars/energy — unestimable never looks free)."""
    if math.isfinite(time_s):
        dollars = time_s * config_dollar_rate(model, config)
        energy_wh = time_s * config_watts(model, config) / 3600.0
    else:
        dollars = math.inf
        energy_wh = math.inf
    return FrontierPoint(
        config=config, n=n, time_s=time_s, dollars=dollars, energy_wh=energy_wh
    )


@dataclass
class FrontierOutcome:
    """Result of one frontier computation at one problem order."""

    n: int
    points: List[FrontierPoint]
    search_seconds: float
    stats: Optional[SearchStats] = field(default=None, repr=False, compare=False)
    #: False when an evaluation budget stopped the search early — the
    #: points are then non-dominated among the *visited* set only.
    complete: bool = True
    #: Dollar budget the frontier was restricted to (None = unrestricted).
    max_cost: Optional[float] = None

    @property
    def min_time(self) -> FrontierPoint:
        """The frontier's fast endpoint (the exhaustive winner when the
        frontier is complete and unrestricted)."""
        return self.points[0]

    @property
    def min_cost(self) -> FrontierPoint:
        """The frontier's cheap endpoint."""
        return min(
            self.points, key=lambda p: (p.dollars, p.time_s, p.config.key())
        )

    def to_dict(self, kinds: Optional[Sequence[str]] = None) -> Dict[str, object]:
        out: Dict[str, object] = {
            "n": self.n,
            "objectives": list(FRONTIER_OBJECTIVES),
            "points": [point.to_dict(kinds) for point in self.points],
            "complete": self.complete,
        }
        if self.max_cost is not None:
            out["max_cost"] = self.max_cost
        if self.stats is not None:
            out["search"] = self.stats.to_dict()
        return out


def assemble_frontier(
    n: int,
    points: Sequence[FrontierPoint],
    started: float,
    stats: Optional[SearchStats] = None,
    complete: bool = True,
    max_cost: Optional[float] = None,
) -> FrontierOutcome:
    """Filter to the non-dominated set and package the outcome.

    Raises when nothing finite survives — an all-unestimable frontier
    (or an unsatisfiable ``max_cost``) is an error, not an empty answer.
    """
    eligible = [
        p
        for p in points
        if max_cost is None or p.dollars <= max_cost
    ]
    front = [p for p in pareto_front(eligible) if math.isfinite(p.time_s)]
    if not front:
        if max_cost is not None:
            raise SearchError(
                f"no configuration fits within max_cost=${max_cost:g} at N={n}"
            )
        raise SearchError(
            f"no candidate could be estimated at N={n} (all models out of domain)"
        )
    return FrontierOutcome(
        n=n,
        points=front,
        search_seconds=_time.perf_counter() - started,
        stats=stats,
        complete=complete,
        max_cost=max_cost,
    )


def enumerate_frontier(
    estimator: Estimator,
    candidates: Sequence[ClusterConfig],
    n: int,
    model: CostModel,
    allow_unestimable: bool = True,
    max_cost: Optional[float] = None,
) -> FrontierOutcome:
    """Brute-force reference: evaluate every candidate, filter.

    Evaluation cost is exactly ``len(candidates)`` objective calls —
    the baseline the ``budget-frontier`` backend's pruning is gated
    against in ``benchmarks/bench_pareto.py``.
    """
    if not candidates:
        raise SearchError(f"no candidate to enumerate at N={n}")
    started = _time.perf_counter()
    stats = SearchStats(backend="enumerate-frontier")
    points = []
    for config in candidates:
        value = validated_estimate(
            float(estimator(config, n)), config, n, allow_unestimable
        )
        stats.record(config, value)
        points.append(build_point(model, config, n, value))
    return assemble_frontier(
        n, points, started, stats=stats, complete=True, max_cost=max_cost
    )


# -- scalarization -------------------------------------------------------------


def parse_objective(text: str) -> Optional[float]:
    """Parse an ``--objective`` spec into a scalarization weight.

    ``"time"`` means pure minimum time (``None``); ``"weighted:a"``
    with ``a`` in ``[0, 1]`` trades normalized time against normalized
    dollars (0 = pure time, 1 = pure cost).
    """
    if text == "time":
        return None
    if text.startswith("weighted:"):
        raw = text[len("weighted:"):]
        try:
            alpha = float(raw)
        except ValueError:
            raise SearchError(
                f"objective weight {raw!r} is not a number"
            ) from None
        if not (0.0 <= alpha <= 1.0):
            raise SearchError(f"objective weight must be in [0, 1], got {alpha}")
        return alpha
    raise SearchError(
        f"unknown objective {text!r} (use 'time' or 'weighted:ALPHA')"
    )


def select_weighted(front: Sequence[FrontierPoint], alpha: float) -> FrontierPoint:
    """The frontier point minimizing the range-normalized scalarization
    ``(1 - alpha) * time_norm + alpha * dollars_norm``.

    Any strictly monotone scalarization is minimized on the frontier, so
    selecting *after* the exact frontier computation loses nothing —
    and ``alpha=0`` / ``alpha=1`` reduce to the endpoints exactly.
    """
    if not front:
        raise SearchError("cannot scalarize an empty frontier")
    times = [p.time_s for p in front]
    dollars = [p.dollars for p in front]
    t_lo, t_span = min(times), max(times) - min(times)
    d_lo, d_span = min(dollars), max(dollars) - min(dollars)

    def score(point: FrontierPoint) -> Tuple:
        t_norm = (point.time_s - t_lo) / t_span if t_span > 0 else 0.0
        d_norm = (point.dollars - d_lo) / d_span if d_span > 0 else 0.0
        return (
            (1.0 - alpha) * t_norm + alpha * d_norm,
            point.time_s,
            point.dollars,
            point.config.key(),
        )

    return min(front, key=score)
