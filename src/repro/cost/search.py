"""``budget-frontier``: exact Pareto frontiers by branch-and-bound.

The backend extends :class:`~repro.core.search.branch_bound.
BranchBoundSearch`'s tree walk from one objective to two.  At any
interior node the machinery of the time axis is unchanged — the max
profile of the fixed active kinds gives ``t_lb``, a lower bound on every
completion's execution time.  The cost axis gets its own bound from the
billing structure ``dollars = time * rate``: the dollar *rate* ($/s) is
additive over kinds, so

    r_lb = rate(fixed prefix) + sum over suffix kinds of min choice rate
    c_lb = t_lb * r_lb

since every completion satisfies ``time >= t_lb`` and ``rate >= r_lb``.

A subtree is pruned only when some already-evaluated point *strictly*
beats the corner ``(t_lb, c_lb)`` on **both** axes: then every
completion (at ``>= t_lb`` and ``>= c_lb``) is strictly dominated in
both objectives and cannot reach the frontier, not even as an exact tie.
That strictness is what makes the pruned frontier identical — point for
point, bitwise — to :func:`repro.cost.pareto.enumerate_frontier` over
the same space.  In particular no point tied with the minimum time is
ever pruned, so the frontier's fast endpoint stays bitwise-identical to
the exhaustive optimizer's winner.

``max_cost`` additionally prunes every subtree with ``c_lb > max_cost``
(it cannot contain a feasible point) and restricts the frontier and the
ranking to feasible points.  ``budget``/``work_factor`` give the same
anytime semantics as branch-and-bound: the run stops early with
``stats.exhausted=True`` and the frontier is then exact only over the
visited set (``FrontierOutcome.complete=False``).
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.core.search.base import (
    Estimator,
    GridEstimator,
    SearchOutcome,
    SearchProblem,
    SearchStats,
    rank_evaluations,
    validated_estimate,
)
from repro.core.search.bounds import KindTimeBound
from repro.core.search.branch_bound import BranchBoundSearch
from repro.core.search.registry import register_search
from repro.core.search.space import SearchSpace
from repro.cost.model import CostModel, ZERO_COST
from repro.cost.pareto import (
    FrontierOutcome,
    FrontierPoint,
    assemble_frontier,
    build_point,
    select_weighted,
)
from repro.errors import SearchError


@register_search("budget-frontier")
class BudgetFrontierSearch(BranchBoundSearch):
    """Exact (time, dollars) frontier search with two-axis pruning."""

    def __init__(
        self,
        estimator: Estimator,
        space: SearchSpace,
        bounds: KindTimeBound,
        cost: Optional[CostModel] = None,
        grid_estimator: Optional[GridEstimator] = None,
        allow_unestimable: bool = True,
        budget: Optional[int] = None,
        work_factor: int = 256,
        max_cost: Optional[float] = None,
        alpha: Optional[float] = None,
    ):
        super().__init__(
            estimator,
            space,
            bounds,
            grid_estimator=grid_estimator,
            allow_unestimable=allow_unestimable,
            budget=budget,
            work_factor=work_factor,
        )
        if max_cost is not None and (
            not math.isfinite(max_cost) or max_cost < 0
        ):
            raise SearchError(f"max_cost must be finite and >= 0, got {max_cost}")
        if alpha is not None and not (0.0 <= alpha <= 1.0):
            raise SearchError(f"objective weight must be in [0, 1], got {alpha}")
        self.cost = cost if cost is not None else ZERO_COST
        self.max_cost = max_cost
        self.alpha = alpha
        # Dollar rate ($/s) of one (pe, m) choice of each kind, plus the
        # suffix minima that close the cost lower bound (the idle choice
        # makes most suffix minima zero — the bound tightens as the DFS
        # fixes paying kinds into the prefix).
        self._choice_rates: List[Tuple[float, ...]] = []
        for kind, options in zip(space.kinds, space.choices):
            per_second = self.cost.dollars_per_pe_second(kind)
            self._choice_rates.append(
                tuple(pe * per_second for pe, _ in options)
            )
        self._suffix_min_rate = [0.0] * (len(space.kinds) + 1)
        for depth in reversed(range(len(space.kinds))):
            self._suffix_min_rate[depth] = (
                min(self._choice_rates[depth]) + self._suffix_min_rate[depth + 1]
            )

    @classmethod
    def from_problem(
        cls,
        problem: SearchProblem,
        budget: Optional[int] = None,
        work_factor: int = 256,
        max_cost: Optional[float] = None,
        alpha: Optional[float] = None,
    ) -> "BudgetFrontierSearch":
        space = problem.resolved_space()
        if problem.candidates is not None and not space.is_exact_cover_of(
            problem.candidates
        ):
            raise SearchError(
                "budget-frontier needs a product-structured candidate set; "
                "use enumerate_frontier for irregular sets"
            )
        if problem.bounds is None:
            raise SearchError(
                "budget-frontier needs a bound oracle "
                "(SearchProblem.bounds); without one it cannot prune"
            )
        return cls(
            problem.estimator,
            space,
            problem.bounds,
            cost=problem.cost,
            grid_estimator=problem.grid_estimator,
            allow_unestimable=problem.allow_unestimable,
            budget=budget,
            work_factor=work_factor,
            max_cost=max_cost,
            alpha=alpha,
        )

    # -- search -------------------------------------------------------------

    def _search(
        self, n: int
    ) -> Tuple[List[FrontierPoint], List[FrontierPoint], SearchStats, float]:
        """One DFS: every evaluated point, the archive, stats, start time."""
        started = time.perf_counter()
        stats = SearchStats(backend=self.backend_type, budget=self.budget)
        self.stats = stats
        evaluated: List[FrontierPoint] = []
        archive: List[FrontierPoint] = []  # non-dominated among evaluated
        space = self.space
        n_kinds = len(space.kinds)
        assignment: List[Tuple[int, int]] = []
        # Leaf values prefetched through the grid kernel (see
        # BranchBoundSearch.optimize): the leaf branch pops them in its
        # original DFS order, so the two-axis pruning, the archive and
        # the budget replay identically over bitwise-equal values.
        leaf_values: dict = {}
        work_cap = (
            None if self.budget is None else self.budget * self.work_factor
        )

        def admit(point: FrontierPoint) -> None:
            for kept in archive:
                if (
                    kept.time_s <= point.time_s
                    and kept.dollars <= point.dollars
                    and (
                        kept.time_s < point.time_s
                        or kept.dollars < point.dollars
                    )
                ):
                    return
            archive[:] = [
                kept
                for kept in archive
                if not (
                    point.time_s <= kept.time_s
                    and point.dollars <= kept.dollars
                    and (
                        point.time_s < kept.time_s
                        or point.dollars < kept.dollars
                    )
                )
            ]
            archive.append(point)

        def corner_pruned(t_lb: float, c_lb: float) -> bool:
            """True when some evaluated point strictly beats the
            subtree's lower-bound corner on both axes — then every
            completion is strictly dominated, ties included."""
            return any(
                a.time_s < t_lb and a.dollars < c_lb for a in archive
            )

        def walk(
            depth: int,
            p_fixed: int,
            mi_fixed: int,
            rate_fixed: float,
            max_profile: Optional[np.ndarray],
        ) -> bool:
            """Depth-first expansion; returns False once out of budget."""
            if depth == n_kinds:
                if p_fixed == 0:
                    return True  # the all-idle combination is not runnable
                if (
                    self.budget is not None
                    and stats.evaluations >= self.budget
                ):
                    stats.exhausted = True
                    return False
                config = space.config_of(assignment)
                raw = leaf_values.pop(tuple(assignment), None)
                if raw is None:
                    raw = float(self.estimator(config, n))
                value = validated_estimate(
                    raw, config, n, self.allow_unestimable
                )
                stats.record(config, value)
                point = build_point(self.cost, config, n, value)
                evaluated.append(point)
                if math.isfinite(value):
                    admit(point)
                return True

            if work_cap is not None and stats.bound_evaluations >= work_cap:
                stats.exhausted = True
                return False
            children = []
            for index, choice in enumerate(space.choices[depth]):
                pe, m = choice
                if pe > 0:
                    profile = self.bounds.profile(space.kinds[depth], m, n)
                    child_profile = (
                        profile
                        if max_profile is None
                        else np.maximum(max_profile, profile)
                    )
                else:
                    child_profile = max_profile
                child_p = p_fixed + pe * m
                child_mi = max(mi_fixed, m)
                child_rate = rate_fixed + self._choice_rates[depth][index]
                t_lb = self._node_bound(
                    n, depth + 1, child_p, child_mi, child_profile, stats
                )
                if math.isfinite(t_lb):
                    c_lb = t_lb * (
                        child_rate + self._suffix_min_rate[depth + 1]
                    )
                else:
                    c_lb = math.inf
                children.append(
                    (t_lb, choice, c_lb, child_p, child_mi,
                     child_rate, child_profile)
                )
            # Fast subtrees first: early archive points near the frontier's
            # fast end prune more of the slow-and-expensive bulk.
            children.sort(key=lambda item: (item[0], item[1]))
            if self.grid_estimator is not None and depth + 1 == n_kinds:
                # Prefetch the leaf block with the replay loop's own
                # ``continue``-style filters.  ``corner_pruned`` only
                # grows stronger as the archive fills mid-block, so the
                # prefetch-time check keeps a superset of the leaves the
                # replay will evaluate; unconsumed cells are discarded.
                remaining = (
                    None
                    if self.budget is None
                    else self.budget - stats.evaluations
                )
                block: List[Tuple[Tuple[int, int], ...]] = []
                for t_lb, choice, c_lb, child_p, _, _, _ in children:
                    if child_p == 0:
                        continue
                    if self.max_cost is not None and c_lb > self.max_cost:
                        continue
                    if corner_pruned(t_lb, c_lb):
                        continue
                    if remaining is not None and len(block) >= remaining:
                        break
                    block.append(tuple(assignment) + (choice,))
                if len(block) > 1:
                    configs = [space.config_of(key) for key in block]
                    values = np.asarray(
                        self.grid_estimator(configs, [n]), dtype=float
                    )
                    if values.shape != (len(block), 1):
                        raise SearchError(
                            f"grid estimator returned shape {values.shape},"
                            f" expected ({len(block)}, 1)"
                        )
                    for key, value in zip(block, values[:, 0]):
                        leaf_values[key] = float(value)
            for (t_lb, choice, c_lb, child_p, child_mi,
                 child_rate, child_profile) in children:
                # Unlike the scalar walk, a pruned child does not prune
                # its later siblings: pruning needs domination on both
                # axes and the children are ordered on time alone.
                if self.max_cost is not None and c_lb > self.max_cost:
                    stats.prune(self._subtree_leaves(depth + 1, child_p))
                    continue
                if corner_pruned(t_lb, c_lb):
                    stats.prune(self._subtree_leaves(depth + 1, child_p))
                    continue
                assignment.append(choice)
                alive = walk(
                    depth + 1, child_p, child_mi, child_rate, child_profile
                )
                assignment.pop()
                if not alive:
                    return False
            return True

        walk(0, 0, 0, 0.0, None)
        return evaluated, archive, stats, started

    def frontier(self, n: int) -> FrontierOutcome:
        """The exact (time, dollars) frontier at problem order ``n``."""
        evaluated, _, stats, started = self._search(n)
        return assemble_frontier(
            n,
            evaluated,
            started,
            stats=stats,
            complete=not stats.exhausted,
            max_cost=self.max_cost,
        )

    def optimize(self, n: int) -> SearchOutcome:
        """Scalarized view of the frontier as a standard outcome.

        Without ``alpha``: minimum time subject to ``max_cost`` (the
        plain minimum-time problem when no budget is set — bitwise the
        exhaustive winner).  With ``alpha``: the weighted frontier point,
        ranked first; ``estimate_s`` stays honest wall time either way.
        """
        evaluated, _, stats, started = self._search(n)
        feasible = [
            p
            for p in evaluated
            if self.max_cost is None or p.dollars <= self.max_cost
        ]
        if not feasible:
            raise SearchError(
                f"no configuration fits within max_cost="
                f"${self.max_cost:g} at N={n}"
            )
        complete = stats.pruned_candidates == 0 and not stats.exhausted
        if self.alpha is None:
            return rank_evaluations(
                n,
                [(p.config, p.time_s) for p in feasible],
                started,
                stats=stats,
                complete=complete,
            )
        outcome = assemble_frontier(
            n, feasible, started, stats=stats,
            complete=not stats.exhausted, max_cost=self.max_cost,
        )
        chosen = select_weighted(outcome.points, self.alpha)
        rest = [p for p in outcome.points if p is not chosen]
        ranked = rank_evaluations(
            n,
            [(chosen.config, chosen.time_s)]
            + [(p.config, p.time_s) for p in rest],
            started,
            stats=stats,
            complete=False,
        )
        # rank_evaluations re-sorts by time; rebuild the ranking with the
        # scalarization winner first, keeping the rest time-ordered.
        head = next(
            entry
            for entry in ranked.ranking
            if entry.config.key() == chosen.config.key()
        )
        ranked.ranking = [head] + [
            entry for entry in ranked.ranking if entry is not head
        ]
        return ranked

    def frontier_many(self, ns: Sequence[int]) -> List[FrontierOutcome]:
        sizes = [int(n) for n in ns]
        if not sizes:
            raise SearchError("frontier_many needs at least one size")
        return [self.frontier(n) for n in sizes]
