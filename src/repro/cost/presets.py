"""Published rate cards for the paper's testbed and the synthetic fleet.

The Kishimoto-Ichikawa cluster predates per-machine-type cloud billing,
so its card is *derived*, not quoted: dollars follow the measured peak
rates from Table 1 (an Athlon 1333 delivers ~4.6x a Pentium II 400's
GFLOPS and is priced at 4x per PE-hour), and watts are the processors'
documented typical draw.  What matters for the golden tests is not the
absolute numbers but that the card is fixed and versioned here — the
frontier it induces is part of the repo's reproducible surface.

The synthetic card prices the geometric speed ladder of
:func:`repro.core.search.synthetic.synthetic_kind_params`
*superlinearly*: a kind ``1.45x`` faster costs ``1.45**1.25`` more per
PE-hour.  Faster therefore never implies cheaper, the time and dollar
objectives genuinely conflict, and the Pareto frontier has interior
points — the regime the ``budget-frontier`` benchmark gates pruning in.
"""

from __future__ import annotations

from repro.cost.model import CostModel, KindRate
from repro.rng import stream


def kishimoto_rate_card() -> CostModel:
    """The fixed rate card of the paper's Athlon/Pentium-II cluster."""
    return CostModel(
        rates=(
            KindRate(kind="athlon", dollars_per_pe_hour=0.144, watts_per_pe=110.0),
            KindRate(kind="pentium2", dollars_per_pe_hour=0.036, watts_per_pe=28.0),
        )
    )


def synthetic_rate_card(n_kinds: int = 10, seed: int = 2004) -> CostModel:
    """Deterministic rate card for the synthetic ``kind0..kindN`` ladder.

    Uses the same :func:`repro.rng.stream` discipline as the synthetic
    search problems: ``(n_kinds, seed)`` names one exact card forever.
    Kind indices match :func:`~repro.core.search.synthetic.
    synthetic_kind_params`, so a card built with the same arguments
    prices exactly the kinds the synthetic problem searches over.
    """
    rates = []
    for index in range(n_kinds):
        rng = stream(seed, "synthetic-cost", index)
        speed = 1.45**index
        dollars = 0.03 * speed**1.25 * float(rng.uniform(0.9, 1.1))
        watts = 60.0 * speed**0.6 * float(rng.uniform(0.9, 1.1))
        rates.append(
            KindRate(
                kind=f"kind{index}",
                dollars_per_pe_hour=dollars,
                watts_per_pe=watts,
            )
        )
    return CostModel(rates=tuple(rates))
