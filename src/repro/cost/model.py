"""Rate cards: what one PE of each kind costs to run.

A :class:`CostModel` is a set of per-kind :class:`KindRate` entries —
``dollars_per_pe_hour`` (the EC2/EMR shape of per-machine-type
accounting) and an optional ``watts_per_pe`` for energy reporting.
Kinds without an entry are free: a cluster description without a rate
card behaves exactly as before the cost subsystem existed, which is
what makes the serialization bump backward compatible.

This module sits *below* :mod:`repro.cluster` in the import graph (the
cluster spec holds an optional ``cost`` field), so it speaks about kinds
only by name and imports nothing but the error types.

Serialization follows the PR-3 persistence convention: unknown fields in
a stored rate card are a :class:`~repro.errors.ModelError` naming the
offending path — refusing to guess beats silently dropping a field a
newer version wrote.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import ModelError

#: Seconds per hour, the only unit conversion in the package.
SECONDS_PER_HOUR = 3600.0


def _finite_rate(value: object, path: str) -> float:
    try:
        number = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ModelError(f"{path} must be a number, got {value!r}") from None
    if not math.isfinite(number) or number < 0:
        raise ModelError(f"{path} must be finite and >= 0, got {number!r}")
    return number


@dataclass(frozen=True)
class KindRate:
    """Operating cost of one PE of one kind."""

    kind: str
    #: Dollars charged per PE per hour of wall time.
    dollars_per_pe_hour: float = 0.0
    #: Electrical draw per PE (for energy accounting; 0 = not modeled).
    watts_per_pe: float = 0.0

    def __post_init__(self) -> None:
        if not self.kind:
            raise ModelError("rate entry needs a non-empty kind name")
        _finite_rate(self.dollars_per_pe_hour, f"rate[{self.kind}].dollars_per_pe_hour")
        _finite_rate(self.watts_per_pe, f"rate[{self.kind}].watts_per_pe")

    @property
    def dollars_per_pe_second(self) -> float:
        return self.dollars_per_pe_hour / SECONDS_PER_HOUR

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "dollars_per_pe_hour": self.dollars_per_pe_hour,
            "watts_per_pe": self.watts_per_pe,
        }


#: A rate for kinds the card does not mention: free and unmetered.
_FREE = KindRate(kind="(unpriced)")


@dataclass(frozen=True)
class CostModel:
    """A cluster's rate card: per-kind rates, free by default."""

    rates: Tuple[KindRate, ...] = ()

    def __post_init__(self) -> None:
        names = [rate.kind for rate in self.rates]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate kind in rate card: {names}")

    @classmethod
    def of(cls, **kind_to_rate: Tuple[float, float] | float) -> "CostModel":
        """Shorthand: ``CostModel.of(athlon=(0.14, 110), pentium2=0.04)``
        maps kind -> ``$ / PE-hour`` or ``($ / PE-hour, W / PE)``."""
        rates = []
        for kind, value in kind_to_rate.items():
            if isinstance(value, tuple):
                dollars, watts = value
            else:
                dollars, watts = value, 0.0
            rates.append(
                KindRate(
                    kind=kind, dollars_per_pe_hour=dollars, watts_per_pe=watts
                )
            )
        return cls(rates=tuple(rates))

    @property
    def is_free(self) -> bool:
        """True when no kind carries a non-zero dollar or energy rate."""
        return all(
            rate.dollars_per_pe_hour == 0.0 and rate.watts_per_pe == 0.0
            for rate in self.rates
        )

    def kind_names(self) -> Tuple[str, ...]:
        return tuple(rate.kind for rate in self.rates)

    def rate_for(self, kind: str) -> KindRate:
        """The kind's rate entry; kinds without one are free."""
        for rate in self.rates:
            if rate.kind == kind:
                return rate
        return _FREE

    def dollars_per_pe_second(self, kind: str) -> float:
        return self.rate_for(kind).dollars_per_pe_second

    def watts_per_pe(self, kind: str) -> float:
        return self.rate_for(kind).watts_per_pe

    def dollar_rate(self, allocations: Iterable[Tuple[str, int]]) -> float:
        """Dollars per *second* of wall time for ``(kind, pe_count)``
        allocations — billing covers every allocated PE for the whole
        run, which is how per-machine-type cloud accounting works."""
        return sum(
            self.dollars_per_pe_second(kind) * pes for kind, pes in allocations
        )

    def power_watts(self, allocations: Iterable[Tuple[str, int]]) -> float:
        """Total draw in watts of ``(kind, pe_count)`` allocations."""
        return sum(self.watts_per_pe(kind) * pes for kind, pes in allocations)

    def describe(self) -> str:
        if not self.rates:
            return "rate card: (free)"
        lines = ["rate card:"]
        for rate in self.rates:
            lines.append(
                f"  {rate.kind}: ${rate.dollars_per_pe_hour:.4f}/PE-hour"
                + (
                    f", {rate.watts_per_pe:.0f} W/PE"
                    if rate.watts_per_pe
                    else ""
                )
            )
        return "\n".join(lines)


#: The implicit rate card of every cluster without one.
ZERO_COST = CostModel()

_RATE_FIELDS = ("kind", "dollars_per_pe_hour", "watts_per_pe")
_MODEL_FIELDS = ("rates",)


def cost_model_to_dict(model: CostModel) -> Dict[str, object]:
    """Schema: ``{rates: [{kind, dollars_per_pe_hour, watts_per_pe}]}``."""
    return {"rates": [rate.to_dict() for rate in model.rates]}


def cost_model_from_dict(
    data: Mapping[str, object], origin: str = "cost"
) -> CostModel:
    """Inverse of :func:`cost_model_to_dict`, strict about unknown fields.

    A field this version does not know (``{origin}.rates[i].surge`` …)
    raises :class:`~repro.errors.ModelError` naming the offending path,
    so version skew surfaces as a typed error instead of a silently
    dropped rate.
    """
    if not isinstance(data, Mapping):
        raise ModelError(f"{origin} must be an object, got {type(data).__name__}")
    for key in data:
        if key not in _MODEL_FIELDS:
            raise ModelError(f"unknown field {origin}.{key} in stored rate card")
    entries = data.get("rates", [])
    if not isinstance(entries, (list, tuple)):
        raise ModelError(f"{origin}.rates must be a list")
    rates = []
    for index, entry in enumerate(entries):
        path = f"{origin}.rates[{index}]"
        if not isinstance(entry, Mapping):
            raise ModelError(f"{path} must be an object")
        for key in entry:
            if key not in _RATE_FIELDS:
                raise ModelError(f"unknown field {path}.{key} in stored rate card")
        if "kind" not in entry:
            raise ModelError(f"{path} needs a 'kind' name")
        rates.append(
            KindRate(
                kind=str(entry["kind"]),
                dollars_per_pe_hour=_finite_rate(
                    entry.get("dollars_per_pe_hour", 0.0),
                    f"{path}.dollars_per_pe_hour",
                ),
                watts_per_pe=_finite_rate(
                    entry.get("watts_per_pe", 0.0), f"{path}.watts_per_pe"
                ),
            )
        )
    return CostModel(rates=tuple(rates))
