"""Cost- and budget-aware optimization (`repro.cost`).

The paper's optimizer answers "which configuration is fastest"; on a
real heterogeneous cluster the fastest configuration is rarely the
cheapest one.  This package makes resource cost a first-class axis:

* :mod:`repro.cost.model` — per-kind rate cards (``$ / PE-hour`` plus
  optional ``W / PE``) attached to cluster descriptions through a
  backward-compatible :class:`CostModel` (old serialized specs load
  with zero-cost defaults);
* :mod:`repro.cost.evaluate` — a vectorized
  ``(execution time, dollars, energy)`` evaluator riding the batched
  ``estimate_totals`` path;
* :mod:`repro.cost.pareto` — the exact Pareto-front machinery:
  dominance tests, frontier assembly, brute-force enumeration and the
  weighted scalarization used by ``optimize --objective weighted:a``;
* :mod:`repro.cost.search` — the ``budget-frontier`` backend in the
  PR-7 search registry: branch-and-bound frontier enumeration pruning
  with the existing max-profile *time* lower bounds **and** a cost
  lower bound, plus ``max_cost``-constrained minimum-time search;
* :mod:`repro.cost.presets` — published rate cards for the paper's
  testbed and the synthetic datacenter instances.

Importing this package registers the ``budget-frontier`` backend.
"""

from repro.cost.evaluate import CostEvaluator, config_dollar_rate, config_watts
from repro.cost.model import (
    CostModel,
    KindRate,
    ZERO_COST,
    cost_model_from_dict,
    cost_model_to_dict,
)
from repro.cost.pareto import (
    FRONTIER_OBJECTIVES,
    FrontierOutcome,
    FrontierPoint,
    dominates,
    enumerate_frontier,
    pareto_front,
    parse_objective,
    select_weighted,
)
from repro.cost.presets import kishimoto_rate_card, synthetic_rate_card
from repro.cost.search import BudgetFrontierSearch

__all__ = [
    "BudgetFrontierSearch",
    "CostEvaluator",
    "CostModel",
    "FRONTIER_OBJECTIVES",
    "FrontierOutcome",
    "FrontierPoint",
    "KindRate",
    "ZERO_COST",
    "config_dollar_rate",
    "config_watts",
    "cost_model_from_dict",
    "cost_model_to_dict",
    "dominates",
    "enumerate_frontier",
    "kishimoto_rate_card",
    "pareto_front",
    "parse_objective",
    "select_weighted",
    "synthetic_rate_card",
]
