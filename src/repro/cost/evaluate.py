"""Vectorized ``(execution time, dollars, energy)`` evaluation.

For one configuration the dollar and energy costs are *linear in wall
time*: billing covers every allocated PE for the run's duration, so

    dollars(config, N)   = T(config, N) * dollar_rate(config)      [$]
    energy_wh(config, N) = T(config, N) * power(config) / 3600     [Wh]

with ``dollar_rate`` and ``power`` pure functions of the allocation.
That structure lets the evaluator ride the existing batched
``estimate_totals`` path untouched: one vectorized time evaluation per
configuration, then two scalar multiplies — the cost axes add no model
evaluations at all.

Unestimable configurations (time ``+inf``) get ``+inf`` dollars and
energy as well, even at zero rates: a configuration outside the model's
domain must rank last on *every* objective, never "free".
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cost.model import CostModel


def _active_allocations(config: ClusterConfig) -> Tuple[Tuple[str, int], ...]:
    return tuple((a.kind_name, a.pe_count) for a in config.active)


def config_dollar_rate(model: CostModel, config: ClusterConfig) -> float:
    """Dollars per second of wall time under ``config`` (idle kinds are
    not billed — only allocated PEs meter)."""
    return model.dollar_rate(_active_allocations(config))


def config_watts(model: CostModel, config: ClusterConfig) -> float:
    """Electrical draw in watts of the PEs ``config`` allocates."""
    return model.power_watts(_active_allocations(config))


def costs_of_times(
    model: CostModel, config: ClusterConfig, times: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ``(dollars, energy_wh)`` for one configuration's time
    array (the output of ``estimate_totals``)."""
    times = np.asarray(times, dtype=float)
    finite = np.isfinite(times)
    dollar_rate = config_dollar_rate(model, config)
    watts = config_watts(model, config)
    dollars = np.where(finite, times * dollar_rate, np.inf)
    energy_wh = np.where(finite, times * watts / 3600.0, np.inf)
    return dollars, energy_wh


class CostEvaluator:
    """Batched ``(time, dollars, energy)`` over a time oracle.

    ``batch_times`` is any ``(config, ns) -> array`` callable — in the
    pipeline it is :meth:`EstimationPipeline.estimate_totals`, so every
    cost query shares the estimate cache and the vectorized polynomial
    path with plain estimation.
    """

    def __init__(self, model: CostModel, batch_times) -> None:
        self.model = model
        self._batch_times = batch_times

    def totals(
        self, config: ClusterConfig, ns: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(times_s, dollars, energy_wh)`` arrays over ``ns``."""
        times = np.asarray(self._batch_times(config, ns), dtype=float)
        dollars, energy_wh = costs_of_times(self.model, config, times)
        return times, dollars, energy_wh
