"""End-to-end estimation pipelines: the paper's Basic / NL / NS protocols.

:class:`EstimationPipeline` wires the whole method together over a cluster
as an explicit stage graph (:mod:`repro.core.stages`):

1. ``campaign`` — run the construction campaign (:mod:`repro.measure`);
2. ``fit`` — fit the N-T and P-T models (:mod:`repro.core.model_store`);
3. ``compose`` — compose P-T models for kinds that could not be measured
   (:mod:`repro.core.composition`);
4. ``adjust`` — calibrate the linear adjustment on the designated
   calibration family (:mod:`repro.core.adjustment`);
5. ``search`` — expose a configuration estimator and an exhaustive
   optimizer through the :class:`~repro.core.estimator.Estimator` facade;
6. ``verify`` — compare against ground-truth measurements of the
   evaluation grid, producing the rows of the paper's Tables 4 / 7 / 9
   and the scatter data of Figures 6-15.

Everything is lazily computed and cached by the
:class:`~repro.core.stages.StageGraph`; a pipeline is fully determined by
``(spec, plan, PipelineConfig)`` and reproducible from its seed.  The
pipeline class itself only (a) supplies the stage context, (b) composes
per-kind estimates with the adjustment into :class:`ConfigEstimate`, and
(c) keeps the public API stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.core.adjustment import LinearAdjustment
from repro.core.binning import KindEstimate, MemoryBin, ModelSelector
from repro.core.composition import CompositionPolicy
from repro.core.model_store import ModelStore
from repro.core.search import SearchOutcome
from repro.core.stages import (
    ComposeArtifact,
    PipelineContext,
    SearchEngine,
    StageGraph,
    calibration_configs,
    calibration_size,
    default_stages,
)
from repro.errors import ModelError
from repro.hpl.driver import NoiseSpec
from repro.hpl.schedule import HPLParameters
from repro.measure.campaign import CampaignResult, Runner
from repro.measure.dataset import Dataset
from repro.measure.grids import CampaignPlan
from repro.perf.cache import EstimateCache
from repro.perf.report import PerfReport
from repro.workloads import create_workload

if TYPE_CHECKING:  # repro.cost imports the core layer, never the reverse
    from repro.cost.model import CostModel
    from repro.cost.pareto import FrontierOutcome


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of one protocol run."""

    protocol: str = "basic"
    seed: int = 0
    noise: Optional[NoiseSpec] = field(default_factory=NoiseSpec)
    hpl_params: Optional[HPLParameters] = None
    composition: CompositionPolicy = field(default_factory=CompositionPolicy)
    adjust: bool = True
    adjustment_threshold: int = 3
    #: N-T least-squares objective: "uniform" (the paper) or "relative"
    #: (weights 1/t^2 — better small-N accuracy; future-work item (3)).
    nt_weighting: str = "uniform"
    #: Problem order of the adjustment calibration family; ``None`` means
    #: the paper's choice (6400) clamped into the evaluation grid.
    calibration_n: Optional[int] = None
    memory_bins: Tuple[MemoryBin, ...] = ()
    #: Exclude construction measurements predicted to page (paper Section
    #: 3.4: memory pressure is predictable from N and P) before fitting.
    memory_guard: bool = False
    #: Classification threshold and application working-set multiple used
    #: when ``memory_guard`` is on (SUMMA keeps 3 matrices resident).
    guard_threshold: float = 1.0
    guard_footprint: float = 1.0
    #: Workload family tag (:func:`repro.workloads.registered_workloads`):
    #: picks the simulator, phase decomposition, measurement grid and
    #: memory model.  The tag is persisted with pipeline artifacts and
    #: travels through served requests and observation logs.
    workload: str = "hpl"
    #: Explicit runner override; ``None`` (the default) uses the workload
    #: family's own simulator.  Any runner with the ``run_hpl`` signature
    #: works (e.g. ``repro.exts.apps.run_summa``) — the models never look
    #: inside the application, only at its per-kind Ta/Tc measurements.
    runner: Optional[Runner] = None
    #: Process-pool width for the measurement campaigns (1 = today's
    #: serial loop; >1 fans runs out via :mod:`repro.perf.parallel`
    #: without changing any produced number — runs are independently
    #: seeded).  Requests beyond the machine's CPUs are clamped with a
    #: one-time warning.
    workers: int = 1
    #: Default search backend for :meth:`EstimationPipeline.optimize` —
    #: any tag in :func:`repro.core.search.registered_search_backends`
    #: ("exhaustive", the paper's enumeration; "branch-bound", exact with
    #: pruning; "beam"/"greedy"/"hill-climb"/"anneal", heuristic).
    #: Per-call ``backend=`` arguments override it.
    search_backend: str = "exhaustive"
    #: Rate card (:class:`repro.cost.model.CostModel`) for cost-aware
    #: optimization.  ``None`` defers to the cluster spec's own card
    #: (``spec.cost``); setting it here overrides the spec — e.g. to
    #: price a what-if scenario without editing the cluster description.
    cost: Optional["CostModel"] = None


@dataclass(frozen=True)
class ConfigEstimate:
    """Model estimate of one configuration at one problem order."""

    config: ClusterConfig
    n: int
    per_kind: Tuple[KindEstimate, ...]
    raw_total: float
    adjusted_total: float
    max_mi: int
    adjusted: bool

    @property
    def valid(self) -> bool:
        """False when any kind's model produced a non-physical prediction
        (the configuration is outside the models' trustworthy domain)."""
        return all(k.valid for k in self.per_kind)

    @property
    def total(self) -> float:
        """The estimate the optimizer consumes (adjusted when enabled).

        Invalid estimates rank *last*, not first: a model that predicts a
        non-positive time is broken for this configuration, and the search
        must not be lured by it.
        """
        if not self.valid:
            return float("inf")
        return self.adjusted_total

    def kind(self, kind_name: str) -> KindEstimate:
        for estimate in self.per_kind:
            if estimate.kind_name == kind_name:
                return estimate
        raise ModelError(f"kind {kind_name!r} not part of {self.config.label()}")


class EstimationPipeline:
    """One protocol run over one cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        config: Optional[PipelineConfig] = None,
        plan: Optional[CampaignPlan] = None,
    ):
        self.spec = spec
        self.config = config if config is not None else PipelineConfig()
        #: The workload family this pipeline measures and models.
        self.workload = create_workload(self.config.workload)
        self.plan = (
            plan if plan is not None else self.workload.plan(self.config.protocol)
        )
        #: Per-stage wall-clock + cache statistics (perf-engine layer 3).
        self.perf = PerfReport()
        ctx = PipelineContext(
            spec=self.spec,
            config=self.config,
            plan=self.plan,
            perf=self.perf,
            workload=self.workload,
            memory_ratio_fn=self._memory_ratio_for,
            scalar_estimate=lambda config, n: self.estimate(config, n).total,
            batch_estimate=self.estimate_totals,
            candidates=lambda: list(self.plan.evaluation_configs),
        )
        self.graph = StageGraph(default_stages(), ctx)

    # -- stage 1: measurement ---------------------------------------------------

    @property
    def campaign(self) -> CampaignResult:
        """Construction measurements (runs the campaign on first access)."""
        return self.graph.get("campaign")

    @property
    def evaluation(self) -> Dataset:
        """Ground-truth measurements of the evaluation grid."""
        return self.graph.get("evaluation")

    # -- stage 2+3: models ---------------------------------------------------------

    @property
    def store(self) -> ModelStore:
        """The fitted-and-composed model store (fits on first access)."""
        return self.graph.get("compose").store

    @property
    def excluded_paging_runs(self) -> Dataset:
        """Construction measurements the memory guard kept out of the fit
        (empty when the guard is off or nothing paged)."""
        return self.graph.get("fit").excluded_paging

    @property
    def models(self):
        """The :class:`~repro.core.estimator.Estimator` facade — the one
        query surface the optimizer, cache and analyses share."""
        return self.graph.get("estimator")

    @property
    def selector(self) -> ModelSelector:
        """Backwards-compatible name for :attr:`models` (the facade *is*
        the binned selector for the standard protocols)."""
        return self.graph.get("estimator")

    @property
    def composed_models(self) -> Dict[str, List[int]]:
        """Which (kind -> Mi list) P-T models were composed, for reporting."""
        artifact: ComposeArtifact = self.graph.get("compose")
        return dict(artifact.composed)

    # -- stage 4: adjustment ----------------------------------------------------------

    @property
    def adjustment(self) -> LinearAdjustment:
        return self.graph.get("adjust")

    def calibration_size(self) -> int:
        """The paper calibrates at N = 6400; clamp into the eval grid."""
        return calibration_size(self.plan, self.config)

    def calibration_configs(self) -> List[ClusterConfig]:
        """The calibration family: evaluation configurations that use every
        kind at full PE count and reach the adjustment threshold (the
        paper's ``M1 >= 3`` at ``P2 = 8``)."""
        return calibration_configs(self.spec, self.plan, self.config)

    # -- stage 5: estimation & optimization ----------------------------------------------

    def _memory_ratio_for(self, config: ClusterConfig, n: int, kind_name: str) -> float:
        """Worst-node memory pressure for a kind under this configuration."""
        return self.workload.memory_ratio(
            self.spec, config, n, kind_name, footprint=self.config.guard_footprint
        )

    def _estimate_raw(self, config: ClusterConfig, n: int) -> ConfigEstimate:
        config.validate_against(self.spec)
        per_kind = self.models.estimate_kinds(config, n)
        total = max(estimate.total for estimate in per_kind)
        max_mi = max(a.procs_per_pe for a in config.active)
        return ConfigEstimate(
            config=config,
            n=n,
            per_kind=per_kind,
            raw_total=total,
            adjusted_total=total,
            max_mi=max_mi,
            adjusted=False,
        )

    def estimate(self, config: ClusterConfig, n: int) -> ConfigEstimate:
        """Full estimate: per-kind model evaluation, max composition,
        linear adjustment where applicable."""
        raw = self._estimate_raw(config, n)
        adjusted_total = self.adjustment.apply(raw.raw_total, raw.max_mi)
        return replace(
            raw,
            adjusted_total=adjusted_total,
            adjusted=self.adjustment.applies_to(raw.max_mi)
            and not self.adjustment.is_identity,
        )

    def estimate_totals(self, config: ClusterConfig, ns: Sequence[int]) -> np.ndarray:
        """Vectorized estimates over problem orders: one array of adjusted
        totals, element-for-element identical to ``estimate(config, n).total``.

        This is the hot inner product of the sweep workloads: per kind it
        evaluates one polynomial over the whole ``ns`` array instead of
        ``len(ns)`` scalar model calls (see
        :meth:`repro.core.estimator.Estimator.estimate_kind_batch`).
        """
        config.validate_against(self.spec)
        total, valid = self.models.estimate_kinds_batch(config, ns)
        max_mi = max(a.procs_per_pe for a in config.active)
        adjusted = self.adjustment.scale_for(max_mi) * total
        return np.where(valid, adjusted, np.inf)

    @property
    def _engine(self) -> SearchEngine:
        return self.graph.get("search")

    @property
    def estimate_cache(self) -> EstimateCache:
        """Memoized ``(config, N) -> adjusted total`` store, bound to the
        current models by fingerprint (see DESIGN.md for the invalidation
        rule).  Building it forces the model fit."""
        return self._engine.estimate_cache

    def estimator(self, cached: bool = False):
        """The objective function for optimizers: (config, n) -> seconds.

        ``cached=True`` routes lookups through :attr:`estimate_cache`
        (identical values; repeated queries become dict hits).
        """
        return self._engine.estimator(cached=cached)

    def batch_estimator(self):
        """Vectorized + cached objective for ``optimize_many``:
        ``(config, [n...]) -> array of seconds``."""
        return self._engine.batch_estimator()

    def estimate_grid(
        self, configs: Sequence[ClusterConfig], ns: Sequence[int]
    ) -> np.ndarray:
        """Candidate-axis vectorized estimates: the ``(C, S)`` block of
        adjusted totals for ``configs x ns``, each cell bitwise
        ``estimate(configs[i], ns[j]).total``.  One kernel pass over
        packed model-coefficient tensors replaces ``C`` per-candidate
        evaluations (see :mod:`repro.core.grid_kernel`); cached cells are
        served from :attr:`estimate_cache`."""
        return self._engine.estimate_grid(configs, ns)

    def grid_estimator(self):
        """The candidate-axis objective for search backends:
        ``(configs, [n...]) -> (C, S) array`` (see :meth:`estimate_grid`)."""
        return self._engine.grid_estimator()

    def optimizer(
        self,
        candidates: Optional[Sequence[ClusterConfig]] = None,
        backend: Optional[str] = None,
        budget: Optional[int] = None,
        **options,
    ):
        """A ready-to-run search backend over the candidate grid
        (``backend=None`` uses the config's ``search_backend``)."""
        return self._engine.optimizer(
            candidates, backend=backend, budget=budget, **options
        )

    def optimize(
        self,
        n: int,
        backend: Optional[str] = None,
        budget: Optional[int] = None,
        max_cost: Optional[float] = None,
        alpha: Optional[float] = None,
    ) -> SearchOutcome:
        # Resolving the engine forces campaign/fit/adjust through their
        # own timed stages, so the search timing is pure search.
        return self._engine.optimize(
            n, backend=backend, budget=budget, max_cost=max_cost, alpha=alpha
        )

    def optimize_many(
        self,
        ns: Sequence[int],
        backend: Optional[str] = None,
        budget: Optional[int] = None,
        max_cost: Optional[float] = None,
        alpha: Optional[float] = None,
    ) -> List[SearchOutcome]:
        """Rank the candidate grid at every size in one batched search —
        the fast path for sweeps and what-if studies."""
        return self._engine.optimize_many(
            ns, backend=backend, budget=budget, max_cost=max_cost, alpha=alpha
        )

    # -- cost axis ----------------------------------------------------------------

    @property
    def cost_model(self) -> Optional["CostModel"]:
        """The rate card in effect: the pipeline config's, else the
        cluster spec's, else ``None`` (unpriced)."""
        if self.config.cost is not None:
            return self.config.cost
        return self.spec.cost

    def pareto(
        self,
        n: int,
        budget: Optional[int] = None,
        max_cost: Optional[float] = None,
    ) -> "FrontierOutcome":
        """The exact (time, dollars) Pareto frontier over the candidate
        grid at order ``n`` (restricted to ``dollars <= max_cost`` when
        given).  Uses the ``budget-frontier`` backend; an unpriced
        pipeline still works — the frontier then degenerates to the
        minimum-time point."""
        return self._engine.pareto(n, budget=budget, max_cost=max_cost)

    def pareto_many(
        self,
        ns: Sequence[int],
        budget: Optional[int] = None,
        max_cost: Optional[float] = None,
    ) -> List["FrontierOutcome"]:
        """One frontier per size (the serve layer's batched ``pareto`` op)."""
        return self._engine.pareto_many(ns, budget=budget, max_cost=max_cost)

    # -- stage 6: verification --------------------------------------------------------------

    def measured_time(self, config: ClusterConfig, n: int) -> float:
        return self.graph.get("verify").measured_time(config, n)

    def actual_best(self, n: int) -> Tuple[ClusterConfig, float]:
        """Ground-truth optimum over the evaluation grid at order ``n``."""
        return self.graph.get("verify").actual_best(n)
