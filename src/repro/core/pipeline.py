"""End-to-end estimation pipelines: the paper's Basic / NL / NS protocols.

:class:`EstimationPipeline` wires the whole method together over a cluster:

1. run the construction campaign (:mod:`repro.measure`);
2. fit the N-T and P-T models (:mod:`repro.core.model_store`);
3. compose P-T models for kinds that could not be measured
   (:mod:`repro.core.composition`);
4. calibrate the linear adjustment on the designated calibration family
   (:mod:`repro.core.adjustment`);
5. expose a configuration estimator and an exhaustive optimizer;
6. verify against ground-truth measurements of the evaluation grid,
   producing the rows of the paper's Tables 4 / 7 / 9 and the scatter data
   of Figures 6-15.

Everything is lazily computed and cached; a pipeline is fully determined
by ``(spec, plan, PipelineConfig)`` and reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.core.adjustment import LinearAdjustment
from repro.core.binning import KindEstimate, MemoryBin, ModelSelector
from repro.core.composition import CompositionPolicy
from repro.core.memory_guard import MemoryGuard, split_dataset
from repro.core.model_store import ModelStore
from repro.core.optimizer import ExhaustiveOptimizer, SearchOutcome, actual_best
from repro.errors import ModelError
from repro.hpl.driver import NoiseSpec, run_hpl
from repro.hpl.memory import config_memory_ratio
from repro.hpl.schedule import HPLParameters
from repro.measure.campaign import CampaignResult, Runner, run_campaign, run_evaluation
from repro.measure.dataset import Dataset
from repro.measure.grids import CampaignPlan, plan_by_name
from repro.perf.cache import EstimateCache, model_fingerprint
from repro.perf.report import PerfReport


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of one protocol run."""

    protocol: str = "basic"
    seed: int = 0
    noise: Optional[NoiseSpec] = field(default_factory=NoiseSpec)
    hpl_params: Optional[HPLParameters] = None
    composition: CompositionPolicy = field(default_factory=CompositionPolicy)
    adjust: bool = True
    adjustment_threshold: int = 3
    #: N-T least-squares objective: "uniform" (the paper) or "relative"
    #: (weights 1/t^2 — better small-N accuracy; future-work item (3)).
    nt_weighting: str = "uniform"
    #: Problem order of the adjustment calibration family; ``None`` means
    #: the paper's choice (6400) clamped into the evaluation grid.
    calibration_n: Optional[int] = None
    memory_bins: Tuple[MemoryBin, ...] = ()
    #: Exclude construction measurements predicted to page (paper Section
    #: 3.4: memory pressure is predictable from N and P) before fitting.
    memory_guard: bool = False
    #: Classification threshold and application working-set multiple used
    #: when ``memory_guard`` is on (SUMMA keeps 3 matrices resident).
    guard_threshold: float = 1.0
    guard_footprint: float = 1.0
    #: Application under study; defaults to HPL.  Any runner with the
    #: ``run_hpl`` signature works (e.g. ``repro.exts.apps.run_summa``) —
    #: the models never look inside the application, only at its per-kind
    #: Ta/Tc measurements.
    runner: Runner = run_hpl
    #: Process-pool width for the measurement campaigns (1 = today's
    #: serial loop; >1 fans runs out via :mod:`repro.perf.parallel`
    #: without changing any produced number — runs are independently
    #: seeded).  Requests beyond the machine's CPUs are clamped with a
    #: one-time warning.
    workers: int = 1


@dataclass(frozen=True)
class ConfigEstimate:
    """Model estimate of one configuration at one problem order."""

    config: ClusterConfig
    n: int
    per_kind: Tuple[KindEstimate, ...]
    raw_total: float
    adjusted_total: float
    max_mi: int
    adjusted: bool

    @property
    def valid(self) -> bool:
        """False when any kind's model produced a non-physical prediction
        (the configuration is outside the models' trustworthy domain)."""
        return all(k.valid for k in self.per_kind)

    @property
    def total(self) -> float:
        """The estimate the optimizer consumes (adjusted when enabled).

        Invalid estimates rank *last*, not first: a model that predicts a
        non-positive time is broken for this configuration, and the search
        must not be lured by it.
        """
        if not self.valid:
            return float("inf")
        return self.adjusted_total

    def kind(self, kind_name: str) -> KindEstimate:
        for estimate in self.per_kind:
            if estimate.kind_name == kind_name:
                return estimate
        raise ModelError(f"kind {kind_name!r} not part of {self.config.label()}")


class EstimationPipeline:
    """One protocol run over one cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        config: Optional[PipelineConfig] = None,
        plan: Optional[CampaignPlan] = None,
    ):
        self.spec = spec
        self.config = config if config is not None else PipelineConfig()
        self.plan = plan if plan is not None else plan_by_name(self.config.protocol)
        self._campaign: Optional[CampaignResult] = None
        self._evaluation: Optional[Dataset] = None
        self._store: Optional[ModelStore] = None
        self._selector: Optional[ModelSelector] = None
        self._adjustment: Optional[LinearAdjustment] = None
        self._composed: Dict[str, List[int]] = {}
        #: Per-stage wall-clock + cache statistics (perf-engine layer 3).
        self.perf = PerfReport()
        self._estimate_cache: Optional[EstimateCache] = None

    # -- stage 1: measurement ---------------------------------------------------

    @property
    def campaign(self) -> CampaignResult:
        """Construction measurements (runs the campaign on first access)."""
        if self._campaign is None:
            with self.perf.stage("campaign"):
                self._campaign = run_campaign(
                    self.spec,
                    self.plan,
                    params=self.config.hpl_params,
                    noise=self.config.noise,
                    seed=self.config.seed,
                    runner=self.config.runner,
                    workers=self.config.workers,
                )
        return self._campaign

    @property
    def evaluation(self) -> Dataset:
        """Ground-truth measurements of the evaluation grid."""
        if self._evaluation is None:
            with self.perf.stage("evaluation"):
                self._evaluation = run_evaluation(
                    self.spec,
                    self.plan,
                    params=self.config.hpl_params,
                    noise=self.config.noise,
                    seed=self.config.seed,
                    runner=self.config.runner,
                    workers=self.config.workers,
                )
        return self._evaluation

    # -- stage 2+3: models ---------------------------------------------------------

    @property
    def store(self) -> ModelStore:
        if self._store is None:
            dataset = self.campaign.dataset
            if self.config.memory_guard:
                guard = MemoryGuard(
                    self.spec,
                    threshold=self.config.guard_threshold,
                    footprint=self.config.guard_footprint,
                )
                dataset, self._excluded_paging = split_dataset(dataset, guard)
            with self.perf.stage("fit"):
                store = ModelStore.fit_dataset(
                    dataset, weighting=self.config.nt_weighting
                )
            with self.perf.stage("compose"):
                self._compose_missing(store)
            self._store = store
        return self._store

    @property
    def excluded_paging_runs(self) -> Dataset:
        """Construction measurements the memory guard kept out of the fit
        (empty when the guard is off or nothing paged)."""
        _ = self.store
        return getattr(self, "_excluded_paging", Dataset())

    def _compose_missing(self, store: ModelStore) -> None:
        """Compose P-T models for kinds without enough measured PEs, using
        the kind with the most measured P-T models as the source."""
        measured_counts = {
            kind: sum(
                1
                for (k, _), model in store.pt.items()
                if k == kind and not model.is_composed
            )
            for kind in store.kinds()
        }
        if not measured_counts:
            return
        source = max(measured_counts, key=lambda k: (measured_counts[k], k))
        if measured_counts[source] == 0:
            return
        for kind in store.kinds():
            if kind == source:
                continue
            composed = self.config.composition.compose_missing(store, kind, source)
            if composed:
                self._composed[kind] = composed

    @property
    def selector(self) -> ModelSelector:
        if self._selector is None:
            self._selector = ModelSelector(
                self.store, memory_bins=self.config.memory_bins
            )
        return self._selector

    @property
    def composed_models(self) -> Dict[str, List[int]]:
        """Which (kind -> Mi list) P-T models were composed, for reporting."""
        _ = self.store
        return dict(self._composed)

    # -- stage 4: adjustment ----------------------------------------------------------

    @property
    def adjustment(self) -> LinearAdjustment:
        if self._adjustment is None:
            if not self.config.adjust:
                self._adjustment = LinearAdjustment(
                    mi_threshold=self.config.adjustment_threshold
                )
            else:
                # The calibration fit needs the evaluation dataset; make
                # sure its (separately timed) measurement stage does not
                # get charged to "adjust".
                _ = self.store, self.evaluation
                with self.perf.stage("adjust"):
                    self._adjustment = self._fit_adjustment()
        return self._adjustment

    def calibration_size(self) -> int:
        """The paper calibrates at N = 6400; clamp into the eval grid."""
        if self.config.calibration_n is not None:
            return self.config.calibration_n
        sizes = self.plan.evaluation_sizes
        return 6400 if 6400 in sizes else max(sizes)

    def calibration_configs(self) -> List[ClusterConfig]:
        """The calibration family: evaluation configurations that use every
        kind at full PE count and reach the adjustment threshold (the
        paper's ``M1 >= 3`` at ``P2 = 8``)."""
        available = self.spec.pe_counts()
        threshold = self.config.adjustment_threshold
        out = []
        for config in self.plan.evaluation_configs:
            if any(a.pe_count != available[a.kind_name] for a in config.active):
                continue
            if len(config.active) != len(available):
                continue
            if max(a.procs_per_pe for a in config.active) < threshold:
                continue
            out.append(config)
        return out

    def _fit_adjustment(self) -> LinearAdjustment:
        n_cal = self.calibration_size()
        triples = []
        for config in self.calibration_configs():
            estimate = self._estimate_raw(config, n_cal)
            record = self.evaluation.lookup(
                config.as_flat_tuple(self.plan.kinds), n_cal
            )
            triples.append((estimate.max_mi, estimate.raw_total, record.wall_time_s))
        return LinearAdjustment.fit(
            triples, mi_threshold=self.config.adjustment_threshold
        )

    # -- stage 5: estimation & optimization ----------------------------------------------

    def _memory_ratio_for(self, config: ClusterConfig, n: int, kind_name: str) -> float:
        """Worst-node memory pressure for a kind under this configuration."""
        return config_memory_ratio(
            self.spec, config, n, kind_name, footprint=self.config.guard_footprint
        )

    def _estimate_raw(self, config: ClusterConfig, n: int) -> ConfigEstimate:
        config.validate_against(self.spec)
        p = config.total_processes
        per_kind = []
        for alloc in config.active:
            ratio = (
                self._memory_ratio_for(config, n, alloc.kind_name)
                if self.config.memory_bins
                else None
            )
            per_kind.append(
                self.selector.estimate_kind(
                    alloc.kind_name, n, p, alloc.procs_per_pe, memory_ratio=ratio
                )
            )
        total = max(estimate.total for estimate in per_kind)
        max_mi = max(a.procs_per_pe for a in config.active)
        return ConfigEstimate(
            config=config,
            n=n,
            per_kind=tuple(per_kind),
            raw_total=total,
            adjusted_total=total,
            max_mi=max_mi,
            adjusted=False,
        )

    def estimate(self, config: ClusterConfig, n: int) -> ConfigEstimate:
        """Full estimate: per-kind model evaluation, max composition,
        linear adjustment where applicable."""
        raw = self._estimate_raw(config, n)
        adjusted_total = self.adjustment.apply(raw.raw_total, raw.max_mi)
        return replace(
            raw,
            adjusted_total=adjusted_total,
            adjusted=self.adjustment.applies_to(raw.max_mi)
            and not self.adjustment.is_identity,
        )

    def estimate_totals(self, config: ClusterConfig, ns: Sequence[int]) -> np.ndarray:
        """Vectorized estimates over problem orders: one array of adjusted
        totals, element-for-element identical to ``estimate(config, n).total``.

        This is the hot inner product of the sweep workloads: per kind it
        evaluates one polynomial over the whole ``ns`` array instead of
        ``len(ns)`` scalar model calls (see
        :meth:`repro.core.binning.ModelSelector.estimate_kind_batch`).
        """
        config.validate_against(self.spec)
        n_arr = np.asarray([float(n) for n in ns], dtype=float)
        p = config.total_processes
        total: Optional[np.ndarray] = None
        valid: Optional[np.ndarray] = None
        for alloc in config.active:
            ratios = (
                [
                    self._memory_ratio_for(config, int(n), alloc.kind_name)
                    for n in n_arr
                ]
                if self.config.memory_bins
                else None
            )
            ta, tc, kind_valid = self.selector.estimate_kind_batch(
                alloc.kind_name, n_arr, p, alloc.procs_per_pe, memory_ratios=ratios
            )
            kind_total = ta + tc
            total = kind_total if total is None else np.maximum(total, kind_total)
            valid = kind_valid if valid is None else (valid & kind_valid)
        max_mi = max(a.procs_per_pe for a in config.active)
        adjusted = self.adjustment.scale_for(max_mi) * total
        return np.where(valid, adjusted, np.inf)

    @property
    def estimate_cache(self) -> EstimateCache:
        """Memoized ``(config, N) -> adjusted total`` store, bound to the
        current models by fingerprint (see DESIGN.md for the invalidation
        rule).  Building it forces the model fit."""
        if self._estimate_cache is None:
            fingerprint = model_fingerprint(
                [model.to_dict() for model in self.store.nt.values()],
                [model.to_dict() for model in self.store.pt.values()],
                self.adjustment.to_dict(),
                self.config.memory_bins,
                self.config.guard_footprint,
            )
            self._estimate_cache = EstimateCache(fingerprint)
            self.perf.cache = self._estimate_cache
        return self._estimate_cache

    def estimator(self, cached: bool = False):
        """The objective function for optimizers: (config, n) -> seconds.

        ``cached=True`` routes lookups through :attr:`estimate_cache`
        (identical values; repeated queries become dict hits).
        """
        if not cached:

            def objective(config: ClusterConfig, n: int) -> float:
                return self.estimate(config, n).total

            return objective

        def cached_objective(config: ClusterConfig, n: int) -> float:
            cache = self.estimate_cache
            key = cache.key_of(config)
            hit = cache.get(key, n)
            if hit is not None:
                return hit
            value = self.estimate(config, n).total
            cache.put(key, n, value)
            return value

        return cached_objective

    def batch_estimator(self):
        """Vectorized + cached objective for ``optimize_many``:
        ``(config, [n...]) -> array of seconds``.

        Cache hits are served from :attr:`estimate_cache`; only the
        missing sizes go through one vectorized model evaluation, whose
        results then populate the cache.
        """
        def batch_objective(config: ClusterConfig, ns: Sequence[int]) -> np.ndarray:
            cache = self.estimate_cache
            sizes = [int(n) for n in ns]
            out = np.empty(len(sizes), dtype=float)
            key = cache.key_of(config)
            missing: List[int] = []
            for i, n in enumerate(sizes):
                hit = cache.get(key, n)
                if hit is None:
                    missing.append(i)
                else:
                    out[i] = hit
            if missing:
                values = self.estimate_totals(config, [sizes[i] for i in missing])
                for j, i in enumerate(missing):
                    out[i] = values[j]
                    cache.put(key, sizes[i], float(values[j]))
            return out

        return batch_objective

    def optimizer(
        self, candidates: Optional[Sequence[ClusterConfig]] = None
    ) -> ExhaustiveOptimizer:
        return ExhaustiveOptimizer(
            self.estimator(),
            list(candidates) if candidates is not None else list(self.plan.evaluation_configs),
            batch_estimator=self.batch_estimator(),
        )

    def optimize(self, n: int) -> SearchOutcome:
        # materialize the models first, so lazy campaign/fit time lands in
        # its own stages instead of being billed to the search
        _ = self.store, self.adjustment
        with self.perf.stage("search"):
            return self.optimizer().optimize(n)

    def optimize_many(self, ns: Sequence[int]) -> List[SearchOutcome]:
        """Rank the candidate grid at every size in one batched search —
        the fast path for sweeps and what-if studies."""
        _ = self.store, self.adjustment
        with self.perf.stage("search"):
            return self.optimizer().optimize_many(ns)

    # -- stage 6: verification --------------------------------------------------------------

    def measured_time(self, config: ClusterConfig, n: int) -> float:
        record = self.evaluation.lookup(config.as_flat_tuple(self.plan.kinds), n)
        return record.wall_time_s

    def actual_best(self, n: int) -> Tuple[ClusterConfig, float]:
        """Ground-truth optimum over the evaluation grid at order ``n``."""
        measured = [
            (config, self.measured_time(config, n))
            for config in self.plan.evaluation_configs
        ]
        return actual_best(measured)
