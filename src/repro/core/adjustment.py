"""Linear-transformation adjustment of systematic model deviation
(paper Section 4.1).

The paper finds that its communication models deviate *systematically* for
configurations with three or more processes on the Athlon (Figure 6), and
patches the estimates with a linear transformation calibrated on the
measurements of one configuration family — ``N = 6400, P2 = 8`` for each
``M1 >= 3``.  Estimates for ``M1 <= 2`` are left untouched ("our models
match the measurements very well").

Because the deviation is *per model* (each ``Mi`` has its own P-T model
with its own bias) and the correction must transfer across problem orders
(the paper applies it at N = 8000 and 9600, far from the calibration
point), the transformation is a **per-``Mi`` scale**: with exactly one
calibration pair per ``Mi``, ``t = (t_cal / tau_cal) * tau`` is the entire
linear map one can extract, and a multiplicative map is the only affine
form that extrapolates sanely from one ``N`` to another (an additive
offset fitted at 6400 would swamp a 20-second estimate at 3200).

:class:`LinearAdjustment` therefore stores ``{Mi: scale}`` and applies the
scale of a configuration's largest per-PE process count; ``Mi`` values
above/below the calibrated range use the nearest calibrated scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import FitError, ModelError


@dataclass(frozen=True)
class LinearAdjustment:
    """Per-``Mi`` multiplicative correction for ``max(Mi) >= mi_threshold``."""

    scales: Tuple[Tuple[int, float], ...] = ()
    mi_threshold: int = 3

    def __post_init__(self) -> None:
        if self.mi_threshold < 1:
            raise ModelError("mi_threshold must be >= 1")
        seen = set()
        for mi, scale in self.scales:
            if mi < self.mi_threshold:
                raise ModelError(
                    f"calibrated Mi={mi} below threshold {self.mi_threshold}"
                )
            if mi in seen:
                raise ModelError(f"duplicate scale for Mi={mi}")
            seen.add(mi)
            if scale <= 0:
                raise ModelError(f"scale for Mi={mi} must be positive: {scale}")

    @property
    def is_identity(self) -> bool:
        return not self.scales

    @property
    def calibration_points(self) -> int:
        return len(self.scales)

    def applies_to(self, max_mi: int) -> bool:
        """Whether a configuration (by its largest per-PE process count)
        receives a correction."""
        return bool(self.scales) and max_mi >= self.mi_threshold

    def scale_for(self, max_mi: int) -> float:
        """The scale applied to a configuration with ``max(Mi) = max_mi``
        (nearest calibrated Mi; 1.0 when not applicable)."""
        if not self.applies_to(max_mi):
            return 1.0
        best_mi, best_scale = min(
            self.scales, key=lambda item: (abs(item[0] - max_mi), item[0])
        )
        return best_scale

    def apply(self, estimate: float, max_mi: int) -> float:
        """Corrected estimate."""
        return self.scale_for(max_mi) * estimate

    # -- construction --------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        calibration: Sequence[Tuple[int, float, float]],
        mi_threshold: int = 3,
    ) -> "LinearAdjustment":
        """Fit from ``(mi, estimate, measurement)`` calibration triples.

        Multiple triples with the same ``mi`` are combined by least squares
        through the origin (``scale = sum(t*tau) / sum(tau^2)``); an empty
        calibration set yields the identity (adjustment disabled).
        """
        grouped: Dict[int, List[Tuple[float, float]]] = {}
        for mi, estimate, measurement in calibration:
            if estimate <= 0 or measurement <= 0:
                raise FitError(
                    f"calibration pair for Mi={mi} must be positive times, "
                    f"got ({estimate}, {measurement})"
                )
            if mi < mi_threshold:
                continue  # below-threshold configurations are never adjusted
            grouped.setdefault(int(mi), []).append((estimate, measurement))
        scales = []
        for mi in sorted(grouped):
            tau = np.array([pair[0] for pair in grouped[mi]])
            t = np.array([pair[1] for pair in grouped[mi]])
            scales.append((mi, float((tau @ t) / (tau @ tau))))
        return cls(scales=tuple(scales), mi_threshold=mi_threshold)

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "scales": [[mi, scale] for mi, scale in self.scales],
            "mi_threshold": self.mi_threshold,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LinearAdjustment":
        return cls(
            scales=tuple(
                (int(mi), float(scale)) for mi, scale in data["scales"]  # type: ignore[union-attr]
            ),
            mi_threshold=int(data["mi_threshold"]),
        )

    def describe(self) -> str:
        if self.is_identity:
            return "identity (no adjustment)"
        parts = ", ".join(f"Mi={mi}: x{scale:.3f}" for mi, scale in self.scales)
        return f"per-Mi scales for max(Mi) >= {self.mi_threshold}: {parts}"
