"""The :class:`Estimator` facade: one query surface over any model backend.

Before this module existed the repository had three overlapping dispatch
layers — :class:`~repro.core.model_store.ModelStore` (the container),
``ModelSelector`` (the paper's Figure-5 binning) and ``UnifiedEstimator``
(the unified-model drop-in) — each with its own estimation loop.  The
facade collapses them: a **backend** knows how to route a
``(kind, P, Mi)`` query to a :class:`~repro.core.model_api.TimeModel`,
and the facade owns everything above routing (memory-pressure bins,
clamping/validity semantics, vectorized batches, per-configuration
bottleneck composition, fingerprinting).  The optimizer, the estimate
cache, the pipeline and the analysis code all call models only through
this class.

Two backends ship today:

* :class:`BinnedBackend` — the paper's method: the directly fitted N-T
  model for single-PE configurations (``P == Mi``), the P-T model
  otherwise (Figure 5);
* :class:`UnifiedBackend` — one unified two-variable model per
  ``(kind, Mi)`` (future-work item 1), no binning.

A future backend (e.g. a learned model) only has to implement
:class:`ModelBackend`; nothing else changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.model_api import TimeModel
from repro.errors import ModelError
from repro.perf.cache import model_fingerprint


@dataclass(frozen=True)
class KindEstimate:
    """Per-kind estimation output with its provenance.

    ``valid`` is False when the model produced a non-positive total — a
    polynomial excursion outside the fitted domain.  Such an output carries
    no information (an execution time cannot be <= 0), so consumers must
    treat the configuration as *unestimable* rather than cheap; see
    :meth:`repro.core.pipeline.ConfigEstimate.total`.
    """

    kind_name: str
    ta: float
    tc: float
    model_kind: str  # backend routing label: "nt", "pt" or "unified"
    composed: bool = False
    bin_label: str = "default"
    valid: bool = True

    @property
    def total(self) -> float:
        return self.ta + self.tc


@dataclass(frozen=True)
class MemoryBin:
    """One memory-pressure bin: applies while ``ratio <= max_ratio``.

    ``ta_scale`` / ``tc_scale`` stretch the base model's prediction inside
    the bin — the piecewise-model mechanism of Section 3.4 in its simplest
    usable form (the paper only sketches it).
    """

    max_ratio: float
    ta_scale: float = 1.0
    tc_scale: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.max_ratio <= 0:
            raise ModelError("memory bin boundary must be positive")
        if self.ta_scale <= 0 or self.tc_scale <= 0:
            raise ModelError("memory bin scales must be positive")


#: Computes the worst-node memory-pressure ratio of ``(config, n, kind)``;
#: supplied by whoever knows the cluster (the pipeline), consumed by the
#: facade when memory bins are configured.
MemoryRatioFn = Callable[[object, int, str], float]


class ModelBackend(Protocol):
    """Routes a ``(kind, P, Mi)`` query to the model that answers it."""

    name: str

    def route(self, kind: str, p: int, mi: int) -> Tuple[str, TimeModel]:
        """Return ``(label, model)`` or raise :class:`ModelError`."""
        ...

    def models(self) -> Iterator[TimeModel]:
        """Every model the backend can route to, in a stable order."""
        ...


class BinnedBackend:
    """The paper's Figure-5 routing over a fitted :class:`ModelStore`."""

    name = "binned"

    def __init__(self, store):
        self.store = store

    def route(self, kind: str, p: int, mi: int) -> Tuple[str, TimeModel]:
        if mi < 1:
            raise ModelError(f"Mi must be >= 1, got {mi}")
        if p < mi:
            raise ModelError(
                f"impossible query: P={p} < Mi={mi} (the 'X' cells of Fig. 5)"
            )
        if p == mi:
            return "nt", self.store.nt_model(kind, p, mi)
        return "pt", self.store.pt_model(kind, mi)

    def models(self) -> Iterator[TimeModel]:
        yield from self.store.models()


class UnifiedBackend:
    """One unified two-variable model per ``(kind, Mi)``; no binning."""

    name = "unified"

    def __init__(self, models: Dict[Tuple[str, int], TimeModel]):
        if not models:
            raise ModelError("no unified models supplied")
        self.by_key = dict(models)

    def route(self, kind: str, p: int, mi: int) -> Tuple[str, TimeModel]:
        key = (kind, mi)
        if key not in self.by_key:
            raise ModelError(f"no unified model for {key}")
        return "unified", self.by_key[key]

    def models(self) -> Iterator[TimeModel]:
        for _, model in sorted(self.by_key.items()):
            yield model


class Estimator:
    """Uniform model-evaluation surface over one :class:`ModelBackend`.

    Parameters
    ----------
    backend:
        Query router over the fitted (and composed) models.
    memory_bins:
        Optional ascending list of :class:`MemoryBin`; selection uses the
        memory ratio of a query (from ``memory_ratio_fn``, or passed
        explicitly to :meth:`estimate_kind`).  The last bin is open-ended.
    memory_ratio_fn:
        How to compute a configuration's memory-pressure ratio; only
        consulted when ``memory_bins`` are configured.
    """

    def __init__(
        self,
        backend: ModelBackend,
        memory_bins: Optional[Sequence[MemoryBin]] = None,
        memory_ratio_fn: Optional[MemoryRatioFn] = None,
    ):
        self.backend = backend
        self.memory_bins: Tuple[MemoryBin, ...] = tuple(memory_bins or ())
        self.memory_ratio_fn = memory_ratio_fn
        boundaries = [b.max_ratio for b in self.memory_bins]
        if boundaries != sorted(boundaries):
            raise ModelError("memory bins must have ascending boundaries")

    # -- construction -------------------------------------------------------

    @classmethod
    def for_store(
        cls,
        store,
        memory_bins: Optional[Sequence[MemoryBin]] = None,
        memory_ratio_fn: Optional[MemoryRatioFn] = None,
    ) -> "Estimator":
        """The paper's binned method over a fitted model store."""
        return cls(BinnedBackend(store), memory_bins, memory_ratio_fn)

    @classmethod
    def for_unified(cls, models: Dict[Tuple[str, int], TimeModel]) -> "Estimator":
        """The unified-model method (no binning, no memory bins)."""
        return cls(UnifiedBackend(models))

    # -- model routing ------------------------------------------------------

    def select(self, kind: str, p: int, mi: int) -> Tuple[str, TimeModel]:
        """The model answering a query, e.g. ``("nt", NTModel)``."""
        return self.backend.route(kind, p, mi)

    def can_estimate(self, kind: str, p: int, mi: int) -> bool:
        try:
            self.select(kind, p, mi)
            return True
        except ModelError:
            return False

    def models(self) -> Iterator[TimeModel]:
        """Every routable model (stable order), for inventory/fingerprint."""
        return self.backend.models()

    def fingerprint(self) -> str:
        """Hash of everything estimate-determining on the model side:
        the backend identity, every model's own
        :meth:`~repro.core.model_api.TimeModel.fingerprint`, and the
        memory bins.  The single source of truth for cache invalidation."""
        return model_fingerprint(
            self.backend.name,
            tuple(model.fingerprint() for model in self.models()),
            self.memory_bins,
        )

    # -- per-kind estimation ------------------------------------------------

    def estimate_kind(
        self,
        kind: str,
        n: float,
        p: int,
        mi: int,
        memory_ratio: Optional[float] = None,
    ) -> KindEstimate:
        """Estimated (Ta, Tc) of one kind's processes in a configuration
        with ``P`` total processes and ``Mi`` processes per PE of this kind.

        Negative polynomial excursions (possible at the edge of a fitted
        range) are clamped to zero for the phase values — but when the
        *total* goes non-positive the estimate is marked invalid: clamping
        a nonsense prediction to zero would make the configuration look
        optimal to the search instead of untrustworthy.
        """
        label, model = self.select(kind, p, mi)
        ta = float(model.predict_ta(n, p))
        tc = float(model.predict_tc(n, p))

        bin_label = "default"
        if self.memory_bins and memory_ratio is not None:
            chosen = self._bin_for(memory_ratio)
            ta *= chosen.ta_scale
            tc *= chosen.tc_scale
            bin_label = chosen.label or f"ratio<={chosen.max_ratio:g}"

        return KindEstimate(
            kind_name=kind,
            ta=max(ta, 0.0),
            tc=max(tc, 0.0),
            model_kind=label,
            composed=model.is_composed,
            bin_label=bin_label,
            valid=(ta + tc) > 0.0,
        )

    def estimate_kind_batch(
        self,
        kind: str,
        ns: Sequence[float],
        p: int,
        mi: int,
        memory_ratios: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`estimate_kind` over an array of problem orders.

        Returns ``(ta, tc, valid)`` arrays aligned with ``ns``.  Model
        routing happens once (``P``/``Mi`` are fixed across the batch);
        the polynomial evaluation, memory-bin scaling, clamping and
        validity logic are element-for-element identical to the scalar
        path, so the batch values are bitwise those of ``estimate_kind``
        called per size.
        """
        _, model = self.select(kind, p, mi)
        n_arr = np.asarray(ns, dtype=float)
        ta = np.asarray(model.predict_ta(n_arr, p), dtype=float)
        tc = np.asarray(model.predict_tc(n_arr, p), dtype=float)

        if self.memory_bins and memory_ratios is not None:
            bins = [self._bin_for(float(r)) for r in memory_ratios]
            ta = ta * np.array([b.ta_scale for b in bins])
            tc = tc * np.array([b.tc_scale for b in bins])

        valid = (ta + tc) > 0.0
        return np.maximum(ta, 0.0), np.maximum(tc, 0.0), valid

    def _bin_for(self, ratio: float) -> MemoryBin:
        for bin_ in self.memory_bins:
            if ratio <= bin_.max_ratio:
                return bin_
        return self.memory_bins[-1]

    def _ratio_for(self, config, n: int, kind: str) -> Optional[float]:
        if not self.memory_bins or self.memory_ratio_fn is None:
            return None
        return self.memory_ratio_fn(config, n, kind)

    # -- per-configuration estimation ---------------------------------------

    def estimate_kinds(self, config, n: int) -> Tuple[KindEstimate, ...]:
        """One :class:`KindEstimate` per active kind of a configuration
        (memory ratios computed via ``memory_ratio_fn`` when bins are on)."""
        p = config.total_processes
        return tuple(
            self.estimate_kind(
                alloc.kind_name,
                n,
                p,
                alloc.procs_per_pe,
                memory_ratio=self._ratio_for(config, n, alloc.kind_name),
            )
            for alloc in config.active
        )

    def estimate_kinds_batch(
        self, config, ns: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized bottleneck composition over problem orders.

        Returns ``(total, valid)`` arrays: the per-size maximum of the
        per-kind totals (the slowest kind bounds the run — every process
        holds an equal share of rows) and whether every kind's model was
        inside its trustworthy domain.
        """
        n_arr = np.asarray([float(n) for n in ns], dtype=float)
        p = config.total_processes
        total: Optional[np.ndarray] = None
        valid: Optional[np.ndarray] = None
        for alloc in config.active:
            ratios = (
                [
                    self.memory_ratio_fn(config, int(n), alloc.kind_name)
                    for n in n_arr
                ]
                if self.memory_bins and self.memory_ratio_fn is not None
                else None
            )
            ta, tc, kind_valid = self.estimate_kind_batch(
                alloc.kind_name, n_arr, p, alloc.procs_per_pe, memory_ratios=ratios
            )
            kind_total = ta + tc
            total = kind_total if total is None else np.maximum(total, kind_total)
            valid = kind_valid if valid is None else (valid & kind_valid)
        assert total is not None and valid is not None
        return total, valid

    def estimate_total(self, config, n: int) -> float:
        """Estimated execution time of a configuration (bottleneck kind),
        unadjusted.  Returns ``inf`` when any kind's model is out of its
        domain — an unestimable configuration must not look cheap."""
        per_kind = self.estimate_kinds(config, n)
        if not all(estimate.valid for estimate in per_kind):
            return float("inf")
        return max(estimate.total for estimate in per_kind)

    def objective(self):
        """Objective-function form for the optimizers:
        ``(config, n) -> seconds``."""

        def objective(config, n: int) -> float:
            return self.estimate_total(config, n)

        return objective
