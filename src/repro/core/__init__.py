"""The paper's primary contribution: execution-time estimation models.

Pipeline (Section 3 of the paper):

1. **Measure** homogeneous configurations of each PE kind over a grid of
   problem sizes (:mod:`repro.measure`).
2. **Fit N-T models** per configuration ``(P, Mi)``:
   ``Ta(N) = k0 N^3 + k1 N^2 + k2 N + k3``, ``Tc(N) = k4 N^2 + k5 N + k6``
   (:mod:`repro.core.nt_model`, least squares via :mod:`repro.core.lsq`).
3. **Integrate into P-T models** per kind and per-PE process count ``Mi``,
   with ``P`` as a variable (:mod:`repro.core.pt_model`).
4. **Compose** P-T models for kinds with too few PEs to measure
   (:mod:`repro.core.composition`).
5. **Bin**: select N-T for single-PE configurations (``P == Mi``), P-T
   otherwise; optionally bin further on memory pressure
   (:mod:`repro.core.binning`).
6. **Adjust** the systematic communication-model deviation with a linear
   transformation calibrated at one large configuration
   (:mod:`repro.core.adjustment`).
7. **Optimize**: estimate every candidate configuration's execution time
   and pick the argmin (:mod:`repro.core.optimizer`).

:mod:`repro.core.pipeline` wires all of it into the paper's Basic / NL / NS
protocols.
"""

from repro.core.adjustment import LinearAdjustment
from repro.core.binning import MemoryBin, ModelSelector
from repro.core.composition import CompositionPolicy
from repro.core.estimator import Estimator, KindEstimate
from repro.core.lsq import FitResult, multifit_linear
from repro.core.memory_guard import MemoryGuard, require_clean, split_dataset
from repro.core.model_api import (
    ModelDomain,
    TimeModel,
    model_from_dict,
    model_to_dict,
    registered_model_types,
)
from repro.core.model_store import ModelStore
from repro.core.nt_model import NTModel
from repro.core.persistence import load_pipeline, save_pipeline
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.core.pt_model import PTModel
from repro.core.search import (
    ExhaustiveOptimizer,
    RankedEstimate,
    SearchBackend,
    SearchOutcome,
    SearchProblem,
    SearchSpace,
    SearchStats,
    create_search,
    registered_search_backends,
)
from repro.core.stages import SearchEngine, StageGraph
from repro.core.unified_model import UnifiedEstimator, UnifiedModel

__all__ = [
    "CompositionPolicy",
    "EstimationPipeline",
    "Estimator",
    "ExhaustiveOptimizer",
    "FitResult",
    "KindEstimate",
    "LinearAdjustment",
    "MemoryBin",
    "MemoryGuard",
    "ModelDomain",
    "ModelSelector",
    "ModelStore",
    "NTModel",
    "PipelineConfig",
    "PTModel",
    "RankedEstimate",
    "SearchBackend",
    "SearchEngine",
    "SearchOutcome",
    "SearchProblem",
    "SearchSpace",
    "SearchStats",
    "StageGraph",
    "TimeModel",
    "UnifiedEstimator",
    "UnifiedModel",
    "create_search",
    "load_pipeline",
    "model_from_dict",
    "model_to_dict",
    "multifit_linear",
    "registered_model_types",
    "registered_search_backends",
    "require_clean",
    "save_pipeline",
    "split_dataset",
]
