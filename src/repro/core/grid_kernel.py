"""The candidate-axis vectorized estimation kernel.

Every search backend used to pay one Python-level estimator call per
candidate configuration; only the size axis was vectorized.  This module
vectorizes the *candidate* axis too: :class:`GridKernel` packs the
coefficients of every routed N-T / P-T model into tensors (grown lazily
as new ``(kind, P, Mi)`` queries appear, re-packed only when a new model
is routed) and evaluates the polynomial fits, the max-over-kinds
composition and the linear adjustment for a whole ``(C, S)`` block of
candidates x sizes in a handful of NumPy passes.

**Bitwise-equivalence contract.**  Cell ``[i, j]`` of
:meth:`GridKernel.evaluate` is bitwise the value of
``EstimationPipeline.estimate_totals(configs[i], ns)[j]`` (itself
documented element-identical to ``estimate(config, n).total``):

* polynomial rows use the same Horner recurrence as
  :func:`repro.core.lsq.polyval` (``np.polyval``), evaluated per packed
  row — elementwise float64 ops, identical bits;
* the P-T formulas replicate :meth:`repro.core.pt_model.PTModel.predict_ta`
  / ``predict_tc`` operation-for-operation, association order included;
* per-kind validity is checked on the *pre-clamp* sum ``(Ta + Tc) > 0``
  and the phases are clamped with ``np.maximum(x, 0.0)``, exactly as
  :meth:`repro.core.estimator.Estimator.estimate_kind_batch`;
* composition scatters with ``np.maximum.at`` / ``np.logical_and.at``
  from identities (``-inf`` / ``True``) — max over non-negative
  (or NaN/inf) values is order-independent bitwise, so the scatter
  equals the scalar loop's sequential ``np.maximum`` over
  ``config.active``;
* the adjustment multiplies ``scale_for(max Mi)`` per candidate row and
  invalid cells become ``+inf``, the same ``np.where`` the scalar path
  applies.

Configurations the kernel cannot vectorize — a non-binned backend
(:class:`~repro.core.estimator.UnifiedBackend`) or active memory bins —
take the per-candidate ``batch_fallback`` instead, preserving the
contract at reduced speed; :class:`~repro.perf.report.GridKernelStats`
makes the split observable (``--profile`` renders it).

Errors surface exactly as the scalar loop would: candidates are
validated and routed in block order, so the first failing candidate
raises the same :class:`~repro.errors.ConfigurationError` /
:class:`~repro.errors.ModelError` the scalar estimator would have raised
when it reached that candidate.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import BinnedBackend, Estimator
from repro.errors import ModelError


def polyval_rows(coeffs: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Horner evaluation of many highest-power-first polynomials over one
    shared size axis: row ``k`` is bitwise ``np.polyval(coeffs[k], sizes)``
    (the same ``y = y * x + c`` recurrence, elementwise float64)."""
    out = np.zeros((coeffs.shape[0], sizes.size), dtype=float)
    for k in range(coeffs.shape[1]):
        out = out * sizes[None, :] + coeffs[:, k][:, None]
    return out


class GridKernel:
    """Vectorized ``(configs, sizes) -> (C, S)`` adjusted-estimate block.

    Parameters
    ----------
    facade:
        The :class:`~repro.core.estimator.Estimator` whose models answer
        the queries; only a :class:`BinnedBackend` without memory bins
        takes the vectorized path (anything else rides ``batch_fallback``).
    adjustment:
        The pipeline's :class:`~repro.core.adjustment.LinearAdjustment`.
    validate:
        Optional per-configuration validation hook (the pipeline passes
        ``config.validate_against(spec)``), called in block order so
        validation errors match the scalar path's.
    stats:
        Optional :class:`~repro.perf.report.GridKernelStats` sink.
    batch_fallback:
        Per-candidate vectorized objective ``(config, ns) -> (S,)`` used
        when the kernel cannot vectorize the candidate axis (the
        pipeline's ``estimate_totals``).  Required for non-binned or
        memory-binned facades.
    """

    def __init__(
        self,
        facade: Estimator,
        adjustment,
        validate: Optional[Callable[[object], None]] = None,
        stats=None,
        batch_fallback: Optional[Callable[[object, Sequence[int]], np.ndarray]] = None,
    ):
        self.facade = facade
        self.adjustment = adjustment
        self.validate = validate
        self.stats = stats
        self.batch_fallback = batch_fallback
        #: Whether the candidate axis is vectorizable at all.
        self.vectorized = isinstance(facade.backend, BinnedBackend) and not (
            facade.memory_bins
        )
        # Routing memo: (kind, P, Mi) -> ("nt" | "pt", packed row index).
        # Routing goes through facade.select once per distinct query, so a
        # routing failure raises the authentic ModelError in block order.
        self._routes: Dict[Tuple[str, int, int], Tuple[str, int]] = {}
        self._pt_keys: Dict[Tuple[str, int], int] = {}
        self._nt_models: List[object] = []
        self._pt_models: List[object] = []
        # Packed coefficient tensors, rebuilt only when a new model routes.
        self._nt_pack: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._pt_pack: Optional[Tuple[np.ndarray, ...]] = None
        self._scales: Dict[int, float] = {}

    # -- routing & packing -------------------------------------------------

    def _route(self, kind: str, p: int, mi: int) -> Tuple[str, int]:
        key = (kind, p, mi)
        hit = self._routes.get(key)
        if hit is not None:
            return hit
        label, model = self.facade.select(kind, p, mi)
        if label == "nt":
            row = len(self._nt_models)
            self._nt_models.append(model)
            self._nt_pack = None
        elif label == "pt":
            # One P-T model serves every P > Mi of a (kind, Mi) pair —
            # share its packed row across those routes.
            pt_key = (kind, mi)
            row = self._pt_keys.get(pt_key, -1)
            if row < 0:
                row = len(self._pt_models)
                self._pt_models.append(model)
                self._pt_keys[pt_key] = row
                self._pt_pack = None
        else:  # pragma: no cover - BinnedBackend only emits nt/pt
            raise ModelError(
                f"grid kernel cannot vectorize model label {label!r}"
            )
        self._routes[key] = (label, row)
        return label, row

    def _nt_tensors(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._nt_pack is None:
            count = len(self._nt_models)
            self._nt_pack = (
                np.array(
                    [m.ka for m in self._nt_models], dtype=float
                ).reshape(count, 4),
                np.array(
                    [m.kc for m in self._nt_models], dtype=float
                ).reshape(count, 3),
            )
        return self._nt_pack

    def _pt_tensors(self) -> Tuple[np.ndarray, ...]:
        if self._pt_pack is None:
            count = len(self._pt_models)
            self._pt_pack = (
                np.array(
                    [m.ta_ref for m in self._pt_models], dtype=float
                ).reshape(count, 4),
                np.array(
                    [m.tc_ref for m in self._pt_models], dtype=float
                ).reshape(count, 3),
                np.array([m.k7 for m in self._pt_models], dtype=float),
                np.array([m.k8 for m in self._pt_models], dtype=float),
                np.array([m.k9 for m in self._pt_models], dtype=float),
                np.array([m.k10 for m in self._pt_models], dtype=float),
                np.array([m.k11 for m in self._pt_models], dtype=float),
            )
        return self._pt_pack

    def _scale_for(self, max_mi: int) -> float:
        scale = self._scales.get(max_mi)
        if scale is None:
            scale = self.adjustment.scale_for(max_mi)
            self._scales[max_mi] = scale
        return scale

    # -- evaluation --------------------------------------------------------

    def evaluate(self, configs: Sequence[object], ns: Sequence[int]) -> np.ndarray:
        """Adjusted estimates of every ``(config, n)`` cell, ``(C, S)``."""
        sizes = np.asarray([float(n) for n in ns], dtype=float)
        count, width = len(configs), sizes.size
        if not self.vectorized:
            return self._fallback(configs, ns, count, width)

        nt_cand: List[int] = []
        nt_row: List[int] = []
        pt_cand: List[int] = []
        pt_row: List[int] = []
        pt_p: List[int] = []
        scale = np.empty(count, dtype=float)
        for i, config in enumerate(configs):
            if self.validate is not None:
                self.validate(config)
            p = config.total_processes
            max_mi = 0
            for alloc in config.active:
                label, row = self._route(alloc.kind_name, p, alloc.procs_per_pe)
                if label == "nt":
                    nt_cand.append(i)
                    nt_row.append(row)
                else:
                    pt_cand.append(i)
                    pt_row.append(row)
                    pt_p.append(p)
                if alloc.procs_per_pe > max_mi:
                    max_mi = alloc.procs_per_pe
            if not config.active:
                # Match the scalar path: estimate_kinds_batch asserts on a
                # configuration with no active allocations.
                raise AssertionError(
                    f"configuration {config.label()} has no active kinds"
                )
            scale[i] = self._scale_for(max_mi)

        # Composition identities: max over clamped (>= 0) kind totals and
        # AND over validity — scatter order cannot change a single bit.
        total = np.full((count, width), -np.inf)
        valid = np.ones((count, width), dtype=bool)

        if nt_cand:
            ka, kc = self._nt_tensors()
            rows = np.asarray(nt_row)
            uniq, inverse = np.unique(rows, return_inverse=True)
            ta = polyval_rows(ka[uniq], sizes)
            tc = polyval_rows(kc[uniq], sizes)
            kind_valid = (ta + tc) > 0.0
            kind_total = np.maximum(ta, 0.0) + np.maximum(tc, 0.0)
            idx = np.asarray(nt_cand)
            np.maximum.at(total, idx, kind_total[inverse])
            np.logical_and.at(valid, idx, kind_valid[inverse])

        if pt_cand:
            ta_ref, tc_ref, k7, k8, k9, k10, k11 = self._pt_tensors()
            rows = np.asarray(pt_row)
            uniq, inverse = np.unique(rows, return_inverse=True)
            ta_rows = polyval_rows(ta_ref[uniq], sizes)[inverse]
            tc_rows = polyval_rows(tc_ref[uniq], sizes)[inverse]
            p_col = np.asarray(pt_p, dtype=float)[:, None]
            k7c = k7[rows][:, None]
            k8c = k8[rows][:, None]
            k9c = k9[rows][:, None]
            k10c = k10[rows][:, None]
            k11c = k11[rows][:, None]
            # Operation-for-operation PTModel.predict_ta / predict_tc:
            # ((k7 * ref) / P) + k8 and ((k9 * P) * ref) + ((k10 * ref) / P) + k11.
            ta = k7c * ta_rows / p_col + k8c
            tc = k9c * p_col * tc_rows + k10c * tc_rows / p_col + k11c
            kind_valid = (ta + tc) > 0.0
            kind_total = np.maximum(ta, 0.0) + np.maximum(tc, 0.0)
            idx = np.asarray(pt_cand)
            np.maximum.at(total, idx, kind_total)
            np.logical_and.at(valid, idx, kind_valid)

        adjusted = scale[:, None] * total
        out = np.where(valid, adjusted, np.inf)
        if self.stats is not None:
            self.stats.record_block(count, width)
        return out

    def _fallback(
        self, configs: Sequence[object], ns: Sequence[int], count: int, width: int
    ) -> np.ndarray:
        if self.batch_fallback is None:
            raise ModelError(
                "grid kernel cannot vectorize this estimator "
                "(non-binned backend or memory bins) and has no fallback"
            )
        out = np.empty((count, width), dtype=float)
        for i, config in enumerate(configs):
            out[i] = np.asarray(self.batch_fallback(config, ns), dtype=float)
        if self.stats is not None:
            self.stats.record_fallback(count)
        return out
