"""A unified two-variable model — the paper's future-work item (1).

Section 5: "Our aim remains (1) to make the estimation model more elegant
and unified...".  The Basic/NL/NS machinery fits a *family* of N-T models
and then integrates them into P-T models, with binning to switch between
the two.  This module provides the obvious unification: fit **one** model
per ``(kind, Mi)`` directly on the raw ``(N, P)`` measurements::

    Ta(N, P) = u0 * N^3 / P  +  u1 * N^2 / P  +  u2 * N^2  +  u3 * N  +  u4
    Tc(N, P) = u5 * P * N^2  +  u6 * N^2 / P  +  u7 * N^2  +  u8 * N  +  u9

The terms mirror the algorithm analysis of Section 3.2 (the ``update``
O(N^3/P) and O(N^2) parts, the ring broadcast's ``(P-1)·O(N^2)``, the
``laswp`` ``O(N^2)/P``) — but everything is extracted in a *single* least
squares per kind, with no reference-shape plumbing, no two-stage error
accumulation, and one model covering single-PE and multi-PE configurations
alike (no binning).

Trade-off (quantified by ``benchmarks/bench_unified.py``): the unified
model is simpler and at least as accurate *inside* the measured (N, P)
envelope, but it shares polynomial extrapolation's fragility — fitted on
the NS grid it fails exactly like the N-T/P-T stack, because the problem
is the data, not the plumbing.

:class:`UnifiedModel` satisfies the
:class:`~repro.core.model_api.TimeModel` protocol, and
:class:`UnifiedEstimator` is now a thin constructor over the
:class:`~repro.core.estimator.Estimator` facade with a
:class:`~repro.core.estimator.UnifiedBackend` — proof that a whole
alternative estimation method plugs in behind the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core import lsq
from repro.core.estimator import Estimator
from repro.core.model_api import ModelDomain, TimeModelMixin, register_model
from repro.errors import FitError, ModelError
from repro.measure.dataset import Dataset


def _design_ta(n: np.ndarray, p: np.ndarray) -> np.ndarray:
    return np.column_stack(
        [n**3 / p, n**2 / p, n**2, n, np.ones_like(n)]
    )


def _design_tc(n: np.ndarray, p: np.ndarray) -> np.ndarray:
    return np.column_stack(
        [p * n**2, n**2 / p, n**2, n, np.ones_like(n)]
    )


@register_model("unified")
@dataclass(frozen=True)
class UnifiedModel(TimeModelMixin):
    """One direct ``(N, P) -> (Ta, Tc)`` model for a ``(kind, Mi)`` pair."""

    kind_name: str
    mi: int
    ua: Tuple[float, float, float, float, float]
    uc: Tuple[float, float, float, float, float]
    n_range: Tuple[int, int]
    p_range: Tuple[int, int]
    #: fit diagnostics; excluded from equality so serialization round-trips
    chisq_ta: float = field(default=0.0, compare=False)
    chisq_tc: float = field(default=0.0, compare=False)
    composed_from: str = ""  # source kind when built by model composition

    def __post_init__(self) -> None:
        if self.mi < 1:
            raise ModelError(f"invalid Mi={self.mi}")
        if len(self.ua) != 5 or len(self.uc) != 5:
            raise ModelError("unified model needs 5 + 5 coefficients")

    # -- prediction ---------------------------------------------------------

    def predict_ta(self, n, p=None):
        n_arr = np.asarray(n, dtype=float)
        self._check_p(p)
        p_arr = np.asarray(p, dtype=float)
        out = _design_ta(np.atleast_1d(n_arr), np.atleast_1d(p_arr)) @ np.asarray(self.ua)
        return out if n_arr.ndim or p_arr.ndim else float(out[0])

    def predict_tc(self, n, p=None):
        n_arr = np.asarray(n, dtype=float)
        self._check_p(p)
        p_arr = np.asarray(p, dtype=float)
        out = _design_tc(np.atleast_1d(n_arr), np.atleast_1d(p_arr)) @ np.asarray(self.uc)
        return out if n_arr.ndim or p_arr.ndim else float(out[0])

    @property
    def domain(self) -> ModelDomain:
        return ModelDomain(n_range=self.n_range, p_range=self.p_range)

    # -- construction ------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        kind_name: str,
        mi: int,
        sizes: Sequence[float],
        procs: Sequence[float],
        ta: Sequence[float],
        tc: Sequence[float],
    ) -> "UnifiedModel":
        """Fit from raw samples; needs at least 5 observations with at
        least 2 distinct ``P`` and 4 distinct ``N`` (else the design is
        structurally rank-deficient for the terms we care about)."""
        n_arr = np.asarray(sizes, dtype=float)
        p_arr = np.asarray(procs, dtype=float)
        if n_arr.shape != p_arr.shape:
            raise FitError("sizes and procs must align")
        if len(set(n_arr.tolist())) < 4:
            raise FitError(
                f"unified model for ({kind_name}, Mi={mi}) needs >= 4 "
                "distinct N"
            )
        if len(set(p_arr.tolist())) < 2:
            raise FitError(
                f"unified model for ({kind_name}, Mi={mi}) needs >= 2 "
                "distinct P"
            )
        fit_a = lsq.multifit_linear(_design_ta(n_arr, p_arr), np.asarray(ta, dtype=float))
        fit_c = lsq.multifit_linear(_design_tc(n_arr, p_arr), np.asarray(tc, dtype=float))
        return cls(
            kind_name=kind_name,
            mi=mi,
            ua=tuple(fit_a.coefficients.tolist()),
            uc=tuple(fit_c.coefficients.tolist()),
            n_range=(int(n_arr.min()), int(n_arr.max())),
            p_range=(int(p_arr.min()), int(p_arr.max())),
            chisq_ta=fit_a.chisq,
            chisq_tc=fit_c.chisq,
        )

    @classmethod
    def fit_dataset(cls, dataset: Dataset, kind_name: str, mi: int) -> "UnifiedModel":
        """Fit from every single-kind record of ``(kind, Mi)`` in a
        construction dataset, across all its (N, P) combinations at once."""
        sizes, procs, ta, tc = [], [], [], []
        for record in dataset.single_kind(kind_name):
            if record.procs_per_pe(kind_name) != mi:
                continue
            km = record.kind(kind_name)
            sizes.append(float(record.n))
            procs.append(float(record.total_processes))
            ta.append(km.ta)
            tc.append(km.tc)
        if not sizes:
            raise FitError(f"no measurements for ({kind_name}, Mi={mi})")
        return cls.fit(kind_name, mi, sizes, procs, ta, tc)

    def scaled(self, kind_name: str, ta_factor: float, tc_factor: float) -> "UnifiedModel":
        """Model composition, as for P-T models (Section 3.5)."""
        self._check_scale_factors(ta_factor, tc_factor)
        return UnifiedModel(
            kind_name=kind_name,
            mi=self.mi,
            ua=tuple(c * ta_factor for c in self.ua),
            uc=tuple(c * tc_factor for c in self.uc),
            n_range=self.n_range,
            p_range=self.p_range,
            composed_from=self.kind_name,
        )

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind_name,
            "mi": self.mi,
            "ua": list(self.ua),
            "uc": list(self.uc),
            "n_range": list(self.n_range),
            "p_range": list(self.p_range),
        }
        if self.composed_from:
            out["composed_from"] = self.composed_from
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "UnifiedModel":
        return cls(
            kind_name=str(data["kind"]),
            mi=int(data["mi"]),
            ua=tuple(float(v) for v in data["ua"]),  # type: ignore[union-attr]
            uc=tuple(float(v) for v in data["uc"]),  # type: ignore[union-attr]
            n_range=tuple(int(v) for v in data["n_range"]),  # type: ignore[union-attr,arg-type]
            p_range=tuple(int(v) for v in data["p_range"]),  # type: ignore[union-attr,arg-type]
            composed_from=str(data.get("composed_from", "")),
        )


class UnifiedEstimator:
    """Drop-in estimator over unified models: composes per-kind times with
    the same bottleneck (max) rule as the binned pipeline, via the
    :class:`~repro.core.estimator.Estimator` facade.

    Build with :meth:`fit_dataset`; kinds without enough (N, P) coverage
    are composed from the richest kind with the same constant-factor
    scaling used for P-T composition.
    """

    def __init__(self, models: Dict[Tuple[str, int], UnifiedModel]):
        self._facade = Estimator.for_unified(dict(models))
        self.models = self._facade.backend.by_key  # type: ignore[attr-defined]

    @classmethod
    def fit_dataset(
        cls,
        dataset: Dataset,
        composition_factors: Mapping[str, Tuple[float, float]] | None = None,
    ) -> "UnifiedEstimator":
        """Fit every (kind, Mi) with enough data; compose the rest.

        ``composition_factors`` maps a target kind name to its (Ta, Tc)
        scale relative to the source kind (the kind with the most fitted
        models).  Kinds missing from the mapping use the ratio of their
        single-PE measurements at the largest common size.
        """
        models: Dict[Tuple[str, int], UnifiedModel] = {}
        kinds: Dict[str, List[int]] = {}
        for record in dataset:
            if not record.is_single_kind:
                continue
            km = next(k for k in record.per_kind if k.pe_count > 0)
            kinds.setdefault(km.kind_name, [])
            if km.procs_per_pe not in kinds[km.kind_name]:
                kinds[km.kind_name].append(km.procs_per_pe)
        for kind_name, mi_values in kinds.items():
            for mi in mi_values:
                try:
                    models[(kind_name, mi)] = UnifiedModel.fit_dataset(
                        dataset, kind_name, mi
                    )
                except FitError:
                    continue
        if not models:
            raise FitError("dataset supports no unified models")

        # Compose for kinds with missing Mi coverage.
        fitted_counts = {
            kind: sum(1 for (k, _) in models if k == kind) for kind in kinds
        }
        source = max(fitted_counts, key=lambda k: (fitted_counts[k], k))
        for kind_name, mi_values in kinds.items():
            if kind_name == source:
                continue
            for mi in mi_values:
                if (kind_name, mi) in models or (source, mi) not in models:
                    continue
                factors = (
                    composition_factors.get(kind_name)
                    if composition_factors
                    else None
                )
                if factors is None:
                    factors = _derive_factors(dataset, kind_name, source, mi)
                models[(kind_name, mi)] = models[(source, mi)].scaled(
                    kind_name, *factors
                )
        return cls(models)

    def estimate(self, config, n: int) -> float:
        """Estimated execution time of a configuration (bottleneck kind).

        Returns ``inf`` when any kind's prediction is non-positive — the
        model is out of its domain for that configuration and must not
        make it look cheap (same semantics as the binned pipeline).
        """
        return self._facade.estimate_total(config, n)

    def estimator(self):
        """Objective-function form for the optimizers."""
        return self._facade.objective()


def _derive_factors(
    dataset: Dataset, target: str, source: str, mi: int
) -> Tuple[float, float]:
    """Ta factor from the kinds' single-PE measurements at the largest
    common size (same logic as CompositionPolicy's auto mode); Tc factor
    1.0 (no usable single-PE communication signal)."""
    target_records = [
        r
        for r in dataset.single_kind(target)
        if r.total_processes == mi and r.procs_per_pe(target) == mi
    ]
    source_records = [
        r
        for r in dataset.single_kind(source)
        if r.total_processes == mi and r.procs_per_pe(source) == mi
    ]
    common = sorted(
        {r.n for r in target_records} & {r.n for r in source_records}
    )
    if not common:
        raise FitError(
            f"cannot derive composition factors {target} <- {source} "
            f"(Mi={mi}): no common single-PE sizes"
        )
    n_ref = common[-1]
    t_target = next(r for r in target_records if r.n == n_ref).kind(target).ta
    t_source = next(r for r in source_records if r.n == n_ref).kind(source).ta
    if t_source <= 0 or t_target <= 0:
        raise FitError("non-positive Ta in composition reference")
    return (t_target / t_source, 1.0)
