"""Multi-parameter linear least squares, equivalent to GSL's
``gsl_multifit_linear``.

The paper extracts every model coefficient with ``gsl_multifit_linear``
(GSL 1.4).  That routine solves the ordinary least-squares problem
``min ||y - X c||^2`` by singular value decomposition, discarding singular
values below a tolerance, and reports the coefficient covariance and
chi-squared.  :func:`multifit_linear` reproduces exactly that contract on
NumPy arrays (we call :func:`numpy.linalg.svd` rather than reimplementing
Golub-Kahan bidiagonalization; the *interface* and edge-case behaviour
follow GSL).

Also provided: weighted fitting (GSL's ``gsl_multifit_wlinear``) and the
polynomial design matrices used by the N-T models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import FitError


@dataclass(frozen=True)
class FitResult:
    """Output of a linear least-squares fit.

    Attributes
    ----------
    coefficients:
        The fitted parameter vector ``c``.
    covariance:
        Parameter covariance matrix (scaled by the residual variance, as
        GSL does for unweighted fits).
    chisq:
        Residual sum of squares ``||y - X c||^2``.
    rank:
        Effective rank used (singular values above tolerance).
    singular_values:
        All singular values of the design matrix.
    """

    coefficients: np.ndarray
    covariance: np.ndarray
    chisq: float
    rank: int
    singular_values: np.ndarray

    def predict(self, design: np.ndarray) -> np.ndarray:
        """Evaluate the fitted model on a design matrix."""
        x = np.asarray(design, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.coefficients.shape[0]:
            raise FitError(
                f"design shape {x.shape} incompatible with "
                f"{self.coefficients.shape[0]} coefficients"
            )
        return x @ self.coefficients

    def standard_errors(self) -> np.ndarray:
        return np.sqrt(np.maximum(np.diag(self.covariance), 0.0))


def multifit_linear(
    design: np.ndarray,
    y: np.ndarray,
    tol: float = 2.2204460492503131e-16,
) -> FitResult:
    """Ordinary least squares by SVD, GSL ``gsl_multifit_linear`` semantics.

    Singular values smaller than ``tol * s_max`` are treated as zero
    (GSL's default uses machine epsilon scaled by the largest singular
    value times max(n, p); we use ``tol * s_max`` with a generous default,
    which matches GSL for well-posed problems and degrades identically on
    rank-deficient ones).

    Raises :class:`FitError` when there are fewer observations than
    parameters or on shape mismatches.
    """
    x = np.atleast_2d(np.asarray(design, dtype=float))
    yv = np.asarray(y, dtype=float).ravel()
    n_obs, n_par = x.shape
    if yv.shape[0] != n_obs:
        raise FitError(f"y has {yv.shape[0]} entries for {n_obs} observations")
    if n_obs < n_par:
        raise FitError(
            f"need at least {n_par} observations to fit {n_par} coefficients, "
            f"got {n_obs}"
        )
    if not np.all(np.isfinite(x)) or not np.all(np.isfinite(yv)):
        raise FitError("design matrix and observations must be finite")

    u, s, vt = np.linalg.svd(x, full_matrices=False)
    if s.size == 0 or s[0] == 0.0:
        raise FitError("design matrix is identically zero")
    threshold = tol * s[0] * max(n_obs, n_par)
    keep = s > threshold
    rank = int(np.count_nonzero(keep))
    s_inv = np.where(keep, 1.0 / np.where(keep, s, 1.0), 0.0)

    coef = vt.T @ (s_inv * (u.T @ yv))
    residuals = yv - x @ coef
    chisq = float(residuals @ residuals)

    # Covariance: sigma^2 (X^T X)^+, with sigma^2 estimated from residuals
    # (GSL convention for the unweighted routine).
    dof = max(n_obs - rank, 1)
    sigma2 = chisq / dof
    cov = (vt.T * (s_inv**2)) @ vt * sigma2

    return FitResult(
        coefficients=coef,
        covariance=cov,
        chisq=chisq,
        rank=rank,
        singular_values=s.copy(),
    )


def multifit_wlinear(
    design: np.ndarray,
    weights: np.ndarray,
    y: np.ndarray,
    tol: float = 2.2204460492503131e-16,
) -> FitResult:
    """Weighted least squares (GSL ``gsl_multifit_wlinear``): minimizes
    ``sum_i w_i (y_i - (X c)_i)^2``."""
    w = np.asarray(weights, dtype=float).ravel()
    x = np.atleast_2d(np.asarray(design, dtype=float))
    yv = np.asarray(y, dtype=float).ravel()
    if w.shape[0] != x.shape[0]:
        raise FitError(f"{w.shape[0]} weights for {x.shape[0]} observations")
    if np.any(w < 0):
        raise FitError("weights must be non-negative")
    sqrt_w = np.sqrt(w)
    return multifit_linear(x * sqrt_w[:, None], yv * sqrt_w, tol=tol)


# -- design matrices -----------------------------------------------------------


def design_poly(x: Sequence[float], degree: int) -> np.ndarray:
    """Design matrix ``[x^degree, ..., x, 1]`` (highest power first, the
    coefficient order the paper writes its models in)."""
    if degree < 0:
        raise FitError(f"degree must be >= 0, got {degree}")
    xv = np.asarray(x, dtype=float).ravel()
    return np.vander(xv, degree + 1, increasing=False)


def design_cubic(x: Sequence[float]) -> np.ndarray:
    """``[N^3, N^2, N, 1]`` — the Ta design of the N-T model."""
    return design_poly(x, 3)


def design_quadratic(x: Sequence[float]) -> np.ndarray:
    """``[N^2, N, 1]`` — the Tc design of the N-T model."""
    return design_poly(x, 2)


def polyval(coefficients: Sequence[float], x) -> np.ndarray | float:
    """Evaluate a highest-power-first polynomial (shape-preserving)."""
    result = np.polyval(np.asarray(coefficients, dtype=float), np.asarray(x, dtype=float))
    return result if np.ndim(result) else float(result)
