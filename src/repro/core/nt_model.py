"""The N-T model (paper Section 3.2).

For one fixed configuration — a PE kind, a total process count ``P`` and a
per-PE process count ``Mi`` — the execution time of that kind's processes
is approximated as polynomials in the problem order ``N``::

    Ta(N) = k0 N^3 + k1 N^2 + k2 N + k3        (computation)
    Tc(N) = k4 N^2 + k5 N + k6                 (communication)

The polynomial orders follow the algorithm analysis: the ``update`` phase
is O(N^3/P) and dominates ``Ta``; every communication item is O(N^2) or
lower.  Coefficients are extracted by least squares
(:func:`repro.core.lsq.multifit_linear`), which needs at least four
distinct ``N`` for ``Ta`` and three for ``Tc`` — the paper's minimum
measurement requirement.

:class:`NTModel` satisfies the :class:`~repro.core.model_api.TimeModel`
protocol; it is fitted at fixed ``P``, so the protocol's ``p`` argument
is accepted and ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.core import lsq
from repro.core.model_api import ModelDomain, TimeModelMixin, register_model
from repro.errors import FitError, ModelError
from repro.measure.dataset import Dataset


@register_model("nt")
@dataclass(frozen=True)
class NTModel(TimeModelMixin):
    """Fitted N-T model for one ``(kind, P, Mi)`` configuration."""

    kind_name: str
    p: int  # total processes in the fitted configuration
    mi: int  # processes per PE of this kind
    ka: Tuple[float, float, float, float]  # k0..k3, highest power first
    kc: Tuple[float, float, float]  # k4..k6, highest power first
    n_range: Tuple[int, int]  # [min, max] N used for fitting
    chisq_ta: float = 0.0
    chisq_tc: float = 0.0
    composed_from: str = ""  # source kind when built by model composition

    def __post_init__(self) -> None:
        if self.p < 1 or self.mi < 1:
            raise ModelError(f"invalid configuration P={self.p}, Mi={self.mi}")
        if self.p < self.mi:
            raise ModelError(
                f"P={self.p} < Mi={self.mi}: total processes cannot be fewer "
                "than one PE's processes"
            )
        if len(self.ka) != 4 or len(self.kc) != 3:
            raise ModelError("N-T model needs 4 Ta and 3 Tc coefficients")

    @property
    def is_single_pe(self) -> bool:
        """True when the fitted configuration ran on one PE (``P == Mi``)."""
        return self.p == self.mi

    # -- prediction ---------------------------------------------------------

    def predict_ta(self, n, p=None):
        """Computation time at order ``n`` (scalar or array; the model is
        bound to its fitted ``P``, so ``p`` is ignored)."""
        return lsq.polyval(self.ka, n)

    def predict_tc(self, n, p=None):
        """Communication time at order ``n`` (scalar or array)."""
        return lsq.polyval(self.kc, n)

    @property
    def domain(self) -> ModelDomain:
        return ModelDomain(n_range=self.n_range)

    # -- construction ------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        kind_name: str,
        p: int,
        mi: int,
        sizes: Sequence[float],
        ta: Sequence[float],
        tc: Sequence[float],
        weighting: str = "uniform",
    ) -> "NTModel":
        """Extract k0..k6 from measurements of one configuration.

        ``weighting`` selects the least-squares objective:

        * ``"uniform"`` (the paper; GSL's default) minimizes absolute
          residuals — the largest sizes dominate, small-N accuracy is
          sacrificed;
        * ``"relative"`` weights each observation by ``1/t^2``, minimizing
          *relative* residuals — the paper's future-work item (3) "reduce
          the errors in estimation" in its simplest effective form (see
          ``benchmarks/bench_weighted_fit.py`` for what it buys).

        Raises :class:`FitError` with an explanatory message when fewer
        than 4 (Ta) / 3 (Tc) distinct sizes are supplied — the paper's
        Section 3.2 minimum.
        """
        n_arr = np.asarray(sizes, dtype=float)
        if len(set(n_arr.tolist())) < 4:
            raise FitError(
                f"N-T model for {kind_name} (P={p}, Mi={mi}) needs >= 4 "
                f"distinct N values, got {sorted(set(n_arr.tolist()))}"
            )
        ta_arr = np.asarray(ta, dtype=float)
        tc_arr = np.asarray(tc, dtype=float)
        if weighting == "uniform":
            fit_a = lsq.multifit_linear(lsq.design_cubic(n_arr), ta_arr)
            fit_c = lsq.multifit_linear(lsq.design_quadratic(n_arr), tc_arr)
        elif weighting == "relative":
            w_a = 1.0 / np.maximum(ta_arr, 1e-12) ** 2
            w_c = 1.0 / np.maximum(tc_arr, 1e-12) ** 2
            fit_a = lsq.multifit_wlinear(lsq.design_cubic(n_arr), w_a, ta_arr)
            fit_c = lsq.multifit_wlinear(lsq.design_quadratic(n_arr), w_c, tc_arr)
        else:
            raise FitError(f"unknown weighting {weighting!r}")
        return cls(
            kind_name=kind_name,
            p=p,
            mi=mi,
            ka=tuple(fit_a.coefficients.tolist()),
            kc=tuple(fit_c.coefficients.tolist()),
            n_range=(int(n_arr.min()), int(n_arr.max())),
            chisq_ta=fit_a.chisq,
            chisq_tc=fit_c.chisq,
        )

    @classmethod
    def fit_dataset(
        cls,
        dataset: Dataset,
        kind_name: str,
        config_tuple: Sequence[int],
        weighting: str = "uniform",
    ) -> "NTModel":
        """Fit from every record of ``config_tuple`` in ``dataset``."""
        subset = dataset.for_config(config_tuple)
        if len(subset) == 0:
            raise FitError(f"no measurements for configuration {tuple(config_tuple)}")
        sizes, ta, tc = [], [], []
        p = subset[0].total_processes
        mi = subset[0].procs_per_pe(kind_name)
        for record in subset:
            km = record.kind(kind_name)
            sizes.append(record.n)
            ta.append(km.ta)
            tc.append(km.tc)
        return cls.fit(kind_name, p, mi, sizes, ta, tc, weighting=weighting)

    def scaled(self, kind_name: str, ta_factor: float, tc_factor: float) -> "NTModel":
        """Model composition (paper Section 3.5): derive another kind's
        N-T model by scaling Ta and Tc by constant factors."""
        self._check_scale_factors(ta_factor, tc_factor)
        return NTModel(
            kind_name=kind_name,
            p=self.p,
            mi=self.mi,
            ka=tuple(c * ta_factor for c in self.ka),
            kc=tuple(c * tc_factor for c in self.kc),
            n_range=self.n_range,
            composed_from=self.kind_name,
        )

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind_name,
            "p": self.p,
            "mi": self.mi,
            "ka": list(self.ka),
            "kc": list(self.kc),
            "n_range": list(self.n_range),
            "chisq_ta": self.chisq_ta,
            "chisq_tc": self.chisq_tc,
        }
        if self.composed_from:
            out["composed_from"] = self.composed_from
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "NTModel":
        return cls(
            kind_name=str(data["kind"]),
            p=int(data["p"]),
            mi=int(data["mi"]),
            ka=tuple(float(v) for v in data["ka"]),  # type: ignore[union-attr]
            kc=tuple(float(v) for v in data["kc"]),  # type: ignore[union-attr]
            n_range=tuple(int(v) for v in data["n_range"]),  # type: ignore[union-attr,arg-type]
            chisq_ta=float(data.get("chisq_ta", 0.0)),
            chisq_tc=float(data.get("chisq_tc", 0.0)),
            composed_from=str(data.get("composed_from", "")),
        )
