"""Pipeline persistence: measure once, decide often.

In production use, the expensive part of the method is the measurement
campaign (hours of cluster time); the models and the decisions are
milliseconds.  :func:`save_pipeline` writes everything a finished pipeline
learned — the cluster description, the construction dataset, the fitted
models, and the calibrated adjustment — and :func:`load_pipeline`
reconstitutes a pipeline that can estimate and optimize *without
re-running anything* (the evaluation ground truth is optional and only
needed to re-verify).

Layout of a saved pipeline directory::

    cluster.json       the ClusterSpec
    manifest.json      format version, protocol name, seed, adjustment
    construction.json  the measurement Dataset
    models.json        the fitted/composed ModelStore
    evaluation.json    (optional) ground-truth measurements

**Format history.**  Format 1 stored the models as separate ``nt``/``pt``
lists; format 2 (current) stores one flat list of type-tagged model dicts
(the :mod:`repro.core.model_api` registry), so any registered model class
round-trips without changes here.  :func:`load_pipeline` reads both;
directories written by future formats are rejected with a
:class:`~repro.errors.ModelError` instead of being misread.

Loading injects the saved artifacts into the pipeline's stage graph
(:meth:`~repro.core.stages.StageGraph.set`), in dependency order — the
graph then rebuilds only what was *not* saved (e.g. the evaluation
measurements when ``evaluation.json`` is absent).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster.serialize import load_cluster, save_cluster
from repro.core.adjustment import LinearAdjustment
from repro.core.model_store import ModelStore
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.core.stages import ComposeArtifact, FitArtifact
from repro.errors import MeasurementError, ModelError
from repro.measure.campaign import CampaignResult
from repro.measure.dataset import Dataset
from repro.measure.grids import plan_by_name

_MANIFEST = "manifest.json"

#: Manifest format this module writes.
CURRENT_FORMAT = 2
#: Manifest formats this module can read.
SUPPORTED_FORMATS = (1, 2)


def _required(path: Path, what: str) -> Path:
    """Existence gate for one artifact of a saved pipeline directory."""
    if not path.exists():
        raise ModelError(f"saved pipeline is missing its {what}: {path}")
    return path


def _load_artifact(path: Path, what: str, loader):
    """Run one artifact loader, converting file corruption into a
    :class:`~repro.errors.ModelError` that names the offending path.

    A truncated/garbled JSON file raises ``json.JSONDecodeError``; a file
    that parses but lacks required structure raises ``KeyError`` /
    ``TypeError`` / ``ValueError`` from the loader.  All of those mean
    the same thing to a caller — this directory cannot be served — so
    they surface uniformly, with the path, instead of as tracebacks.
    """
    try:
        return loader(_required(path, what))
    except ModelError:
        raise
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise ModelError(f"corrupt {what} in saved pipeline: {path} ({exc})") from exc


def save_pipeline(
    pipeline: EstimationPipeline,
    directory: Path | str,
    include_evaluation: bool = True,
) -> Path:
    """Persist a pipeline's learned state; returns the directory."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    save_cluster(pipeline.spec, out / "cluster.json")
    pipeline.campaign.dataset.save(out / "construction.json")
    pipeline.store.save(out / "models.json")
    manifest = {
        "format": CURRENT_FORMAT,
        "protocol": pipeline.plan.name,
        "seed": pipeline.config.seed,
        "adjustment": pipeline.adjustment.to_dict(),
        "cost_by_kind_and_n": [
            [kind, n, cost]
            for (kind, n), cost in sorted(
                pipeline.campaign.cost_by_kind_and_n.items()
            )
        ],
    }
    (out / _MANIFEST).write_text(json.dumps(manifest, indent=1))
    if include_evaluation:
        pipeline.evaluation.save(out / "evaluation.json")
    return out


def load_pipeline(directory: Path | str) -> EstimationPipeline:
    """Reconstitute a saved pipeline.

    The returned pipeline's campaign, models and adjustment come from disk
    — no simulation (or cluster time) is spent.  Accessing ``evaluation``
    uses the saved ground truth when present, otherwise it re-measures.

    Raises :class:`~repro.errors.MeasurementError` when ``directory`` is
    not a saved pipeline at all, and :class:`~repro.errors.ModelError`
    when it was written by an unknown (newer) manifest format.
    """
    src = Path(directory)
    manifest_path = src / _MANIFEST
    if not manifest_path.exists():
        raise MeasurementError(f"{src} is not a saved pipeline (no {_MANIFEST})")
    manifest = _load_artifact(
        manifest_path, "manifest", lambda p: json.loads(p.read_text())
    )
    if not isinstance(manifest, dict):
        raise ModelError(f"corrupt manifest in saved pipeline: {manifest_path}")
    version = manifest.get("format")
    if version not in SUPPORTED_FORMATS:
        known = ", ".join(str(v) for v in SUPPORTED_FORMATS)
        raise ModelError(
            f"unknown pipeline format {version!r} in {manifest_path} "
            f"(this build reads formats {known}); refusing to guess"
        )

    spec = _load_artifact(src / "cluster.json", "cluster description", load_cluster)
    try:
        plan = plan_by_name(str(manifest["protocol"]))
        seed = int(manifest["seed"])
        cost = {
            (str(kind), int(n)): float(value)
            for kind, n, value in manifest["cost_by_kind_and_n"]
        }
        adjustment = LinearAdjustment.from_dict(manifest["adjustment"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(
            f"corrupt manifest in saved pipeline: {manifest_path} ({exc!r})"
        ) from exc
    pipeline = EstimationPipeline(
        spec, PipelineConfig(protocol=plan.name, seed=seed), plan=plan
    )

    dataset = _load_artifact(
        src / "construction.json", "construction dataset", Dataset.load
    )
    store = _load_artifact(src / "models.json", "model store", ModelStore.load)

    # Inject in dependency order: StageGraph.set drops everything
    # downstream of the stage it replaces, so upstream artifacts must land
    # before the artifacts that derive from them.
    graph = pipeline.graph
    graph.set(
        "campaign",
        CampaignResult(plan_name=plan.name, dataset=dataset, cost_by_kind_and_n=cost),
    )
    evaluation_path = src / "evaluation.json"
    if evaluation_path.exists():
        graph.set(
            "evaluation",
            _load_artifact(evaluation_path, "evaluation dataset", Dataset.load),
        )
    # The saved store already contains the composed models; inject it as
    # both the fit and compose artifacts so neither stage re-runs.
    graph.set("fit", FitArtifact(store=store, excluded_paging=Dataset()))
    graph.set("compose", ComposeArtifact(store=store, composed={}))
    graph.set("adjust", adjustment)
    return pipeline
