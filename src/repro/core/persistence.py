"""Pipeline persistence: measure once, decide often.

In production use, the expensive part of the method is the measurement
campaign (hours of cluster time); the models and the decisions are
milliseconds.  :func:`save_pipeline` writes everything a finished pipeline
learned — the cluster description, the construction dataset, the fitted
models, and the calibrated adjustment — and :func:`load_pipeline`
reconstitutes a pipeline that can estimate and optimize *without
re-running anything* (the evaluation ground truth is optional and only
needed to re-verify).

Layout of a saved pipeline directory::

    cluster.json       the ClusterSpec
    manifest.json      protocol name, seed, composition mode, adjustment
    construction.json  the measurement Dataset
    models.json        the fitted/composed ModelStore
    evaluation.json    (optional) ground-truth measurements
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.cluster.serialize import load_cluster, save_cluster
from repro.core.adjustment import LinearAdjustment
from repro.core.model_store import ModelStore
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.errors import MeasurementError
from repro.measure.campaign import CampaignResult
from repro.measure.dataset import Dataset
from repro.measure.grids import plan_by_name

_MANIFEST = "manifest.json"


def save_pipeline(
    pipeline: EstimationPipeline,
    directory: Path | str,
    include_evaluation: bool = True,
) -> Path:
    """Persist a pipeline's learned state; returns the directory."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    save_cluster(pipeline.spec, out / "cluster.json")
    pipeline.campaign.dataset.save(out / "construction.json")
    pipeline.store.save(out / "models.json")
    manifest = {
        "format": 1,
        "protocol": pipeline.plan.name,
        "seed": pipeline.config.seed,
        "adjustment": pipeline.adjustment.to_dict(),
        "cost_by_kind_and_n": [
            [kind, n, cost]
            for (kind, n), cost in sorted(
                pipeline.campaign.cost_by_kind_and_n.items()
            )
        ],
    }
    (out / _MANIFEST).write_text(json.dumps(manifest, indent=1))
    if include_evaluation:
        pipeline.evaluation.save(out / "evaluation.json")
    return out


def load_pipeline(directory: Path | str) -> EstimationPipeline:
    """Reconstitute a saved pipeline.

    The returned pipeline's campaign, models and adjustment come from disk
    — no simulation (or cluster time) is spent.  Accessing ``evaluation``
    uses the saved ground truth when present, otherwise it re-measures.
    """
    src = Path(directory)
    manifest_path = src / _MANIFEST
    if not manifest_path.exists():
        raise MeasurementError(f"{src} is not a saved pipeline (no {_MANIFEST})")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != 1:
        raise MeasurementError(f"unsupported pipeline format {manifest.get('format')!r}")

    spec = load_cluster(src / "cluster.json")
    plan = plan_by_name(str(manifest["protocol"]))
    pipeline = EstimationPipeline(
        spec, PipelineConfig(protocol=plan.name, seed=int(manifest["seed"])), plan=plan
    )

    dataset = Dataset.load(src / "construction.json")
    cost = {
        (str(kind), int(n)): float(value)
        for kind, n, value in manifest["cost_by_kind_and_n"]
    }
    pipeline._campaign = CampaignResult(
        plan_name=plan.name, dataset=dataset, cost_by_kind_and_n=cost
    )
    pipeline._store = ModelStore.load(src / "models.json")
    pipeline._adjustment = LinearAdjustment.from_dict(manifest["adjustment"])
    evaluation_path = src / "evaluation.json"
    if evaluation_path.exists():
        pipeline._evaluation = Dataset.load(evaluation_path)
    return pipeline
