"""Pipeline persistence: measure once, decide often.

In production use, the expensive part of the method is the measurement
campaign (hours of cluster time); the models and the decisions are
milliseconds.  :func:`save_pipeline` writes everything a finished pipeline
learned — the cluster description, the construction dataset, the fitted
models, and the calibrated adjustment — and :func:`load_pipeline`
reconstitutes a pipeline that can estimate and optimize *without
re-running anything* (the evaluation ground truth is optional and only
needed to re-verify).

Layout of a saved pipeline directory::

    cluster.json       the ClusterSpec
    manifest.json      format version, protocol name, seed, adjustment
    construction.json  the measurement Dataset
    models.json        the fitted/composed ModelStore
    evaluation.json    (optional) ground-truth measurements

**Format history.**  Format 1 stored the models as separate ``nt``/``pt``
lists; format 2 stores one flat list of type-tagged model dicts (the
:mod:`repro.core.model_api` registry), so any registered model class
round-trips without changes here; format 3 (current) adds the
``workload`` manifest key (the :mod:`repro.workloads` family tag — the
measurement grid and simulator the pipeline reconstitutes with).
:func:`load_pipeline` reads all three — formats 1 and 2 predate the
workload subsystem and load as implicit ``hpl`` — while directories
written by future formats are rejected with a
:class:`~repro.errors.ModelError` instead of being misread.

Loading injects the saved artifacts into the pipeline's stage graph
(:meth:`~repro.core.stages.StageGraph.set`), in dependency order — the
graph then rebuilds only what was *not* saved (e.g. the evaluation
measurements when ``evaluation.json`` is absent).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional

from repro.cluster.serialize import cluster_from_dict, save_cluster
from repro.core.adjustment import LinearAdjustment
from repro.core.model_store import ModelStore
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.core.stages import ComposeArtifact, FitArtifact
from repro.errors import MeasurementError, ModelError
from repro.measure.campaign import CampaignResult
from repro.measure.dataset import Dataset
from repro.workloads import create_workload

_MANIFEST = "manifest.json"

#: Manifest format this module writes.
CURRENT_FORMAT = 3
#: Manifest formats this module can read.
SUPPORTED_FORMATS = (1, 2, 3)

#: Artifacts a loadable pipeline must provide, in injection order.
REQUIRED_ARTIFACTS = (_MANIFEST, "cluster.json", "construction.json", "models.json")
#: Artifacts that may be absent (the stage graph rebuilds them on demand).
OPTIONAL_ARTIFACTS = ("evaluation.json",)


def _load_blob(
    blobs: Mapping[str, bytes],
    origins: Mapping[str, str],
    name: str,
    what: str,
    loader,
):
    """Decode and parse one artifact blob, converting corruption into a
    :class:`~repro.errors.ModelError` that names the offending origin.

    Truncated/garbled JSON raises ``json.JSONDecodeError``; bytes that
    parse but lack required structure raise ``KeyError`` / ``TypeError``
    / ``ValueError`` from the loader.  All of those mean the same thing
    to a caller — this pipeline cannot be served — so they surface
    uniformly, with the origin (a file path or shared-segment slot),
    instead of as tracebacks.
    """
    origin = origins.get(name, name)
    blob = blobs.get(name)
    if blob is None:
        raise ModelError(f"saved pipeline is missing its {what}: {origin}")
    try:
        return loader(blob.decode("utf-8"))
    except ModelError:
        raise
    except (
        json.JSONDecodeError,
        KeyError,
        TypeError,
        ValueError,
        UnicodeDecodeError,
    ) as exc:
        raise ModelError(f"corrupt {what} in saved pipeline: {origin} ({exc})") from exc


def pipeline_from_blobs(
    blobs: Mapping[str, bytes],
    origins: Optional[Mapping[str, str]] = None,
) -> EstimationPipeline:
    """Reconstitute a pipeline from in-memory artifact bytes.

    ``blobs`` maps artifact filenames (``manifest.json`` …) to the raw
    bytes a saved pipeline directory would contain; ``origins`` maps the
    same names to human-readable locations for error messages (file
    paths when loading from disk, segment slots when loading from shared
    memory).  This is the common core behind :func:`load_pipeline` and
    the zero-copy shared-memory loader in :mod:`repro.serve.shared` —
    both produce identical pipelines because both land here.
    """
    if origins is None:
        origins = {}
    manifest_origin = origins.get(_MANIFEST, _MANIFEST)
    manifest = _load_blob(blobs, origins, _MANIFEST, "manifest", json.loads)
    if not isinstance(manifest, dict):
        raise ModelError(f"corrupt manifest in saved pipeline: {manifest_origin}")
    version = manifest.get("format")
    if version not in SUPPORTED_FORMATS:
        known = ", ".join(str(v) for v in SUPPORTED_FORMATS)
        raise ModelError(
            f"unknown pipeline format {version!r} in {manifest_origin} "
            f"(this build reads formats {known}); refusing to guess"
        )

    spec = _load_blob(
        blobs, origins, "cluster.json", "cluster description",
        lambda text: cluster_from_dict(json.loads(text)),
    )
    # Formats 1 and 2 predate the workload subsystem: every artifact they
    # describe was an HPL pipeline, so the tag defaults to "hpl".
    workload_tag = str(manifest.get("workload", "hpl"))
    try:
        workload = create_workload(workload_tag)
    except ModelError as exc:
        raise ModelError(f"{exc} in {manifest_origin}") from exc
    try:
        protocol = str(manifest["protocol"])
        plan = workload.plan(protocol)
        seed = int(manifest["seed"])
        cost = {
            (str(kind), int(n)): float(value)
            for kind, n, value in manifest["cost_by_kind_and_n"]
        }
        adjustment = LinearAdjustment.from_dict(manifest["adjustment"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(
            f"corrupt manifest in saved pipeline: {manifest_origin} ({exc!r})"
        ) from exc
    pipeline = EstimationPipeline(
        spec,
        PipelineConfig(protocol=plan.name, seed=seed, workload=workload_tag),
        plan=plan,
    )

    dataset = _load_blob(
        blobs, origins, "construction.json", "construction dataset", Dataset.from_json
    )
    store = _load_blob(
        blobs, origins, "models.json", "model store", ModelStore.from_json
    )

    # Inject in dependency order: StageGraph.set drops everything
    # downstream of the stage it replaces, so upstream artifacts must land
    # before the artifacts that derive from them.
    graph = pipeline.graph
    graph.set(
        "campaign",
        CampaignResult(plan_name=plan.name, dataset=dataset, cost_by_kind_and_n=cost),
    )
    if "evaluation.json" in blobs:
        graph.set(
            "evaluation",
            _load_blob(
                blobs, origins, "evaluation.json", "evaluation dataset",
                Dataset.from_json,
            ),
        )
    # The saved store already contains the composed models; inject it as
    # both the fit and compose artifacts so neither stage re-runs.
    graph.set("fit", FitArtifact(store=store, excluded_paging=Dataset()))
    graph.set("compose", ComposeArtifact(store=store, composed={}))
    graph.set("adjust", adjustment)
    return pipeline


def read_pipeline_blobs(directory: Path | str) -> tuple[dict, dict]:
    """Read a saved pipeline directory's artifact bytes without parsing.

    Returns ``(blobs, origins)`` suitable for :func:`pipeline_from_blobs`
    — the single disk pass shared by :func:`load_pipeline` and the
    shared-memory packer (which must ship the *same* bytes it validated).

    Raises :class:`~repro.errors.MeasurementError` when ``directory`` is
    not a saved pipeline at all.
    """
    src = Path(directory)
    manifest_path = src / _MANIFEST
    if not manifest_path.exists():
        raise MeasurementError(f"{src} is not a saved pipeline (no {_MANIFEST})")
    blobs: dict = {}
    origins: dict = {}
    for name in REQUIRED_ARTIFACTS + OPTIONAL_ARTIFACTS:
        path = src / name
        origins[name] = str(path)
        if path.exists():
            blobs[name] = path.read_bytes()
    return blobs, origins


def save_pipeline(
    pipeline: EstimationPipeline,
    directory: Path | str,
    include_evaluation: bool = True,
) -> Path:
    """Persist a pipeline's learned state; returns the directory."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    save_cluster(pipeline.spec, out / "cluster.json")
    pipeline.campaign.dataset.save(out / "construction.json")
    pipeline.store.save(out / "models.json")
    manifest = {
        "format": CURRENT_FORMAT,
        "protocol": pipeline.plan.name,
        "workload": pipeline.config.workload,
        "seed": pipeline.config.seed,
        "adjustment": pipeline.adjustment.to_dict(),
        "cost_by_kind_and_n": [
            [kind, n, cost]
            for (kind, n), cost in sorted(
                pipeline.campaign.cost_by_kind_and_n.items()
            )
        ],
    }
    (out / _MANIFEST).write_text(json.dumps(manifest, indent=1))
    if include_evaluation:
        pipeline.evaluation.save(out / "evaluation.json")
    return out


def load_pipeline(directory: Path | str) -> EstimationPipeline:
    """Reconstitute a saved pipeline.

    The returned pipeline's campaign, models and adjustment come from disk
    — no simulation (or cluster time) is spent.  Accessing ``evaluation``
    uses the saved ground truth when present, otherwise it re-measures.

    Raises :class:`~repro.errors.MeasurementError` when ``directory`` is
    not a saved pipeline at all, and :class:`~repro.errors.ModelError`
    when it was written by an unknown (newer) manifest format.
    """
    blobs, origins = read_pipeline_blobs(directory)
    return pipeline_from_blobs(blobs, origins)
