"""Binning: selecting the right model for a query (paper Section 3.4).

Two bin dimensions appear in the paper:

* **Process structure** (Figure 5): when HPL runs on a single PE
  (``P == Mi``) there is no inter-PE communication, so the directly fitted
  N-T model is used; with multiple PEs (``P > Mi``) the P-T model is used.
  ``P < Mi`` cannot occur (``P = sum Mi``).
* **Memory pressure**: the memory requirement is predictable from
  ``(N, P)``, so a different model can be selected when a node would page
  (Figure 3(a)'s cliff).  :class:`MemoryBin` implements that piecewise
  selection; the standard protocols run without it (as the paper does),
  and the ablation bench quantifies what it buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.model_store import ModelStore
from repro.errors import ModelError


@dataclass(frozen=True)
class KindEstimate:
    """Per-kind estimation output with its provenance.

    ``valid`` is False when the model produced a non-positive total — a
    polynomial excursion outside the fitted domain.  Such an output carries
    no information (an execution time cannot be <= 0), so consumers must
    treat the configuration as *unestimable* rather than cheap; see
    :meth:`repro.core.pipeline.ConfigEstimate.total`.
    """

    kind_name: str
    ta: float
    tc: float
    model_kind: str  # "nt" or "pt"
    composed: bool = False
    bin_label: str = "default"
    valid: bool = True

    @property
    def total(self) -> float:
        return self.ta + self.tc


@dataclass(frozen=True)
class MemoryBin:
    """One memory-pressure bin: applies while ``ratio <= max_ratio``.

    ``ta_scale`` / ``tc_scale`` stretch the base model's prediction inside
    the bin — the piecewise-model mechanism of Section 3.4 in its simplest
    usable form (the paper only sketches it).
    """

    max_ratio: float
    ta_scale: float = 1.0
    tc_scale: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.max_ratio <= 0:
            raise ModelError("memory bin boundary must be positive")
        if self.ta_scale <= 0 or self.tc_scale <= 0:
            raise ModelError("memory bin scales must be positive")


class ModelSelector:
    """Routes ``(kind, N, P, Mi)`` queries to the right fitted model.

    Parameters
    ----------
    store:
        Fitted (and composed) models.
    memory_bins:
        Optional ascending list of :class:`MemoryBin`; selection uses the
        caller-provided memory ratio (computed from ``N`` and ``P`` by the
        estimator, which knows the cluster).  The last bin is open-ended.
    """

    def __init__(
        self,
        store: ModelStore,
        memory_bins: Optional[Sequence[MemoryBin]] = None,
    ):
        self.store = store
        self.memory_bins: Tuple[MemoryBin, ...] = tuple(memory_bins or ())
        boundaries = [b.max_ratio for b in self.memory_bins]
        if boundaries != sorted(boundaries):
            raise ModelError("memory bins must have ascending boundaries")

    # -- model routing -----------------------------------------------------------

    def select(self, kind: str, p: int, mi: int):
        """The model for a query, per the paper's Figure 5.

        Returns ``("nt", NTModel)`` or ``("pt", PTModel)``.
        """
        if mi < 1:
            raise ModelError(f"Mi must be >= 1, got {mi}")
        if p < mi:
            raise ModelError(
                f"impossible query: P={p} < Mi={mi} (the 'X' cells of Fig. 5)"
            )
        if p == mi:
            return "nt", self.store.nt_model(kind, p, mi)
        return "pt", self.store.pt_model(kind, mi)

    def can_estimate(self, kind: str, p: int, mi: int) -> bool:
        try:
            self.select(kind, p, mi)
            return True
        except ModelError:
            return False

    # -- estimation -------------------------------------------------------------------

    def estimate_kind(
        self,
        kind: str,
        n: float,
        p: int,
        mi: int,
        memory_ratio: Optional[float] = None,
    ) -> KindEstimate:
        """Estimated (Ta, Tc) of one kind's processes in a configuration
        with ``P`` total processes and ``Mi`` processes per PE of this kind.

        Negative polynomial excursions (possible at the edge of a fitted
        range) are clamped to zero for the phase values — but when the
        *total* goes non-positive the estimate is marked invalid: clamping
        a nonsense prediction to zero would make the configuration look
        optimal to the search instead of untrustworthy.
        """
        which, model = self.select(kind, p, mi)
        if which == "nt":
            ta = float(model.predict_ta(n))
            tc = float(model.predict_tc(n))
            composed = False
        else:
            ta = float(model.predict_ta(n, p))
            tc = float(model.predict_tc(n, p))
            composed = model.is_composed

        bin_label = "default"
        if self.memory_bins and memory_ratio is not None:
            chosen = self._bin_for(memory_ratio)
            ta *= chosen.ta_scale
            tc *= chosen.tc_scale
            bin_label = chosen.label or f"ratio<={chosen.max_ratio:g}"

        return KindEstimate(
            kind_name=kind,
            ta=max(ta, 0.0),
            tc=max(tc, 0.0),
            model_kind=which,
            composed=composed,
            bin_label=bin_label,
            valid=(ta + tc) > 0.0,
        )

    def estimate_kind_batch(
        self,
        kind: str,
        ns: Sequence[float],
        p: int,
        mi: int,
        memory_ratios: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`estimate_kind` over an array of problem orders.

        Returns ``(ta, tc, valid)`` arrays aligned with ``ns``.  Model
        routing happens once (``P``/``Mi`` are fixed across the batch);
        the polynomial evaluation, memory-bin scaling, clamping and
        validity logic are element-for-element identical to the scalar
        path, so the batch values are bitwise those of ``estimate_kind``
        called per size.
        """
        which, model = self.select(kind, p, mi)
        n_arr = np.asarray(ns, dtype=float)
        if which == "nt":
            ta = np.asarray(model.predict_ta(n_arr), dtype=float)
            tc = np.asarray(model.predict_tc(n_arr), dtype=float)
        else:
            ta = np.asarray(model.predict_ta(n_arr, p), dtype=float)
            tc = np.asarray(model.predict_tc(n_arr, p), dtype=float)

        if self.memory_bins and memory_ratios is not None:
            bins = [self._bin_for(float(r)) for r in memory_ratios]
            ta = ta * np.array([b.ta_scale for b in bins])
            tc = tc * np.array([b.tc_scale for b in bins])

        valid = (ta + tc) > 0.0
        return np.maximum(ta, 0.0), np.maximum(tc, 0.0), valid

    def _bin_for(self, ratio: float) -> MemoryBin:
        for bin_ in self.memory_bins:
            if ratio <= bin_.max_ratio:
                return bin_
        return self.memory_bins[-1]
