"""Binning: selecting the right model for a query (paper Section 3.4).

Two bin dimensions appear in the paper:

* **Process structure** (Figure 5): when HPL runs on a single PE
  (``P == Mi``) there is no inter-PE communication, so the directly fitted
  N-T model is used; with multiple PEs (``P > Mi``) the P-T model is used.
  ``P < Mi`` cannot occur (``P = sum Mi``).
* **Memory pressure**: the memory requirement is predictable from
  ``(N, P)``, so a different model can be selected when a node would page
  (Figure 3(a)'s cliff).  :class:`MemoryBin` implements that piecewise
  selection; the standard protocols run without it (as the paper does),
  and the ablation bench quantifies what it buys.

The actual machinery lives in :mod:`repro.core.estimator`: the Figure-5
routing is :class:`~repro.core.estimator.BinnedBackend`, and the
estimation semantics (memory bins, clamping, validity, batching) are the
:class:`~repro.core.estimator.Estimator` facade.  :class:`ModelSelector`
remains as the store-plus-bins constructor for that facade.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.estimator import (
    BinnedBackend,
    Estimator,
    KindEstimate,
    MemoryBin,
)
from repro.core.model_store import ModelStore

__all__ = ["KindEstimate", "MemoryBin", "ModelSelector"]


class ModelSelector(Estimator):
    """The binned estimator of the paper: Figure-5 routing over a fitted
    :class:`ModelStore`, with optional memory-pressure bins.

    A thin constructor over :class:`~repro.core.estimator.Estimator`;
    every query method (``select``, ``estimate_kind``,
    ``estimate_kind_batch``, ...) is the facade's.
    """

    def __init__(
        self,
        store: ModelStore,
        memory_bins: Optional[Sequence[MemoryBin]] = None,
    ):
        super().__init__(BinnedBackend(store), memory_bins=memory_bins)
        self.store = store
