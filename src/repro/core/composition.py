"""Model composition (paper Section 3.5).

Building a P-T model needs measurements at three or more PE counts of the
same kind — impossible for a kind with few members (the paper's cluster
has a single Athlon).  The paper therefore *composes* the missing models
from a measured kind's models, scaling Ta and Tc by constant factors: the
Athlon P-T models are the Pentium-II P-T models with Ta scaled by 0.27 and
Tc scaled by 0.85.

:class:`CompositionPolicy` supports three ways to choose the factors:

* ``"paper"`` — the paper's fixed constants (0.27 / 0.85);
* ``"auto"`` — derive the Ta factor from data the campaign *does* have:
  the single-PE N-T models of both kinds exist for every Mi, and their Ta
  ratio at the largest fitted size is exactly the relative speed the
  composition must encode.  The Tc factor defaults to 1.0 (ring waits are
  set by the network and the other ring members, not by the fast PE);
* explicit per-instance factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.model_store import ModelStore
from repro.errors import ModelError

#: The constants of the paper's Section 4.1.
PAPER_TA_FACTOR = 0.27
PAPER_TC_FACTOR = 0.85


@dataclass(frozen=True)
class CompositionPolicy:
    """How to fill in P-T models for kinds that could not be measured.

    Parameters
    ----------
    mode:
        ``"auto"``, ``"paper"`` or ``"fixed"``.
    ta_factor / tc_factor:
        Used when ``mode == "fixed"``; ``tc_factor`` is also the Tc factor
        of ``"auto"`` mode (Tc carries no usable single-PE signal to derive
        it from — single-PE runs have no network traffic).
    """

    mode: str = "auto"
    ta_factor: float = PAPER_TA_FACTOR
    tc_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "paper", "fixed"):
            raise ModelError(f"unknown composition mode {self.mode!r}")
        if self.ta_factor <= 0 or self.tc_factor <= 0:
            raise ModelError("composition factors must be positive")

    # -- factor derivation ----------------------------------------------------

    def factors_for(
        self,
        store: ModelStore,
        target_kind: str,
        source_kind: str,
        mi: int,
    ) -> Tuple[float, float]:
        """The (Ta, Tc) scale factors to derive ``target_kind``'s P-T model
        from ``source_kind``'s, for per-PE process count ``mi``."""
        if self.mode == "paper":
            return PAPER_TA_FACTOR, PAPER_TC_FACTOR
        if self.mode == "fixed":
            return self.ta_factor, self.tc_factor
        return self._auto_ta_factor(store, target_kind, source_kind, mi), self.tc_factor

    @staticmethod
    def _auto_ta_factor(
        store: ModelStore, target_kind: str, source_kind: str, mi: int
    ) -> float:
        """Ratio of the kinds' single-PE N-T Ta predictions at the largest
        common fitted size (their relative computation speed)."""
        target_nt = _single_pe_nt(store, target_kind, mi)
        source_nt = _single_pe_nt(store, source_kind, mi)
        n_ref = min(target_nt.n_range[1], source_nt.n_range[1])
        source_ta = source_nt.predict_ta(n_ref)
        target_ta = target_nt.predict_ta(n_ref)
        if source_ta <= 0 or target_ta <= 0:
            raise ModelError(
                f"cannot derive composition factor at N={n_ref}: "
                f"non-positive Ta predictions ({target_ta}, {source_ta})"
            )
        return float(target_ta / source_ta)

    # -- application ---------------------------------------------------------------

    def compose_missing(
        self,
        store: ModelStore,
        target_kind: str,
        source_kind: str,
    ) -> List[int]:
        """Fill every missing ``(target_kind, Mi)`` P-T model from
        ``source_kind``'s measured P-T models, in place.

        Returns the list of Mi values composed.  Only *measured* source
        models are used — composing from a composed model would compound
        factors invisibly.
        """
        composed: List[int] = []
        for (kind, mi), source in sorted(store.pt.items()):
            if kind != source_kind or source.is_composed:
                continue
            if store.has_pt(target_kind, mi):
                continue
            ta_f, tc_f = self.factors_for(store, target_kind, source_kind, mi)
            store.pt[(target_kind, mi)] = source.scaled(target_kind, ta_f, tc_f)
            composed.append(mi)
        return composed


def _single_pe_nt(store: ModelStore, kind: str, mi: int):
    """The single-PE N-T model (P == Mi) of a kind, required by auto mode."""
    if store.has_nt(kind, mi, mi):
        return store.nt_model(kind, mi, mi)
    raise ModelError(
        f"auto composition needs the single-PE N-T model of ({kind}, Mi={mi}); "
        "it was not fitted (missing from the construction grid?)"
    )
