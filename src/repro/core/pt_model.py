"""The P-T model (paper Section 3.3).

Managing one N-T model per ``(P, Mi)`` pair does not scale, so the paper
integrates the N-T family of a kind (at fixed per-PE process count ``Mi``)
into one model with the total process count ``P`` as a variable::

    Ta(N, P) = k7 * Ta_ref(N) / P + k8
    Tc(N, P) = k9 * P * Tc_ref(N) + k10 * Tc_ref(N) / P + k11

The ``1/P`` computation scaling comes from the O(N^3/P) ``update`` term;
the communication has a ``P``-proportional part (the ring broadcast grows
with the process count) and a ``1/P`` part (``laswp`` shrinks with it).

**Reference shapes.**  The paper writes ``Ta(N)|P,Mi`` inside the formula
without pinning down which N-T model supplies it; we resolve the ambiguity
as documented in DESIGN.md:

* ``Ta_ref(N)`` is the *total-work* shape: the N-T ``Ta`` polynomial of the
  reference (smallest measured ``P``) configuration rescaled by its own
  ``P``, so that ``Ta_ref(N)/P`` reads "1/P-th of the whole problem's
  computation".
* ``Tc_ref(N)`` is the N-T ``Tc`` polynomial of the smallest measured
  *multi-PE* configuration — single-PE configurations carry no inter-PE
  traffic and would make the reference degenerate.

Coefficients are extracted by least squares against the N-T family's
predictions over the construction grid (the paper fits "from the
corresponding N-T models"), which requires at least three measured ``P``
(two coefficients for Ta, three for Tc — Section 3.3).

:class:`PTModel` satisfies the :class:`~repro.core.model_api.TimeModel`
protocol; unlike the N-T model it genuinely depends on ``P``, so its
``predict_*`` require the ``p`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.core import lsq
from repro.core.model_api import ModelDomain, TimeModelMixin, register_model
from repro.core.nt_model import NTModel
from repro.errors import FitError, ModelError


@register_model("pt")
@dataclass(frozen=True)
class PTModel(TimeModelMixin):
    """Fitted P-T model for one ``(kind, Mi)`` pair."""

    kind_name: str
    mi: int
    #: total-work Ta reference polynomial (highest power first, degree 3)
    ta_ref: Tuple[float, float, float, float]
    #: Tc reference polynomial (highest power first, degree 2)
    tc_ref: Tuple[float, float, float]
    k7: float
    k8: float
    k9: float
    k10: float
    k11: float
    n_range: Tuple[int, int]
    p_range: Tuple[int, int]
    composed_from: str = ""  # source kind when built by model composition

    def __post_init__(self) -> None:
        if self.mi < 1:
            raise ModelError(f"invalid Mi={self.mi}")
        if len(self.ta_ref) != 4 or len(self.tc_ref) != 3:
            raise ModelError("P-T reference polynomials have wrong degree")

    # -- prediction ---------------------------------------------------------

    def predict_ta(self, n, p=None):
        """Computation time of this kind's processes at ``(N, P)``."""
        self._check_p(p)
        ref = lsq.polyval(self.ta_ref, n)
        return self.k7 * np.asarray(ref) / np.asarray(p, dtype=float) + self.k8 \
            if np.ndim(ref) or np.ndim(p) else self.k7 * ref / float(p) + self.k8

    def predict_tc(self, n, p=None):
        """Communication time of this kind's processes at ``(N, P)``."""
        self._check_p(p)
        ref = np.asarray(lsq.polyval(self.tc_ref, n), dtype=float)
        p_arr = np.asarray(p, dtype=float)
        result = self.k9 * p_arr * ref + self.k10 * ref / p_arr + self.k11
        return result if result.ndim else float(result)

    @property
    def domain(self) -> ModelDomain:
        return ModelDomain(n_range=self.n_range, p_range=self.p_range)

    # -- construction ------------------------------------------------------------

    @classmethod
    def fit_from_nt_family(
        cls,
        nt_models: Sequence[NTModel],
        sizes: Sequence[float],
    ) -> "PTModel":
        """Integrate an N-T family (same kind, same Mi, different P) into a
        P-T model, sampling each N-T model at ``sizes``.

        Raises :class:`FitError` unless at least three distinct ``P`` are
        present (the paper's minimum for the three Tc coefficients).
        """
        if not nt_models:
            raise FitError("empty N-T family")
        kind = nt_models[0].kind_name
        mi = nt_models[0].mi
        for model in nt_models:
            if model.kind_name != kind or model.mi != mi:
                raise FitError(
                    "N-T family must share kind and Mi: "
                    f"({model.kind_name}, Mi={model.mi}) vs ({kind}, Mi={mi})"
                )
        p_values = sorted({model.p for model in nt_models})
        if len(p_values) < 3:
            raise FitError(
                f"P-T model for ({kind}, Mi={mi}) needs >= 3 distinct P, "
                f"got {p_values} — use model composition instead "
                "(paper Section 3.5)"
            )
        n_arr = np.asarray(sizes, dtype=float)
        if n_arr.size < 2:
            raise FitError("need at least two sampling sizes")

        by_p = {model.p: model for model in sorted(nt_models, key=lambda m: m.p)}
        ref_model = by_p[p_values[0]]
        ta_ref = tuple(float(c) * ref_model.p for c in ref_model.ka)

        multi_pe = [model for model in nt_models if not model.is_single_pe]
        tc_source = min(multi_pe, key=lambda m: m.p) if multi_pe else ref_model
        tc_ref = tuple(float(c) for c in tc_source.kc)

        # Assemble the (N, P) -> Ta / Tc samples from the N-T predictions.
        rows_ta, y_ta, rows_tc, y_tc = [], [], [], []
        ta_ref_vals = np.asarray(lsq.polyval(ta_ref, n_arr), dtype=float)
        tc_ref_vals = np.asarray(lsq.polyval(tc_ref, n_arr), dtype=float)
        for p in p_values:
            model = by_p[p]
            rows_ta.append(np.column_stack([ta_ref_vals / p, np.ones_like(n_arr)]))
            y_ta.append(np.asarray(model.predict_ta(n_arr), dtype=float))
            rows_tc.append(
                np.column_stack(
                    [p * tc_ref_vals, tc_ref_vals / p, np.ones_like(n_arr)]
                )
            )
            y_tc.append(np.asarray(model.predict_tc(n_arr), dtype=float))
        fit_ta = lsq.multifit_linear(np.vstack(rows_ta), np.concatenate(y_ta))
        fit_tc = lsq.multifit_linear(np.vstack(rows_tc), np.concatenate(y_tc))

        return cls(
            kind_name=kind,
            mi=mi,
            ta_ref=ta_ref,
            tc_ref=tc_ref,
            k7=float(fit_ta.coefficients[0]),
            k8=float(fit_ta.coefficients[1]),
            k9=float(fit_tc.coefficients[0]),
            k10=float(fit_tc.coefficients[1]),
            k11=float(fit_tc.coefficients[2]),
            n_range=(int(n_arr.min()), int(n_arr.max())),
            p_range=(min(p_values), max(p_values)),
        )

    def scaled(
        self, kind_name: str, ta_factor: float, tc_factor: float
    ) -> "PTModel":
        """Model composition (paper Section 3.5): derive another kind's P-T
        model by scaling this one's Ta and Tc by constant factors."""
        self._check_scale_factors(ta_factor, tc_factor)
        return PTModel(
            kind_name=kind_name,
            mi=self.mi,
            ta_ref=tuple(c * ta_factor for c in self.ta_ref),
            tc_ref=tuple(c * tc_factor for c in self.tc_ref),
            k7=self.k7,
            k8=self.k8 * ta_factor,
            k9=self.k9,
            k10=self.k10,
            k11=self.k11 * tc_factor,
            n_range=self.n_range,
            p_range=self.p_range,
            composed_from=self.kind_name,
        )

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind_name,
            "mi": self.mi,
            "ta_ref": list(self.ta_ref),
            "tc_ref": list(self.tc_ref),
            "k": [self.k7, self.k8, self.k9, self.k10, self.k11],
            "n_range": list(self.n_range),
            "p_range": list(self.p_range),
            "composed_from": self.composed_from,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PTModel":
        k = [float(v) for v in data["k"]]  # type: ignore[union-attr]
        return cls(
            kind_name=str(data["kind"]),
            mi=int(data["mi"]),
            ta_ref=tuple(float(v) for v in data["ta_ref"]),  # type: ignore[union-attr]
            tc_ref=tuple(float(v) for v in data["tc_ref"]),  # type: ignore[union-attr]
            k7=k[0],
            k8=k[1],
            k9=k[2],
            k10=k[3],
            k11=k[4],
            n_range=tuple(int(v) for v in data["n_range"]),  # type: ignore[union-attr,arg-type]
            p_range=tuple(int(v) for v in data["p_range"]),  # type: ignore[union-attr,arg-type]
            composed_from=str(data.get("composed_from", "")),
        )
