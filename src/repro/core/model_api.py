"""The model API: one protocol for every execution-time model.

The paper's method is a *family* of interchangeable estimators — the N-T
model (Section 3.2), the P-T model (Section 3.3) and the unified
two-variable model (future-work item 1) — that all answer the same
question: "how long do this kind's processes run at problem order ``N``
(and total process count ``P``)?".  :class:`TimeModel` is that question
as a protocol; every concrete model satisfies it, and everything above
the model layer (the estimator facade, the cache fingerprinting, the
persistence format, the CLI inventory) talks to models only through it.

Three pieces live here:

* :class:`TimeModel` — the structural protocol (vectorized
  ``predict_ta/tc/total``, domain metadata, ``fingerprint()``,
  serialization and composition);
* :class:`TimeModelMixin` — the shared behavior every concrete model
  inherits (total = ta + tc, fingerprinting, domain checks), so the
  model classes hold only their own coefficients and math;
* the **model registry** — type-tagged serialization
  (:func:`model_to_dict` / :func:`model_from_dict`), the single place
  that maps a wire-format tag like ``"nt"`` to a concrete class.
  Registering a class (:func:`register_model`) is what makes it
  persistable and loadable; nothing else in the repository dispatches on
  concrete model types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    Type,
    runtime_checkable,
)

import numpy as np

from repro.errors import ModelError
from repro.perf.cache import model_fingerprint


@dataclass(frozen=True)
class ModelDomain:
    """The region a model was fitted on — predictions outside it are
    extrapolations (the regime where the paper's NS protocol fails)."""

    n_range: Tuple[int, int]
    p_range: Optional[Tuple[int, int]] = None

    def contains(self, n: float, p: Optional[float] = None) -> bool:
        if not (self.n_range[0] <= n <= self.n_range[1]):
            return False
        if self.p_range is not None and p is not None:
            return self.p_range[0] <= p <= self.p_range[1]
        return True


@runtime_checkable
class TimeModel(Protocol):
    """What every execution-time model must answer.

    ``predict_*`` accept scalars or arrays for ``n``; models that do not
    depend on the total process count (the N-T model is fitted at fixed
    ``P``) ignore the ``p`` argument, so callers can always pass it.
    """

    kind_name: str
    mi: int
    model_type: str  # registry tag, set by @register_model

    def predict_ta(self, n, p=None): ...
    def predict_tc(self, n, p=None): ...
    def predict_total(self, n, p=None): ...

    @property
    def domain(self) -> ModelDomain: ...
    def extrapolating(self, n: float, p: Optional[float] = None) -> bool: ...

    @property
    def is_composed(self) -> bool: ...
    def scaled(self, kind_name: str, ta_factor: float, tc_factor: float) -> "TimeModel": ...

    def to_dict(self) -> Dict[str, object]: ...
    def fingerprint(self) -> str: ...


class TimeModelMixin:
    """Shared behavior of the concrete models.

    Subclasses provide ``predict_ta`` / ``predict_tc``, ``to_dict`` /
    ``from_dict`` (the wire format is per-model) and a ``domain``; the
    mixin supplies everything that used to be triplicated.
    """

    model_type: str = ""  # overwritten by @register_model

    # -- prediction --------------------------------------------------------

    def predict_total(self, n, p=None):
        """Total time = computation + communication (scalar or array)."""
        ta = self.predict_ta(n, p)
        tc = self.predict_tc(n, p)
        if np.ndim(ta) or np.ndim(tc):
            return np.asarray(ta) + np.asarray(tc)
        return ta + tc

    # -- domain ------------------------------------------------------------

    @property
    def domain(self) -> ModelDomain:  # pragma: no cover - overridden
        raise NotImplementedError

    def extrapolating(self, n: float, p: Optional[float] = None) -> bool:
        """True when the query lies outside the fitted region."""
        return not self.domain.contains(n, p)

    # -- composition -------------------------------------------------------

    @property
    def is_composed(self) -> bool:
        """True when this model was derived from another kind's model by
        constant-factor scaling (paper Section 3.5)."""
        return bool(getattr(self, "composed_from", ""))

    @staticmethod
    def _check_scale_factors(ta_factor: float, tc_factor: float) -> None:
        if ta_factor <= 0 or tc_factor <= 0:
            raise ModelError("composition factors must be positive")

    def _check_p(self, p) -> None:
        """Reject ``P < Mi`` queries — that case does not exist (the 'X'
        cells of the paper's Figure 5: ``P = sum Mi`` over active PEs)."""
        if p is None:
            raise ModelError(
                f"{type(self).__name__} ({self.kind_name}, Mi={self.mi}) "
                "needs the total process count P"
            )
        if np.any(np.asarray(p) < self.mi):
            raise ModelError(
                f"{type(self).__name__} ({self.kind_name}, Mi={self.mi}) "
                f"queried with P < Mi — that case does not exist (paper Fig. 5)"
            )

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable short hash of everything that determines predictions.

        This is the one source of truth the estimate cache and the model
        store hash; it covers the registry tag and the serialized
        coefficients, and deliberately nothing ephemeral (fit timings
        never enter ``to_dict``).
        """
        return model_fingerprint(self.model_type, self.to_dict())


# -- registry ---------------------------------------------------------------

_REGISTRY: Dict[str, Type] = {}


def register_model(tag: str):
    """Class decorator: make a model serializable under ``tag``.

    The tag is the wire-format discriminator of the versioned pipeline
    persistence (format 2 stores ``{"type": tag, ...payload...}``).
    """

    def decorate(cls):
        if tag in _REGISTRY and _REGISTRY[tag] is not cls:
            raise ModelError(f"model tag {tag!r} already registered")
        cls.model_type = tag
        _REGISTRY[tag] = cls
        return cls

    return decorate


def registered_model_types() -> Tuple[str, ...]:
    """The known wire-format tags, sorted (for error messages and docs)."""
    return tuple(sorted(_REGISTRY))


def model_to_dict(model: TimeModel) -> Dict[str, object]:
    """Type-tagged serialization: the model's own payload plus its tag."""
    if not getattr(model, "model_type", ""):
        raise ModelError(f"{type(model).__name__} is not a registered model")
    return {"type": model.model_type, **model.to_dict()}


def model_from_dict(data: Mapping[str, object]) -> TimeModel:
    """Reconstruct any registered model from its type-tagged dict."""
    tag = data.get("type")
    cls = _REGISTRY.get(str(tag))
    if cls is None:
        raise ModelError(
            f"unknown model type {tag!r} (known: {', '.join(registered_model_types())})"
        )
    payload = {key: value for key, value in data.items() if key != "type"}
    return cls.from_dict(payload)


def iter_registry() -> Iterator[Tuple[str, Type]]:
    """``(tag, class)`` pairs of every registered model, sorted by tag."""
    yield from sorted(_REGISTRY.items())
