"""Lower bounds on per-kind execution time for branch-and-bound pruning.

The paper's estimate of a configuration is

    T(config, N) = scale(max_i Mi) * max_i (Ta_i + Tc_i)

where kind ``i``'s time depends only on ``(kind, Mi, N, P)`` — the total
process count ``P`` is the sole cross-kind coupling.  That structure
makes subtree bounding cheap: once some kinds are fixed, every
completion's ``P`` lies in an interval ``[p_lo, p_hi]``, so

    T >= min(scale over reachable max-Mi) * max over fixed active kinds
         of min_{p in [p_lo, p_hi]} t_kind(kind, Mi, N, p)

:class:`KindTimeBound` precomputes, per ``(kind, Mi, N)``, the vector of
clamped model times over every possible ``P`` (one vectorized model
evaluation instead of thousands of scalar calls) and answers interval
minima from it.  :func:`estimator_bounds` builds the oracle from a
fitted :class:`~repro.core.estimator.Estimator` facade + adjustment —
the production path; the synthetic workloads supply their own
``kind_time`` callable.

Conservativeness notes (each keeps the bound a true lower bound):

* clamped phases: ``max(Ta,0) + max(Tc,0) <= actual kind total`` (and an
  *invalid* model total is ``+inf`` in the pipeline, above everything);
* memory bins only ever scale by a known factor — the oracle multiplies
  by ``min(1, min bin scale)``;
* the adjustment scale is minimized over the whole reachable
  ``max(Mi)`` interval;
* a tiny slack factor (``1 - 1e-9``) absorbs any last-ulp difference
  between the vectorized profile evaluation and the scalar estimator, so
  pruning never relies on exact float reproduction across code paths.

The bounds themselves stay scalar and incremental — they are queried
once per tree node with node-specific ``[p_lo, p_hi]`` intervals, which
is exactly the access pattern the per-``(kind, Mi, N)`` profiles answer
in O(1).  Only the *leaves* ride the candidate-axis grid kernel
(:mod:`repro.core.grid_kernel`): branch-and-bound batches each node's
surviving leaf children into one block evaluation while the bound oracle
keeps pruning the interior of the tree unchanged.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.adjustment import LinearAdjustment
from repro.core.estimator import Estimator as EstimatorFacade
from repro.errors import ModelError, SearchError

#: ``kind_time(kind, mi, n, p_array) -> array`` of that kind's clamped
#: (Ta+Tc) model time at each total process count in ``p_array``;
#: ``inf`` marks "no model can answer this query" entries.
KindTimeFn = Callable[[str, int, int, np.ndarray], np.ndarray]

#: Slack multiplier applied to every bound: prune decisions must not
#: hinge on the last ulp of a float computed through a different code
#: path than the objective.
BOUND_SLACK = 1.0 - 1e-9


class KindTimeBound:
    """Interval minima of per-kind model times, memoized per (kind, Mi, N).

    Parameters
    ----------
    kind_time:
        Vectorized per-kind model evaluation (see :data:`KindTimeFn`).
    p_max:
        Largest total process count any configuration of the space can
        reach; profiles cover ``P in [0, p_max]``.
    scale_for:
        The adjustment's effective multiplier ``max_mi -> scale`` (1.0
        below threshold); ``None`` means no adjustment.
    """

    def __init__(
        self,
        kind_time: KindTimeFn,
        p_max: int,
        scale_for: Optional[Callable[[int], float]] = None,
    ):
        if p_max < 1:
            raise SearchError(f"p_max must be >= 1, got {p_max}")
        self._kind_time = kind_time
        self.p_max = int(p_max)
        self._scale_for = scale_for
        self._profiles: Dict[Tuple[str, int, int], np.ndarray] = {}
        self._tables: Dict[Tuple[str, int, int], List[np.ndarray]] = {}
        self._scale_minima: Dict[Tuple[int, int], float] = {}
        #: Profile evaluations performed (for :class:`SearchStats`).
        self.profile_evaluations = 0

    def profile(self, kind: str, mi: int, n: int) -> np.ndarray:
        """Clamped kind time at every total process count ``P`` in
        ``[0, p_max]`` (index = P; impossible slots hold ``inf``)."""
        key = (kind, int(mi), int(n))
        if key not in self._profiles:
            p_arr = np.arange(self.p_max + 1)
            values = np.asarray(
                self._kind_time(kind, int(mi), int(n), p_arr), dtype=float
            )
            if values.shape != p_arr.shape:
                raise SearchError(
                    f"kind_time returned shape {values.shape} for "
                    f"({kind}, Mi={mi}, N={n}), expected {p_arr.shape}"
                )
            # P < Mi is impossible (each participating PE runs Mi
            # processes), as is P < 1.
            values[: max(int(mi), 1)] = math.inf
            self._profiles[key] = values
            self.profile_evaluations += 1
        return self._profiles[key]

    def _sparse_table(self, kind: str, mi: int, n: int) -> List[np.ndarray]:
        """Range-minimum sparse table over the profile: ``table[j][i]``
        is the minimum of ``profile[i : i + 2**j]``.  Built once per
        profile so :meth:`kind_min` answers any interval in O(1) — the
        branch-and-bound hot path asks millions of interval minima."""
        key = (kind, int(mi), int(n))
        if key not in self._tables:
            level = self.profile(kind, mi, n)
            table = [level]
            span = 1
            while span * 2 <= level.size:
                level = np.minimum(level[:-span], level[span:])
                table.append(level)
                span *= 2
            self._tables[key] = table
        return self._tables[key]

    def kind_min(self, kind: str, mi: int, n: int, p_lo: int, p_hi: int) -> float:
        """``min over P in [p_lo, p_hi]`` of the kind's clamped model time
        (``inf`` when no P in the interval is answerable)."""
        lo = max(int(p_lo), 0)
        hi = min(int(p_hi), self.p_max)
        if hi < lo:
            return math.inf
        table = self._sparse_table(kind, mi, n)
        j = (hi - lo + 1).bit_length() - 1
        level = table[j]
        return float(min(level[lo], level[hi - (1 << j) + 1]))

    def scale_min(self, mi_lo: int, mi_hi: int) -> float:
        """Smallest adjustment multiplier over ``max(Mi) in [mi_lo, mi_hi]``."""
        if self._scale_for is None:
            return 1.0
        key = (int(mi_lo), int(mi_hi))
        if key not in self._scale_minima:
            lo, hi = key
            self._scale_minima[key] = min(
                (self._scale_for(mi) for mi in range(lo, hi + 1)), default=1.0
            )
        return self._scale_minima[key]


def estimator_bounds(
    facade: EstimatorFacade,
    adjustment: Optional[LinearAdjustment],
    p_max: int,
) -> KindTimeBound:
    """Bound oracle over a fitted estimator facade (the production path).

    Per ``(kind, Mi, N)`` it asks the facade's routing exactly what the
    scalar estimator would ask — the N-T model at ``P == Mi``, the P-T
    model (one vectorized polynomial evaluation) for ``P > Mi`` — and
    clamps phases the same way.  Queries no model can answer yield
    ``inf`` profile entries; when memory bins are configured the whole
    profile is scaled by the most optimistic bin factor.
    """
    bin_factor = 1.0
    for bin_ in facade.memory_bins:
        bin_factor = min(bin_factor, bin_.ta_scale, bin_.tc_scale)

    def kind_time(kind: str, mi: int, n: int, p_arr: np.ndarray) -> np.ndarray:
        values = np.full(p_arr.shape, math.inf)
        # Single-PE-kind slot: P == Mi routes to the N-T model.
        if mi <= p_arr[-1]:
            try:
                _, model = facade.select(kind, mi, mi)
                ta = max(float(model.predict_ta(n, mi)), 0.0)
                tc = max(float(model.predict_tc(n, mi)), 0.0)
                values[mi] = ta + tc
            except ModelError:
                pass
        # P > Mi routes to one P-T (or unified) model for every P, so a
        # single vectorized evaluation fills the rest of the profile.
        p_tail = p_arr[p_arr > mi]
        if p_tail.size:
            try:
                _, model = facade.select(kind, int(p_tail[0]), mi)
                ta = np.asarray(model.predict_ta(float(n), p_tail), dtype=float)
                tc = np.asarray(model.predict_tc(float(n), p_tail), dtype=float)
                values[p_arr > mi] = np.maximum(ta, 0.0) + np.maximum(tc, 0.0)
            except ModelError:
                pass
        return values * bin_factor

    scale_for = None
    if adjustment is not None and not adjustment.is_identity:
        scale_for = adjustment.scale_for
    return KindTimeBound(kind_time, p_max=p_max, scale_for=scale_for)
