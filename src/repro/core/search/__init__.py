"""Pluggable configuration search (the Search protocol).

The paper enumerates 62 candidates exhaustively; this package keeps that
search as one *backend* among several behind a common protocol:

=============  ==============================================  ========
tag            strategy                                        exact?
=============  ==============================================  ========
exhaustive     evaluate every candidate (the paper's search)   yes
branch-bound   DFS + model-derived subtree lower bounds        yes
beam           deterministic beam + greedy polish              no
greedy         best-improvement growth                         no
hill-climb     first-improvement with restarts                 no
anneal         simulated annealing                             no
=============  ==============================================  ========

Exact backends agree **bitwise** with each other on ``SearchOutcome.best``;
heuristics trade completeness for evaluation count.  ``branch-bound`` and
``beam`` accept an evaluation ``budget`` and return anytime answers with
``stats.exhausted=True`` when it runs out (the local searchers honor a
budget, too).

Construct a backend from a :class:`SearchProblem` with
:func:`create_search`; importing this package registers every built-in
backend.
"""

from repro.core.search.base import (
    BatchEstimator,
    Estimator,
    GridEstimator,
    RankedEstimate,
    SearchBackend,
    SearchOutcome,
    SearchProblem,
    SearchStats,
    actual_best,
    rank_evaluations,
    validated_estimate,
    validated_estimates,
)
from repro.core.search.bounds import KindTimeBound, estimator_bounds
from repro.core.search.branch_bound import BranchBoundSearch
from repro.core.search.exhaustive import ExhaustiveOptimizer
from repro.core.search.local import (
    BeamSearch,
    GreedyGrowth,
    HillClimber,
    LocalSearchBase,
    SimulatedAnnealing,
    full_candidate_space,
)
from repro.core.search.registry import (
    DEFAULT_BACKEND,
    create_search,
    iter_search_registry,
    register_search,
    registered_search_backends,
    search_backend_class,
)
from repro.core.search.space import SearchSpace
from repro.core.search.synthetic import (
    synthetic_kind_params,
    synthetic_kind_time,
    synthetic_problem,
)

__all__ = [
    "BatchEstimator",
    "BeamSearch",
    "BranchBoundSearch",
    "DEFAULT_BACKEND",
    "Estimator",
    "ExhaustiveOptimizer",
    "GreedyGrowth",
    "GridEstimator",
    "HillClimber",
    "KindTimeBound",
    "LocalSearchBase",
    "RankedEstimate",
    "SearchBackend",
    "SearchOutcome",
    "SearchProblem",
    "SearchSpace",
    "SearchStats",
    "SimulatedAnnealing",
    "actual_best",
    "create_search",
    "estimator_bounds",
    "full_candidate_space",
    "iter_search_registry",
    "rank_evaluations",
    "register_search",
    "registered_search_backends",
    "search_backend_class",
    "synthetic_kind_params",
    "synthetic_kind_time",
    "synthetic_problem",
    "validated_estimate",
    "validated_estimates",
]
