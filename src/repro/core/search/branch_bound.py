"""Branch-and-bound over a product configuration space.

The search tree assigns one kind's ``(pe_count, procs_per_pe)`` choice
per level.  At any interior node, the total process count ``P`` of every
completion lies in an interval computed from suffix aggregates, and the
paper's objective structure (per-kind time depends only on
``(kind, Mi, N, P)``; the configuration total is the scaled per-kind
maximum) gives a cheap lower bound on the whole subtree: every
completion runs at some ``P* in [p_lo, p_hi]`` and costs at least the
element-wise **max profile** of the already-fixed active kinds at
``P*``, so

    subtree >= scale_lb * min over P in [p_lo, p_hi] of
               max over fixed active kinds of t_kind(kind, Mi, N, P)

The max profile is maintained incrementally along the DFS path (one
vectorized ``np.maximum`` per fixed active kind), so each child bound is
one array slice minimum.  A subtree is cut only when its bound
*strictly* exceeds the incumbent value — so every candidate whose value
ties the optimum is still evaluated, and the final winner is selected by
the same ``(estimate, config.key())`` order the exhaustive optimizer
uses.  Since both backends call the identical estimator on the winning
configuration, branch-and-bound agrees with exhaustive **bitwise** on
``SearchOutcome.best`` (the golden tests assert this on the paper grid).

With ``budget=k`` the search becomes anytime: it stops after ``k``
objective evaluations — or after ``work_factor * k`` bound computations,
which caps the interior-node walk on spaces so large that pruning alone
never exhausts them (the ROADMAP's 10-kind datacenter has ~10^23
configurations) — and returns the incumbent-so-far with
``stats.exhausted=True``.  Children are visited most-promising-first, so
early incumbents are already good.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.core.search.base import (
    Estimator,
    GridEstimator,
    SearchBackend,
    SearchOutcome,
    SearchProblem,
    SearchStats,
    rank_evaluations,
    validated_estimate,
)
from repro.core.search.bounds import BOUND_SLACK, KindTimeBound
from repro.core.search.registry import register_search
from repro.core.search.space import SearchSpace
from repro.errors import SearchError


@register_search("branch-bound")
class BranchBoundSearch(SearchBackend):
    """Exact search with model-derived subtree pruning."""

    def __init__(
        self,
        estimator: Estimator,
        space: SearchSpace,
        bounds: KindTimeBound,
        grid_estimator: Optional[GridEstimator] = None,
        allow_unestimable: bool = True,
        budget: Optional[int] = None,
        work_factor: int = 256,
    ):
        if bounds is None:
            raise SearchError(
                "branch-and-bound needs a bound oracle "
                "(SearchProblem.bounds); without one it cannot prune"
            )
        if budget is not None and budget < 1:
            raise SearchError(f"budget must be >= 1, got {budget}")
        if work_factor < 1:
            raise SearchError(f"work_factor must be >= 1, got {work_factor}")
        self.estimator = estimator
        self.space = space
        self.bounds = bounds
        #: Candidate-axis kernel: leaf blocks are prefetched through it
        #: while the bounds stay incremental (the DFS walk, pruning and
        #: budget decisions replay over bitwise-equal values).
        self.grid_estimator = grid_estimator
        self.allow_unestimable = allow_unestimable
        self.budget = budget
        self.work_factor = work_factor
        self.stats = None

        kinds = space.kinds
        choices = space.choices
        depth_range = range(len(kinds) + 1)
        # Suffix aggregates over kinds [depth:]: process-count extremes,
        # the largest reachable per-PE process count, and leaf counts
        # (total completions / all-idle completions) for prune accounting.
        self._suffix_min_procs = [0] * len(depth_range)
        self._suffix_max_procs = [0] * len(depth_range)
        self._suffix_max_mi = [0] * len(depth_range)
        self._suffix_leaves = [1] * len(depth_range)
        self._suffix_idle = [1] * len(depth_range)
        for depth in reversed(range(len(kinds))):
            procs = [pe * m for pe, m in choices[depth]]
            self._suffix_min_procs[depth] = (
                min(procs) + self._suffix_min_procs[depth + 1]
            )
            self._suffix_max_procs[depth] = (
                max(procs) + self._suffix_max_procs[depth + 1]
            )
            self._suffix_max_mi[depth] = max(
                max(m for _, m in choices[depth]), self._suffix_max_mi[depth + 1]
            )
            self._suffix_leaves[depth] = len(choices[depth]) * self._suffix_leaves[
                depth + 1
            ]
            self._suffix_idle[depth] = sum(
                1 for pe, _ in choices[depth] if pe == 0
            ) * self._suffix_idle[depth + 1]

    @classmethod
    def from_problem(
        cls,
        problem: SearchProblem,
        budget: Optional[int] = None,
        work_factor: int = 256,
    ) -> "BranchBoundSearch":
        space = problem.resolved_space()
        if problem.candidates is not None and not space.is_exact_cover_of(
            problem.candidates
        ):
            raise SearchError(
                "branch-and-bound needs a product-structured candidate set "
                f"(got {len(list(problem.candidates))} candidates that do not "
                f"form the {space.size}-configuration grid their per-kind "
                "choices span); use the exhaustive backend for irregular sets"
            )
        if problem.bounds is None:
            raise SearchError(
                "branch-and-bound needs a bound oracle "
                "(SearchProblem.bounds); without one it cannot prune"
            )
        return cls(
            problem.estimator,
            space,
            problem.bounds,
            grid_estimator=problem.grid_estimator,
            allow_unestimable=problem.allow_unestimable,
            budget=budget,
            work_factor=work_factor,
        )

    # -- search -------------------------------------------------------------

    def _subtree_leaves(self, depth: int, p_fixed: int) -> int:
        """Runnable configurations below a node at ``depth`` whose fixed
        prefix already contributes ``p_fixed`` processes."""
        count = self._suffix_leaves[depth]
        if p_fixed == 0:
            count -= self._suffix_idle[depth]
        return count

    def _node_bound(
        self,
        n: int,
        depth: int,
        p_fixed: int,
        mi_fixed: int,
        max_profile: Optional[np.ndarray],
        stats: SearchStats,
    ) -> float:
        """Lower bound on every completion of a node (see module doc)."""
        stats.bound_evaluations += 1
        p_lo = max(p_fixed + self._suffix_min_procs[depth], 1)
        p_hi = p_fixed + self._suffix_max_procs[depth]
        mi_lo = max(mi_fixed, 1)
        mi_hi = max(mi_fixed, self._suffix_max_mi[depth])
        scale_lb = self.bounds.scale_min(mi_lo, mi_hi)
        if max_profile is not None:
            hi = min(p_hi, self.bounds.p_max)
            if hi < p_lo:
                return math.inf
            t_lb = float(max_profile[p_lo : hi + 1].min())
        else:
            # Nothing is active yet, but every runnable completion
            # activates at least one remaining kind — its time is at
            # least the cheapest remaining active choice's minimum.
            t_lb = math.inf
            for j in range(depth, len(self.space.kinds)):
                for pe, m in self.space.choices[j]:
                    if pe > 0:
                        t_lb = min(
                            t_lb,
                            self.bounds.kind_min(
                                self.space.kinds[j], m, n, p_lo, p_hi
                            ),
                        )
        return BOUND_SLACK * scale_lb * t_lb

    def optimize(self, n: int) -> SearchOutcome:
        started = time.perf_counter()
        stats = SearchStats(backend=self.backend_type, budget=self.budget)
        self.stats = stats
        evaluated: List[Tuple[ClusterConfig, float]] = []
        # Incumbent ordered by (value, key): the exhaustive tie-break.
        incumbent: List[object] = [math.inf, ()]
        space = self.space
        n_kinds = len(space.kinds)
        assignment: List[Tuple[int, int]] = []
        # Leaf values prefetched through the grid kernel, keyed by the
        # full choice assignment; the leaf branch consumes (pops) them in
        # its original DFS order, so pruning, incumbents and the budget
        # replay identically over bitwise-equal values.
        leaf_values: dict = {}
        work_cap = (
            None if self.budget is None else self.budget * self.work_factor
        )

        def walk(
            depth: int,
            p_fixed: int,
            mi_fixed: int,
            max_profile: Optional[np.ndarray],
        ) -> bool:
            """Depth-first expansion; returns False once out of budget."""
            if depth == n_kinds:
                if p_fixed == 0:
                    return True  # the all-idle combination is not runnable
                if (
                    self.budget is not None
                    and stats.evaluations >= self.budget
                ):
                    stats.exhausted = True
                    return False
                config = space.config_of(assignment)
                raw = leaf_values.pop(tuple(assignment), None)
                if raw is None:
                    raw = float(self.estimator(config, n))
                value = validated_estimate(
                    raw, config, n, self.allow_unestimable
                )
                stats.record(config, value)
                evaluated.append((config, value))
                contender = (value, config.key())
                if contender < (incumbent[0], incumbent[1]):
                    incumbent[0], incumbent[1] = contender
                return True

            if work_cap is not None and stats.bound_evaluations >= work_cap:
                stats.exhausted = True
                return False
            children = []
            for choice in space.choices[depth]:
                pe, m = choice
                if pe > 0:
                    profile = self.bounds.profile(space.kinds[depth], m, n)
                    child_profile = (
                        profile
                        if max_profile is None
                        else np.maximum(max_profile, profile)
                    )
                else:
                    child_profile = max_profile
                child_p = p_fixed + pe * m
                child_mi = max(mi_fixed, m)
                bound = self._node_bound(
                    n, depth + 1, child_p, child_mi, child_profile, stats
                )
                children.append((bound, choice, child_p, child_mi, child_profile))
            # Most promising subtree first: tighter incumbents earlier
            # mean more pruning later (and better anytime behavior).
            children.sort(key=lambda item: (item[0], item[1]))
            if self.grid_estimator is not None and depth + 1 == n_kinds:
                # Prefetch the leaf block this node will evaluate: every
                # runnable child that survives the *pre-block* incumbent
                # check, capped at the remaining budget.  A mid-block
                # incumbent improvement only prunes *more* during replay,
                # so the prefetched set is a superset of the consumed one
                # and unconsumed cells are simply discarded.
                remaining = (
                    None
                    if self.budget is None
                    else self.budget - stats.evaluations
                )
                block: List[Tuple[Tuple[int, int], ...]] = []
                for bound, choice, child_p, _, _ in children:
                    if bound > incumbent[0]:
                        break
                    if child_p == 0:
                        continue
                    if remaining is not None and len(block) >= remaining:
                        break
                    block.append(tuple(assignment) + (choice,))
                if len(block) > 1:
                    configs = [space.config_of(key) for key in block]
                    values = np.asarray(
                        self.grid_estimator(configs, [n]), dtype=float
                    )
                    if values.shape != (len(block), 1):
                        raise SearchError(
                            f"grid estimator returned shape {values.shape},"
                            f" expected ({len(block)}, 1)"
                        )
                    for key, value in zip(block, values[:, 0]):
                        leaf_values[key] = float(value)
            for index, (bound, choice, child_p, child_mi, child_profile) in (
                enumerate(children)
            ):
                # Strict comparison: a subtree whose bound *equals* the
                # incumbent may hold a tied candidate that wins the key
                # tie-break, so it must still be explored.  Children are
                # bound-sorted, so the first pruned child prunes the rest.
                if bound > incumbent[0]:
                    for _, _, rest_p, _, _ in children[index:]:
                        stats.prune(self._subtree_leaves(depth + 1, rest_p))
                    break
                assignment.append(choice)
                alive = walk(depth + 1, child_p, child_mi, child_profile)
                assignment.pop()
                if not alive:
                    return False
            return True

        walk(0, 0, 0, None)
        complete = stats.pruned_candidates == 0 and not stats.exhausted
        return rank_evaluations(
            n, evaluated, started, stats=stats, complete=complete
        )

    def optimize_many(self, ns: Sequence[int]) -> List[SearchOutcome]:
        sizes = [int(n) for n in ns]
        if not sizes:
            raise SearchError("optimize_many needs at least one size")
        return [self.optimize(n) for n in sizes]
