"""The paper's flat enumeration as a registered search backend.

Section 3.1 frames configuration selection as combinatorial optimization
with the model as the objective function; Section 4 reports the
enumeration takes ~35 ms for 62 candidates x 5 sizes.
:class:`ExhaustiveOptimizer` is that search, over any callable estimator
— the pipeline's model-based estimator in production, plain functions in
tests, and the heuristic searchers compare themselves against it.  It
remains the reference every other backend must match (exact backends
bitwise, heuristics within tolerance).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.core.search.base import (
    BatchEstimator,
    Estimator,
    GridEstimator,
    RankedEstimate,
    SearchBackend,
    SearchOutcome,
    SearchProblem,
    SearchStats,
    rank_evaluations,
    validated_estimate,
    validated_estimates,
)
from repro.core.search.registry import register_search
from repro.errors import SearchError


@register_search("exhaustive")
class ExhaustiveOptimizer(SearchBackend):
    """Estimate every candidate and rank them.

    Parameters
    ----------
    estimator:
        Objective function.
    candidates:
        The configuration space (the paper's 62 evaluation configurations,
        or anything else).
    batch_estimator:
        Optional vectorized objective ``(config, sizes) -> array``;
        when present, :meth:`optimize_many` evaluates the whole
        candidates x sizes grid through it instead of
        ``len(candidates) * len(sizes)`` scalar calls.  Must agree
        numerically with ``estimator`` (the pipeline's implementations
        are element-for-element identical).
    grid_estimator:
        Optional candidate-axis vectorized objective
        ``(configs, sizes) -> (C, S) array``.  When present both
        :meth:`optimize` and :meth:`optimize_many` evaluate the entire
        candidate block in one kernel call and rank the columns with a
        vectorized ``(estimate, key)`` lexsort — bitwise the scalar
        ranking (the grid contract guarantees bitwise-equal cells, and
        the precomputed key ranks make the lexsort tie-break identical
        to sorting on the canonical keys themselves).
    allow_unestimable:
        ``+inf`` is the pipeline estimator's sanctioned "model outside its
        domain" signal, and by default such candidates simply rank last
        (raising only when *no* candidate is finite).  An estimator that
        is supposed to cover every candidate — a plain function in a
        heuristic-search comparison, say — can pass ``False`` to turn any
        ``+inf`` into an immediate :class:`SearchError` instead of a
        silently deprioritized candidate.  NaN and negative values
        (including ``-inf``) always raise.
    """

    def __init__(
        self,
        estimator: Estimator,
        candidates: Sequence[ClusterConfig],
        batch_estimator: Optional[BatchEstimator] = None,
        grid_estimator: Optional[GridEstimator] = None,
        allow_unestimable: bool = True,
    ):
        if not candidates:
            raise SearchError("empty candidate set")
        self.estimator = estimator
        self.candidates = list(candidates)
        self.batch_estimator = batch_estimator
        self.grid_estimator = grid_estimator
        self.allow_unestimable = allow_unestimable
        # Sort keys are recomputed on every optimize(); cache them once.
        self._candidate_keys = [config.key() for config in self.candidates]
        self._key_rank_cache: Optional[np.ndarray] = None
        self.stats = None

    @classmethod
    def from_problem(
        cls, problem: SearchProblem, budget: Optional[int] = None
    ) -> "ExhaustiveOptimizer":
        if budget is not None:
            raise SearchError(
                "the exhaustive backend enumerates the full space and does "
                "not support an evaluation budget (pick 'branch-bound' or "
                "'beam' for budgeted search)"
            )
        return cls(
            problem.estimator,
            problem.resolved_candidates(),
            batch_estimator=problem.batch_estimator,
            grid_estimator=problem.grid_estimator,
            allow_unestimable=problem.allow_unestimable,
        )

    def _validated(self, value: float, config: ClusterConfig, n: int) -> float:
        return validated_estimate(value, config, n, self.allow_unestimable)

    def _new_stats(self) -> SearchStats:
        stats = SearchStats(
            backend=self.backend_type, evaluations=len(self.candidates)
        )
        self.stats = stats
        return stats

    def _outcome(
        self,
        n: int,
        ranking: List[RankedEstimate],
        started: float,
        stats: Optional[SearchStats] = None,
    ) -> SearchOutcome:
        if not np.isfinite(ranking[0].estimate_s):
            raise SearchError(
                f"no candidate could be estimated at N={n} "
                "(all models out of domain)"
            )
        stats = stats if stats is not None else self._new_stats()
        stats.best_config = ranking[0].config
        stats.best_estimate = ranking[0].estimate_s
        return SearchOutcome(
            n=n,
            ranking=ranking,
            search_seconds=time.perf_counter() - started,
            stats=stats,
            complete=True,
        )

    def _rank(
        self,
        n: int,
        values: Sequence[float],
        started: float,
        stats: Optional[SearchStats] = None,
    ) -> SearchOutcome:
        """Assemble a :class:`SearchOutcome` from per-candidate estimates
        (same ordering and error semantics as the scalar loop)."""
        ranking = [
            RankedEstimate(config=config, n=n, estimate_s=value)
            for config, value in zip(self.candidates, values)
        ]
        order = sorted(
            range(len(ranking)),
            key=lambda i: (ranking[i].estimate_s, self._candidate_keys[i]),
        )
        return self._outcome(n, [ranking[i] for i in order], started, stats)

    @property
    def _key_ranks(self) -> np.ndarray:
        """Ordinal of each candidate's canonical key in sorted-key order.

        Sorting by ``(estimate, key_rank)`` equals sorting by
        ``(estimate, key)``: the ranks are a strictly monotone relabeling
        of the keys (equal keys get distinct ranks in original-index
        order, which is exactly the stable-sort tie-break the scalar
        ranking applies)."""
        if self._key_rank_cache is None:
            order = sorted(
                range(len(self._candidate_keys)),
                key=lambda i: self._candidate_keys[i],
            )
            ranks = np.empty(len(order), dtype=np.int64)
            ranks[np.asarray(order, dtype=np.int64)] = np.arange(
                len(order), dtype=np.int64
            )
            self._key_rank_cache = ranks
        return self._key_rank_cache

    def _rank_grid(
        self, n: int, values: np.ndarray, started: float
    ) -> SearchOutcome:
        """The vectorized ranking: ``np.lexsort`` on (estimate, key rank)
        — the identical ordering :meth:`_rank` produces, without the
        per-candidate Python tuple comparisons."""
        order = np.lexsort((self._key_ranks, values))
        ranking = [
            RankedEstimate(
                config=self.candidates[i], n=n, estimate_s=float(values[i])
            )
            for i in order
        ]
        return self._outcome(n, ranking, started)

    def _grid(self, sizes: Sequence[int]) -> np.ndarray:
        assert self.grid_estimator is not None
        grid = np.asarray(self.grid_estimator(self.candidates, sizes), dtype=float)
        expected = (len(self.candidates), len(sizes))
        if grid.shape != expected:
            raise SearchError(
                f"grid estimator returned shape {grid.shape}, "
                f"expected {expected}"
            )
        return grid

    def optimize(self, n: int) -> SearchOutcome:
        """Rank all candidates for problem order ``n`` (ascending time)."""
        started = time.perf_counter()
        if self.grid_estimator is not None:
            column = self._grid([int(n)])[:, 0]
            values_arr = validated_estimates(
                column, self.candidates, n, self.allow_unestimable
            )
            return self._rank_grid(n, values_arr, started)
        values: List[float] = []
        for config in self.candidates:
            # +inf is the estimator's "I cannot estimate this configuration"
            # signal (model outside its domain); such candidates rank last.
            values.append(self._validated(float(self.estimator(config, n)), config, n))
        return self._rank(n, values, started)

    def optimize_many(self, ns: Sequence[int]) -> List[SearchOutcome]:
        """Rank all candidates for every size in ``ns`` — the sweep path.

        With a ``batch_estimator`` the candidates x sizes grid is
        evaluated in vectorized batches (one call per candidate covering
        all sizes); without one this degrades to ``optimize`` per size.
        Outcomes are numerically identical either way; in batched mode
        each outcome's ``search_seconds`` is its share of the grid
        evaluation plus its own ranking cost.
        """
        sizes = [int(n) for n in ns]
        if not sizes:
            raise SearchError("optimize_many needs at least one size")
        if self.grid_estimator is not None:
            started = time.perf_counter()
            grid = self._grid(sizes)
            eval_share = (time.perf_counter() - started) / len(sizes)
            outcomes = []
            for j, n in enumerate(sizes):
                column_started = time.perf_counter()
                values_arr = validated_estimates(
                    grid[:, j], self.candidates, n, self.allow_unestimable
                )
                outcome = self._rank_grid(n, values_arr, column_started)
                outcome.search_seconds += eval_share
                outcomes.append(outcome)
            return outcomes
        if self.batch_estimator is None:
            return [self.optimize(n) for n in sizes]
        started = time.perf_counter()
        grid = np.empty((len(self.candidates), len(sizes)), dtype=float)
        for i, config in enumerate(self.candidates):
            row = np.asarray(self.batch_estimator(config, sizes), dtype=float)
            if row.shape != (len(sizes),):
                raise SearchError(
                    f"batch estimator returned shape {row.shape} for "
                    f"{config.label()}, expected ({len(sizes)},)"
                )
            grid[i] = row
        eval_share = (time.perf_counter() - started) / len(sizes)
        outcomes = []
        for j, n in enumerate(sizes):
            column_started = time.perf_counter()
            values = [
                self._validated(float(grid[i, j]), config, n)
                for i, config in enumerate(self.candidates)
            ]
            outcome = self._rank(n, values, column_started)
            outcome.search_seconds += eval_share
            outcomes.append(outcome)
        return outcomes

    def best(self, n: int) -> RankedEstimate:
        return self.optimize(n).best


# rank_evaluations is the order-independent form of ``_rank`` the other
# backends use; re-exported here so the two ranking paths are findable
# side by side.
__all__ = ["ExhaustiveOptimizer", "rank_evaluations"]
