"""Local-search backends over the product configuration lattice.

The three classic heuristics of the paper's future-work Section 5
(originally ``repro.exts.heuristics``, which still re-exports them) plus
a deterministic beam/local-search hybrid, all generalized from "a
cluster spec with processes 1..max_procs" to any
:class:`~repro.core.search.space.SearchSpace` — moves step between a
kind's *available* choices, which for a full spec-derived space
reproduces the original ±1 moves exactly.

* :class:`GreedyGrowth` — start from the best single-PE configuration and
  repeatedly take the best *improving move*; stops at a local optimum.
* :class:`HillClimber` — first-improvement local search with restarts.
* :class:`SimulatedAnnealing` — random moves with a cooling temperature;
  escapes the local optima the greedy methods get stuck in.
* :class:`BeamSearch` — keep the ``width`` best states, expand all their
  neighbors each round, then polish the winner with greedy descent.
  Fully deterministic (ties break on state), and the backend of choice
  for *anytime* answers: under ``budget=k`` it stops after ``k``
  evaluations and reports the best state seen.

Moves change one coordinate: add/remove a PE of one kind, or increment/
decrement one kind's processes-per-PE (to the next available value).
"""

from __future__ import annotations

import inspect
import math
import time
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.config import ClusterConfig, KindAllocation
from repro.cluster.spec import ClusterSpec
from repro.core.search.base import (
    Estimator,
    GridEstimator,
    SearchBackend,
    SearchOutcome,
    SearchProblem,
    SearchStats,
    rank_evaluations,
    validated_estimate,
)
from repro.core.search.registry import register_search
from repro.core.search.space import SearchSpace
from repro.errors import SearchError
from repro.rng import stream

State = Tuple[Tuple[str, int, int], ...]  # ((kind, pe_count, procs), ...)


class _BudgetExhausted(Exception):
    """Internal control flow: the evaluation budget ran out mid-search."""


def full_candidate_space(
    spec: ClusterSpec, max_procs: int = 6
) -> List[ClusterConfig]:
    """Every configuration of a cluster with per-PE processes up to
    ``max_procs`` — the exhaustive ground truth (use with care: exponential
    in the number of kinds)."""
    return list(SearchSpace.from_spec(spec, max_procs).configs())


def _successor(values: List[int], current: int) -> Optional[int]:
    index = bisect_right(values, current)
    return values[index] if index < len(values) else None


def _predecessor(values: List[int], current: int) -> Optional[int]:
    index = bisect_left(values, current)
    return values[index - 1] if index > 0 else None


class LocalSearchBase(SearchBackend):
    """Shared state/move machinery of the local searchers.

    Constructible two ways: the original ``(spec, estimator, max_procs)``
    signature (kept for compatibility — ``spec`` and ``max_procs`` stay
    available as attributes), or with a :class:`SearchSpace` in place of
    the spec, which is how :meth:`from_problem` builds instances for
    candidate grids and synthetic spaces.
    """

    def __init__(
        self,
        spec: Union[ClusterSpec, SearchSpace],
        estimator: Estimator,
        max_procs: int = 6,
    ):
        if isinstance(spec, SearchSpace):
            self.spec: Optional[ClusterSpec] = None
            self.space = spec
            self.max_procs = spec.max_procs_per_pe
        else:
            if max_procs < 1:
                raise SearchError("max_procs must be >= 1")
            self.spec = spec
            self.space = SearchSpace.from_spec(spec, max_procs)
            self.max_procs = max_procs
        self.estimator = estimator
        self.kinds = list(self.space.kinds)
        self._pe_values = {k: self.space.pe_values(k) for k in self.kinds}
        self._m_values = {k: self.space.m_values(k) for k in self.kinds}
        self._cache: Dict[Tuple[State, int], float] = {}
        #: Candidate-axis grid kernel (None = scalar evaluation).  The
        #: kernel is a pure value oracle: frontiers are *prefetched* as
        #: blocks, then the search consumes the values in its original
        #: scalar control flow, so stats, trace, budget exhaustion and
        #: cache contents are identical with or without it.
        self._grid: Optional[GridEstimator] = None
        self._prefetched: Dict[Tuple[State, int], float] = {}
        self._allow_unestimable = True
        self._budget: Optional[int] = None
        self._seed = 0
        self._search_options: Dict[str, object] = {}
        self.stats = None

    @classmethod
    def from_problem(
        cls, problem: SearchProblem, budget: Optional[int] = None, **options
    ) -> "LocalSearchBase":
        if budget is not None and budget < 1:
            raise SearchError(f"budget must be >= 1, got {budget}")
        instance = cls(problem.resolved_space(), problem.estimator)
        instance._grid = problem.grid_estimator
        instance._allow_unestimable = problem.allow_unestimable
        instance._budget = budget
        instance._seed = problem.seed
        instance._search_options = dict(options)
        return instance

    # -- state <-> config -----------------------------------------------------

    def _to_config(self, state: State) -> ClusterConfig:
        return ClusterConfig(
            tuple(KindAllocation(k, pe, m) for k, pe, m in state)
        )

    def _from_config(self, config: ClusterConfig) -> State:
        return tuple(
            (k, config.pe_count(k), config.procs_per_pe(k)) for k in self.kinds
        )

    def _prefetch(
        self, frontier: Sequence[State], n: int, stats: SearchStats
    ) -> None:
        """Deduplicate a neighbor frontier and, with a grid kernel, block-
        evaluate the fresh states in one call.

        States duplicated within the frontier or already evaluated this
        run are counted as ``dedup_hits`` (the counting runs in scalar
        mode too, so the stats do not depend on the kernel).  Prefetched
        values sit in ``self._prefetched`` until :meth:`_evaluate`
        consumes them in the searcher's original order — unconsumed cells
        never touch the cache, the stats or the budget, which is what
        keeps block evaluation bitwise-identical to the scalar path.
        """
        fresh: List[State] = []
        seen: set = set()
        for state in frontier:
            key = (state, n)
            if state in seen or key in self._cache:
                stats.dedup_hits += 1
                continue
            seen.add(state)
            if key in self._prefetched:
                # Already block-evaluated by an earlier frontier (grid
                # mode only) — not re-counted, but still marked seen so
                # an in-frontier duplicate counts exactly as it would in
                # the scalar run (where this state would be fresh).
                continue
            fresh.append(state)
        if self._grid is None or not fresh:
            return
        configs = [self._to_config(state) for state in fresh]
        block = np.asarray(self._grid(configs, [n]), dtype=float)
        if block.shape != (len(fresh), 1):
            raise SearchError(
                f"grid estimator returned shape {block.shape}, "
                f"expected ({len(fresh)}, 1)"
            )
        for state, value in zip(fresh, block[:, 0]):
            self._prefetched[(state, n)] = float(value)

    def _evaluate(self, state: State, n: int, stats: SearchStats) -> float:
        key = (state, n)
        if key not in self._cache:
            if self._budget is not None and stats.evaluations >= self._budget:
                raise _BudgetExhausted()
            config = self._to_config(state)
            prefetched = self._prefetched.pop(key, None)
            if prefetched is None:
                raw = float(self.estimator(config, n))
            else:
                raw = prefetched
            value = validated_estimate(
                raw, config, n, self._allow_unestimable
            )
            self._cache[key] = value
            stats.record(config, value)
        return self._cache[key]

    # -- neighborhood ------------------------------------------------------------

    def _neighbors(self, state: State) -> List[State]:
        out: List[State] = []
        for index, (kind, pe, m) in enumerate(state):
            pe_values = self._pe_values[kind]
            m_values = self._m_values[kind]
            candidates = set()
            pe_up = _successor(pe_values, pe)
            if pe_up is not None:
                candidates.add((pe_up, m if m >= 1 else m_values[0]))
            pe_down = _predecessor(pe_values, pe)
            if pe_down is not None:
                candidates.add((pe_down, m if pe_down > 0 else 0))
            if pe > 0:
                m_up = _successor(m_values, m)
                if m_up is not None:
                    candidates.add((pe, m_up))
                m_down = _predecessor(m_values, m)
                if m_down is not None:
                    candidates.add((pe, m_down))
            for new_pe, new_m in candidates:
                new_state = list(state)
                new_state[index] = (kind, new_pe, new_m if new_pe > 0 else 0)
                candidate = tuple(new_state)
                if sum(pe_ * m_ for _, pe_, m_ in candidate) >= 1:
                    out.append(candidate)
        return out

    def _jump_moves(self, state: State) -> List[State]:
        """Kind-level jumps: activate an idle kind at its full PE count,
        or deactivate an active kind entirely.

        The objective is a max over active kinds, so activating a kind
        with *few* PEs usually makes it the new bottleneck — a valley the
        ±1 moves cannot cross (every intermediate state is worse).  The
        jump lands on the far side in one move: all the kind's PEs join
        at once (one jump per process count), which raises the total
        process count enough for the activation to pay off immediately
        when it ever will."""
        out: List[State] = []
        for index, (kind, pe, _) in enumerate(state):
            pe_values = self._pe_values[kind]
            if not pe_values or pe_values[-1] == 0:
                continue
            if pe == 0:
                jumps = [(pe_values[-1], m) for m in self._m_values[kind]]
            else:
                jumps = [(0, 0)]
            for new_pe, new_m in jumps:
                new_state = list(state)
                new_state[index] = (kind, new_pe, new_m)
                candidate = tuple(new_state)
                if sum(pe_ * m_ for _, pe_, m_ in candidate) >= 1:
                    out.append(candidate)
        return out

    def _moves(self, state: State) -> List[State]:
        """The full move set the searchers explore: single-coordinate
        neighbors plus kind activation/deactivation jumps."""
        return self._neighbors(state) + self._jump_moves(state)

    def _single_pe_starts(self) -> List[State]:
        """Start states: for every kind, the smallest active configuration
        and the all-PEs-minimum-processes configuration.  Starting from
        both sides of the 'one fast PE vs many slow PEs' valley keeps
        greedy growth from being trapped on the wrong side of it."""
        starts = []
        for index, kind in enumerate(self.kinds):
            active_pes = [pe for pe in self._pe_values[kind] if pe > 0]
            if not active_pes:
                continue
            lowest_m = self._m_values[kind][0]
            single = [(k, 0, 0) for k in self.kinds]
            single[index] = (kind, active_pes[0], lowest_m)
            starts.append(tuple(single))
            if len(active_pes) > 1:
                full = [(k, 0, 0) for k in self.kinds]
                full[index] = (kind, active_pes[-1], lowest_m)
                starts.append(tuple(full))
        return starts

    # -- the Search protocol -----------------------------------------------------

    def search(self, n: int, **options) -> SearchStats:
        raise NotImplementedError

    def optimize(self, n: int) -> SearchOutcome:
        """Run :meth:`search` and rank every configuration it evaluated.

        The outcome is marked ``complete=False``: a heuristic ranking
        covers the visited subset, not the space.
        """
        started = time.perf_counter()
        options = dict(self._search_options)
        if self._accepts_seed() and "seed" not in options:
            options["seed"] = self._seed
        stats = self.search(n, **options)
        stats.backend = self.backend_type
        stats.budget = self._budget
        self.stats = stats
        entries = [
            (self._to_config(state), value)
            for (state, size), value in self._cache.items()
            if size == n
        ]
        return rank_evaluations(
            n, entries, started, stats=stats, complete=False
        )

    def _accepts_seed(self) -> bool:
        return "seed" in inspect.signature(self.search).parameters


@register_search("greedy")
class GreedyGrowth(LocalSearchBase):
    """Best-improvement growth from the best single-PE configuration."""

    def search(self, n: int, max_steps: int = 200) -> SearchStats:
        stats = SearchStats()
        starts = self._single_pe_starts()
        if not starts:
            raise SearchError("cluster has no PEs")
        try:
            self._prefetch(starts, n, stats)
            current = min(starts, key=lambda s: self._evaluate(s, n, stats))
            for _ in range(max_steps):
                current_value = self._evaluate(current, n, stats)
                moves = self._moves(current)
                if not moves:
                    break
                self._prefetch(moves, n, stats)
                best_move = min(moves, key=lambda s: self._evaluate(s, n, stats))
                if self._evaluate(best_move, n, stats) >= current_value:
                    # Local optimum.  Greedy has no restarts, so stopping
                    # here with most of the space unseen is the
                    # "structurally stuck" failure mode — flag it rather
                    # than return a silently bad result.
                    stats.stuck = stats.evaluations < self.space.size
                    break
                current = best_move
        except _BudgetExhausted:
            stats.exhausted = True
        return stats


@register_search("hill-climb")
class HillClimber(LocalSearchBase):
    """First-improvement local search with random restarts."""

    def search(
        self, n: int, restarts: int = 4, max_steps: int = 200, seed: int = 0
    ) -> SearchStats:
        stats = SearchStats()
        rng = stream(seed, "hill-climber", n)
        try:
            for restart in range(max(restarts, 1)):
                current = self._random_state(rng)
                for _ in range(max_steps):
                    current_value = self._evaluate(current, n, stats)
                    moves = self._moves(current)
                    rng.shuffle(moves)
                    self._prefetch(moves, n, stats)
                    improved = False
                    for move in moves:
                        if self._evaluate(move, n, stats) < current_value:
                            current = move
                            improved = True
                            break
                    if not improved:
                        break
        except _BudgetExhausted:
            stats.exhausted = True
        return stats

    def _random_state(self, rng: np.random.Generator) -> State:
        while True:
            state = []
            for kind in self.kinds:
                pe_values = self._pe_values[kind]
                m_values = self._m_values[kind]
                pe = pe_values[int(rng.integers(0, len(pe_values)))]
                m = (
                    m_values[int(rng.integers(0, len(m_values)))]
                    if pe > 0
                    else 0
                )
                state.append((kind, pe, m))
            if sum(pe * m for _, pe, m in state) >= 1:
                return tuple(state)


@register_search("anneal")
class SimulatedAnnealing(LocalSearchBase):
    """Metropolis search with geometric cooling."""

    def search(
        self,
        n: int,
        steps: int = 400,
        initial_temperature: float = 0.3,
        cooling: float = 0.99,
        seed: int = 0,
    ) -> SearchStats:
        if steps < 1:
            raise SearchError("steps must be >= 1")
        if not (0.0 < cooling <= 1.0):
            raise SearchError("cooling must be in (0, 1]")
        stats = SearchStats()
        rng = stream(seed, "annealing", n)
        starts = self._single_pe_starts()
        if not starts:
            raise SearchError("cluster has no PEs")
        try:
            self._prefetch(starts, n, stats)
            current = min(starts, key=lambda s: self._evaluate(s, n, stats))
            current_value = self._evaluate(current, n, stats)
            temperature = initial_temperature * current_value
            # Block-evaluate the whole neighborhood once per *distinct*
            # current state: subsequent steps at the same state sample
            # from the already-prefetched frontier.
            prefetched_for: Optional[State] = None
            for _ in range(steps):
                moves = self._moves(current)
                if prefetched_for != current:
                    self._prefetch(moves, n, stats)
                    prefetched_for = current
                move = moves[int(rng.integers(0, len(moves)))]
                value = self._evaluate(move, n, stats)
                delta = value - current_value
                if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-12)
                ):
                    current, current_value = move, value
                temperature *= cooling
        except _BudgetExhausted:
            stats.exhausted = True
        return stats


@register_search("beam")
class BeamSearch(LocalSearchBase):
    """Deterministic beam search with a greedy-descent polish.

    Each round evaluates every neighbor of the ``width`` best states and
    keeps the best ``width`` of the union; after ``patience`` rounds
    without improvement the winner is polished by best-improvement
    descent to a local optimum.  No randomness anywhere — ties break on
    the state tuple — so two runs over the same problem are identical.
    """

    def search(
        self,
        n: int,
        width: int = 8,
        patience: int = 2,
        max_rounds: int = 64,
    ) -> SearchStats:
        if width < 1:
            raise SearchError("width must be >= 1")
        if patience < 1:
            raise SearchError("patience must be >= 1")
        stats = SearchStats()
        starts = self._single_pe_starts()
        if not starts:
            raise SearchError("cluster has no PEs")
        try:
            self._prefetch(starts, n, stats)
            scored = sorted(
                (self._evaluate(state, n, stats), state) for state in starts
            )
            beam = [state for _, state in scored[:width]]
            best_value = scored[0][0]
            stale = 0
            for _ in range(max_rounds):
                # Collect the round's whole frontier first so the grid
                # kernel sees one deduplicated block; the pool below then
                # consumes the values in the original expansion order.
                expansions = [(state, self._moves(state)) for state in beam]
                frontier: List[State] = []
                for state, moves in expansions:
                    frontier.append(state)
                    frontier.extend(moves)
                self._prefetch(frontier, n, stats)
                pool: Dict[State, float] = {}
                for state, moves in expansions:
                    pool[state] = self._evaluate(state, n, stats)
                    for move in moves:
                        if move not in pool:
                            pool[move] = self._evaluate(move, n, stats)
                ranked = sorted(pool.items(), key=lambda kv: (kv[1], kv[0]))
                beam = [state for state, _ in ranked[:width]]
                if ranked[0][1] < best_value:
                    best_value = ranked[0][1]
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        break
            # Local-search polish: descend from the beam's best state.
            current = beam[0]
            while True:
                current_value = self._evaluate(current, n, stats)
                moves = self._moves(current)
                if not moves:
                    break
                self._prefetch(moves, n, stats)
                best_move = min(
                    moves,
                    key=lambda s: (self._evaluate(s, n, stats), s),
                )
                if self._evaluate(best_move, n, stats) >= current_value:
                    break
                current = best_move
        except _BudgetExhausted:
            stats.exhausted = True
        return stats
