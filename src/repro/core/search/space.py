"""Product-structured configuration spaces for the search backends.

The paper's candidate set — and every candidate grid
:func:`repro.cluster.config.enumerate_configs` produces — is a **cross
product** of per-kind ``(pe_count, procs_per_pe)`` choices (minus the
all-idle combination).  :class:`SearchSpace` makes that structure
explicit, because the scalable backends need it:

* branch-and-bound assigns kinds one at a time and prunes whole
  sub-products, which only makes sense over a product space;
* the local searchers move one kind's choice at a time, i.e. they walk
  the product lattice.

A space can be built from a cluster spec (every configuration up to
``max_procs`` processes per PE) or recovered from an explicit candidate
list (the paper's 62-configuration grid).  Recovery is exact when the
candidates *are* a product; :meth:`is_exact_cover_of` lets callers check
before relying on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig, KindAllocation
from repro.cluster.spec import ClusterSpec
from repro.errors import SearchError

#: One per-kind choice: ``(pe_count, procs_per_pe)``; ``(0, 0)`` = idle.
Choice = Tuple[int, int]


@dataclass(frozen=True)
class SearchSpace:
    """Cross product of per-kind ``(pe_count, procs_per_pe)`` choices."""

    kinds: Tuple[str, ...]
    choices: Tuple[Tuple[Choice, ...], ...]

    def __post_init__(self) -> None:
        if not self.kinds:
            raise SearchError("search space needs at least one kind")
        if len(self.kinds) != len(self.choices):
            raise SearchError(
                f"{len(self.kinds)} kinds but {len(self.choices)} choice lists"
            )
        if len(set(self.kinds)) != len(self.kinds):
            raise SearchError(f"duplicate kind in search space: {self.kinds}")
        for kind, options in zip(self.kinds, self.choices):
            if not options:
                raise SearchError(f"kind {kind!r} has no choices")
            if list(options) != sorted(set(options)):
                raise SearchError(
                    f"kind {kind!r} choices must be sorted and unique"
                )
            for pe, m in options:
                if pe < 0 or (pe == 0) != (m == 0) or (pe > 0 and m < 1):
                    raise SearchError(
                        f"kind {kind!r} has invalid choice ({pe}, {m})"
                    )
        if self.size < 1:
            raise SearchError("search space contains no runnable configuration")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: ClusterSpec, max_procs: int = 6) -> "SearchSpace":
        """Every configuration of ``spec`` with 1..``max_procs`` processes
        per participating PE (the heuristics' full space)."""
        if max_procs < 1:
            raise SearchError("max_procs must be >= 1")
        kinds = tuple(spec.kind_names)
        choices: List[Tuple[Choice, ...]] = []
        for kind in kinds:
            options: List[Choice] = [(0, 0)]
            for pe in range(1, spec.pe_count(kind) + 1):
                for m in range(1, max_procs + 1):
                    options.append((pe, m))
            choices.append(tuple(sorted(options)))
        return cls(kinds=kinds, choices=tuple(choices))

    @classmethod
    def from_candidates(
        cls,
        candidates: Sequence[ClusterConfig],
        kinds: Optional[Sequence[str]] = None,
    ) -> "SearchSpace":
        """The smallest product space containing every candidate.

        When the candidates are themselves a product grid (the paper's
        62 configurations are ``7 x 9 - 1``), the recovered space is that
        grid exactly — verify with :meth:`is_exact_cover_of` before
        treating product enumeration as equivalent to the list.
        """
        if not candidates:
            raise SearchError("empty candidate set")
        if kinds is None:
            names: List[str] = []
            for config in candidates:
                for alloc in config.allocations:
                    if alloc.kind_name not in names:
                        names.append(alloc.kind_name)
            kinds = names
        kinds = tuple(kinds)
        per_kind: List[set] = [set() for _ in kinds]
        for config in candidates:
            for alloc in config.active:
                if alloc.kind_name not in kinds:
                    raise SearchError(
                        f"candidate {config.label()} uses kind "
                        f"{alloc.kind_name!r} outside {kinds}"
                    )
            for i, kind in enumerate(kinds):
                alloc = config.allocation(kind)
                per_kind[i].add((alloc.pe_count, alloc.procs_per_pe))
        return cls(
            kinds=kinds,
            choices=tuple(tuple(sorted(options)) for options in per_kind),
        )

    # -- geometry -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of runnable configurations (the all-idle combination,
        when expressible, is not one)."""
        total = math.prod(len(options) for options in self.choices)
        idle = math.prod(
            sum(1 for pe, _ in options if pe == 0) for options in self.choices
        )
        return total - idle

    @property
    def max_total_processes(self) -> int:
        return sum(
            max(pe * m for pe, m in options) for options in self.choices
        )

    @property
    def max_procs_per_pe(self) -> int:
        """Largest ``procs_per_pe`` any choice uses (0 for an all-idle
        space, which the constructor rejects anyway)."""
        return max(
            (m for options in self.choices for _, m in options), default=0
        )

    def kind_index(self, kind: str) -> int:
        try:
            return self.kinds.index(kind)
        except ValueError:
            raise SearchError(
                f"kind {kind!r} not in search space {self.kinds}"
            ) from None

    def pe_values(self, kind: str) -> List[int]:
        """Sorted distinct PE counts available for one kind (may include 0)."""
        return sorted({pe for pe, _ in self.choices[self.kind_index(kind)]})

    def m_values(self, kind: str) -> List[int]:
        """Sorted distinct active process counts for one kind."""
        return sorted(
            {m for pe, m in self.choices[self.kind_index(kind)] if pe > 0}
        )

    # -- enumeration --------------------------------------------------------

    def config_of(self, assignment: Sequence[Choice]) -> ClusterConfig:
        """Materialize one per-kind assignment as a :class:`ClusterConfig`
        (zero allocations kept, so labels align with the kind order)."""
        return ClusterConfig(
            tuple(
                KindAllocation(kind, pe, m)
                for kind, (pe, m) in zip(self.kinds, assignment)
            )
        )

    def configs(self) -> Iterator[ClusterConfig]:
        """Every runnable configuration, in lexicographic choice order
        (the order :func:`repro.cluster.config.enumerate_configs` uses)."""
        assignment: List[Choice] = []

        def rec(depth: int) -> Iterator[ClusterConfig]:
            if depth == len(self.kinds):
                if sum(pe * m for pe, m in assignment) >= 1:
                    yield self.config_of(assignment)
                return
            for choice in self.choices[depth]:
                assignment.append(choice)
                yield from rec(depth + 1)
                assignment.pop()

        return rec(0)

    def is_exact_cover_of(self, candidates: Sequence[ClusterConfig]) -> bool:
        """True when the candidates and this product space contain exactly
        the same configurations (by canonical key)."""
        keys = {config.key() for config in candidates}
        return len(keys) == self.size and all(
            config.key() in keys for config in self.configs()
        )
