"""Shared machinery of every search backend: outcomes, stats, problems.

The paper's Section 3.1 frames configuration selection as combinatorial
optimization with the fitted model as the objective.  This module holds
everything that is *not* specific to how a backend explores the space:

* :class:`RankedEstimate` / :class:`SearchOutcome` — the result types
  every backend returns (moved here from ``repro.core.optimizer``, which
  re-exports them for compatibility);
* :class:`SearchStats` — per-run cost accounting (evaluations, prune
  counts, best-so-far trace; moved here from ``repro.exts.heuristics``
  and extended with the branch-and-bound counters);
* :class:`SearchProblem` — one bundle of objective + space + options
  that :func:`repro.core.search.registry.create_search` hands to a
  backend's ``from_problem`` constructor;
* :class:`SearchBackend` — the protocol base class: a backend implements
  ``optimize(n)`` and inherits ``optimize_many``/``best``;
* validation and ranking helpers with the exact error semantics the
  exhaustive optimizer established (``+inf`` ranks last unless
  ``allow_unestimable=False``; NaN/negative always raise; an all-``inf``
  ranking raises).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.core.search.space import SearchSpace
from repro.errors import SearchError

#: An estimator maps (configuration, problem order) -> estimated seconds.
Estimator = Callable[[ClusterConfig, int], float]

#: A batch estimator maps (configuration, [n1, n2, ...]) -> array of
#: estimated seconds, one per size — the vectorized fast path that
#: :meth:`ExhaustiveOptimizer.optimize_many` uses when available (see
#: :meth:`repro.core.pipeline.EstimationPipeline.batch_estimator`).
BatchEstimator = Callable[[ClusterConfig, Sequence[int]], "np.ndarray"]

#: A grid estimator maps (configurations, [n1, n2, ...]) -> a ``(C, S)``
#: array of estimated seconds — the candidate-axis vectorized kernel
#: (see :meth:`repro.core.pipeline.EstimationPipeline.estimate_grid`).
#: Contract: element ``[i, j]`` is **bitwise** the scalar estimator's
#: value for ``(configs[i], ns[j])``, so backends may freely mix block
#: and scalar evaluation without changing any produced number.
GridEstimator = Callable[
    [Sequence[ClusterConfig], Sequence[int]], "np.ndarray"
]


@dataclass
class SearchStats:
    """Cost/quality accounting of one search run.

    The original heuristics fields (``evaluations``, ``best_config``,
    ``best_estimate``, ``trace``) keep their exact semantics;
    :meth:`record` appends the running best to ``trace`` per objective
    evaluation.  The pruning counters are only touched by backends that
    prune (branch-and-bound), and ``exhausted`` marks a run stopped by
    its evaluation budget rather than by covering the space.
    """

    evaluations: int = 0
    best_config: Optional[ClusterConfig] = None
    best_estimate: float = math.inf
    trace: List[float] = field(default_factory=list)
    #: Registry tag of the backend that produced this run ("" when the
    #: stats were built outside a backend, e.g. directly in a test).
    backend: str = ""
    #: Subtrees cut by the lower bound, and how many candidate
    #: configurations those subtrees contained.
    pruned_subtrees: int = 0
    pruned_candidates: int = 0
    #: Lower-bound computations (they are much cheaper than objective
    #: evaluations, but not free — benches report both).
    bound_evaluations: int = 0
    #: The evaluation budget the run was given (None = unbounded).
    budget: Optional[int] = None
    #: True when the run stopped because the budget ran out.
    exhausted: bool = False
    #: True when a greedy/local run stopped at a local optimum without
    #: having seen most of the space — the "structurally stuck" failure
    #: mode the PR-7 benches documented.  Callers should surface it (the
    #: CLI prints a one-line warning) instead of trusting the result.
    stuck: bool = False
    #: States a local searcher skipped before evaluation because they
    #: were duplicated within a neighbor frontier or already evaluated
    #: earlier in the run — the saving the frontier dedup makes
    #: observable (always 0 for backends without frontiers).
    dedup_hits: int = 0

    def record(self, config: ClusterConfig, estimate: float) -> None:
        self.evaluations += 1
        if estimate < self.best_estimate:
            self.best_estimate = estimate
            self.best_config = config
        self.trace.append(self.best_estimate)

    def prune(self, candidates: int) -> None:
        """Account one pruned subtree holding ``candidates`` configurations."""
        self.pruned_subtrees += 1
        self.pruned_candidates += candidates

    def to_dict(self, include_trace: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "backend": self.backend,
            "evaluations": self.evaluations,
            "pruned_subtrees": self.pruned_subtrees,
            "pruned_candidates": self.pruned_candidates,
            "bound_evaluations": self.bound_evaluations,
            "best_estimate": self.best_estimate,
            "exhausted": self.exhausted,
            "dedup_hits": self.dedup_hits,
        }
        if self.budget is not None:
            out["budget"] = self.budget
        if self.stuck:
            out["stuck"] = True
        if include_trace:
            out["trace"] = list(self.trace)
        return out


@dataclass(frozen=True)
class RankedEstimate:
    """One candidate with its estimated execution time."""

    config: ClusterConfig
    n: int
    estimate_s: float

    def label(self, kinds: Optional[Sequence[str]] = None) -> str:
        return self.config.label(kinds)


@dataclass
class SearchOutcome:
    """Full result of one optimization: the winner, the ranking and the
    search cost (the paper reports its enumeration wall time).

    ``ranking`` holds every candidate the backend *evaluated* — the full
    space for exact backends (``complete=True``), the visited subset for
    pruned or heuristic runs (``complete=False``).  ``stats`` carries the
    producing backend's cost accounting (None for outcomes built before
    the Search protocol existed, e.g. unpickled from old artifacts).
    """

    n: int
    ranking: List[RankedEstimate]
    search_seconds: float
    stats: Optional[SearchStats] = field(default=None, repr=False, compare=False)
    complete: bool = True
    _estimate_by_key: Optional[Dict[Tuple, float]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def best(self) -> RankedEstimate:
        return self.ranking[0]

    def top(self, count: int) -> List[RankedEstimate]:
        return self.ranking[: max(count, 0)]

    def estimate_for(self, config: ClusterConfig) -> float:
        """Estimate of one candidate (O(1) after the first lookup builds
        the key index — repeated lookups used to re-scan the ranking).

        Raises :class:`SearchError` when the ranking holds the same
        candidate twice: a duplicate key means two entries claim the same
        configuration and a silent keep-last lookup could return either
        one's estimate depending on ranking order.
        """
        if self._estimate_by_key is None:
            index: Dict[Tuple, float] = {}
            for entry in self.ranking:
                key = entry.config.key()
                if key in index:
                    raise SearchError(
                        f"duplicate candidate {entry.config.label()} in "
                        f"ranking at N={self.n}; estimate_for() would be "
                        "ambiguous"
                    )
                index[key] = entry.estimate_s
            self._estimate_by_key = index
        try:
            return self._estimate_by_key[config.key()]
        except KeyError:
            raise SearchError(
                f"configuration {config.label()} was not a candidate"
            ) from None


# -- validation & ranking helpers --------------------------------------------


def validated_estimate(
    value: float, config: ClusterConfig, n: int, allow_unestimable: bool = True
) -> float:
    """The exhaustive optimizer's estimate validation, shared by every
    backend: NaN and negative (including ``-inf``) always raise; ``+inf``
    raises only under ``allow_unestimable=False`` (otherwise it is the
    sanctioned "model outside its domain" signal and ranks last)."""
    invalid = math.isnan(value) or value < 0
    if invalid or (value == math.inf and not allow_unestimable):
        raise SearchError(
            f"estimator returned invalid time {value!r} for "
            f"{config.label()} at N={n}"
        )
    return value


def validated_estimates(
    values: "np.ndarray",
    configs: Sequence[ClusterConfig],
    n: int,
    allow_unestimable: bool = True,
) -> "np.ndarray":
    """Vectorized :func:`validated_estimate` over one block of candidates.

    Checks the whole array at once and, when something is wrong, raises
    the *identical* :class:`SearchError` the scalar loop would have
    raised at the first offending candidate in ``configs`` order — so a
    grid-evaluating backend reports the same failure, on the same
    candidate, as its scalar reference.
    """
    arr = np.asarray(values, dtype=float)
    bad = np.isnan(arr) | (arr < 0)
    if not allow_unestimable:
        bad |= np.isinf(arr)
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        validated_estimate(
            float(arr[index]), configs[index], n, allow_unestimable
        )
        raise AssertionError("validated_estimate must have raised")
    return arr


def rank_evaluations(
    n: int,
    entries: Sequence[Tuple[ClusterConfig, float]],
    started: float,
    stats: Optional[SearchStats] = None,
    complete: bool = True,
) -> SearchOutcome:
    """Assemble a :class:`SearchOutcome` from ``(config, estimate)`` pairs.

    Ordering is ``(estimate, config.key())`` — ties break on the
    canonical configuration key, which is what makes exact backends
    bitwise-reproducible regardless of evaluation order.  Raises when the
    best entry is not finite (same error as the exhaustive optimizer).
    """
    if not entries:
        raise SearchError(f"no candidate was evaluated at N={n}")
    # Precompute the tie-break keys once: recomputing config.key() inside
    # the sort lambda costs O(n log n) key constructions per ranking.
    keys = [config.key() for config, _ in entries]
    order = sorted(
        range(len(entries)), key=lambda i: (entries[i][1], keys[i])
    )
    ranking = [
        RankedEstimate(config=entries[i][0], n=n, estimate_s=entries[i][1])
        for i in order
    ]
    if not math.isfinite(ranking[0].estimate_s):
        raise SearchError(
            f"no candidate could be estimated at N={n} "
            "(all models out of domain)"
        )
    return SearchOutcome(
        n=n,
        ranking=ranking,
        search_seconds=time.perf_counter() - started,
        stats=stats,
        complete=complete,
    )


# -- the problem bundle -------------------------------------------------------


@dataclass
class SearchProblem:
    """Everything a backend needs to search one configuration space.

    Either ``candidates`` (an explicit list — the paper's grid) or
    ``space`` (a product space) must be provided; backends that need the
    missing form derive it via :meth:`resolved_space` /
    :meth:`resolved_candidates`.
    """

    estimator: Estimator
    candidates: Optional[Sequence[ClusterConfig]] = None
    space: Optional[SearchSpace] = None
    kinds: Optional[Sequence[str]] = None
    batch_estimator: Optional[BatchEstimator] = None
    #: Candidate-axis vectorized objective ``(configs, [n...]) -> (C, S)``
    #: array; when present every backend evaluates candidate blocks in
    #: one kernel call (exhaustive: the full grid; local searchers: each
    #: round's neighbor frontier; branch-and-bound: leaf blocks) while
    #: staying bitwise-identical to the scalar ``estimator``.
    grid_estimator: Optional[GridEstimator] = None
    #: Lower-bound oracle for branch-and-bound (duck-typed
    #: :class:`repro.core.search.bounds.KindTimeBound`); without one,
    #: branch-and-bound cannot prune and refuses to run.
    bounds: Optional[object] = None
    #: Rate card for the cost-aware backends (duck-typed
    #: :class:`repro.cost.model.CostModel`); None means every kind is
    #: free and the frontier degenerates to the minimum-time point.
    cost: Optional[object] = None
    allow_unestimable: bool = True
    #: Seed for the stochastic backends (hill climbing, annealing).
    seed: int = 0

    def resolved_space(self) -> SearchSpace:
        if self.space is not None:
            return self.space
        if self.candidates is None:
            raise SearchError("search problem has neither candidates nor space")
        return SearchSpace.from_candidates(self.candidates, self.kinds)

    def resolved_candidates(self) -> List[ClusterConfig]:
        if self.candidates is not None:
            return list(self.candidates)
        if self.space is None:
            raise SearchError("search problem has neither candidates nor space")
        return list(self.space.configs())

    def resolved_kinds(self) -> List[str]:
        if self.kinds is not None:
            return list(self.kinds)
        return list(self.resolved_space().kinds)


# -- the backend protocol -----------------------------------------------------


class SearchBackend:
    """Base class of every registered search backend.

    A backend is constructed from a :class:`SearchProblem` (plus
    backend-specific options) via :meth:`from_problem` and answers
    :meth:`optimize` — everything else has shared default behavior.
    The class attribute :attr:`backend_type` is assigned by the
    ``@register_search(tag)`` decorator.
    """

    backend_type: str = ""

    #: Stats of the most recent :meth:`optimize` call (for callers that
    #: hold the backend; the outcome itself carries the same object).
    stats: Optional[SearchStats] = None

    @classmethod
    def from_problem(cls, problem: SearchProblem, **options) -> "SearchBackend":
        raise NotImplementedError

    def optimize(self, n: int) -> SearchOutcome:
        raise NotImplementedError

    def optimize_many(self, ns: Sequence[int]) -> List[SearchOutcome]:
        """Rank for every size; backends with a vectorized grid path
        override this (the exhaustive optimizer does)."""
        sizes = [int(n) for n in ns]
        if not sizes:
            raise SearchError("optimize_many needs at least one size")
        return [self.optimize(n) for n in sizes]

    def best(self, n: int) -> RankedEstimate:
        return self.optimize(n).best


def actual_best(
    measured: Sequence[Tuple[ClusterConfig, float]],
) -> Tuple[ClusterConfig, float]:
    """The measured-optimal configuration among (config, seconds) pairs —
    the ground truth the paper's Tables 4/7/9 compare against."""
    if not measured:
        raise SearchError("no measurements to choose from")
    best_config, best_time = min(measured, key=lambda item: (item[1], item[0].key()))
    return best_config, best_time
