"""Type-tagged registry of search backends (mirrors the model registry).

The PR-2 model API registers every :class:`TimeModel` subclass under a
type tag and dispatches serialization through it; search backends use
the same shape so the pipeline, the serve layer and the CLI can select
a backend by name without importing its module:

    @register_search("branch-bound")
    class BranchBoundSearch(SearchBackend): ...

    backend = create_search("branch-bound", problem, budget=500)

Importing :mod:`repro.core.search` registers the shipped backends
(exhaustive, branch-bound, beam, greedy, hill-climb, anneal).
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterator, Tuple, Type

from repro.core.search.base import SearchBackend, SearchProblem
from repro.errors import SearchError

#: The backend used when nothing selects one explicitly — the paper's
#: flat enumeration, which stays the default for grid-sized spaces.
DEFAULT_BACKEND = "exhaustive"

_REGISTRY: Dict[str, Type[SearchBackend]] = {}

#: Backends that live outside :mod:`repro.core.search` (tag -> module).
#: Importing the module registers the tag; resolving one of these on
#: demand keeps the core layer free of upward imports (``repro.cost``
#: imports the search core, never the reverse).
_LAZY_BACKENDS: Dict[str, str] = {
    "budget-frontier": "repro.cost.search",
}


def register_search(tag: str):
    """Class decorator registering a :class:`SearchBackend` under ``tag``."""

    def decorate(cls: Type[SearchBackend]) -> Type[SearchBackend]:
        if not tag:
            raise SearchError("search backend tag must be non-empty")
        existing = _REGISTRY.get(tag)
        if existing is not None and existing is not cls:
            raise SearchError(
                f"search backend tag {tag!r} already registered "
                f"by {existing.__name__}"
            )
        cls.backend_type = tag
        _REGISTRY[tag] = cls
        return cls

    return decorate


def registered_search_backends() -> Tuple[str, ...]:
    """Every registered or lazily-loadable backend tag, sorted."""
    return tuple(sorted(set(_REGISTRY) | set(_LAZY_BACKENDS)))


def search_backend_class(tag: str) -> Type[SearchBackend]:
    """The backend class registered under ``tag`` (SearchError if none)."""
    if tag not in _REGISTRY and tag in _LAZY_BACKENDS:
        importlib.import_module(_LAZY_BACKENDS[tag])
    try:
        return _REGISTRY[tag]
    except KeyError:
        known = ", ".join(registered_search_backends()) or "(none)"
        raise SearchError(
            f"unknown search backend {tag!r} (registered: {known})"
        ) from None


def create_search(tag: str, problem: SearchProblem, **options) -> SearchBackend:
    """Instantiate backend ``tag`` for ``problem``.

    Options the backend does not understand are a :class:`SearchError`
    (not a ``TypeError``), so callers driven by request fields get a
    typed, reportable failure.
    """
    cls = search_backend_class(tag)
    try:
        return cls.from_problem(problem, **options)
    except TypeError as exc:
        raise SearchError(
            f"backend {tag!r} rejected its options: {exc}"
        ) from exc


def iter_search_registry() -> Iterator[Tuple[str, Type[SearchBackend]]]:
    """(tag, class) pairs in sorted tag order (for docs and smoke tests)."""
    for tag in sorted(_REGISTRY):
        yield tag, _REGISTRY[tag]
