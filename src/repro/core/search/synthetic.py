"""Synthetic datacenter-scale search problems (no measurements needed).

The paper's cluster has 2 kinds and 9 PEs; the ROADMAP north-star asks
what the search layer does at 10 kinds and hundreds of PEs, where the
space has ~10^23 configurations and exhaustive enumeration is physically
impossible.  No fitted pipeline exists at that scale (there is nothing
to measure), so the benchmarks and smoke tests use an *analytic*
objective with exactly the paper's structure:

    t_kind(kind, Mi, N, P) = Ta + Tc
    Ta = (2/3 N^3 / P) * Mi / rate_kind * (1 + alpha_kind * (Mi - 1))
    Tc = lat_kind * P + bw_kind * N^2 / sqrt(P)
    T(config, N)          = max over active kinds of t_kind

— per-kind time depends only on ``(kind, Mi, N, P)``, the configuration
total is the bottleneck kind, and the compute/communication tension puts
the optimum in the interior of the space.  Because the structure matches
the fitted models', the same :class:`~repro.core.search.bounds.
KindTimeBound` oracle drives branch-and-bound here, and every backend
can be exercised at any scale with zero measurement cost.

Parameters are drawn deterministically from :func:`repro.rng.stream`, so
a given ``(n_kinds, pes_per_kind, max_procs, seed)`` names one exact
problem instance forever.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.core.search.base import SearchProblem
from repro.core.search.bounds import KindTimeBound
from repro.core.search.space import SearchSpace
from repro.rng import stream


def synthetic_kind_params(
    n_kinds: int, seed: int = 2004
) -> Dict[str, Tuple[float, float, float, float]]:
    """Per-kind ``(rate_gflops, alpha, lat_s, bw_s)`` parameters.

    Rates climb a geometric ladder (the heterogeneity that makes kind
    choice matter) with a deterministic ±10% jitter; the multiprocessing
    penalty ``alpha`` and the communication coefficients get the same
    treatment.
    """
    params: Dict[str, Tuple[float, float, float, float]] = {}
    for index in range(n_kinds):
        rng = stream(seed, "synthetic-search", index)
        rate = 1.0 * (1.45**index) * float(rng.uniform(0.9, 1.1))
        alpha = float(rng.uniform(0.05, 0.15))
        lat = 2e-4 * float(rng.uniform(0.8, 1.2))
        bw = 6e-9 * float(rng.uniform(0.8, 1.2))
        params[f"kind{index}"] = (rate, alpha, lat, bw)
    return params


def synthetic_kind_time(
    params: Dict[str, Tuple[float, float, float, float]],
) -> Callable[[str, int, int, np.ndarray], np.ndarray]:
    """The vectorized ``kind_time(kind, mi, n, p_array)`` of the model
    above — both the bound oracle's profile source and the building block
    of the scalar objective."""

    def kind_time(kind: str, mi: int, n: int, p_arr: np.ndarray) -> np.ndarray:
        rate, alpha, lat, bw = params[kind]
        p = np.maximum(np.asarray(p_arr, dtype=float), 1.0)
        flops = (2.0 / 3.0) * float(n) ** 3 / 1e9
        ta = (flops / p) * mi / rate * (1.0 + alpha * (mi - 1))
        tc = lat * p + bw * float(n) ** 2 / np.sqrt(p)
        return ta + tc

    return kind_time


def synthetic_problem(
    n_kinds: int = 10,
    pes_per_kind: int = 50,
    max_procs: int = 4,
    seed: int = 2004,
) -> SearchProblem:
    """A ready-to-search synthetic instance: space + objective + bounds.

    The default is the ROADMAP's 10-kind / 500-PE datacenter (space size
    ``(1 + 50*4)^10 - 1 ~ 1.1e23``); ``n_kinds=4, pes_per_kind=4,
    max_procs=3`` gives the 28 560-candidate instance small enough for
    the exhaustive baseline in the benchmarks.
    """
    params = synthetic_kind_params(n_kinds, seed=seed)
    kinds = list(params)
    choices: List[Tuple[Tuple[int, int], ...]] = []
    for _ in kinds:
        options: List[Tuple[int, int]] = [(0, 0)]
        for pe in range(1, pes_per_kind + 1):
            for m in range(1, max_procs + 1):
                options.append((pe, m))
        choices.append(tuple(sorted(options)))
    space = SearchSpace(kinds=tuple(kinds), choices=tuple(choices))
    kind_time = synthetic_kind_time(params)
    # Per-kind parameter vectors for the grid estimator's gather.
    kind_ordinal = {kind: k for k, kind in enumerate(kinds)}
    rate_of, alpha_of, lat_of, bw_of = (
        np.asarray([params[kind][field] for kind in kinds], dtype=float)
        for field in range(4)
    )

    def estimator(config: ClusterConfig, n: int) -> float:
        p = np.array([config.total_processes])
        return float(
            max(
                kind_time(alloc.kind_name, alloc.procs_per_pe, n, p)[0]
                for alloc in config.active
            )
        )

    def grid_estimator(configs, ns) -> np.ndarray:
        # Candidate-axis form of ``estimator``: flatten every active
        # allocation into parallel arrays (one row per (candidate, kind)
        # pair, with its kind's parameters gathered alongside), evaluate
        # the model as one elementwise ufunc chain per size — the exact
        # ``kind_time`` expression, operation for operation — and scatter
        # the bottleneck with ``np.maximum.at``.  All times are positive
        # float64s, so the scatter max is bitwise the scalar ``max`` over
        # ``config.active``.
        sizes = [int(n) for n in ns]
        out = np.full((len(configs), len(sizes)), -np.inf)
        counts: List[int] = []
        p_of: List[int] = []
        mi_list: List[int] = []
        kind_list: List[int] = []
        mi_append = mi_list.append
        kind_append = kind_list.append
        for config in configs:
            # Single raw pass over the allocations (the property-based
            # ``total_processes``/``active`` pair costs ~3x as much and
            # this loop is the kernel's only per-candidate Python work).
            # Only per-(candidate, kind) facts are appended row-wise; the
            # candidate index and process total expand via ``np.repeat``.
            p = 0
            rows = 0
            for alloc in config.allocations:
                pe = alloc.pe_count
                if pe > 0:
                    mi = alloc.procs_per_pe
                    p += pe * mi
                    mi_append(mi)
                    kind_append(kind_ordinal[alloc.kind_name])
                    rows += 1
            counts.append(rows)
            p_of.append(p)
        counts_arr = np.asarray(counts)
        cand = np.repeat(np.arange(len(configs)), counts_arr)
        gather = np.asarray(kind_list)
        rate_arr = rate_of[gather]
        alpha_arr = alpha_of[gather]
        lat_arr = lat_of[gather]
        bw_arr = bw_of[gather]
        p_arr = np.maximum(
            np.repeat(np.asarray(p_of, dtype=float), counts_arr), 1.0
        )
        mi_arr = np.asarray(mi_list, dtype=float)
        sqrt_p = np.sqrt(p_arr)
        penalty = 1.0 + alpha_arr * (mi_arr - 1)
        for j, n in enumerate(sizes):
            flops = (2.0 / 3.0) * float(n) ** 3 / 1e9
            ta = flops / p_arr * mi_arr / rate_arr * penalty
            tc = lat_arr * p_arr + bw_arr * float(n) ** 2 / sqrt_p
            np.maximum.at(out[:, j], cand, ta + tc)
        return out

    bounds = KindTimeBound(kind_time, p_max=space.max_total_processes)
    return SearchProblem(
        estimator=estimator,
        space=space,
        kinds=kinds,
        bounds=bounds,
        grid_estimator=grid_estimator,
        allow_unestimable=False,
        seed=seed,
    )
