"""Configuration optimization: find the estimated-optimal PE subset and
process allocation.

The paper enumerates every candidate configuration, estimates its total
execution time with the fitted models, and selects the argmin (Section 3.1
frames this as combinatorial optimization with the model as the objective
function; Section 4 reports the enumeration takes ~35 ms for 62 candidates
x 5 sizes).  :class:`ExhaustiveOptimizer` is that search, over any callable
estimator — the pipeline's model-based estimator in production, plain
functions in tests, and the heuristic searchers of :mod:`repro.exts`
compare themselves against it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.errors import SearchError

#: An estimator maps (configuration, problem order) -> estimated seconds.
Estimator = Callable[[ClusterConfig, int], float]


@dataclass(frozen=True)
class RankedEstimate:
    """One candidate with its estimated execution time."""

    config: ClusterConfig
    n: int
    estimate_s: float

    def label(self, kinds: Optional[Sequence[str]] = None) -> str:
        return self.config.label(kinds)


@dataclass
class SearchOutcome:
    """Full result of one optimization: the winner, the ranking and the
    search cost (the paper reports its enumeration wall time)."""

    n: int
    ranking: List[RankedEstimate]
    search_seconds: float

    @property
    def best(self) -> RankedEstimate:
        return self.ranking[0]

    def top(self, count: int) -> List[RankedEstimate]:
        return self.ranking[: max(count, 0)]

    def estimate_for(self, config: ClusterConfig) -> float:
        key = config.key()
        for entry in self.ranking:
            if entry.config.key() == key:
                return entry.estimate_s
        raise SearchError(f"configuration {config.label()} was not a candidate")


class ExhaustiveOptimizer:
    """Estimate every candidate and rank them.

    Parameters
    ----------
    estimator:
        Objective function.
    candidates:
        The configuration space (the paper's 62 evaluation configurations,
        or anything else).
    """

    def __init__(self, estimator: Estimator, candidates: Sequence[ClusterConfig]):
        if not candidates:
            raise SearchError("empty candidate set")
        self.estimator = estimator
        self.candidates = list(candidates)

    def optimize(self, n: int) -> SearchOutcome:
        """Rank all candidates for problem order ``n`` (ascending time)."""
        started = time.perf_counter()
        ranking: List[RankedEstimate] = []
        for config in self.candidates:
            value = float(self.estimator(config, n))
            if math.isnan(value) or value < 0:
                raise SearchError(
                    f"estimator returned invalid time {value!r} for "
                    f"{config.label()} at N={n}"
                )
            # +inf is the estimator's "I cannot estimate this configuration"
            # signal (model outside its domain); such candidates rank last.
            ranking.append(RankedEstimate(config=config, n=n, estimate_s=value))
        ranking.sort(key=lambda e: (e.estimate_s, e.config.key()))
        if not math.isfinite(ranking[0].estimate_s):
            raise SearchError(
                f"no candidate could be estimated at N={n} "
                "(all models out of domain)"
            )
        return SearchOutcome(
            n=n,
            ranking=ranking,
            search_seconds=time.perf_counter() - started,
        )

    def best(self, n: int) -> RankedEstimate:
        return self.optimize(n).best


def actual_best(
    measured: Sequence[Tuple[ClusterConfig, float]],
) -> Tuple[ClusterConfig, float]:
    """The measured-optimal configuration among (config, seconds) pairs —
    the ground truth the paper's Tables 4/7/9 compare against."""
    if not measured:
        raise SearchError("no measurements to choose from")
    best_config, best_time = min(measured, key=lambda item: (item[1], item[0].key()))
    return best_config, best_time
