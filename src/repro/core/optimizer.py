"""Configuration optimization: find the estimated-optimal PE subset and
process allocation.

The paper enumerates every candidate configuration, estimates its total
execution time with the fitted models, and selects the argmin (Section 3.1
frames this as combinatorial optimization with the model as the objective
function; Section 4 reports the enumeration takes ~35 ms for 62 candidates
x 5 sizes).  :class:`ExhaustiveOptimizer` is that search, over any callable
estimator — the pipeline's model-based estimator in production, plain
functions in tests, and the heuristic searchers of :mod:`repro.exts`
compare themselves against it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.errors import SearchError

#: An estimator maps (configuration, problem order) -> estimated seconds.
Estimator = Callable[[ClusterConfig, int], float]

#: A batch estimator maps (configuration, [n1, n2, ...]) -> array of
#: estimated seconds, one per size — the vectorized fast path that
#: :meth:`ExhaustiveOptimizer.optimize_many` uses when available (see
#: :meth:`repro.core.pipeline.EstimationPipeline.batch_estimator`).
BatchEstimator = Callable[[ClusterConfig, Sequence[int]], "np.ndarray"]


@dataclass(frozen=True)
class RankedEstimate:
    """One candidate with its estimated execution time."""

    config: ClusterConfig
    n: int
    estimate_s: float

    def label(self, kinds: Optional[Sequence[str]] = None) -> str:
        return self.config.label(kinds)


@dataclass
class SearchOutcome:
    """Full result of one optimization: the winner, the ranking and the
    search cost (the paper reports its enumeration wall time)."""

    n: int
    ranking: List[RankedEstimate]
    search_seconds: float
    _estimate_by_key: Optional[Dict[Tuple, float]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def best(self) -> RankedEstimate:
        return self.ranking[0]

    def top(self, count: int) -> List[RankedEstimate]:
        return self.ranking[: max(count, 0)]

    def estimate_for(self, config: ClusterConfig) -> float:
        """Estimate of one candidate (O(1) after the first lookup builds
        the key index — repeated lookups used to re-scan the ranking)."""
        if self._estimate_by_key is None:
            self._estimate_by_key = {
                entry.config.key(): entry.estimate_s for entry in self.ranking
            }
        try:
            return self._estimate_by_key[config.key()]
        except KeyError:
            raise SearchError(
                f"configuration {config.label()} was not a candidate"
            ) from None


class ExhaustiveOptimizer:
    """Estimate every candidate and rank them.

    Parameters
    ----------
    estimator:
        Objective function.
    candidates:
        The configuration space (the paper's 62 evaluation configurations,
        or anything else).
    batch_estimator:
        Optional vectorized objective ``(config, sizes) -> array``;
        when present, :meth:`optimize_many` evaluates the whole
        candidates x sizes grid through it instead of
        ``len(candidates) * len(sizes)`` scalar calls.  Must agree
        numerically with ``estimator`` (the pipeline's implementations
        are element-for-element identical).
    allow_unestimable:
        ``+inf`` is the pipeline estimator's sanctioned "model outside its
        domain" signal, and by default such candidates simply rank last
        (raising only when *no* candidate is finite).  An estimator that
        is supposed to cover every candidate — a plain function in a
        heuristic-search comparison, say — can pass ``False`` to turn any
        ``+inf`` into an immediate :class:`SearchError` instead of a
        silently deprioritized candidate.  NaN and negative values
        (including ``-inf``) always raise.
    """

    def __init__(
        self,
        estimator: Estimator,
        candidates: Sequence[ClusterConfig],
        batch_estimator: Optional[BatchEstimator] = None,
        allow_unestimable: bool = True,
    ):
        if not candidates:
            raise SearchError("empty candidate set")
        self.estimator = estimator
        self.candidates = list(candidates)
        self.batch_estimator = batch_estimator
        self.allow_unestimable = allow_unestimable
        # Sort keys are recomputed on every optimize(); cache them once.
        self._candidate_keys = [config.key() for config in self.candidates]

    def _validated(self, value: float, config: ClusterConfig, n: int) -> float:
        invalid = math.isnan(value) or value < 0
        if invalid or (value == math.inf and not self.allow_unestimable):
            raise SearchError(
                f"estimator returned invalid time {value!r} for "
                f"{config.label()} at N={n}"
            )
        return value

    def _rank(
        self, n: int, values: Sequence[float], started: float
    ) -> SearchOutcome:
        """Assemble a :class:`SearchOutcome` from per-candidate estimates
        (same ordering and error semantics as the scalar loop)."""
        ranking = [
            RankedEstimate(config=config, n=n, estimate_s=value)
            for config, value in zip(self.candidates, values)
        ]
        order = sorted(
            range(len(ranking)),
            key=lambda i: (ranking[i].estimate_s, self._candidate_keys[i]),
        )
        ranking = [ranking[i] for i in order]
        if not math.isfinite(ranking[0].estimate_s):
            raise SearchError(
                f"no candidate could be estimated at N={n} "
                "(all models out of domain)"
            )
        return SearchOutcome(
            n=n,
            ranking=ranking,
            search_seconds=time.perf_counter() - started,
        )

    def optimize(self, n: int) -> SearchOutcome:
        """Rank all candidates for problem order ``n`` (ascending time)."""
        started = time.perf_counter()
        values: List[float] = []
        for config in self.candidates:
            # +inf is the estimator's "I cannot estimate this configuration"
            # signal (model outside its domain); such candidates rank last.
            values.append(self._validated(float(self.estimator(config, n)), config, n))
        return self._rank(n, values, started)

    def optimize_many(self, ns: Sequence[int]) -> List[SearchOutcome]:
        """Rank all candidates for every size in ``ns`` — the sweep path.

        With a ``batch_estimator`` the candidates x sizes grid is
        evaluated in vectorized batches (one call per candidate covering
        all sizes); without one this degrades to ``optimize`` per size.
        Outcomes are numerically identical either way; in batched mode
        each outcome's ``search_seconds`` is its share of the grid
        evaluation plus its own ranking cost.
        """
        sizes = [int(n) for n in ns]
        if not sizes:
            raise SearchError("optimize_many needs at least one size")
        if self.batch_estimator is None:
            return [self.optimize(n) for n in sizes]
        started = time.perf_counter()
        grid = np.empty((len(self.candidates), len(sizes)), dtype=float)
        for i, config in enumerate(self.candidates):
            row = np.asarray(self.batch_estimator(config, sizes), dtype=float)
            if row.shape != (len(sizes),):
                raise SearchError(
                    f"batch estimator returned shape {row.shape} for "
                    f"{config.label()}, expected ({len(sizes)},)"
                )
            grid[i] = row
        eval_share = (time.perf_counter() - started) / len(sizes)
        outcomes = []
        for j, n in enumerate(sizes):
            column_started = time.perf_counter()
            values = [
                self._validated(float(grid[i, j]), config, n)
                for i, config in enumerate(self.candidates)
            ]
            outcome = self._rank(n, values, column_started)
            outcome.search_seconds += eval_share
            outcomes.append(outcome)
        return outcomes

    def best(self, n: int) -> RankedEstimate:
        return self.optimize(n).best


def actual_best(
    measured: Sequence[Tuple[ClusterConfig, float]],
) -> Tuple[ClusterConfig, float]:
    """The measured-optimal configuration among (config, seconds) pairs —
    the ground truth the paper's Tables 4/7/9 compare against."""
    if not measured:
        raise SearchError("no measurements to choose from")
    best_config, best_time = min(measured, key=lambda item: (item[1], item[0].key()))
    return best_config, best_time
