"""Back-compat home of the exhaustive optimizer.

The search layer now lives in :mod:`repro.core.search` — a pluggable
protocol with exhaustive, branch-and-bound and local-search backends.
This module keeps the original import path working; everything here is a
re-export.
"""

from repro.core.search.base import (
    BatchEstimator,
    Estimator,
    RankedEstimate,
    SearchOutcome,
    actual_best,
)
from repro.core.search.exhaustive import ExhaustiveOptimizer

__all__ = [
    "BatchEstimator",
    "Estimator",
    "ExhaustiveOptimizer",
    "RankedEstimate",
    "SearchOutcome",
    "actual_best",
]
