"""Model store: every fitted N-T and P-T model of a campaign, indexed.

The store is built from a construction dataset in one pass (the paper's
"model construction" step — the one it times at 0.69 ms for 54
configurations) and then queried by the binning selector and the
optimizer.  It also records how long its own construction took, so the
benches can report the model-construction cost alongside the measurement
cost, as the paper does.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.model_api import TimeModel, model_from_dict, model_to_dict
from repro.core.nt_model import NTModel
from repro.core.pt_model import PTModel
from repro.errors import ModelError
from repro.measure.dataset import Dataset
from repro.perf.cache import model_fingerprint


@dataclass
class ModelStore:
    """Fitted models of one campaign."""

    nt: Dict[Tuple[str, int, int], NTModel] = field(default_factory=dict)
    """N-T models keyed by ``(kind, P, Mi)``."""

    pt: Dict[Tuple[str, int], PTModel] = field(default_factory=dict)
    """P-T models keyed by ``(kind, Mi)``."""

    build_seconds: float = 0.0

    # -- queries ---------------------------------------------------------------

    def nt_model(self, kind: str, p: int, mi: int) -> NTModel:
        try:
            return self.nt[(kind, p, mi)]
        except KeyError:
            raise ModelError(f"no N-T model for ({kind}, P={p}, Mi={mi})") from None

    def pt_model(self, kind: str, mi: int) -> PTModel:
        try:
            return self.pt[(kind, mi)]
        except KeyError:
            raise ModelError(f"no P-T model for ({kind}, Mi={mi})") from None

    def has_nt(self, kind: str, p: int, mi: int) -> bool:
        return (kind, p, mi) in self.nt

    def has_pt(self, kind: str, mi: int) -> bool:
        return (kind, mi) in self.pt

    def nt_family(self, kind: str, mi: int) -> List[NTModel]:
        """All N-T models of one kind at fixed Mi, ordered by P."""
        models = [
            model
            for (k, p, m_i), model in self.nt.items()
            if k == kind and m_i == mi
        ]
        return sorted(models, key=lambda m: m.p)

    def kinds(self) -> List[str]:
        names: List[str] = []
        for kind, _, _ in self.nt:
            if kind not in names:
                names.append(kind)
        for kind, _ in self.pt:
            if kind not in names:
                names.append(kind)
        return names

    def mi_values(self, kind: str) -> List[int]:
        out = sorted(
            {mi for (k, _, mi) in self.nt if k == kind}
            | {mi for (k, mi) in self.pt if k == kind}
        )
        return out

    @property
    def model_count(self) -> int:
        return len(self.nt) + len(self.pt)

    def models(self) -> Iterator[TimeModel]:
        """Every fitted/composed model in a stable order (sorted N-T keys,
        then sorted P-T keys) — the iteration the estimator facade's
        inventory and fingerprint are built on."""
        for key in sorted(self.nt):
            yield self.nt[key]
        for key in sorted(self.pt):
            yield self.pt[key]

    def add(self, model: TimeModel) -> None:
        """Index a model under its natural key, dispatching on the registry
        tag (never on the concrete class)."""
        if model.model_type == "nt":
            self.nt[(model.kind_name, model.p, model.mi)] = model  # type: ignore[union-attr,attr-defined]
        elif model.model_type == "pt":
            self.pt[(model.kind_name, model.mi)] = model  # type: ignore[assignment]
        else:
            raise ModelError(
                f"ModelStore holds nt/pt models, not {model.model_type!r}"
            )

    def fingerprint(self) -> str:
        """Stable hash over every model's own fingerprint (plus the key
        order), so two stores hash equal iff they estimate identically."""
        return model_fingerprint(
            tuple(model.fingerprint() for model in self.models())
        )

    # -- construction -------------------------------------------------------------

    @classmethod
    def fit_dataset(
        cls,
        dataset: Dataset,
        pt_sizes: Optional[Sequence[float]] = None,
        weighting: str = "uniform",
    ) -> "ModelStore":
        """Fit every model the construction dataset supports.

        * one N-T model per single-kind configuration family with >= 4
          distinct ``N``;
        * one P-T model per ``(kind, Mi)`` whose N-T family spans >= 3
          distinct ``P``.

        ``pt_sizes`` are the sampling sizes for the P-T integration
        (defaults to the dataset's construction sizes); ``weighting``
        selects the N-T least-squares objective (see
        :meth:`repro.core.nt_model.NTModel.fit`).
        """
        started = time.perf_counter()
        store = cls()
        sizes = pt_sizes if pt_sizes is not None else dataset.sizes()

        for config_tuple in dataset.config_tuples():
            subset = dataset.for_config(config_tuple)
            first = subset[0]
            if not first.is_single_kind:
                continue  # heterogeneous runs are evaluation, not construction
            kind = next(km.kind_name for km in first.per_kind if km.pe_count > 0)
            if len(subset.sizes()) < 4:
                continue
            model = NTModel.fit_dataset(dataset, kind, config_tuple, weighting=weighting)
            store.nt[(kind, model.p, model.mi)] = model

        for kind in store.kinds():
            for mi in store.mi_values(kind):
                family = store.nt_family(kind, mi)
                if len({m.p for m in family}) < 3:
                    continue
                store.pt[(kind, mi)] = PTModel.fit_from_nt_family(family, sizes)

        store.build_seconds = time.perf_counter() - started
        return store

    # -- serialization ----------------------------------------------------------------

    def to_json(self) -> str:
        """Format-2 wire form: one flat type-tagged model list (the
        registry's :func:`~repro.core.model_api.model_to_dict`), so new
        model classes persist without touching this module."""
        payload = {
            "format": 2,
            "models": [model_to_dict(model) for model in self.models()],
            "build_seconds": self.build_seconds,
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "ModelStore":
        """Load either wire format: the legacy ``nt``/``pt`` lists
        (format 1) or the type-tagged ``models`` list (format 2)."""
        payload = json.loads(text)
        store = cls(build_seconds=float(payload.get("build_seconds", 0.0)))
        if "models" in payload:
            for data in payload["models"]:
                store.add(model_from_dict(data))
            return store
        for data in payload.get("nt", []):
            model = NTModel.from_dict(data)
            store.nt[(model.kind_name, model.p, model.mi)] = model
        for data in payload.get("pt", []):
            model = PTModel.from_dict(data)
            store.pt[(model.kind_name, model.mi)] = model
        return store

    def save(self, path: Path | str) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Path | str) -> "ModelStore":
        return cls.from_json(Path(path).read_text())

    def summary(self) -> str:
        lines = [
            f"ModelStore: {len(self.nt)} N-T + {len(self.pt)} P-T models "
            f"(built in {self.build_seconds * 1e3:.2f} ms)"
        ]
        for kind in self.kinds():
            nt_count = sum(1 for (k, _, _) in self.nt if k == kind)
            pt_mis = sorted(mi for (k, mi) in self.pt if k == kind)
            composed = [
                mi for (k, mi), m in self.pt.items() if k == kind and m.is_composed
            ]
            lines.append(
                f"  {kind}: {nt_count} N-T, P-T for Mi={pt_mis}"
                + (f" (composed: {sorted(composed)})" if composed else "")
            )
        return "\n".join(lines)
