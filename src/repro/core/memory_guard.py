"""Memory-aware model construction (paper Section 3.4, made operational).

The paper observes that memory pressure is *predictable* from ``N`` and
``P``, so the modelling layer can select different equations per memory
regime.  The sharpest practical consequence: a construction measurement
taken while a node was paging does not describe the in-memory regime at
all, and letting it into a least-squares fit poisons every coefficient
(see ``tests/integration/test_other_application.py`` for a measured case —
a single paging SUMMA run drives the P-T offset to -170 seconds).

:class:`MemoryGuard` classifies measurements by their predicted worst-node
memory ratio and :func:`split_dataset` partitions a construction dataset
into an in-memory part (fit the standard models on it) and a paging part
(fit separate models, or simply refuse to estimate that regime).  The
pipeline enables this via ``PipelineConfig.memory_guard``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cluster.spec import ClusterSpec
from repro.errors import MeasurementError, ModelError
from repro.hpl.memory import config_memory_ratio
from repro.measure.dataset import Dataset
from repro.measure.record import MeasurementRecord


@dataclass(frozen=True)
class MemoryGuard:
    """Predicts whether a (configuration, N) pair fits in memory.

    Parameters
    ----------
    spec:
        The cluster (node RAM sizes).
    threshold:
        Memory ratio above which a run is classified as paging.  1.0 is
        the physical boundary; values slightly below it (e.g. 0.95) leave
        a safety margin against workspace underestimation.
    footprint:
        Application working-set multiple of the HPL matrix (SUMMA: 3).
    nb:
        Panel block size (workspace term).
    """

    spec: ClusterSpec
    threshold: float = 1.0
    footprint: float = 1.0
    nb: int = 80

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ModelError("threshold must be positive")
        if self.footprint <= 0:
            raise ModelError("footprint must be positive")

    def ratio(self, config, n: int) -> float:
        """Worst memory ratio across the kinds a configuration uses."""
        return max(
            config_memory_ratio(
                self.spec, config, n, alloc.kind_name,
                nb=self.nb, footprint=self.footprint,
            )
            for alloc in config.active
        )

    def fits(self, config, n: int) -> bool:
        return self.ratio(config, n) <= self.threshold

    def record_fits(self, record: MeasurementRecord) -> bool:
        return self.fits(record.config(), record.n)


def split_dataset(dataset: Dataset, guard: MemoryGuard) -> Tuple[Dataset, Dataset]:
    """Partition into (in-memory, paging) datasets by predicted ratio."""
    in_memory, paging = Dataset(), Dataset()
    for record in dataset:
        (in_memory if guard.record_fits(record) else paging).add(record)
    return in_memory, paging


def require_clean(dataset: Dataset, guard: MemoryGuard) -> Dataset:
    """The strict variant: raise if any construction run paged.

    Useful when a campaign is *supposed* to be in-memory by design; a
    violation means the grid needs shrinking, not silent filtering.
    """
    clean, paging = split_dataset(dataset, guard)
    if len(paging):
        offenders = sorted({(r.label, r.n) for r in paging})
        raise MeasurementError(
            f"{len(paging)} construction measurements exceed memory "
            f"(threshold {guard.threshold}): {offenders[:5]}..."
        )
    return clean
